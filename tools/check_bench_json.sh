#!/usr/bin/env bash
# check_bench_json.sh — schema-validate BENCH_*.json bench telemetry.
#
# Every bench that emits telemetry writes one BENCH_<name>.json conforming
# to schema "dosas-bench-v1" (bench/bench_common.hpp BenchJson; field
# reference in docs/OBSERVABILITY.md "Bench telemetry"). This script fails
# on malformed JSON, a wrong/missing schema tag, missing required fields
# (schema, name, git_sha, config, metrics), an empty metrics object, or
# mistyped optional fields (latency_us.{p50,p95,p99}, throughput,
# demotion_rate, stages) — so CI artifacts and the committed trajectory
# points in bench/trajectory/ stay machine-readable.
#
# Usage: tools/check_bench_json.sh [file-or-dir ...]
#   (no arguments: validates bench/trajectory/ in the repo root)
# Exit 0 = all valid, 1 = violation or nothing to validate.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"

files=()
if [ "$#" -eq 0 ]; then
  set -- "$root/bench/trajectory"
fi
for arg in "$@"; do
  if [ -d "$arg" ]; then
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$arg" -maxdepth 1 -name 'BENCH_*.json' | sort)
  elif [ -f "$arg" ]; then
    files+=("$arg")
  else
    echo "check_bench_json: no such file or directory: $arg" >&2
    exit 1
  fi
done

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench_json: no BENCH_*.json files found" >&2
  exit 1
fi

fail=0
for f in "${files[@]}"; do
  if python3 - "$f" <<'PYEOF'
import json
import numbers
import sys

path = sys.argv[1]
errors = []
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as exc:
    print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
    sys.exit(1)

def err(msg):
    errors.append(msg)

if not isinstance(doc, dict):
    err("top level is not an object")
else:
    if doc.get("schema") != "dosas-bench-v1":
        err(f"schema must be \"dosas-bench-v1\" (got {doc.get('schema')!r})")
    for key in ("name", "git_sha"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            err(f"required field {key!r} missing or not a non-empty string")
    if not isinstance(doc.get("config"), dict):
        err("required field 'config' missing or not an object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        err("required field 'metrics' missing, not an object, or empty")
    elif not all(isinstance(v, numbers.Real) for v in metrics.values()):
        err("'metrics' values must all be numbers")
    lat = doc.get("latency_us")
    if lat is not None:
        if not isinstance(lat, dict):
            err("'latency_us' must be an object")
        else:
            for q in ("p50", "p95", "p99"):
                if not isinstance(lat.get(q), numbers.Real):
                    err(f"'latency_us.{q}' missing or not a number")
    for key in ("throughput", "demotion_rate"):
        if key in doc and not isinstance(doc[key], numbers.Real):
            err(f"'{key}' must be a number")
    if "stages" in doc and not isinstance(doc["stages"], dict):
        err("'stages' must be an object")
    # The rpc_async bench carries the hedged-read point: its telemetry must
    # keep the hedge fields, or the trajectory loses the straggler story.
    if doc.get("name") == "rpc_async" and isinstance(metrics, dict):
        for key in ("straggler_p99_ms", "hedged_p99_ms", "hedge_p99_speedup",
                    "hedge_extra_bytes_frac", "hedges_fired", "hedges_won",
                    "hedges_wasted"):
            if not isinstance(metrics.get(key), numbers.Real):
                err(f"'metrics.{key}' missing or not a number (hedge telemetry)")

if errors:
    for e in errors:
        print(f"{path}: {e}", file=sys.stderr)
    sys.exit(1)
PYEOF
  then
    :
  else
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "check_bench_json: ${#files[@]} telemetry file(s) conform to dosas-bench-v1"
fi
exit "$fail"
