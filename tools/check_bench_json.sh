#!/usr/bin/env bash
# check_bench_json.sh — schema-validate BENCH_*.json bench telemetry.
#
# Every bench that emits telemetry writes one BENCH_<name>.json conforming
# to schema "dosas-bench-v1" (bench/bench_common.hpp BenchJson; field
# reference in docs/OBSERVABILITY.md "Bench telemetry"). This script fails
# on malformed JSON, a wrong/missing schema tag, missing required fields
# (schema, name, git_sha, config, metrics), an empty metrics object, or
# mistyped optional fields (latency_us.{p50,p95,p99}, throughput,
# demotion_rate, stages) — so CI artifacts and the committed trajectory
# points in bench/trajectory/ stay machine-readable.
#
# Beyond the schema, freshly produced telemetry is DIFFED against the
# committed baseline point in bench/trajectory/BENCH_<name>.json (skipped
# when the validated file IS the baseline): every shared metric and the
# latency quantiles are reported, and a latency_us.p99 regression beyond
# DOSAS_BENCH_P99_TOLERANCE (default 0.25 = +25%) on the rpc_async point —
# the 8-client contention measurement the data-plane work is judged by —
# fails the check. Set DOSAS_BENCH_DIFF_REPORT to a path to also write the
# diff as a report file (CI uploads it with the telemetry artifact).
#
# Usage: tools/check_bench_json.sh [file-or-dir ...]
#   (no arguments: validates bench/trajectory/ in the repo root)
# Exit 0 = all valid, 1 = violation or nothing to validate.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
tolerance="${DOSAS_BENCH_P99_TOLERANCE:-0.25}"
report="${DOSAS_BENCH_DIFF_REPORT:-}"
if [ -n "$report" ]; then
  : > "$report"
fi

files=()
if [ "$#" -eq 0 ]; then
  set -- "$root/bench/trajectory"
fi
for arg in "$@"; do
  if [ -d "$arg" ]; then
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$arg" -maxdepth 1 -name 'BENCH_*.json' | sort)
  elif [ -f "$arg" ]; then
    files+=("$arg")
  else
    echo "check_bench_json: no such file or directory: $arg" >&2
    exit 1
  fi
done

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench_json: no BENCH_*.json files found" >&2
  exit 1
fi

fail=0
for f in "${files[@]}"; do
  if python3 - "$f" <<'PYEOF'
import json
import numbers
import sys

path = sys.argv[1]
errors = []
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as exc:
    print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
    sys.exit(1)

def err(msg):
    errors.append(msg)

if not isinstance(doc, dict):
    err("top level is not an object")
else:
    if doc.get("schema") != "dosas-bench-v1":
        err(f"schema must be \"dosas-bench-v1\" (got {doc.get('schema')!r})")
    for key in ("name", "git_sha"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            err(f"required field {key!r} missing or not a non-empty string")
    if not isinstance(doc.get("config"), dict):
        err("required field 'config' missing or not an object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        err("required field 'metrics' missing, not an object, or empty")
    elif not all(isinstance(v, numbers.Real) for v in metrics.values()):
        err("'metrics' values must all be numbers")
    lat = doc.get("latency_us")
    if lat is not None:
        if not isinstance(lat, dict):
            err("'latency_us' must be an object")
        else:
            for q in ("p50", "p95", "p99"):
                if not isinstance(lat.get(q), numbers.Real):
                    err(f"'latency_us.{q}' missing or not a number")
    for key in ("throughput", "demotion_rate"):
        if key in doc and not isinstance(doc[key], numbers.Real):
            err(f"'{key}' must be a number")
    if "stages" in doc and not isinstance(doc["stages"], dict):
        err("'stages' must be an object")
    # The rpc_async bench carries the hedged-read point: its telemetry must
    # keep the hedge fields, or the trajectory loses the straggler story.
    if doc.get("name") == "rpc_async" and isinstance(metrics, dict):
        for key in ("straggler_p99_ms", "hedged_p99_ms", "hedge_p99_speedup",
                    "hedge_extra_bytes_frac", "hedges_fired", "hedges_won",
                    "hedges_wasted"):
            if not isinstance(metrics.get(key), numbers.Real):
                err(f"'metrics.{key}' missing or not a number (hedge telemetry)")
    # Data-plane telemetry (v1 additions): the zero-copy ledger and ring
    # CAS counters must keep flowing from the two benches that measure the
    # lock-free data plane.
    if doc.get("name") in ("rpc_async", "micro_core") and isinstance(metrics, dict):
        for key in ("bytes_copied_per_req", "cas_retries_per_req"):
            if not isinstance(metrics.get(key), numbers.Real):
                err(f"'metrics.{key}' missing or not a number (data-plane telemetry)")
    # Write-path + result-cache zero-copy telemetry: rpc_async must keep
    # proving the request direction and the cache hit copy nothing.
    if doc.get("name") == "rpc_async" and isinstance(metrics, dict):
        for key in ("write_bytes_copied_per_req", "cache_hit_bytes_copied_per_req"):
            if not isinstance(metrics.get(key), numbers.Real):
                err(f"'metrics.{key}' missing or not a number (write/cache telemetry)")

if errors:
    for e in errors:
        print(f"{path}: {e}", file=sys.stderr)
    sys.exit(1)
PYEOF
  then
    :
  else
    fail=1
  fi
done

# ---- trajectory diff: fresh telemetry vs the committed baseline point ----
for f in "${files[@]}"; do
  name="$(basename "$f")"
  baseline="$root/bench/trajectory/$name"
  [ -f "$baseline" ] || continue
  # The baseline diffed against itself is vacuous — skip when the file
  # under validation IS the committed trajectory point.
  if [ "$(realpath "$f")" = "$(realpath "$baseline")" ]; then
    continue
  fi
  diff_out="$(python3 - "$f" "$baseline" "$tolerance" <<'PYEOF'
import json
import sys

path, base_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(path) as fh:
    new = json.load(fh)
with open(base_path) as fh:
    base = json.load(fh)

name = new.get("name", "?")
lines = [f"== {name}: {path} vs baseline {base_path}"]

def fmt(old, cur):
    if isinstance(old, (int, float)) and isinstance(cur, (int, float)) and old:
        return f"{old:.6g} -> {cur:.6g} ({(cur / old - 1) * 100:+.1f}%)"
    return f"{old!r} -> {cur!r}"

for key in sorted(set(base.get("metrics", {})) | set(new.get("metrics", {}))):
    old = base.get("metrics", {}).get(key)
    cur = new.get("metrics", {}).get(key)
    if old != cur:
        lines.append(f"  metrics.{key}: {fmt(old, cur)}")
for q in ("p50", "p95", "p99"):
    old = (base.get("latency_us") or {}).get(q)
    cur = (new.get("latency_us") or {}).get(q)
    if old is not None or cur is not None:
        lines.append(f"  latency_us.{q}: {fmt(old, cur)}")

failed = False
# The enforced gate: the rpc_async 8-client point's p99 must not regress
# past the tolerance. Everything else is report-only.
if name == "rpc_async":
    old = (base.get("latency_us") or {}).get("p99")
    cur = (new.get("latency_us") or {}).get("p99")
    if isinstance(old, (int, float)) and isinstance(cur, (int, float)) and old > 0:
        if cur > old * (1 + tol):
            lines.append(
                f"  FAIL: latency_us.p99 regressed {cur / old - 1:+.1%} "
                f"(tolerance {tol:+.0%})")
            failed = True
        else:
            lines.append(
                f"  OK: latency_us.p99 within {tol:+.0%} of baseline")

print("\n".join(lines))
sys.exit(1 if failed else 0)
PYEOF
)" || fail=1
  echo "$diff_out" >&2
  if [ -n "$report" ]; then
    echo "$diff_out" >> "$report"
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "check_bench_json: ${#files[@]} telemetry file(s) conform to dosas-bench-v1"
fi
exit "$fail"
