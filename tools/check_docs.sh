#!/usr/bin/env bash
# check_docs.sh — lint the repo's Markdown for dangling file references.
#
# Scans every tracked .md file for path-like tokens (src/..., tests/...,
# bench/..., tools/..., docs/..., examples/...) and verifies each one
# resolves to a real file. `file.cpp:123` anchors are checked against the
# file; `path/name` without an extension is accepted if `name.cpp`/`name.hpp`
# exists there (binary-style references like examples/quickstart). Globs
# (src/core/sim_model.*) are expanded. Also checks that every `bench_*` /
# `test_*` binary name mentioned in docs has a matching source file.
#
# Usage: tools/check_docs.sh [repo-root]   (exit 0 = clean, 1 = dangling)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

fail=0

note() {
  echo "dangling reference: '$2' (in $1)" >&2
  fail=1
}

# Path-like tokens. Colon is excluded from the token charset so that
# `src/foo.cpp:42` anchors reduce to the plain path. Meta documents that
# quote external repos or prospective work (ISSUE, SNIPPETS, PAPERS) are
# not part of the user-facing documentation and are skipped.
docs=$(ls ./*.md docs/*.md 2>/dev/null \
  | grep -v -E '(ISSUE|SNIPPETS|PAPERS|CHANGES)\.md$')
for doc in $docs; do
  refs=$(grep -oE '\b(src|tests|bench|tools|docs|examples)/[A-Za-z0-9_./*-]+' "$doc" \
    | sed 's/[).,;]*$//' | sort -u)
  for ref in $refs; do
    ref="${ref%/}"
    case "$ref" in
      *'*'*)  # glob reference: must match at least one file
        if ! compgen -G "$ref" > /dev/null; then note "$doc" "$ref"; fi
        ;;
      *)
        if [ -e "$ref" ]; then continue; fi
        # Binary-style reference: path/name -> path/name.cpp or .hpp
        if [ -e "$ref.cpp" ] || [ -e "$ref.hpp" ] || [ -e "$ref.sh" ]; then continue; fi
        note "$doc" "$ref"
        ;;
    esac
  done

  # bench_* / test_* binary names must have a matching source file.
  bins=$(grep -oE '\b(bench|test)_[a-z0-9_]+\b' "$doc" | sort -u)
  for bin in $bins; do
    if compgen -G "bench/$bin*" > /dev/null; then continue; fi
    if compgen -G "tests/$bin*" > /dev/null; then continue; fi
    # Suites nested one level down (e.g. tests/dst/test_dst.cpp).
    if compgen -G "tests/*/$bin*" > /dev/null; then continue; fi
    note "$doc" "$bin"
  done
done

# The bench telemetry schema must stay documented: every dosas-bench-v1
# field that tools/check_bench_json.sh validates has to appear (as a
# backtick-quoted token) in docs/OBSERVABILITY.md's schema section.
if [ -f docs/OBSERVABILITY.md ]; then
  if ! grep -q 'dosas-bench-v1' docs/OBSERVABILITY.md; then
    note docs/OBSERVABILITY.md "dosas-bench-v1 schema section"
  fi
  for field in schema name git_sha config metrics latency_us throughput \
               demotion_rate stages; do
    if ! grep -q "\`$field\`" docs/OBSERVABILITY.md; then
      echo "undocumented bench telemetry field: '$field' (docs/OBSERVABILITY.md)" >&2
      fail=1
    fi
  done
  # Hedging telemetry: the straggler signal and the hedge counters that
  # tests/dst/test_straggler.cpp asserts on must stay in the catalog.
  for token in 'rpc.node_latency_us' 'client.hedges_fired' \
               'client.hedges_won' 'client.hedges_wasted'; do
    if ! grep -q "$token" docs/OBSERVABILITY.md; then
      echo "undocumented hedging metric: '$token' (docs/OBSERVABILITY.md)" >&2
      fail=1
    fi
  done
  # Data-plane telemetry: the ring/arena contention gauges, the zero-copy
  # ledger, and the per-request bench metrics the regression gate reads.
  for token in 'ring.cas_retries.push' 'ring.cas_retries.pop' \
               'ring.lock_fast' 'ring.lock_contended' 'ring.spsc' \
               'arena.slabs_in_use' 'arena.slabs_recycled' \
               'arena.cache_hits' 'arena.cache_evictions' \
               'arena.cache_invalidations' \
               'data.bytes_copied' 'data.bytes_copied.<site>' \
               'bytes_copied_per_req' 'cas_retries_per_req' \
               'write_bytes_copied_per_req' 'cache_hit_bytes_copied_per_req'; do
    if ! grep -q "$token" docs/OBSERVABILITY.md; then
      echo "undocumented data-plane metric: '$token' (docs/OBSERVABILITY.md)" >&2
      fail=1
    fi
  done
fi

# The hedging design note must keep naming its load-bearing knobs, and
# the data-plane section its load-bearing types and contracts.
if [ -f docs/ARCHITECTURE.md ]; then
  for token in hedge_reads hedge_min_delay hedge_max_per_read node_latency \
               BufferRef BufferArena QueuePoll read_object_ref \
               close-then-drain SpscRing serve_write cache_lookup \
               CopySite; do
    if ! grep -q "$token" docs/ARCHITECTURE.md; then
      echo "architecture doc no longer documents '$token' (docs/ARCHITECTURE.md)" >&2
      fail=1
    fi
  done
fi

# The scale-run playbook must exist and keep documenting the harness's
# load-bearing knobs: a scenario that silently drops one of these loses
# either determinism or the paper-shaped contention it exists to model.
if [ -f docs/SCALE.md ]; then
  for token in VirtualClock CompleterAffinity PacingConfig \
               pace_kernel_rates pace_compute_rates network_per_node \
               generate_traffic ScrambledZipf dosas-bench-v1; do
    if ! grep -q "$token" docs/SCALE.md; then
      echo "scale playbook no longer documents '$token' (docs/SCALE.md)" >&2
      fail=1
    fi
  done
else
  note docs/SCALE.md "docs/SCALE.md (scale-run playbook)"
fi

if [ "$fail" -eq 0 ]; then
  echo "check_docs: all documentation file references resolve"
fi
exit "$fail"
