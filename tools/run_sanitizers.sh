#!/usr/bin/env bash
# run_sanitizers.sh — build and run the test suite under sanitizers.
#
#   tools/run_sanitizers.sh [address] [undefined] [thread]
#
# With no arguments, runs address and undefined over the full suite, then
# thread over the concurrency-heavy tests (test_server, test_stress,
# test_resilience, test_fault, test_dst) — TSan on everything is slow and
# the other tests are single-threaded.
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so switching sanitizers never needs a reconfigure.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
MODES=("$@")
if [ ${#MODES[@]} -eq 0 ]; then
  MODES=(address undefined thread)
fi

run_one() {
  local mode="$1" dir
  case "$mode" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *) echo "unknown sanitizer '$mode' (expected address|undefined|thread)" >&2; return 1 ;;
  esac

  echo "== $mode sanitizer =="
  cmake -B "$dir" -S . -DDOSAS_SANITIZE="$mode" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$dir" -j "$JOBS" >/dev/null

  if [ "$mode" = thread ]; then
    # Concurrency-heavy tier only: servers, stress, resilience, fault,
    # and the deterministic-simulation suite, whose whole point is the
    # clock's cross-thread accounting (ctest registers individual gtest
    # cases, so run the binaries).
    local bin
    for bin in test_server test_stress test_resilience test_fault test_dst \
               test_hedge test_straggler test_ring test_arena test_dataplane; do
      "$dir/tests/$bin"
    done
  else
    (cd "$dir" && ctest --output-on-failure -j "$JOBS")
  fi
  echo "== $mode sanitizer: OK =="
}

for mode in "${MODES[@]}"; do
  run_one "$mode"
done
echo "all sanitizer runs passed"
