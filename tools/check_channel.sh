#!/usr/bin/env bash
# check_channel.sh — enforce the Channel deprecation (src/common/channel.hpp).
#
# Channel is the repo's first-generation queue: a mutex around a deque,
# with lock handoffs on every send/receive. The data plane replaced it
# with the lock-free Ring (src/common/ring.hpp) — MPMC by default,
# SpscRing where a queue has exactly one producer and one consumer — so
# queue hops no longer serialize on a lock the paper's contention story
# is about avoiding. New runtime code must not reintroduce Channel.
#
# Banned in src/ outside src/common/channel.hpp itself:
#   * Channel< instantiations
#   * #include of common/channel.hpp
#
# tests/ may keep Channel's own unit tests, and bench/ keeps the
# BM_ChannelThroughput row as the deprecation-delta baseline against
# Ring; neither is runtime code.
#
# Usage: tools/check_channel.sh [repo-root]   (exit 0 = clean, 1 = violation)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

pattern='Channel<|#include[[:space:]]*["<].*channel\.hpp'

hits=$(grep -rnE "$pattern" src \
  --include='*.cpp' --include='*.hpp' 2>/dev/null \
  | grep -v '^src/common/channel\.hpp:')

if [ -n "$hits" ]; then
  echo "check_channel: deprecated Channel usage in runtime code:" >&2
  echo "$hits" >&2
  echo "use Ring / SpscRing (src/common/ring.hpp) instead (see channel.hpp's deprecation note)" >&2
  exit 1
fi

echo "check_channel: no Channel usage outside its own header"
exit 0
