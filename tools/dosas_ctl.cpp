// dosas_ctl — command-line driver for the DOSAS experiment models.
//
//   dosas_ctl sweep     --kernel gaussian --size 128MiB [--ios 1,2,4,...]
//                       [--no-dosas] [--csv out.csv]
//   dosas_ctl bandwidth --kernel gaussian --size 256MiB [--csv out.csv]
//   dosas_ctl accuracy  [--seed 2012]
//   dosas_ctl multinode --nodes 4 --per-node 8 --size 128MiB
//                       [--dedicated-links] [--naive-ce]
//   dosas_ctl replay    --trace workload.trace [--scheme ts|as|dosas]
//   dosas_ctl runtime   --trace workload.trace [--scheme ts|as|dosas]
//                       [--strip 64KiB] [--chunk 1MiB]
//                       [--fault-spec seed=7,read_fault=0.05,...] [--retries 3]
//                       [--timeout-ms 500] [--circuit 3] [--virtual-clock]
//   dosas_ctl calibrate [--mb 64]
//   dosas_ctl trace-gen --ios 32 --size 128MiB [--gap 0.25] [--nodes 4]
//                       [--out workload.trace]
//
// Global flags (any command): --metrics prints a metrics snapshot at exit;
// --trace-out=<file> writes a Chrome trace_event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev). See docs/OBSERVABILITY.md.
//
// Everything the bench binaries do, parameterized — the entry point for
// users running their own what-if studies.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/clock.hpp"

#include "core/cluster.hpp"
#include "core/experiments.hpp"
#include "core/multi_node.hpp"
#include "core/runner.hpp"
#include "core/trace.hpp"
#include "kernels/calibrate.hpp"
#include "kernels/registry.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dosas;
using namespace dosas::core;

/// Minimal --flag / --flag=value / --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        ok_ = false;
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";  // boolean flag
      }
    }
  }

  bool ok() const { return ok_; }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

ModelConfig config_for_kernel(const std::string& kernel) {
  if (kernel == "sum") return ModelConfig::sum();
  return ModelConfig::gaussian();
}

std::vector<std::size_t> parse_ios(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    out.push_back(static_cast<std::size_t>(
        std::strtoul(text.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return out;
}

void write_csv_if_requested(const Args& args, const Table& table) {
  if (!args.has("csv")) return;
  const std::string path = args.get("csv", "");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const auto csv = table.to_csv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

int cmd_sweep(const Args& args) {
  const auto cfg = config_for_kernel(args.get("kernel", "gaussian"));
  auto size = parse_size(args.get("size", "128MiB"));
  if (!size.is_ok()) {
    std::fprintf(stderr, "%s\n", size.status().to_string().c_str());
    return 1;
  }
  const auto ios =
      args.has("ios") ? parse_ios(args.get("ios", "")) : paper_io_counts();
  const bool with_dosas = !args.has("no-dosas");
  const auto points = scheme_sweep(cfg, ios, size.value(), with_dosas);
  const auto table = sweep_table(points, with_dosas);
  table.print(std::cout);
  write_csv_if_requested(args, table);
  return 0;
}

int cmd_bandwidth(const Args& args) {
  const auto cfg = config_for_kernel(args.get("kernel", "gaussian"));
  auto size = parse_size(args.get("size", "256MiB"));
  if (!size.is_ok()) {
    std::fprintf(stderr, "%s\n", size.status().to_string().c_str());
    return 1;
  }
  const auto ios =
      args.has("ios") ? parse_ios(args.get("ios", "")) : paper_io_counts();
  const auto table = bandwidth_table(bandwidth_sweep(cfg, ios, size.value()));
  table.print(std::cout);
  write_csv_if_requested(args, table);
  return 0;
}

int cmd_accuracy(const Args& args) {
  const auto report =
      scheduler_accuracy(static_cast<std::uint64_t>(args.get_int("seed", 2012)));
  const auto table = accuracy_table(report);
  table.print(std::cout);
  std::printf("\noverall accuracy: %.1f%%\n", 100.0 * report.accuracy);
  write_csv_if_requested(args, table);
  return 0;
}

int cmd_multinode(const Args& args) {
  MultiNodeConfig cfg;
  cfg.node = config_for_kernel(args.get("kernel", "gaussian"));
  cfg.storage_nodes = static_cast<std::uint32_t>(args.get_int("nodes", 4));
  cfg.shared_link = !args.has("dedicated-links");
  cfg.ce_bandwidth_aware = !args.has("naive-ce");
  auto size = parse_size(args.get("size", "128MiB"));
  if (!size.is_ok()) {
    std::fprintf(stderr, "%s\n", size.status().to_string().c_str());
    return 1;
  }
  const auto per_node = static_cast<std::size_t>(args.get_int("per-node", 8));
  const auto workload = balanced_workload(cfg.storage_nodes, per_node, size.value());

  Table table({"scheme", "makespan (s)", "agg bw (MiB/s)", "active", "demoted",
               "interrupted"});
  for (auto scheme : {SchemeKind::kTraditional, SchemeKind::kActive, SchemeKind::kDosas}) {
    const auto r = simulate_multi_node(scheme, cfg, workload);
    table.add_row({scheme_name(scheme), fmt(r.makespan), fmt(r.aggregate_bandwidth_mbps),
                   std::to_string(r.served_active), std::to_string(r.demoted),
                   std::to_string(r.interrupted)});
  }
  table.print(std::cout);
  write_csv_if_requested(args, table);
  return 0;
}

int cmd_replay(const Args& args) {
  if (!args.has("trace")) {
    std::fprintf(stderr, "replay requires --trace <file>\n");
    return 1;
  }
  auto trace = Trace::load(args.get("trace", ""));
  if (!trace.is_ok()) {
    std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
    return 1;
  }
  MultiNodeConfig cfg;
  cfg.node = config_for_kernel(args.get("kernel", "gaussian"));
  cfg.storage_nodes = std::max(1u, trace.value().node_count());
  cfg.shared_link = !args.has("dedicated-links");

  const std::string scheme_s = args.get("scheme", "all");
  std::vector<SchemeKind> schemes;
  if (scheme_s == "ts") {
    schemes = {SchemeKind::kTraditional};
  } else if (scheme_s == "as") {
    schemes = {SchemeKind::kActive};
  } else if (scheme_s == "dosas") {
    schemes = {SchemeKind::kDosas};
  } else {
    schemes = {SchemeKind::kTraditional, SchemeKind::kActive, SchemeKind::kDosas};
  }

  std::printf("replaying %zu request(s) over %u storage node(s)\n\n",
              trace.value().records.size(), cfg.storage_nodes);
  Table table({"scheme", "makespan (s)", "mean completion (s)", "demoted", "interrupted"});
  for (auto scheme : schemes) {
    const auto r = simulate_multi_node(scheme, cfg, trace.value().to_multi_node_requests());
    table.add_row({scheme_name(scheme), fmt(r.makespan), fmt(r.mean_completion),
                   std::to_string(r.demoted), std::to_string(r.interrupted)});
  }
  table.print(std::cout);
  write_csv_if_requested(args, table);
  return 0;
}

int cmd_runtime(const Args& args) {
  if (!args.has("trace")) {
    std::fprintf(stderr, "runtime requires --trace <file>\n");
    return 1;
  }
  auto trace = Trace::load(args.get("trace", ""));
  if (!trace.is_ok()) {
    std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
    return 1;
  }
  auto strip = parse_size(args.get("strip", "64KiB"));
  auto chunk = parse_size(args.get("chunk", "1MiB"));
  if (!strip.is_ok() || !chunk.is_ok()) {
    std::fprintf(stderr, "bad --strip/--chunk size\n");
    return 1;
  }

  ClusterConfig cfg;
  cfg.storage_nodes = std::max(1u, trace.value().node_count());
  cfg.strip_size = strip.value();
  cfg.server_chunk_size = chunk.value();
  cfg.client_chunk_size = chunk.value();
  const std::string scheme_s = args.get("scheme", "dosas");
  if (scheme_s == "ts") {
    cfg.scheme = SchemeKind::kTraditional;
  } else if (scheme_s == "as") {
    cfg.scheme = SchemeKind::kActive;
  } else if (scheme_s == "dosas") {
    cfg.scheme = SchemeKind::kDosas;
  } else {
    std::fprintf(stderr, "unknown --scheme '%s' (expected ts|as|dosas)\n", scheme_s.c_str());
    return 1;
  }

  // Fault-injection + recovery knobs (see docs/RESILIENCE.md).
  if (args.has("fault-spec")) {
    auto spec = fault::FaultSpec::parse(args.get("fault-spec", ""));
    if (!spec.is_ok()) {
      std::fprintf(stderr, "%s\n", spec.status().to_string().c_str());
      return 1;
    }
    cfg.faults = std::make_shared<fault::FaultInjector>(spec.value());
    std::printf("fault spec: %s\n", cfg.faults->spec().to_string().c_str());
  }
  const int retries = static_cast<int>(args.get_int("retries", 0));
  if (retries > 0) cfg.client_retry.max_attempts = 1 + retries;
  const double timeout_ms = args.get_double("timeout-ms", 0.0);
  if (timeout_ms > 0.0) cfg.request_timeout = timeout_ms / 1000.0;
  cfg.circuit_threshold = static_cast<int>(args.get_int("circuit", 0));

  // --virtual-clock: run the workload in DST mode — backoff, deadlines and
  // probe ticks jump instead of sleeping. Declared before the Cluster so
  // the override outlives every runtime thread bound to it, and installed
  // before construction so those threads bind to the VirtualClock.
  std::unique_ptr<VirtualClock> vclock;
  std::unique_ptr<ScopedClockOverride> clock_override;
  if (args.has("virtual-clock")) {
    vclock = std::make_unique<VirtualClock>();
    clock_override = std::make_unique<ScopedClockOverride>(*vclock);
  }

  Cluster cluster(cfg);

  // Materialize each trace record as a file pinned to its node (a one-server
  // stripe group based at that data server), filled with deterministic data.
  std::vector<WorkloadRequest> requests;
  requests.reserve(trace.value().records.size());
  for (std::size_t i = 0; i < trace.value().records.size(); ++i) {
    const auto& rec = trace.value().records[i];
    pfs::StripingParams striping;
    striping.strip_size = cfg.strip_size;
    striping.server_count = 1;
    striping.base_server = rec.node % cfg.storage_nodes;
    const std::string path = "/runtime/req" + std::to_string(i);
    auto meta = cluster.pfs_client().create(path, striping);
    if (!meta.is_ok()) {
      std::fprintf(stderr, "%s\n", meta.status().to_string().c_str());
      return 1;
    }
    auto written = pfs::write_doubles(cluster.pfs_client(), path, rec.size / sizeof(double),
                                      [&](std::size_t j) {
                                        return std::sin(static_cast<double>(i + j) * 0.001);
                                      });
    if (!written.is_ok()) {
      std::fprintf(stderr, "%s\n", written.status().to_string().c_str());
      return 1;
    }
    requests.push_back({path, 0, 0, rec.operation});
  }

  std::printf("running %zu request(s) against the real %u-node cluster (%s scheme)\n\n",
              requests.size(), cluster.storage_node_count(), scheme_name(cfg.scheme));
  const auto report = run_workload(cluster, requests);

  Table table({"request", "node", "op", "size", "outcome", "latency (s)"});
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& rec = trace.value().records[i];
    const auto& out = report.outcomes[i];
    table.add_row({std::to_string(i), std::to_string(rec.node), rec.operation,
                   size_to_text(rec.size), out.ok ? "ok" : out.error, fmt(out.latency, 3)});
  }
  table.print(std::cout);

  Table servers({"server", "completed", "demoted", "interrupted", "failed", "normal I/O"});
  for (std::uint32_t s = 0; s < cluster.storage_node_count(); ++s) {
    const auto st = cluster.storage_server(s).stats();
    servers.add_row({std::to_string(s), std::to_string(st.active_completed),
                     std::to_string(st.active_rejected), std::to_string(st.active_interrupted),
                     std::to_string(st.active_failed), std::to_string(st.normal_requests)});
  }
  std::printf("\n");
  servers.print(std::cout);

  const auto cst = cluster.asc().stats();
  std::printf(
      "\nclient recovery: %llu remote retries (%llu exhausted), %llu timed out,\n"
      "  %llu demoted, %llu resumed, %llu node-down demotes, %llu checkpoint restarts,\n"
      "  %.3f s accrued backoff\n",
      static_cast<unsigned long long>(cst.remote_retries),
      static_cast<unsigned long long>(cst.exhausted_retries),
      static_cast<unsigned long long>(cst.timed_out),
      static_cast<unsigned long long>(cst.demoted),
      static_cast<unsigned long long>(cst.resumed_local),
      static_cast<unsigned long long>(cst.node_down_demotes),
      static_cast<unsigned long long>(cst.checkpoint_corrupt_restarts), cst.backoff_total);
  const auto tst = cluster.asc().transport_stats();
  std::printf(
      "transport: %llu submitted, %llu completed, %llu cancelled, %llu timed out,\n"
      "  %llu batched (%llu coalesced), in-flight hwm %llu, "
      "active RPC p50 %.1f us / p99 %.1f us\n",
      static_cast<unsigned long long>(tst.submitted),
      static_cast<unsigned long long>(tst.completed),
      static_cast<unsigned long long>(tst.cancelled),
      static_cast<unsigned long long>(tst.timed_out),
      static_cast<unsigned long long>(tst.batched),
      static_cast<unsigned long long>(tst.coalesced),
      static_cast<unsigned long long>(tst.inflight_hwm),
      tst.active_latency_p50_us, tst.active_latency_p99_us);
  // Data-plane ledger: the zero-copy story's receipts. Owning copies by
  // charge site name the layer that duplicated bytes; arena totals show
  // slab recycling doing the allocation work; dispatch-ring CAS retries
  // show what the lock-free queues absorbed instead of a mutex.
  {
    std::printf("data plane: %llu byte(s) copied",
                static_cast<unsigned long long>(data_bytes_copied()));
    const char* sep = " (";
    for (std::size_t i = 0; i < static_cast<std::size_t>(CopySite::kCount); ++i) {
      const auto site = static_cast<CopySite>(i);
      const auto n = data_bytes_copied(site);
      if (n == 0) continue;
      std::printf("%s%s %llu", sep, copy_site_name(site),
                  static_cast<unsigned long long>(n));
      sep = ", ";
    }
    if (std::strcmp(sep, ", ") == 0) std::printf(")");
    BufferArena::Stats arena{};
    for (std::uint32_t s = 0; s < cluster.storage_node_count(); ++s) {
      const auto a = cluster.fs().data_server(s).arena_stats();
      arena.slabs_created += a.slabs_created;
      arena.slabs_recycled += a.slabs_recycled;
      arena.slabs_in_use += a.slabs_in_use;
      arena.bytes_in_use += a.bytes_in_use;
    }
    RingStats rings{};
    for (std::uint32_t s = 0; s < cluster.storage_node_count(); ++s) {
      const auto r = cluster.storage_server(s).dispatch_ring_stats();
      rings.push_cas_retries += r.push_cas_retries;
      rings.pop_cas_retries += r.pop_cas_retries;
    }
    std::printf(
        "\n  arenas: %llu slab(s) created, %llu recycled, %llu in use "
        "(%llu byte(s));  dispatch rings: %llu push / %llu pop CAS retries\n",
        static_cast<unsigned long long>(arena.slabs_created),
        static_cast<unsigned long long>(arena.slabs_recycled),
        static_cast<unsigned long long>(arena.slabs_in_use),
        static_cast<unsigned long long>(arena.bytes_in_use),
        static_cast<unsigned long long>(rings.push_cas_retries),
        static_cast<unsigned long long>(rings.pop_cas_retries));
  }
  if (cluster.fault_injector() != nullptr) {
    const auto fst = cluster.fault_injector()->stats();
    std::printf(
        "faults injected: %llu read, %llu kernel-throw, %llu corrupt-ckpt, %llu net,\n"
        "  %llu stall, %llu crash-rejection (total %llu)\n",
        static_cast<unsigned long long>(fst.read_faults),
        static_cast<unsigned long long>(fst.kernel_throws),
        static_cast<unsigned long long>(fst.checkpoints_corrupted),
        static_cast<unsigned long long>(fst.net_errors),
        static_cast<unsigned long long>(fst.stalls),
        static_cast<unsigned long long>(fst.crash_rejections),
        static_cast<unsigned long long>(fst.total()));
  }
  // Per-stage latency decomposition: where each request class spent its
  // time (transport -> admission queue -> kernel, plus client e2e), with
  // an exemplar trace id per histogram linking the worst sample to its
  // causal tree in the --trace-out dump.
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    Table stages({"stage", "count", "mean (us)", "p50 (us)", "p99 (us)", "exemplar"});
    std::size_t rows = 0;
    for (const auto& name : reg.histogram_names()) {
      if (name.rfind("stage.", 0) != 0) continue;
      const auto s = reg.histogram(name).summary();
      stages.add_row({name, std::to_string(s.count), fmt(s.mean, 1), fmt(s.p50, 1),
                      fmt(s.p99, 1),
                      s.exemplar_trace_id != 0
                          ? "trace:" + std::to_string(s.exemplar_trace_id)
                          : "-"});
      ++rows;
    }
    if (rows > 0) {
      std::printf("\nper-stage latency decomposition:\n");
      stages.print(std::cout);
    }
  }

  if (args.has("dump-flight-recorder")) {
    auto& fr = obs::FlightRecorder::global();
    std::printf("\nflight recorder: %llu event(s) recorded, %llu dump(s) triggered\n",
                static_cast<unsigned long long>(fr.events_recorded()),
                static_cast<unsigned long long>(fr.dumps_triggered()));
    std::fputs(fr.dump_text().c_str(), stdout);
  }

  const auto cs = dosas::clock().status();
  std::printf("\nclock: %s  now=%.6f s  participants=%d  blocked=%d  timed_waiters=%d",
              cs.virtual_time ? "virtual" : "wall", cs.now, cs.participants, cs.blocked,
              cs.timed_waiters);
  if (cs.virtual_time) {
    std::printf("  advances=%llu  stalled_checks=%llu",
                static_cast<unsigned long long>(cs.advances),
                static_cast<unsigned long long>(cs.stalled_checks));
  }
  std::printf("\n%s time: %.3f s  (%zu failure(s))\n",
              cs.virtual_time ? "virtual" : "wall", report.wall_time, report.failures);
  write_csv_if_requested(args, table);
  return report.failures == 0 ? 0 : 1;
}

int cmd_calibrate(const Args& args) {
  const auto mb = static_cast<Bytes>(args.get_int("mb", 64));
  kernels::CalibrationOptions opts;
  opts.total_bytes = mb * 1_MiB;
  const auto registry = kernels::Registry::with_builtins();
  Table table({"kernel", "rate (MiB/s)"});
  for (const auto& name : registry.names()) {
    auto kernel = registry.create(name);
    if (!kernel.is_ok()) continue;
    const auto r = kernels::calibrate(*kernel.value(), opts);
    table.add_row({name, fmt(to_mib_per_sec(r.rate), 1)});
  }
  table.print(std::cout);
  write_csv_if_requested(args, table);
  return 0;
}

int cmd_trace_gen(const Args& args) {
  auto size = parse_size(args.get("size", "128MiB"));
  if (!size.is_ok()) {
    std::fprintf(stderr, "%s\n", size.status().to_string().c_str());
    return 1;
  }
  const auto ios = static_cast<std::size_t>(args.get_int("ios", 32));
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 1));
  const double gap = args.get_double("gap", 0.0);
  const std::string op = args.get("op", "gaussian2d");

  Trace trace;
  for (std::size_t i = 0; i < ios; ++i) {
    TraceRecord rec;
    rec.arrival = gap * static_cast<double>(i);
    rec.node = static_cast<std::uint32_t>(i % nodes);
    rec.size = size.value();
    rec.operation = op;
    trace.records.push_back(rec);
  }
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fputs(trace.to_text().c_str(), stdout);
  } else {
    Status st = trace.save(out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("wrote %zu request(s) to %s\n", trace.records.size(), out.c_str());
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: dosas_ctl <command> [flags]\n"
      "  sweep      --kernel gaussian|sum --size 128MiB [--ios 1,2,4] [--no-dosas] [--csv f]\n"
      "  bandwidth  --kernel gaussian|sum --size 256MiB [--ios ...] [--csv f]\n"
      "  accuracy   [--seed 2012] [--csv f]\n"
      "  multinode  --nodes 4 --per-node 8 --size 128MiB [--dedicated-links] [--naive-ce]\n"
      "  replay     --trace file [--scheme ts|as|dosas|all] [--kernel ...]\n"
      "  runtime    --trace file [--scheme ts|as|dosas] [--strip 64KiB] [--chunk 1MiB]\n"
      "             [--fault-spec k=v,...] [--retries N] [--timeout-ms T] [--circuit N]\n"
      "             [--virtual-clock]  (deterministic virtual time: sleeps become jumps)\n"
      "             [--dump-flight-recorder]  (print the event ring after the run)\n"
      "  calibrate  [--mb 64]\n"
      "  trace-gen  --ios 32 --size 128MiB [--gap 0.25] [--nodes 4] [--out file]\n"
      "global flags: --metrics (snapshot at exit)  --trace-out=<file> (Chrome trace)\n",
      stderr);
  return 2;
}

}  // namespace

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "bandwidth") return cmd_bandwidth(args);
  if (cmd == "accuracy") return cmd_accuracy(args);
  if (cmd == "multinode") return cmd_multinode(args);
  if (cmd == "replay") return cmd_replay(args);
  if (cmd == "runtime") return cmd_runtime(args);
  if (cmd == "calibrate") return cmd_calibrate(args);
  if (cmd == "trace-gen") return cmd_trace_gen(args);
  return usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args(argc, argv);
  if (!args.ok()) return usage();

  // Global observability flags: enable BEFORE the command runs so every
  // instrumentation site along the way records.
  const bool want_metrics = args.has("metrics");
  const std::string trace_out = args.get("trace-out", "");
  if (want_metrics) obs::MetricsRegistry::global().set_enabled(true);
  if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);

  const int rc = dispatch(cmd, args);

  if (want_metrics) {
    std::printf("\n-- metrics snapshot --\n%s",
                obs::MetricsRegistry::global().to_text().c_str());
  }
  if (!trace_out.empty()) {
    Status st = obs::Tracer::global().write(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return rc == 0 ? 1 : rc;
    }
    std::printf("wrote %zu trace event(s) to %s\n", obs::Tracer::global().event_count(),
                trace_out.c_str());
  }
  return rc;
}
