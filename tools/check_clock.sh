#!/usr/bin/env bash
# check_clock.sh — enforce the Clock seam (src/common/clock.hpp).
#
# All time must flow through the injected clock so the whole runtime can
# execute under a VirtualClock (deterministic simulation testing — see
# docs/ARCHITECTURE.md "Time & determinism"). Direct wall-clock reads,
# sleeps, and timed waits outside the clock implementation reintroduce
# hidden real-time dependencies; direct condition_variable notifies bypass
# the VirtualClock's poke accounting and let virtual time jump deadlines a
# signaled-but-unscheduled thread was about to beat.
#
# Banned everywhere except src/common/clock.{hpp,cpp}:
#   * std::chrono::{steady,system,high_resolution}_clock
#   * std::this_thread::sleep_for / sleep_until
#   * condition_variable wait_for( / wait_until(
#   * condition_variable notify_all( / notify_one(
#   * the raw C time APIs: clock_gettime, gettimeofday, time(nullptr) —
#     flight-recorder and trace timestamps must come from dosas::clock()
#     so virtual-time runs record virtual seconds
#
# Use instead: clock().now(), clock().sleep(), clock().wait(),
# clock().timed_wait(), clock().wake_all(), clock().wake_one() — and
# wall_clock() for the few sites that measure *physical* machine speed
# (kernel calibration, bench timing, DST speedup checks).
#
# Usage: tools/check_clock.sh [repo-root]   (exit 0 = clean, 1 = violation)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

pattern='steady_clock|system_clock|high_resolution_clock|sleep_for|sleep_until|\bwait_for[[:space:]]*\(|\bwait_until[[:space:]]*\(|notify_all[[:space:]]*\(|notify_one[[:space:]]*\(|\bclock_gettime[[:space:]]*\(|\bgettimeofday[[:space:]]*\(|\btime[[:space:]]*\([[:space:]]*(nullptr|NULL|0)[[:space:]]*\)'

hits=$(grep -rnE "$pattern" src tests bench tools examples \
  --include='*.cpp' --include='*.hpp' 2>/dev/null \
  | grep -v '^src/common/clock\.\(hpp\|cpp\):')

if [ -n "$hits" ]; then
  echo "check_clock: direct time/notify usage outside src/common/clock.{hpp,cpp}:" >&2
  echo "$hits" >&2
  echo "route it through clock() / wall_clock() instead (see src/common/clock.hpp)" >&2
  exit 1
fi

echo "check_clock: all time flows through the Clock seam"
exit 0
