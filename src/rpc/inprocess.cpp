#include "rpc/inprocess.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace dosas::rpc {

InProcessTransport::InProcessTransport(std::vector<server::StorageServer*> servers)
    : servers_(std::move(servers)) {
  // Pre-register the watchdog's clock participation before spawning it so
  // a VirtualClock cannot advance in the spawn window (ClockParticipant).
  clock().add_participant();
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

InProcessTransport::~InProcessTransport() {
  // Drain: the contract says callers must not destroy the chain with RPCs
  // outstanding, but completions briefly touch our counters (the track()
  // callback captures `this`), so wait for in-flight to hit zero as a
  // backstop before tearing anything down.
  {
    std::unique_lock lock(mu_);
    clock().wait(drained_cv_, lock, [&] { return inflight_ == 0; });
  }
  {
    std::lock_guard lock(watchdog_mu_);
    shutdown_ = true;
  }
  clock().wake_all(watchdog_cv_);
  watchdog_.join();
}

PendingReply InProcessTransport::track(const Envelope& env) {
  auto reply = PendingReply::make(env.kind);
  const Seconds t0 = clock().now();
  {
    std::lock_guard lock(mu_);
    ++submitted_;
    ++inflight_;
    inflight_hwm_ = std::max(inflight_hwm_, inflight_);
  }
  // First registered callback: the transport's own completion accounting.
  // Registration precedes dispatch, so it runs before any caller callback
  // and observes every completion path (server reply, deadline, cancel).
  const OpKind kind = env.kind;
  const std::uint32_t target = env.target;
  const std::uint64_t trace_id = env.trace.trace_id;
  reply.on_complete([this, t0, kind, target, trace_id](Reply& r) {
    const double us = (clock().now() - t0) * 1e6;
    const ErrorCode code = r.status().code();
    // A cancelled or watchdog-expired reply measures time-to-cancel, not the
    // node's service latency; feeding it to the per-node quantiles would
    // make a straggler look fast the moment hedging starts winning.
    const bool genuine = code != ErrorCode::kCancelled && code != ErrorCode::kTimedOut;
    bool drained;
    {
      std::lock_guard lock(mu_);
      ++completed_;
      --inflight_;
      drained = inflight_ == 0;
      if (kind == OpKind::kActiveIo) {
        active_p50_.add(us);
        active_p99_.add(us);
        if (genuine) {
          if (target >= node_latency_.size()) node_latency_.resize(target + 1);
          auto& nl = node_latency_[target];
          nl.p50.add(us);
          nl.p99.add(us);
          ++nl.samples;
        }
      }
      if (code == ErrorCode::kCancelled) ++cancelled_;
    }
    if (kind == OpKind::kActiveIo && genuine && obs::metrics_enabled()) {
      obs::observe("rpc.node_latency_us." + std::to_string(target), us, trace_id);
    }
    if (drained) clock().wake_all(drained_cv_);
  });
  return reply;
}

void InProcessTransport::dispatch_active(Envelope& env, PendingReply& reply) {
  server::StorageServer& server = *servers_.at(env.target);
  PendingReply completion = reply;  // shared state: safe to copy into the callback
  auto ticket = server.submit_active(std::move(env.active),
                                     [completion](server::ActiveIoResponse resp) mutable {
                                       Reply r;
                                       r.kind = OpKind::kActiveIo;
                                       r.active = std::move(resp);
                                       completion.complete(std::move(r));
                                     });
  if (ticket.coalesced) {
    std::lock_guard lock(mu_);
    ++coalesced_;
  }
  if (ticket.id != 0) {
    server::StorageServer* s = &server;
    reply.set_canceller(
        [s, ticket](const Status& reason) { return s->cancel_active(ticket, reason); });
  }
  if (env.deadline > 0.0 && !reply.ready()) arm_deadline(reply, env);
}

void InProcessTransport::dispatch_read(Envelope& env, PendingReply& reply) {
  server::StorageServer& server = *servers_.at(env.target);
  Reply r;
  r.kind = OpKind::kRead;
  auto data = server.serve_normal(env.read.handle, env.read.object_offset, env.read.length);
  if (data.is_ok()) {
    r.read.data = std::move(data).value();
  } else {
    r.read.status = data.status();
  }
  reply.complete(std::move(r));
}

void InProcessTransport::dispatch_write(Envelope& env, PendingReply& reply) {
  server::StorageServer& server = *servers_.at(env.target);
  Reply r;
  r.kind = OpKind::kWrite;
  auto st =
      server.serve_write(env.write.handle, env.write.object_offset, env.write.data);
  if (st.is_ok()) {
    r.write.written = env.write.data.size();
  } else {
    r.write.status = std::move(st);
  }
  reply.complete(std::move(r));
}

PendingReply InProcessTransport::submit(Envelope env) {
  {
    std::lock_guard lock(mu_);
    env.rpc_id = next_rpc_id_++;
  }
  if (env.target >= servers_.size()) {
    auto reply = track(env);
    reply.complete(failure_reply(
        env.kind, error(ErrorCode::kInternal,
                        "no storage server for target " + std::to_string(env.target))));
    return reply;
  }
  auto reply = track(env);
  if (env.kind == OpKind::kActiveIo) {
    dispatch_active(env, reply);
  } else if (env.kind == OpKind::kRead) {
    dispatch_read(env, reply);
  } else {
    dispatch_write(env, reply);
  }
  return reply;
}

std::vector<PendingReply> InProcessTransport::submit_batch(std::vector<Envelope> envs) {
  // Group kActiveIo envelopes per target: each node's batch endpoint gives
  // its CE one decision over the whole sub-group. Reads and singletons take
  // the plain path.
  std::map<std::uint32_t, std::vector<std::size_t>> active_groups;
  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (envs[i].kind == OpKind::kActiveIo && envs[i].target < servers_.size()) {
      active_groups[envs[i].target].push_back(i);
    }
  }

  std::vector<PendingReply> replies(envs.size());
  for (auto& [target, indices] : active_groups) {
    if (indices.size() < 2) continue;  // no batching benefit; plain path below
    server::StorageServer& server = *servers_.at(target);
    std::vector<server::ActiveIoRequest> requests;
    std::vector<server::StorageServer::ActiveCompletion> dones;
    requests.reserve(indices.size());
    dones.reserve(indices.size());
    for (std::size_t idx : indices) {
      {
        std::lock_guard lock(mu_);
        envs[idx].rpc_id = next_rpc_id_++;
      }
      replies[idx] = track(envs[idx]);
      PendingReply completion = replies[idx];
      requests.push_back(std::move(envs[idx].active));
      dones.push_back([completion](server::ActiveIoResponse resp) mutable {
        Reply r;
        r.kind = OpKind::kActiveIo;
        r.active = std::move(resp);
        completion.complete(std::move(r));
      });
    }
    {
      std::lock_guard lock(mu_);
      batched_ += indices.size();
    }
    auto tickets = server.submit_active_batch(std::move(requests), std::move(dones));
    for (std::size_t j = 0; j < indices.size(); ++j) {
      const std::size_t idx = indices[j];
      if (tickets[j].coalesced) {
        std::lock_guard lock(mu_);
        ++coalesced_;
      }
      if (tickets[j].id != 0) {
        server::StorageServer* s = &server;
        const auto ticket = tickets[j];
        replies[idx].set_canceller(
            [s, ticket](const Status& reason) { return s->cancel_active(ticket, reason); });
      }
      if (envs[idx].deadline > 0.0 && !replies[idx].ready()) {
        arm_deadline(replies[idx], envs[idx]);
      }
    }
  }

  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (!replies[i].valid()) replies[i] = submit(std::move(envs[i]));
  }
  return replies;
}

void InProcessTransport::arm_deadline(PendingReply reply, const Envelope& env) {
  const Seconds when = clock().now() + env.deadline;
  {
    std::lock_guard lock(watchdog_mu_);
    if (shutdown_) return;
    expiries_.push(Expiry{when, std::move(reply), env.deadline, env.trace.trace_id, env.target});
  }
  clock().wake_all(watchdog_cv_);
}

void InProcessTransport::watchdog_loop() {
  // The watchdog is a DST participant: while it sleeps until the next
  // expiry, a VirtualClock may jump straight to that deadline.
  ClockParticipant participant(ClockParticipant::kAdoptPreRegistered);
  std::unique_lock lock(watchdog_mu_);
  while (true) {
    if (shutdown_) return;
    if (expiries_.empty()) {
      clock().wait(watchdog_cv_, lock, [&] { return shutdown_ || !expiries_.empty(); });
      continue;
    }
    const Seconds next = expiries_.top().when;
    if (clock().now() < next) {
      // Wake early if shut down or a sooner expiry was armed.
      clock().timed_wait(watchdog_cv_, lock, next, [&] {
        return shutdown_ || expiries_.empty() || expiries_.top().when < next;
      });
      continue;
    }
    Expiry expired = expiries_.top();
    expiries_.pop();
    lock.unlock();
    if (!expired.reply.ready()) {
      const bool cancelled = expired.reply.cancel(
          error(ErrorCode::kTimedOut, "active request exceeded its " +
                                          std::to_string(expired.deadline) + "s deadline"));
      if (cancelled) {
        {
          std::lock_guard slock(mu_);
          ++timed_out_;
        }
        // A deadline miss is exactly the post-hoc question the flight
        // recorder exists for: record it and dump the recent history.
        obs::flight_record(obs::FlightEventKind::kDeadlineMiss, expired.trace_id,
                           expired.target, 0, "watchdog cancelled past deadline");
        obs::FlightRecorder::global().trigger_dump(
            "active request exceeded its deadline", expired.trace_id);
      }
    }
    lock.lock();
  }
}

void InProcessTransport::collect_stats(TransportStats& out) const {
  std::lock_guard lock(mu_);
  out.submitted += submitted_;
  out.completed += completed_;
  out.cancelled += cancelled_;
  out.timed_out += timed_out_;
  out.batched += batched_;
  out.coalesced += coalesced_;
  out.inflight += inflight_;
  out.inflight_hwm = std::max(out.inflight_hwm, inflight_hwm_);
  out.active_latency_p50_us = active_p50_.value();
  out.active_latency_p99_us = active_p99_.value();
}

NodeLatency InProcessTransport::node_latency(std::uint32_t target) const {
  std::lock_guard lock(mu_);
  if (target >= node_latency_.size()) return {};
  const auto& nl = node_latency_[target];
  return NodeLatency{nl.p50.value(), nl.p99.value(), nl.samples};
}

}  // namespace dosas::rpc
