// inprocess.hpp — the in-process Transport backend: envelopes dispatch
// straight into the target StorageServer's async submit surface on the
// submitting thread, completions arrive from its worker pool.
//
// This is the innermost layer of the interceptor chain (transport.hpp). It
// owns the concerns a real wire would impose regardless of medium:
//
//   * routing (envelope.target -> StorageServer),
//   * per-request deadlines, enforced by a watchdog thread that cancels
//     the server-side work and fails the reply kTimedOut — the async
//     generalization of the old blocking timed wait,
//   * batch submission (one submit_active_batch per target node, so each
//     node's CE makes one decision over its sub-group),
//   * the chain's ground-truth counters: in-flight + high-water mark,
//     per-active-RPC latency quantiles (P²), coalesced/batched counts.
#pragma once

#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "rpc/transport.hpp"
#include "server/storage_server.hpp"

namespace dosas::rpc {

class InProcessTransport : public Transport {
 public:
  /// `servers[i]` serves envelopes with target == i. Raw pointers: the
  /// caller (Cluster, tests) must keep the servers alive for the
  /// transport's lifetime.
  explicit InProcessTransport(std::vector<server::StorageServer*> servers);
  ~InProcessTransport() override;

  InProcessTransport(const InProcessTransport&) = delete;
  InProcessTransport& operator=(const InProcessTransport&) = delete;

  PendingReply submit(Envelope env) override;
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override;
  void collect_stats(TransportStats& out) const override;
  NodeLatency node_latency(std::uint32_t target) const override;

 private:
  /// Shared bookkeeping for one submission: started / finished / deadline.
  PendingReply track(const Envelope& env);

  /// Dispatch one kActiveIo envelope into its server (single-submit path).
  void dispatch_active(Envelope& env, PendingReply& reply);

  /// Serve one kRead synchronously (the in-process "wire" has no queue for
  /// plain object reads; a socket backend would).
  void dispatch_read(Envelope& env, PendingReply& reply);

  /// Serve one kWrite synchronously. The envelope's BufferRef payload is
  /// consumed in place — the data server's terminal store is the only copy.
  void dispatch_write(Envelope& env, PendingReply& reply);

  /// Register `reply` for cancellation at now + env.deadline seconds.
  void arm_deadline(PendingReply reply, const Envelope& env);

  void watchdog_loop();

  const std::vector<server::StorageServer*> servers_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;  ///< signalled when inflight_ hits 0
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t batched_ = 0;
  std::uint64_t coalesced_ = 0;
  std::size_t inflight_ = 0;
  std::size_t inflight_hwm_ = 0;
  P2Quantile active_p50_{0.5};
  P2Quantile active_p99_{0.99};

  /// Per-target-node active-RPC latency (the straggler signal). Grown on
  /// demand under mu_; cancelled/timed-out replies are excluded — their
  /// time-to-cancel would make a straggler look fast.
  struct NodeQuantiles {
    P2Quantile p50{0.5};
    P2Quantile p99{0.99};
    std::uint64_t samples = 0;
  };
  std::vector<NodeQuantiles> node_latency_;  // indexed by target

  struct Expiry {
    Seconds when = 0;  ///< absolute clock time (clock().now() + deadline)
    PendingReply reply;
    Seconds deadline = 0;
    std::uint64_t trace_id = 0;  ///< causal trace of the armed request
    std::uint32_t target = 0;
    bool operator>(const Expiry& other) const { return when > other.when; }
  };
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries_;
  bool shutdown_ = false;
  std::thread watchdog_;  // last member: joined first
};

}  // namespace dosas::rpc
