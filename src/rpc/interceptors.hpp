// interceptors.hpp — the cross-cutting concerns of the ASC<->ASS request
// path, each implemented exactly once as a Transport decorator.
//
// Canonical chain, outermost first (Cluster wires it; tests compose their
// own subsets):
//
//   ObsTransport              every envelope gets a trace span + latency metric
//    └─ CircuitBreakerTransport  node-down fast-fail state (observes FINAL
//    │                           outcomes, i.e. after retries)
//    └─ RetryTransport           transient active-RPC failures re-sent with
//    │                           capped exponential backoff
//    └─ FaultTransport           injected network loss (per ATTEMPT — inside
//    │                           retry, so a retry can recover a lost RPC)
//    └─ NetChargeTransport       reply payload bytes charged to the shared
//    │                           link model (inside fault: a lost RPC moves
//    │                           no bytes)
//    └─ InProcessTransport       routing, deadlines, batching (inprocess.hpp)
//
// The ordering is behaviour, not style: the breaker must see one verdict
// per logical request (outside retry), fault injection must hit every
// attempt (inside retry), and byte charging must only see replies that
// "crossed the wire" (inside fault).
#pragma once

#include <memory>

#include "common/retry.hpp"
#include "common/token_bucket.hpp"
#include "fault/fault.hpp"
#include "rpc/transport.hpp"

namespace dosas::server {
class StorageServer;
}

namespace dosas::rpc {

/// Base decorator: forwards everything to `next`, including stats
/// collection down the chain. Subclasses override what they intercept.
class Filter : public Transport {
 public:
  explicit Filter(std::shared_ptr<Transport> next) : next_(std::move(next)) {}

  PendingReply submit(Envelope env) override { return next_->submit(std::move(env)); }
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override {
    return next_->submit_batch(std::move(envs));
  }
  void collect_stats(TransportStats& out) const override { next_->collect_stats(out); }
  NodeLatency node_latency(std::uint32_t target) const override {
    return next_->node_latency(target);
  }

 protected:
  const std::shared_ptr<Transport> next_;
};

/// Observability: stamps a default span name on unnamed envelopes, records
/// one trace event per RPC (submit -> completion, on the tracer's manual
/// async path), and a per-kind latency histogram. Costs two atomic loads
/// per RPC while tracing/metrics are off.
class ObsTransport : public Filter {
 public:
  using Filter::Filter;
  PendingReply submit(Envelope env) override;
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override;
};

/// Demote-to-local circuit breaker: after `threshold` consecutive
/// transport-level unavailabilities (kFailed + transient status) from one
/// node, the client should stop offloading to it. The breaker only
/// OBSERVES outcomes on the submit path; the decision surface is
/// should_short_circuit(), which the ASC consults before building an
/// envelope — the client, not the transport, owns the local-compute
/// fallback that replaces a skipped RPC. Every 4th skipped request is
/// allowed through as a re-probe so recovery is noticed.
class CircuitBreakerTransport : public Filter {
 public:
  CircuitBreakerTransport(std::shared_ptr<Transport> next, int threshold);

  PendingReply submit(Envelope env) override;
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override;
  void collect_stats(TransportStats& out) const override;

  /// True when the circuit for `target` is open and this request is not
  /// the periodic re-probe. Counts a fast-fail when true.
  bool should_short_circuit(std::uint32_t target);

  /// Is the circuit currently open (threshold consecutive failures)?
  bool is_open(std::uint32_t target) const;

 private:
  void note_outcome(std::uint32_t target, bool unavailable);
  void observe(std::uint32_t target, PendingReply& reply);

  const int threshold_;
  struct NodeState {
    int consecutive_unavailable = 0;
    std::uint64_t skips = 0;  ///< requests short-circuited while open
  };
  mutable std::mutex mu_;
  std::vector<NodeState> nodes_;  // grown on demand, indexed by target
  std::uint64_t fast_fails_ = 0;
};

/// Transient-failure retry for ACTIVE RPCs: a kFailed reply with a
/// transient status (kUnavailable/kTimedOut) is re-submitted with capped
/// exponential backoff, up to policy.max_attempts total tries. Plain reads
/// pass through untouched (their recovery story is the client's
/// hole/fallback handling, and retrying them would perturb the fault
/// injector's deterministic draw sequence).
///
/// Resubmission happens on the completing thread (a server worker for
/// async completions); with the default virtual backoff this is a few
/// arithmetic ops. policy.sleep_real sleeps on that thread — only sensible
/// for blocking callers.
class RetryTransport : public Filter {
 public:
  RetryTransport(std::shared_ptr<Transport> next, RetryPolicy policy, std::uint64_t seed);

  PendingReply submit(Envelope env) override;
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override;
  void collect_stats(TransportStats& out) const override;

 private:
  PendingReply submit_with_retry(Envelope env, PendingReply first_attempt);

  const RetryPolicy policy_;
  const std::uint64_t seed_;
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;  ///< distinct Backoff seed per retry sequence
  std::uint64_t retries_ = 0;
  std::uint64_t exhausted_ = 0;
  Seconds backoff_total_ = 0;
};

/// Injected network loss on the active RPC path: with probability
/// spec.net_error an envelope is "lost" before reaching the server and
/// fails kUnavailable immediately. Draws only on kActiveIo envelopes, one
/// draw per attempt, matching the injector's documented decision sites.
class FaultTransport : public Filter {
 public:
  FaultTransport(std::shared_ptr<Transport> next, std::shared_ptr<fault::FaultInjector> faults);

  PendingReply submit(Envelope env) override;
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override;
  void collect_stats(TransportStats& out) const override;

 private:
  bool lose(const Envelope& env);

  const std::shared_ptr<fault::FaultInjector> faults_;
  mutable std::mutex mu_;
  std::uint64_t injected_ = 0;
};

/// Network byte charging: every payload byte a reply carries back across
/// the "wire" — kernel results, shipped checkpoints, raw read data — is
/// acquired from the TokenBucket link model on completion. Sits innermost
/// (under fault injection) so lost RPCs charge nothing. Two link shapes:
/// one shared bucket (the original single-switch model), or one bucket per
/// storage node (each node's own NIC/1GbE uplink — the scale harness's
/// model, where 200 nodes must not share one link's serialization).
class NetChargeTransport : public Filter {
 public:
  NetChargeTransport(std::shared_ptr<Transport> next, std::shared_ptr<TokenBucket> network);
  NetChargeTransport(std::shared_ptr<Transport> next,
                     std::vector<std::shared_ptr<TokenBucket>> per_node);

  PendingReply submit(Envelope env) override;
  std::vector<PendingReply> submit_batch(std::vector<Envelope> envs) override;
  void collect_stats(TransportStats& out) const override;

 private:
  /// The bucket charged for a reply from `target` (null = charge nothing).
  TokenBucket* bucket_for(std::uint32_t target) const;
  void charge(PendingReply& reply, std::uint32_t target);

  const std::shared_ptr<TokenBucket> network_;  ///< shared-link mode
  const std::vector<std::shared_ptr<TokenBucket>> per_node_;  ///< per-node mode
  mutable std::mutex mu_;
  Bytes bytes_charged_ = 0;
};

/// The canonical full chain over a set of in-process servers (factory used
/// by Cluster and tests). Null/zero options skip their layer entirely.
struct ChainOptions {
  RetryPolicy retry;                              ///< disabled unless max_attempts > 1
  std::uint64_t retry_seed = 1234;
  int circuit_threshold = 0;                      ///< 0: no breaker layer
  std::shared_ptr<fault::FaultInjector> faults;   ///< null: no fault layer
  std::shared_ptr<TokenBucket> network;           ///< null: no charging layer
  /// Per-node link buckets, indexed by storage node id (empty: none).
  /// Mutually exclusive with `network`; `network` wins when both are set.
  std::vector<std::shared_ptr<TokenBucket>> network_per_node;
};

struct Chain {
  std::shared_ptr<Transport> head;  ///< outermost layer; submit here
  std::shared_ptr<CircuitBreakerTransport> breaker;  ///< null when no breaker layer
};

Chain make_chain(std::vector<server::StorageServer*> servers, const ChainOptions& options);

}  // namespace dosas::rpc
