// envelope.hpp — the typed message unit of the ASC <-> ASS transport.
//
// Every request the Active Storage Client sends a storage node — an active
// I/O (kernel offload) or a normal-I/O object read — travels as an
// Envelope and comes back as a Reply. The envelope carries the routing
// target (storage-node id), the per-request deadline, and the trace-span
// name the observability interceptor stamps on the wire, so cross-cutting
// concerns (retry, fault injection, byte charging, tracing) can act on the
// message without knowing which layer produced it.
//
// The payload is deliberately a set of plain members rather than a
// variant: exactly three operations cross this boundary today (paper
// Fig. 3: active I/O and the unmodified PFS read/write path), and call
// sites switch on `kind` the same way the server switches on the wire
// opcode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/trace.hpp"
#include "server/messages.hpp"

namespace dosas::rpc {

/// Which operation an envelope carries.
enum class OpKind {
  kActiveIo,  ///< run a kernel server-side (ActiveIoRequest -> ActiveIoResponse)
  kRead,      ///< normal I/O: read a server-local object extent
  kWrite,     ///< normal I/O: write a server-local object extent
};

const char* op_kind_name(OpKind k);

/// Normal-I/O read of one contiguous extent of the target server's object.
struct ReadRequest {
  pfs::FileHandle handle = 0;
  Bytes object_offset = 0;
  Bytes length = 0;
};

/// Reply payload for OpKind::kRead. `data` is a ref-counted view of the
/// arena slab the PFS data server filled — copying the reply (retry
/// layers, multi-waiter delivery) shares the slab instead of duplicating
/// the extent. TokenBucket byte charging reads data.size() exactly once
/// per completed RPC regardless of how many refs exist.
struct ReadResponse {
  Status status;    ///< OK iff `data` is valid
  BufferRef data;   ///< may be short / empty at object end
};

/// Normal-I/O write of one contiguous extent of the target server's
/// object. `data` is a ref-counted view of the caller's buffer (usually a
/// slice of one slab covering the whole striped write), so the fan-out to
/// N servers shares the payload instead of cutting N owning copies. The
/// bytes are copied exactly once, by the data server's terminal store.
struct WriteRequest {
  pfs::FileHandle handle = 0;
  Bytes object_offset = 0;
  BufferRef data;
};

/// Reply payload for OpKind::kWrite.
struct WriteResponse {
  Status status;       ///< OK iff the extent was stored
  Bytes written = 0;   ///< bytes accepted (== request data.size() on OK)
};

/// One request on the wire.
struct Envelope {
  std::uint64_t rpc_id = 0;   ///< assigned by the transport at submission
  std::uint32_t target = 0;   ///< storage-node id
  OpKind kind = OpKind::kActiveIo;
  server::ActiveIoRequest active;  ///< kActiveIo payload
  ReadRequest read;                ///< kRead payload
  WriteRequest write;              ///< kWrite payload
  /// Per-request deadline in seconds (0 = none). Enforced by the
  /// transport: an unanswered request is cancelled server-side and fails
  /// kTimedOut, whether the caller is blocked in wait() or purely async.
  Seconds deadline = 0;
  /// Trace-span name; the observability interceptor fills a default
  /// ("rpc.active.s<target>") when empty. Every envelope gets a span.
  std::string span;
  /// Causal trace context. The client stamps a per-leg context before
  /// submission (the observability interceptor allocates a root when the
  /// caller didn't), and the transport copies it into the server-side
  /// request so every span a request produces joins one tree.
  obs::TraceContext trace;
  /// clock().now() when the caller handed the envelope to the outermost
  /// transport layer (negative = unknown; a VirtualClock legitimately
  /// starts at 0). The server-side admission path uses it for the
  /// stage.transport_us histogram.
  Seconds submitted_at = -1;
};

/// One response. `kind` mirrors the envelope.
struct Reply {
  OpKind kind = OpKind::kActiveIo;
  server::ActiveIoResponse active;  ///< kActiveIo payload
  ReadResponse read;                ///< kRead payload
  WriteResponse write;              ///< kWrite payload

  /// The failure/OK status regardless of kind (kActiveIo: the response
  /// status; kRead/kWrite: the operation status).
  const Status& status() const {
    switch (kind) {
      case OpKind::kActiveIo: return active.status;
      case OpKind::kRead: return read.status;
      case OpKind::kWrite: return write.status;
    }
    return active.status;
  }
};

/// A typed failure reply for `kind` (kActiveIo -> ActiveOutcome::kFailed).
Reply failure_reply(OpKind kind, Status status);

}  // namespace dosas::rpc
