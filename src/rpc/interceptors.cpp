#include "rpc/interceptors.hpp"

#include <utility>

#include "common/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/inprocess.hpp"

namespace dosas::rpc {

namespace {

/// A kFailed active reply whose status a later attempt could fix — the
/// retry trigger AND the breaker's "node unavailable" verdict (matching
/// the old client: timeouts count toward opening the circuit too).
bool transient_active_failure(const Reply& r) {
  return r.kind == OpKind::kActiveIo &&
         r.active.outcome == server::ActiveOutcome::kFailed &&
         is_transient(r.active.status.code());
}

}  // namespace

// ---------------------------------------------------------------- ObsTransport

namespace {

void obs_annotate(Envelope& env) {
  if (env.span.empty()) {
    env.span = std::string("rpc.") + op_kind_name(env.kind) + ".s" + std::to_string(env.target);
  }
  // Every envelope travels with a causal context: the client pre-stamps
  // active legs; reads and bare submissions get a root here. Allocation is
  // one relaxed fetch_add, cheap enough to do unconditionally so the
  // always-on flight recorder has ids even with tracing off.
  if (!env.trace.valid()) env.trace = obs::Tracer::global().new_root();
  if (env.submitted_at < 0) env.submitted_at = clock().now();
  env.active.trace = env.trace;
  env.active.submitted_at = env.submitted_at;
}

/// Register the span/latency completion hook. Captures no transport state,
/// so it is safe regardless of interceptor lifetime.
void obs_observe(const Envelope& env, PendingReply& reply) {
  const bool tracing = obs::tracing_enabled();
  const bool metrics = obs::metrics_enabled();
  if (!tracing && !metrics) return;
  if (tracing) {
    // Flow start on the submitting thread; the server's queue span emits
    // the matching finish, drawing the cross-thread arrow in the viewer.
    obs::Tracer::global().flow_start(env.span, "flow", env.trace.span_id, env.trace);
  }
  std::string span = env.span;
  const char* kind = op_kind_name(env.kind);
  const obs::TraceContext ctx = env.trace;
  const double t0 = obs::Tracer::global().now_us();
  reply.on_complete([span = std::move(span), kind, t0, tracing, metrics, ctx](Reply&) {
    const double t1 = obs::Tracer::global().now_us();
    if (tracing) obs::Tracer::global().complete(span, "rpc", t0, t1 - t0, ctx);
    if (metrics) obs::observe(std::string("rpc.latency_us.") + kind, t1 - t0, ctx.trace_id);
  });
}

}  // namespace

PendingReply ObsTransport::submit(Envelope env) {
  obs_annotate(env);
  Envelope snapshot;  // the hook needs span/kind/trace after the move below
  snapshot.kind = env.kind;
  snapshot.span = env.span;
  snapshot.trace = env.trace;
  auto reply = next_->submit(std::move(env));
  obs_observe(snapshot, reply);
  return reply;
}

std::vector<PendingReply> ObsTransport::submit_batch(std::vector<Envelope> envs) {
  std::vector<Envelope> snapshots;
  snapshots.reserve(envs.size());
  for (auto& env : envs) {
    obs_annotate(env);
    Envelope s;
    s.kind = env.kind;
    s.span = env.span;
    s.trace = env.trace;
    snapshots.push_back(std::move(s));
  }
  auto replies = next_->submit_batch(std::move(envs));
  for (std::size_t i = 0; i < replies.size(); ++i) obs_observe(snapshots[i], replies[i]);
  return replies;
}

// ---------------------------------------------------- CircuitBreakerTransport

CircuitBreakerTransport::CircuitBreakerTransport(std::shared_ptr<Transport> next, int threshold)
    : Filter(std::move(next)), threshold_(threshold) {}

bool CircuitBreakerTransport::is_open(std::uint32_t target) const {
  if (threshold_ <= 0) return false;
  std::lock_guard lock(mu_);
  return target < nodes_.size() && nodes_[target].consecutive_unavailable >= threshold_;
}

bool CircuitBreakerTransport::should_short_circuit(std::uint32_t target) {
  if (threshold_ <= 0) return false;
  std::lock_guard lock(mu_);
  if (target >= nodes_.size()) return false;
  auto& node = nodes_[target];
  if (node.consecutive_unavailable < threshold_) return false;
  // Every 4th short-circuited request re-probes the node so the breaker
  // closes again once the node recovers.
  ++node.skips;
  const bool skip = node.skips % 4 != 0;
  if (skip) ++fast_fails_;
  return skip;
}

void CircuitBreakerTransport::note_outcome(std::uint32_t target, bool unavailable) {
  std::lock_guard lock(mu_);
  if (target >= nodes_.size()) nodes_.resize(target + 1);
  auto& node = nodes_[target];
  if (unavailable) {
    ++node.consecutive_unavailable;
    if (node.consecutive_unavailable == threshold_) {
      obs::flight_record(obs::FlightEventKind::kBreakerTrip, 0, target,
                         static_cast<std::uint64_t>(threshold_), "circuit opened");
    }
  } else {
    if (node.consecutive_unavailable >= threshold_ && threshold_ > 0) {
      obs::flight_record(obs::FlightEventKind::kBreakerTrip, 0, target, 0, "circuit closed");
    }
    node.consecutive_unavailable = 0;
    node.skips = 0;
  }
}

void CircuitBreakerTransport::observe(std::uint32_t target, PendingReply& reply) {
  // Sits OUTSIDE the retry layer, so this fires once per logical request
  // with the post-retry verdict — a recovered retry closes the circuit.
  // Captures `this`: the owner must not destroy the chain with RPCs
  // outstanding (see Filter).
  reply.on_complete([this, target](Reply& r) {
    if (r.kind == OpKind::kActiveIo) note_outcome(target, transient_active_failure(r));
  });
}

PendingReply CircuitBreakerTransport::submit(Envelope env) {
  const std::uint32_t target = env.target;
  const OpKind kind = env.kind;
  auto reply = next_->submit(std::move(env));
  if (threshold_ > 0 && kind == OpKind::kActiveIo) observe(target, reply);
  return reply;
}

std::vector<PendingReply> CircuitBreakerTransport::submit_batch(std::vector<Envelope> envs) {
  std::vector<std::pair<std::uint32_t, OpKind>> meta;
  meta.reserve(envs.size());
  for (const auto& env : envs) meta.emplace_back(env.target, env.kind);
  auto replies = next_->submit_batch(std::move(envs));
  if (threshold_ > 0) {
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (meta[i].second == OpKind::kActiveIo) observe(meta[i].first, replies[i]);
    }
  }
  return replies;
}

void CircuitBreakerTransport::collect_stats(TransportStats& out) const {
  {
    std::lock_guard lock(mu_);
    out.breaker_fast_fails += fast_fails_;
  }
  next_->collect_stats(out);
}

// ------------------------------------------------------------- RetryTransport

RetryTransport::RetryTransport(std::shared_ptr<Transport> next, RetryPolicy policy,
                               std::uint64_t seed)
    : Filter(std::move(next)), policy_(policy), seed_(seed) {}

PendingReply RetryTransport::submit(Envelope env) {
  if (!policy_.enabled() || env.kind != OpKind::kActiveIo) {
    return next_->submit(std::move(env));
  }
  Envelope copy = env;  // kept for resubmission
  auto first = next_->submit(std::move(env));
  return submit_with_retry(std::move(copy), std::move(first));
}

std::vector<PendingReply> RetryTransport::submit_batch(std::vector<Envelope> envs) {
  if (!policy_.enabled()) return next_->submit_batch(std::move(envs));
  // The batch rides down as one group for the initial attempts; failed
  // members retry individually (a re-sent straggler should not drag its
  // batch peers through another scheduling round).
  std::vector<Envelope> copies;
  copies.reserve(envs.size());
  for (const auto& env : envs) copies.push_back(env);
  auto firsts = next_->submit_batch(std::move(envs));
  std::vector<PendingReply> out;
  out.reserve(firsts.size());
  for (std::size_t i = 0; i < firsts.size(); ++i) {
    if (copies[i].kind != OpKind::kActiveIo) {
      out.push_back(std::move(firsts[i]));
    } else {
      out.push_back(submit_with_retry(std::move(copies[i]), std::move(firsts[i])));
    }
  }
  return out;
}

PendingReply RetryTransport::submit_with_retry(Envelope env, PendingReply first_attempt) {
  auto outer = PendingReply::make(OpKind::kActiveIo);

  // One retry sequence. Kept alive by the attempt callbacks; `self` is a
  // raw pointer under the no-outstanding-RPCs-at-destruction contract.
  struct Session : std::enable_shared_from_this<Session> {
    RetryTransport* self = nullptr;
    Envelope env;
    PendingReply outer;
    std::mutex mu;
    PendingReply current;            // the in-flight attempt (cancel target)
    std::unique_ptr<Backoff> backoff;  // created on the first failure
    int attempt = 1;                 // attempts issued so far
    bool cancelled = false;

    void finish(Reply& r, bool transient) {
      if (backoff != nullptr) {
        std::lock_guard lock(self->mu_);
        self->backoff_total_ += backoff->total();
        if (transient) ++self->exhausted_;
      }
      if (backoff != nullptr && obs::metrics_enabled()) {
        obs::count(transient ? "rpc.retries_exhausted" : "rpc.retry_recovered");
      }
      // This callback is the inner reply's final consumer: take the
      // payload by move instead of copying result/checkpoint buffers.
      outer.complete(std::move(r));
    }

    void on_attempt_done(Reply& r) {
      const bool transient = transient_active_failure(r);
      bool stop;
      {
        std::lock_guard lock(mu);
        stop = cancelled || !transient || attempt >= self->policy_.max_attempts ||
               r.active.status.code() == ErrorCode::kCancelled;
      }
      if (stop) {
        finish(r, transient);
        return;
      }
      int failed_attempt;
      {
        std::lock_guard lock(mu);
        if (backoff == nullptr) {
          std::uint64_t seq;
          {
            std::lock_guard slock(self->mu_);
            seq = self->seq_++;
          }
          backoff = std::make_unique<Backoff>(self->policy_, self->seed_ + seq);
        }
        failed_attempt = attempt++;
      }
      backoff->next_delay(failed_attempt);
      {
        std::lock_guard slock(self->mu_);
        ++self->retries_;
      }
      if (obs::metrics_enabled()) obs::count("rpc.retries");
      obs::flight_record(obs::FlightEventKind::kRetry, env.trace.trace_id, env.target,
                         static_cast<std::uint64_t>(failed_attempt), "active rpc retry");
      if (obs::tracing_enabled()) {
        // Per-attempt instant with a derived child span, so retries show up
        // as marks inside the request's causal tree.
        obs::Tracer::global().instant(
            "rpc.retry", "rpc", env.trace.child("retry" + std::to_string(failed_attempt)));
      }
      auto next_attempt = self->next_->submit(env);  // env reused verbatim
      {
        std::lock_guard lock(mu);
        current = next_attempt;
      }
      auto session = shared_from_this();
      next_attempt.on_complete([session](Reply& r2) { session->on_attempt_done(r2); });
    }
  };

  auto session = std::make_shared<Session>();
  session->self = this;
  session->env = std::move(env);
  session->outer = outer;
  session->current = first_attempt;

  outer.set_canceller([session](const Status& reason) {
    PendingReply attempt;
    {
      std::lock_guard lock(session->mu);
      session->cancelled = true;
      attempt = session->current;
    }
    return attempt.valid() ? attempt.cancel(reason) : false;
  });
  first_attempt.on_complete([session](Reply& r) { session->on_attempt_done(r); });
  return outer;
}

void RetryTransport::collect_stats(TransportStats& out) const {
  {
    std::lock_guard lock(mu_);
    out.retries += retries_;
    out.retries_exhausted += exhausted_;
    out.backoff_total += backoff_total_;
  }
  next_->collect_stats(out);
}

// ------------------------------------------------------------- FaultTransport

FaultTransport::FaultTransport(std::shared_ptr<Transport> next,
                               std::shared_ptr<fault::FaultInjector> faults)
    : Filter(std::move(next)), faults_(std::move(faults)) {}

bool FaultTransport::lose(const Envelope& env) {
  // Only active RPCs draw, one draw per attempt — the injector's
  // documented decision site ("per RPC"), and the reason this layer sits
  // inside retry: a re-sent attempt rolls the dice again.
  if (env.kind != OpKind::kActiveIo || faults_ == nullptr) return false;
  if (!faults_->inject_net_error()) return false;
  {
    std::lock_guard lock(mu_);
    ++injected_;
  }
  return true;
}

PendingReply FaultTransport::submit(Envelope env) {
  if (lose(env)) {
    auto reply = PendingReply::make(env.kind);
    reply.complete(failure_reply(
        env.kind, error(ErrorCode::kUnavailable, "injected network error on active RPC")));
    return reply;
  }
  return next_->submit(std::move(env));
}

std::vector<PendingReply> FaultTransport::submit_batch(std::vector<Envelope> envs) {
  if (faults_ == nullptr) return next_->submit_batch(std::move(envs));
  std::vector<PendingReply> out(envs.size());
  std::vector<Envelope> pass;
  std::vector<std::size_t> pass_index;
  pass.reserve(envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (lose(envs[i])) {
      out[i] = PendingReply::make(envs[i].kind);
      out[i].complete(failure_reply(
          envs[i].kind, error(ErrorCode::kUnavailable, "injected network error on active RPC")));
    } else {
      pass.push_back(std::move(envs[i]));
      pass_index.push_back(i);
    }
  }
  auto replies = next_->submit_batch(std::move(pass));
  for (std::size_t j = 0; j < replies.size(); ++j) out[pass_index[j]] = std::move(replies[j]);
  return out;
}

void FaultTransport::collect_stats(TransportStats& out) const {
  {
    std::lock_guard lock(mu_);
    out.net_faults_injected += injected_;
  }
  next_->collect_stats(out);
}

// --------------------------------------------------------- NetChargeTransport

NetChargeTransport::NetChargeTransport(std::shared_ptr<Transport> next,
                                       std::shared_ptr<TokenBucket> network)
    : Filter(std::move(next)), network_(std::move(network)) {}

NetChargeTransport::NetChargeTransport(std::shared_ptr<Transport> next,
                                       std::vector<std::shared_ptr<TokenBucket>> per_node)
    : Filter(std::move(next)), per_node_(std::move(per_node)) {}

TokenBucket* NetChargeTransport::bucket_for(std::uint32_t target) const {
  if (network_ != nullptr) return network_.get();
  if (target < per_node_.size()) return per_node_[target].get();
  return nullptr;
}

void NetChargeTransport::charge(PendingReply& reply, std::uint32_t target) {
  // Captures `this` (see Filter's lifetime contract). Charging happens on
  // the completing thread — in virtual TokenBucket mode a few arithmetic
  // ops; in real mode the sleep paces the worker exactly like a saturated
  // NIC would back-pressure the sender. The Reply carries no target, so
  // the node id is captured at submission.
  reply.on_complete([this, target](Reply& r) {
    Bytes payload = 0;
    if (r.kind == OpKind::kActiveIo) {
      switch (r.active.outcome) {
        case server::ActiveOutcome::kCompleted: payload = r.active.result.size(); break;
        case server::ActiveOutcome::kInterrupted: payload = r.active.checkpoint.size(); break;
        default: break;
      }
    } else if (r.kind == OpKind::kRead) {
      if (r.read.status.is_ok()) payload = r.read.data.size();
    } else if (r.write.status.is_ok()) {
      // Request-direction bytes: the extent the client shipped, echoed back
      // as `written`. Charged here — once, at the single completion — so a
      // striped write pays the link model exactly what the read path does.
      payload = r.write.written;
    }
    if (payload == 0) return;
    TokenBucket* bucket = bucket_for(target);
    if (bucket == nullptr) return;
    bucket->acquire(payload);
    std::lock_guard lock(mu_);
    bytes_charged_ += payload;
  });
}

PendingReply NetChargeTransport::submit(Envelope env) {
  const std::uint32_t target = env.target;
  auto reply = next_->submit(std::move(env));
  charge(reply, target);
  return reply;
}

std::vector<PendingReply> NetChargeTransport::submit_batch(std::vector<Envelope> envs) {
  std::vector<std::uint32_t> targets;
  targets.reserve(envs.size());
  for (const auto& env : envs) targets.push_back(env.target);
  auto replies = next_->submit_batch(std::move(envs));
  for (std::size_t i = 0; i < replies.size(); ++i) charge(replies[i], targets[i]);
  return replies;
}

void NetChargeTransport::collect_stats(TransportStats& out) const {
  {
    std::lock_guard lock(mu_);
    out.bytes_charged += bytes_charged_;
  }
  next_->collect_stats(out);
}

// ------------------------------------------------------------------ the chain

Chain make_chain(std::vector<server::StorageServer*> servers, const ChainOptions& options) {
  Chain chain;
  std::shared_ptr<Transport> t = std::make_shared<InProcessTransport>(std::move(servers));
  if (options.network != nullptr) {
    t = std::make_shared<NetChargeTransport>(std::move(t), options.network);
  } else if (!options.network_per_node.empty()) {
    t = std::make_shared<NetChargeTransport>(std::move(t), options.network_per_node);
  }
  if (options.faults != nullptr) {
    t = std::make_shared<FaultTransport>(std::move(t), options.faults);
  }
  if (options.retry.enabled()) {
    t = std::make_shared<RetryTransport>(std::move(t), options.retry, options.retry_seed);
  }
  if (options.circuit_threshold > 0) {
    chain.breaker = std::make_shared<CircuitBreakerTransport>(std::move(t),
                                                              options.circuit_threshold);
    t = chain.breaker;
  }
  t = std::make_shared<ObsTransport>(std::move(t));
  chain.head = std::move(t);
  return chain;
}

}  // namespace dosas::rpc
