#include "rpc/transport.hpp"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/clock.hpp"

namespace dosas::rpc {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kActiveIo: return "active";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
  }
  return "?";
}

Reply failure_reply(OpKind kind, Status status) {
  Reply r;
  r.kind = kind;
  if (kind == OpKind::kActiveIo) {
    r.active.outcome = server::ActiveOutcome::kFailed;
    r.active.status = std::move(status);
  } else if (kind == OpKind::kRead) {
    r.read.status = std::move(status);
  } else {
    r.write.status = std::move(status);
  }
  return r;
}

struct PendingReply::State {
  std::mutex mu;
  std::condition_variable cv;
  // Two-stage completion: `claimed` arbitrates first-completion-wins and is
  // set the moment an outcome is decided; `ready` gates wait() and is only
  // set after every pre-registered callback has run, so a caller returning
  // from wait() observes the full effects of the completion chain (e.g. the
  // transport's own accounting callback).
  bool claimed = false;
  bool ready = false;
  Reply reply;
  std::vector<Callback> callbacks;
  Canceller canceller;
};

PendingReply PendingReply::make(OpKind kind) {
  PendingReply p;
  p.state_ = std::make_shared<State>();
  p.state_->reply.kind = kind;
  return p;
}

bool PendingReply::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard lock(state_->mu);
  return state_->claimed;
}

Reply PendingReply::wait() {
  std::unique_lock lock(state_->mu);
  clock().wait(state_->cv, lock, [&] { return state_->ready; });
  return std::move(state_->reply);
}

bool PendingReply::wait_until_ready(Seconds deadline) {
  std::unique_lock lock(state_->mu);
  // Gate on `ready`, not `claimed`: a true return must imply the completion
  // chain (transport accounting, byte charging) has fully run, exactly like
  // wait().
  return clock().timed_wait(state_->cv, lock, deadline, [&] { return state_->ready; });
}

void PendingReply::on_complete(Callback cb) {
  {
    std::lock_guard lock(state_->mu);
    if (!state_->claimed) {
      state_->callbacks.push_back(std::move(cb));
      return;
    }
  }
  // Already complete (the reply is written before `claimed` is published):
  // fire on this thread, outside the lock.
  cb(state_->reply);
}

bool PendingReply::complete(Reply r) {
  std::vector<Callback> callbacks;
  // The canceller is dropped at completion: cancel() is a no-op once
  // `claimed` is set, and interceptor cancellers close over session state
  // that itself holds this State (RetryTransport's Session, the hedge
  // twin) — keeping the closure alive past completion is a reference
  // cycle that leaks the whole retry session. Destroyed outside the lock;
  // a racing cancel() already copied its own reference.
  Canceller canceller;
  {
    std::lock_guard lock(state_->mu);
    if (state_->claimed) return false;
    state_->reply = std::move(r);
    state_->claimed = true;
    callbacks.swap(state_->callbacks);
    canceller = std::move(state_->canceller);
    state_->canceller = nullptr;
  }
  // Callbacks run outside the lock: they may submit further RPCs (retry
  // resubmission, cooperative re-offload) or take unrelated locks. Waiters
  // are only released afterwards so wait() implies the chain has run.
  for (auto& cb : callbacks) cb(state_->reply);
  {
    std::lock_guard lock(state_->mu);
    state_->ready = true;
  }
  clock().wake_all(state_->cv);
  return true;
}

void PendingReply::set_canceller(Canceller c) {
  std::lock_guard lock(state_->mu);
  // A completed reply will never invoke its canceller; storing one would
  // only pin the closure's captures (see complete()).
  if (state_->claimed) return;
  state_->canceller = std::move(c);
}

bool PendingReply::cancel(const Status& reason) {
  Canceller canceller;
  {
    std::lock_guard lock(state_->mu);
    if (state_->claimed) return false;
    canceller = state_->canceller;
  }
  // Withdraw the server-side work first so a racing completion is the
  // exception, then complete with the typed failure; first-wins makes the
  // race benign either way.
  if (canceller) (void)canceller(reason);
  OpKind kind;
  {
    std::lock_guard lock(state_->mu);
    if (state_->claimed) return false;
    kind = state_->reply.kind;
  }
  return complete(failure_reply(kind, reason));
}

std::vector<PendingReply> Transport::submit_batch(std::vector<Envelope> envs) {
  std::vector<PendingReply> out;
  out.reserve(envs.size());
  for (auto& env : envs) out.push_back(submit(std::move(env)));
  return out;
}

}  // namespace dosas::rpc
