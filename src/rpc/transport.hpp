// transport.hpp — the async message-transport abstraction between the ASC
// and the Active Storage Servers.
//
// The paper's architecture (Fig. 3) deploys the ASC, the Contention
// Estimator, and the Active I/O Runtime as separate components behind a
// real message boundary; this interface is that boundary. A Transport
// accepts Envelopes and completes each one exactly once through a
// PendingReply — a small future/callback hybrid with cancellation — so the
// client can pipeline striped fan-outs (N concurrent submissions) instead
// of burning one blocked thread per in-flight request.
//
// Cross-cutting concerns (retry, circuit breaking, fault injection,
// network byte charging, tracing/latency metrics) are Transport decorators
// ("interceptors", interceptors.hpp) stacked above the in-process backend
// (inprocess.hpp). A future socket or shared-memory backend replaces only
// the innermost layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rpc/envelope.hpp"

namespace dosas::rpc {

/// Aggregated counters across a transport chain; each layer adds its own
/// contribution in collect_stats(). Surfaced by `dosas_ctl runtime`.
struct TransportStats {
  std::uint64_t submitted = 0;      ///< envelopes entering the backend
  std::uint64_t completed = 0;      ///< replies delivered (any outcome)
  std::uint64_t cancelled = 0;      ///< caller-cancelled before completion
  std::uint64_t timed_out = 0;      ///< deadline watchdog expiries
  std::uint64_t batched = 0;        ///< envelopes that rode a batch submission
  std::uint64_t coalesced = 0;      ///< active requests merged onto an in-flight twin
  std::uint64_t retries = 0;        ///< attempts re-sent by the retry interceptor
  std::uint64_t retries_exhausted = 0;  ///< sequences that spent the whole budget
  Seconds backoff_total = 0;        ///< accrued (virtual or slept) retry backoff
  std::uint64_t net_faults_injected = 0;  ///< RPCs lost by the fault interceptor
  std::uint64_t breaker_fast_fails = 0;   ///< submissions skipped: circuit open
  Bytes bytes_charged = 0;          ///< payload bytes charged to the link model
  std::size_t inflight = 0;         ///< currently outstanding RPCs
  std::size_t inflight_hwm = 0;     ///< in-flight high-water mark
  double active_latency_p50_us = 0.0;  ///< per-active-RPC latency (submit->reply)
  double active_latency_p99_us = 0.0;
};

/// Per-target-node active-RPC latency summary — the straggler signal the
/// client's hedging policy and leg ordering feed on. Only genuine
/// completions contribute; cancelled/timed-out replies are excluded (their
/// time-to-cancel would understate a straggler's true latency).
struct NodeLatency {
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t samples = 0;
};

/// Completion handle for one submitted envelope: a future (wait) and a
/// callback hook (on_complete) over one shared completion slot, plus
/// best-effort cancellation that propagates back into the transport.
///
/// Exactly one completion wins (transport reply, deadline expiry, or
/// cancel); later ones are dropped. Callbacks run on the completing
/// thread — a server worker, the deadline watchdog, or the submitting
/// thread when the transport completes synchronously (rejection, cache
/// hit, local read) — and must not block on this same reply.
///
/// Single-consumer contract: the reply may be consumed (moved from) once,
/// by wait() or by the final registered callback; earlier callbacks in the
/// chain only observe it.
class PendingReply {
 public:
  using Callback = std::function<void(Reply&)>;
  /// Upstream cancel hook: stop the server-side work if possible. Returns
  /// true when the work was withdrawn before completion.
  using Canceller = std::function<bool(const Status&)>;

  PendingReply() = default;  ///< empty handle; valid() is false

  /// A fresh, incomplete reply slot for `kind`.
  static PendingReply make(OpKind kind);

  bool valid() const { return state_ != nullptr; }
  bool ready() const;

  /// Block until completed and take the reply. Single consumer.
  Reply wait();

  /// Block until completed or clock time reaches `deadline` (absolute
  /// seconds on the injected clock). Returns true when the reply is ready;
  /// false when the deadline expired first. Does NOT consume the reply —
  /// follow up with wait(), or cancel() to withdraw it. The hedging
  /// primitive: "give the slow leg this much longer, then act".
  bool wait_until_ready(Seconds deadline);

  /// Register `cb`; fires immediately (on this thread) if already
  /// complete. Multiple callbacks fire in registration order.
  void on_complete(Callback cb);

  /// Withdraw the request: invokes the transport's canceller (which stops
  /// queued/running server work when it can) and completes this reply with
  /// a typed failure carrying `reason`. Returns false if the RPC had
  /// already completed (the real reply stands).
  bool cancel(const Status& reason);

  // ---- transport-side API ----

  /// Complete with `r`; first completion wins. Returns false (and drops
  /// `r`) when already completed.
  bool complete(Reply r);

  /// Install the upstream cancel hook (transport internals only).
  void set_canceller(Canceller c);

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// The transport interface. submit() never blocks on the request's
/// completion; the returned PendingReply completes exactly once.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual PendingReply submit(Envelope env) = 0;

  /// Submit a group of envelopes together. Backends that support it give
  /// each storage node ONE scheduling decision over its sub-group (the
  /// collective-admission path); the default degrades to per-envelope
  /// submit. Replies align positionally with `envs`.
  virtual std::vector<PendingReply> submit_batch(std::vector<Envelope> envs);

  /// Add this layer's counters to `out` and forward down the chain.
  virtual void collect_stats(TransportStats& out) const { (void)out; }

  /// Latency summary for one target node (zeros when the backend keeps no
  /// per-node statistics or has no samples for `target` yet). Decorators
  /// forward to the backend.
  virtual NodeLatency node_latency(std::uint32_t target) const {
    (void)target;
    return {};
  }
};

/// Convenience: chain-wide stats of the transport rooted at `head`.
inline TransportStats stats_of(const Transport& head) {
  TransportStats s;
  head.collect_stats(s);
  return s;
}

}  // namespace dosas::rpc
