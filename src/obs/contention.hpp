// contention.hpp — explicit publication of data-plane contention stats.
//
// Ring (src/common/ring.hpp) and BufferArena (src/common/arena.hpp)
// expose their contention counters only as snapshot structs: CAS retry
// and lock fast/contended counts are schedule-dependent, so letting them
// flow into the metrics registry automatically would break the DST
// fingerprint suites, which compare the registry's full text output
// bit-for-bit. Callers that *want* them in the registry — benches, ad
// hoc diagnostics — publish a snapshot explicitly through these helpers.
// Snapshots are published as gauges (set-to-current-value) so repeated
// publication is idempotent rather than double-counting.
#pragma once

#include <string>

#include "common/arena.hpp"
#include "common/ring.hpp"
#include "obs/metrics.hpp"

namespace dosas::obs {

/// Publish a ring stats snapshot under `<prefix>.…` gauges, e.g.
/// `ring.cas_retries.push`. No-op when metrics are disabled.
inline void publish_ring_stats(const RingStats& s,
                               const std::string& prefix = "ring") {
  if (!metrics_enabled()) return;
  gauge_set(prefix + ".cas_retries.push",
            static_cast<double>(s.push_cas_retries));
  gauge_set(prefix + ".cas_retries.pop",
            static_cast<double>(s.pop_cas_retries));
  gauge_set(prefix + ".push_attempts", static_cast<double>(s.push_attempts));
  gauge_set(prefix + ".pop_attempts", static_cast<double>(s.pop_attempts));
  gauge_set(prefix + ".lock_fast", static_cast<double>(s.lock_fast));
  gauge_set(prefix + ".lock_contended",
            static_cast<double>(s.lock_contended));
  gauge_set(prefix + ".producer_parks",
            static_cast<double>(s.producer_parks));
  gauge_set(prefix + ".consumer_parks",
            static_cast<double>(s.consumer_parks));
}

/// Publish an arena stats snapshot under `<prefix>.…` gauges, e.g.
/// `arena.slabs_recycled`. No-op when metrics are disabled.
inline void publish_arena_stats(const BufferArena::Stats& s,
                                const std::string& prefix = "arena") {
  if (!metrics_enabled()) return;
  gauge_set(prefix + ".slabs_created", static_cast<double>(s.slabs_created));
  gauge_set(prefix + ".slabs_recycled",
            static_cast<double>(s.slabs_recycled));
  gauge_set(prefix + ".slabs_returned",
            static_cast<double>(s.slabs_returned));
  gauge_set(prefix + ".slabs_in_use", static_cast<double>(s.slabs_in_use));
  gauge_set(prefix + ".slabs_free", static_cast<double>(s.slabs_free));
  gauge_set(prefix + ".bytes_in_use", static_cast<double>(s.bytes_in_use));
  gauge_set(prefix + ".lock_fast", static_cast<double>(s.lock_fast));
  gauge_set(prefix + ".lock_contended",
            static_cast<double>(s.lock_contended));
}

/// Publish the process-wide owning-copy ledger: the `data.bytes_copied`
/// total plus one `data.bytes_copied.<site>` gauge per charge site
/// (to_vector, read_gather, waiter_fanout, kernel_stage, other), so a
/// regression names the layer that reintroduced a copy. The ledger itself
/// always counts; this only mirrors it into the registry when metrics
/// are on.
inline void publish_bytes_copied() {
  if (!metrics_enabled()) return;
  gauge_set("data.bytes_copied", static_cast<double>(data_bytes_copied()));
  for (std::size_t i = 0; i < static_cast<std::size_t>(CopySite::kCount); ++i) {
    const auto site = static_cast<CopySite>(i);
    gauge_set(std::string("data.bytes_copied.") + copy_site_name(site),
              static_cast<double>(data_bytes_copied(site)));
  }
}

}  // namespace dosas::obs
