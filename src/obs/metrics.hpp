// metrics.hpp — process-wide metrics registry: named counters, gauges, and
// fixed-bucket histograms, thread-safe and near-zero-cost while disabled.
//
// The paper's whole argument rests on *seeing* contention (Figs. 2/4/5: AS
// collapses past ~4 concurrent active I/Os per node), and the Contention
// Estimator's demote/offload decisions are only as good as the utilization
// signals feeding them. This registry is the runtime feedback surface: the
// storage server, CE, optimizer, client, and simulator publish queue
// depths, demotion/interrupt counts, per-kernel throughput, solver
// latencies, and link utilization here (docs/OBSERVABILITY.md catalogues
// every name).
//
// Cost discipline: the registry is DISABLED by default. Instrumented hot
// paths gate on `obs::metrics_enabled()` (one relaxed atomic load) before
// building names or reading clocks, so tier-1 timings are unaffected.
// Histograms are backed by the RunningStats / P2Quantile accumulators of
// src/common/stats.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"

namespace dosas::obs {

/// Monotonic event counter. Thread-safe; relaxed ordering (metrics never
/// synchronize program state).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins instantaneous measurement (queue depth, utilization).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with streaming summary statistics. Buckets use
/// Prometheus-style "le" semantics: a sample x lands in the first bucket i
/// with x <= bound(i); samples above the last bound land in the implicit
/// overflow bucket. Bucket counts are lock-free; the mean/min/max and
/// p50/p90/p99 accumulators take a short mutex.
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper bounds; empty selects the
  /// registry-wide default (powers of 4 from 1e-3, wide enough for µs
  /// latencies, MiB/s rates, and 0..1 utilizations alike).
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double x);
  /// Observe with an exemplar: remembers the trace id of the largest sample
  /// seen so far, so a p99 outlier in a latency histogram is one lookup away
  /// from its causal trace (docs/OBSERVABILITY.md "Exemplars").
  void observe(double x, std::uint64_t exemplar_trace_id);

  std::size_t bucket_count() const { return bounds_.size() + 1; }  ///< incl. overflow
  double bound(std::size_t i) const { return bounds_[i]; }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  struct Summary {
    std::size_t count = 0;
    double mean = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
    std::uint64_t exemplar_trace_id = 0;  ///< trace of the max sample (0 = none)
  };
  Summary summary() const;

  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  mutable std::mutex mu_;
  RunningStats stats_;
  P2Quantile p50_{0.5}, p90_{0.9}, p99_{0.99};
  std::uint64_t exemplar_trace_id_ = 0;
  double exemplar_value_ = 0.0;
};

/// Named metric store. Handles returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime (metrics are never deallocated
/// except by clear(), which callers holding handles must not race with).
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented subsystem publishes to.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-create. The first histogram() call for a name fixes its
  /// bucket bounds; later calls ignore `bounds`.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  bool contains(const std::string& name) const;
  std::size_t size() const;

  /// Names of every registered histogram, sorted (report generators use
  /// this to build per-stage latency tables without knowing the names).
  std::vector<std::string> histogram_names() const;

  /// Human-readable snapshot: one metric per line, globally sorted by name
  /// regardless of kind, so snapshots diff cleanly across runs.
  std::string to_text() const;
  /// JSON snapshot: {"counters":{..},"gauges":{..},"histograms":{..}}.
  std::string to_json() const;

  /// Drop every metric. Invalidates outstanding handles — tests only.
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ---- free helpers: the form instrumented call sites use ----
//
// All of these are complete no-ops (no lookup, no allocation) while the
// global registry is disabled. Call sites doing more than one emission, or
// computing values to emit, should gate the whole block on
// `obs::metrics_enabled()`.

inline bool metrics_enabled() { return MetricsRegistry::global().enabled(); }

void count(const std::string& name, std::uint64_t n = 1);
void gauge_set(const std::string& name, double v);
void observe(const std::string& name, double v);
/// Histogram observe carrying an exemplar trace id (0 = none).
void observe(const std::string& name, double v, std::uint64_t exemplar_trace_id);

/// Wall-clock microseconds on the steady clock (for enabled-path timing).
double now_us();

/// Read DOSAS_METRICS / DOSAS_TRACE_OUT from the environment, enable the
/// corresponding collectors, and register an atexit dump (metrics text
/// snapshot to stdout, Chrome trace JSON to the DOSAS_TRACE_OUT path).
/// Idempotent; used by bench_common.hpp so every bench can emit a trace.
void init_from_env();

}  // namespace dosas::obs
