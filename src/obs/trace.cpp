#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>
#include <thread>

#include "common/clock.hpp"

namespace dosas::obs {

namespace {

/// Small dense thread ids for Chrome's tid field (hash-of-thread-id would
/// scatter lanes unreadably).
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : epoch_(clock().now()) {}

double Tracer::now_us() const { return (clock().now() - epoch_) * 1e6; }

void Tracer::push(TraceEvent e) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::complete(std::string name, std::string cat, double ts_us, double dur_us) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  push(std::move(e));
}

void Tracer::instant(std::string name, std::string cat) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  push(std::move(e));
}

void Tracer::counter(std::string name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.ph = 'C';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.value = value;
  push(std::move(e));
}

void Tracer::counter_at(std::string name, double value, double ts_us, std::uint32_t pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.ph = 'C';
  e.ts_us = ts_us;
  e.pid = pid;
  e.value = value;
  push(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Process-name metadata so the two timelines are labelled in the viewer.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWallPid
      << ",\"args\":{\"name\":\"dosas runtime (wall clock)\"}},";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimPid
      << ",\"args\":{\"name\":\"dosas sim (virtual time)\"}}";
  for (const auto& e : events_) {
    out << ",{\"name\":";
    append_json_string(out, e.name);
    if (!e.cat.empty()) {
      out << ",\"cat\":";
      append_json_string(out, e.cat);
    }
    out << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us << ",\"pid\":" << e.pid
        << ",\"tid\":" << e.tid;
    if (e.ph == 'X') out << ",\"dur\":" << e.dur_us;
    if (e.ph == 'i') out << ",\"s\":\"t\"";  // thread-scoped instant
    if (e.ph == 'C') out << ",\"args\":{\"value\":" << e.value << '}';
    out << '}';
  }
  out << "]}";
  return out.str();
}

Status Tracer::write(const std::string& path) const {
  const std::string json = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return error(ErrorCode::kInternal, "cannot write trace file " + path);
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    return error(ErrorCode::kInternal, "short write to trace file " + path);
  }
  return Status::ok();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  // Re-epoch on the *current* clock so a test that installs a
  // VirtualClock and clears the tracer gets timestamps from virtual zero.
  epoch_ = clock().now();
}

ScopedTrace::ScopedTrace(std::string name, std::string cat) {
  auto& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  name_ = std::move(name);
  cat_ = std::move(cat);
  start_us_ = tracer.now_us();
}

ScopedTrace::~ScopedTrace() {
  if (!active_) return;
  auto& tracer = Tracer::global();
  tracer.complete(std::move(name_), std::move(cat_), start_us_,
                  tracer.now_us() - start_us_);
}

}  // namespace dosas::obs
