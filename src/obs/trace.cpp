#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>
#include <thread>

#include "common/clock.hpp"

namespace dosas::obs {

namespace {

/// Small dense thread ids for Chrome's tid field (hash-of-thread-id would
/// scatter lanes unreadably).
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// splitmix64 finalizer — cheap, well-mixed 64-bit hash step.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

TraceContext TraceContext::child(const std::string& salt) const {
  TraceContext c;
  c.trace_id = trace_id;
  c.parent_span_id = span_id;
  c.span_id = mix64(span_id ^ fnv1a(salt));
  if (c.span_id == 0) c.span_id = 1;  // keep 0 reserved for "no context"
  return c;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : epoch_(clock().now()) {}

TraceContext Tracer::new_root() {
  TraceContext ctx;
  ctx.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = mix64(ctx.trace_id);
  if (ctx.span_id == 0) ctx.span_id = 1;
  ctx.parent_span_id = 0;
  return ctx;
}

double Tracer::now_us() const {
  return (clock().now() - epoch_.load(std::memory_order_relaxed)) * 1e6;
}

void Tracer::push(TraceEvent e) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::complete(std::string name, std::string cat, double ts_us, double dur_us) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  push(std::move(e));
}

void Tracer::complete(std::string name, std::string cat, double ts_us, double dur_us,
                      const TraceContext& ctx) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.parent_span_id = ctx.parent_span_id;
  push(std::move(e));
}

void Tracer::instant(std::string name, std::string cat) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  push(std::move(e));
}

void Tracer::instant(std::string name, std::string cat, const TraceContext& ctx) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.parent_span_id = ctx.parent_span_id;
  push(std::move(e));
}

void Tracer::flow_start(std::string name, std::string cat, std::uint64_t id,
                        const TraceContext& ctx) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 's';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  e.flow_id = id;
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.parent_span_id = ctx.parent_span_id;
  push(std::move(e));
}

void Tracer::flow_finish(std::string name, std::string cat, std::uint64_t id,
                         const TraceContext& ctx) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'f';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.tid = this_thread_tid();
  e.flow_id = id;
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.parent_span_id = ctx.parent_span_id;
  push(std::move(e));
}

void Tracer::counter(std::string name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.ph = 'C';
  e.ts_us = now_us();
  e.pid = kWallPid;
  e.value = value;
  push(std::move(e));
}

void Tracer::counter_at(std::string name, double value, double ts_us, std::uint32_t pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.ph = 'C';
  e.ts_us = ts_us;
  e.pid = pid;
  e.value = value;
  push(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Process-name metadata so the two timelines are labelled in the viewer.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWallPid
      << ",\"args\":{\"name\":\"dosas runtime (wall clock)\"}},";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimPid
      << ",\"args\":{\"name\":\"dosas sim (virtual time)\"}}";
  for (const auto& e : events_) {
    out << ",{\"name\":";
    append_json_string(out, e.name);
    if (!e.cat.empty()) {
      out << ",\"cat\":";
      append_json_string(out, e.cat);
    }
    out << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us << ",\"pid\":" << e.pid
        << ",\"tid\":" << e.tid;
    if (e.ph == 'X') out << ",\"dur\":" << e.dur_us;
    if (e.ph == 'i') out << ",\"s\":\"t\"";  // thread-scoped instant
    if (e.ph == 's' || e.ph == 'f') out << ",\"id\":" << e.flow_id;
    if (e.ph == 'f') out << ",\"bp\":\"e\"";  // bind to enclosing slice
    if (e.ph == 'C') {
      out << ",\"args\":{\"value\":" << e.value << '}';
    } else if (e.trace_id != 0) {
      out << ",\"args\":{\"trace_id\":" << e.trace_id << ",\"span_id\":" << e.span_id
          << ",\"parent_span_id\":" << e.parent_span_id << '}';
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

Status Tracer::write(const std::string& path) const {
  const std::string json = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return error(ErrorCode::kInternal, "cannot write trace file " + path);
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    return error(ErrorCode::kInternal, "short write to trace file " + path);
  }
  return Status::ok();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  // Re-epoch on the *current* clock so a test that installs a
  // VirtualClock and clears the tracer gets timestamps from virtual zero.
  epoch_.store(clock().now(), std::memory_order_relaxed);
  // Reset root-id allocation too: seeded DST runs must produce identical
  // trace/span ids, and ids join the canonical fingerprints.
  next_trace_id_.store(1, std::memory_order_relaxed);
}

ScopedTrace::ScopedTrace(std::string name, std::string cat) {
  auto& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  name_ = std::move(name);
  cat_ = std::move(cat);
  start_us_ = tracer.now_us();
}

ScopedTrace::ScopedTrace(std::string name, std::string cat, const TraceContext& ctx) {
  auto& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  name_ = std::move(name);
  cat_ = std::move(cat);
  start_us_ = tracer.now_us();
  ctx_ = ctx;
}

ScopedTrace::~ScopedTrace() {
  if (!active_) return;
  auto& tracer = Tracer::global();
  if (ctx_.valid()) {
    tracer.complete(std::move(name_), std::move(cat_), start_us_,
                    tracer.now_us() - start_us_, ctx_);
  } else {
    tracer.complete(std::move(name_), std::move(cat_), start_us_,
                    tracer.now_us() - start_us_);
  }
}

}  // namespace dosas::obs
