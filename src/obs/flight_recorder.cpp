#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/clock.hpp"

namespace dosas::obs {

namespace {

/// Total dumps per process before the recorder goes quiet. A cascade of
/// deadline misses would otherwise write the same history hundreds of
/// times; the first few are the ones with signal.
constexpr std::uint64_t kMaxDumps = 8;

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kStateTransition: return "state";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kBreakerTrip: return "breaker";
    case FlightEventKind::kDemotion: return "demotion";
    case FlightEventKind::kInterrupt: return "interrupt";
    case FlightEventKind::kFaultInjected: return "fault";
    case FlightEventKind::kDeadlineMiss: return "deadline-miss";
    case FlightEventKind::kCancel: return "cancel";
    case FlightEventKind::kResume: return "resume";
    case FlightEventKind::kCoalesce: return "coalesce";
    case FlightEventKind::kHedge: return "hedge";
  }
  return "?";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::FlightRecorder() : slots_(new Slot[kSlots]) {}

FlightRecorder::~FlightRecorder() = default;

void FlightRecorder::record(FlightEventKind kind, std::uint64_t trace_id,
                            std::uint32_t node, std::uint64_t detail,
                            const char* note) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % kSlots];
  // Seqlock publish: odd = write in progress. A reader seeing mismatched or
  // odd sequence numbers drops the slot instead of returning torn data.
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed) | 1;
  slot.seq.store(seq, std::memory_order_release);
  FlightEvent& e = slot.event;
  e.ts = clock().now();
  e.trace_id = trace_id;
  e.detail = detail;
  e.node = node;
  e.kind = kind;
  if (note != nullptr) {
    std::strncpy(e.note, note, sizeof(e.note) - 1);
    e.note[sizeof(e.note) - 1] = '\0';
  } else {
    e.note[0] = '\0';
  }
  slot.seq.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > kSlots ? end - kSlots : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i % kSlots];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before & 1) continue;  // mid-write
    FlightEvent copy = slot.event;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while copying
    out.push_back(copy);
  }
  return out;
}

std::string FlightRecorder::dump_text(std::uint64_t only_trace_id, std::size_t tail) const {
  auto events = snapshot();
  if (only_trace_id != 0) {
    std::vector<FlightEvent> filtered;
    for (const auto& e : events) {
      if (e.trace_id == only_trace_id) filtered.push_back(e);
    }
    events.swap(filtered);
  }
  std::size_t begin = 0;
  if (tail > 0 && events.size() > tail) begin = events.size() - tail;
  std::ostringstream out;
  for (std::size_t i = begin; i < events.size(); ++i) {
    const auto& e = events[i];
    char line[160];
    std::snprintf(line, sizeof line,
                  "  t=%.6f %-13s node=%u trace=%llu detail=%llu %s\n", e.ts,
                  flight_event_kind_name(e.kind), e.node,
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.detail), e.note);
    out << line;
  }
  if (events.empty()) out << "  (no recorded events)\n";
  return out.str();
}

void FlightRecorder::trigger_dump(const std::string& reason, std::uint64_t trace_id) {
  const std::uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed);
  if (n >= kMaxDumps) return;
  std::ostringstream out;
  out << "[flight-recorder] dump #" << (n + 1) << ": " << reason;
  if (trace_id != 0) out << " (trace " << trace_id << ")";
  out << "\n";
  if (trace_id != 0) {
    out << " events for this trace:\n" << dump_text(trace_id);
  }
  out << " recent history (newest 64 of a " << kSlots << "-slot ring):\n"
      << dump_text(0, 64);
  std::function<void(const std::string&)> sink;
  {
    std::lock_guard lock(sink_mu_);
    sink = sink_;
  }
  if (sink) {
    sink(out.str());
  } else {
    std::fputs(out.str().c_str(), stderr);
  }
}

void FlightRecorder::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard lock(sink_mu_);
  sink_ = std::move(sink);
}

void FlightRecorder::clear() {
  // Not concurrency-safe against in-flight writers; tests call this from a
  // quiesced state, matching MetricsRegistry::clear()'s contract.
  for (std::size_t i = 0; i < kSlots; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
    slots_[i].event = FlightEvent{};
  }
  next_.store(0, std::memory_order_relaxed);
  dumps_.store(0, std::memory_order_relaxed);
}

}  // namespace dosas::obs
