#include "obs/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/clock.hpp"
#include "obs/trace.hpp"

namespace dosas::obs {

// ---------------------------------------------------------------- Histogram

std::vector<double> Histogram::default_bounds() {
  // Powers of 4 from 1e-3 to ~1.1e9: 21 buckets spanning sub-millisecond
  // latencies, MiB/s rates, byte counts, and 0..1 utilizations. Summary
  // statistics (not buckets) carry the precision; buckets give shape.
  std::vector<double> b;
  double v = 1e-3;
  for (int i = 0; i < 21; ++i) {
    b.push_back(v);
    v *= 4.0;
  }
  return b;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_bounds() : std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double x) {
  // Lower-bound search: first bucket whose upper bound admits x.
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  stats_.add(x);
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
}

void Histogram::observe(double x, std::uint64_t exemplar_trace_id) {
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  stats_.add(x);
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
  // Keep the trace of the worst sample: that is the one a p99 investigation
  // wants to open first.
  if (exemplar_trace_id != 0 && (exemplar_trace_id_ == 0 || x >= exemplar_value_)) {
    exemplar_trace_id_ = exemplar_trace_id;
    exemplar_value_ = x;
  }
}

Histogram::Summary Histogram::summary() const {
  std::lock_guard lock(mu_);
  Summary s;
  s.count = stats_.count();
  if (s.count == 0) return s;
  s.mean = stats_.mean();
  s.min = stats_.min();
  s.max = stats_.max();
  s.p50 = p50_.value();
  s.p90 = p90_.value();
  s.p99 = p99_.value();
  s.exemplar_trace_id = exemplar_trace_id_;
  return s;
}

// --------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

bool MetricsRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         histograms_.count(name) != 0;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mu_);
  // One globally name-sorted listing (not grouped by kind): a metric keeps
  // its line position when its neighbours change kind, so snapshots diff
  // cleanly and the DST bit-identical fingerprints stay stable.
  std::map<std::string, std::string> lines;
  for (const auto& [name, c] : counters_) {
    std::ostringstream line;
    line << "counter  " << name << " = " << c->value() << "\n";
    lines[name] = line.str();
  }
  for (const auto& [name, g] : gauges_) {
    std::ostringstream line;
    line << "gauge    " << name << " = " << g->value() << "\n";
    lines[name] = line.str();
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->summary();
    std::ostringstream line;
    line << "hist     " << name << "  count=" << s.count << " mean=" << s.mean
         << " min=" << s.min << " max=" << s.max << " p50=" << s.p50 << " p90=" << s.p90
         << " p99=" << s.p99;
    if (s.exemplar_trace_id != 0) line << " exemplar=trace:" << s.exemplar_trace_id;
    line << "\n";
    lines[name] = line.str();
  }
  std::ostringstream out;
  for (const auto& [name, line] : lines) out << line;
  return out.str();
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ':' << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ':' << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    const auto s = h->summary();
    out << ":{\"count\":" << s.count << ",\"mean\":" << s.mean << ",\"min\":" << s.min
        << ",\"max\":" << s.max << ",\"p50\":" << s.p50 << ",\"p90\":" << s.p90
        << ",\"p99\":" << s.p99;
    if (s.exemplar_trace_id != 0) out << ",\"exemplar_trace_id\":" << s.exemplar_trace_id;
    out << ",\"buckets\":[";
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      if (i != 0) out << ',';
      out << "{\"le\":";
      if (i < h->bucket_count() - 1) {
        out << h->bound(i);
      } else {
        out << "\"+inf\"";
      }
      out << ",\"count\":" << h->bucket(i) << '}';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// ------------------------------------------------------------ free helpers

void count(const std::string& name, std::uint64_t n) {
  auto& r = MetricsRegistry::global();
  if (!r.enabled()) return;
  r.counter(name).inc(n);
}

void gauge_set(const std::string& name, double v) {
  auto& r = MetricsRegistry::global();
  if (!r.enabled()) return;
  r.gauge(name).set(v);
}

void observe(const std::string& name, double v) {
  auto& r = MetricsRegistry::global();
  if (!r.enabled()) return;
  r.histogram(name).observe(v);
}

void observe(const std::string& name, double v, std::uint64_t exemplar_trace_id) {
  auto& r = MetricsRegistry::global();
  if (!r.enabled()) return;
  r.histogram(name).observe(v, exemplar_trace_id);
}

double now_us() { return clock().now() * 1e6; }

namespace {

void dump_at_exit() {
  const char* trace_out = std::getenv("DOSAS_TRACE_OUT");
  if (trace_out != nullptr && Tracer::global().event_count() > 0) {
    Status st = Tracer::global().write(trace_out);
    if (st.is_ok()) {
      std::fprintf(stderr, "[obs] wrote %zu trace event(s) to %s\n",
                   Tracer::global().event_count(), trace_out);
    } else {
      std::fprintf(stderr, "[obs] %s\n", st.to_string().c_str());
    }
  }
  if (std::getenv("DOSAS_METRICS") != nullptr) {
    const std::string text = MetricsRegistry::global().to_text();
    std::fputs("\n-- metrics snapshot --\n", stdout);
    std::fputs(text.c_str(), stdout);
  }
}

}  // namespace

void init_from_env() {
  static bool initialized = false;
  if (initialized) return;
  initialized = true;
  bool dump = false;
  if (std::getenv("DOSAS_METRICS") != nullptr) {
    MetricsRegistry::global().set_enabled(true);
    dump = true;
  }
  if (std::getenv("DOSAS_TRACE_OUT") != nullptr) {
    Tracer::global().set_enabled(true);
    dump = true;
  }
  if (dump) std::atexit(dump_at_exit);
}

}  // namespace dosas::obs
