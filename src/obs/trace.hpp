// trace.hpp — lightweight scoped-event tracer with Chrome trace_event JSON
// export (loadable in chrome://tracing and https://ui.perfetto.dev).
//
// Two timelines share one trace file, separated by pid:
//   * pid 1 ("dosas runtime"): wall-clock events from the real runtime —
//     kernel executions, CE policy evaluations, client-side completions;
//   * pid 2 ("dosas sim, virtual time"): virtual-time counter samples from
//     the discrete-event models (per-link utilization), with virtual
//     seconds rendered as microseconds.
//
// Like the metrics registry, the tracer is disabled by default and every
// emission gates on one relaxed atomic load; ScopedTrace is a no-op when
// tracing is off, so instrumented hot paths cost nothing in tier-1 runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace dosas::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';        ///< 'X' complete, 'i' instant, 'C' counter
  double ts_us = 0.0;   ///< µs since the tracer epoch (or virtual µs)
  double dur_us = 0.0;  ///< 'X' only
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  double value = 0.0;  ///< 'C' only: the counter sample
};

class Tracer {
 public:
  static constexpr std::uint32_t kWallPid = 1;  ///< wall-clock runtime events
  static constexpr std::uint32_t kSimPid = 2;   ///< virtual-time simulator events

  /// The process-wide tracer every instrumented subsystem emits to.
  static Tracer& global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer's epoch, on the injected clock
  /// (common/clock.hpp) — virtual µs under a VirtualClock. clear() resets
  /// the epoch to the current clock's now.
  double now_us() const;

  /// Record a complete ('X') event with explicit timing.
  void complete(std::string name, std::string cat, double ts_us, double dur_us);
  /// Record an instant ('i') event at the current wall time.
  void instant(std::string name, std::string cat);
  /// Record a counter ('C') sample at the current wall time.
  void counter(std::string name, double value);
  /// Record a counter sample at an explicit timestamp — the virtual-time
  /// hook the simulator uses (pass sim-now seconds × 1e6 and kSimPid).
  void counter_at(std::string name, double value, double ts_us,
                  std::uint32_t pid = kSimPid);

  std::size_t event_count() const;

  /// Copy of the recorded events (determinism suites compare canonical
  /// projections of this across seeded runs).
  std::vector<TraceEvent> snapshot() const;

  /// Full Chrome trace_event JSON object ({"traceEvents":[...], ...}).
  std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`.
  Status write(const std::string& path) const;

  void clear();

 private:
  void push(TraceEvent e);

  std::atomic<bool> enabled_{false};
  Seconds epoch_ = 0.0;  ///< clock().now() at construction / last clear()
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

inline bool tracing_enabled() { return Tracer::global().enabled(); }

/// RAII scope producing one complete event on the global tracer; measures
/// nothing and stores nothing while tracing is disabled.
class ScopedTrace {
 public:
  ScopedTrace(std::string name, std::string cat);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  std::string cat_;
  double start_us_ = 0.0;
};

}  // namespace dosas::obs
