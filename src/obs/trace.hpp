// trace.hpp — lightweight scoped-event tracer with Chrome trace_event JSON
// export (loadable in chrome://tracing and https://ui.perfetto.dev).
//
// Two timelines share one trace file, separated by pid:
//   * pid 1 ("dosas runtime"): wall-clock events from the real runtime —
//     kernel executions, CE policy evaluations, client-side completions;
//   * pid 2 ("dosas sim, virtual time"): virtual-time counter samples from
//     the discrete-event models (per-link utilization), with virtual
//     seconds rendered as microseconds.
//
// Like the metrics registry, the tracer is disabled by default and every
// emission gates on one relaxed atomic load; ScopedTrace is a no-op when
// tracing is off, so instrumented hot paths cost nothing in tier-1 runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace dosas::obs {

/// Causal identity of one request, carried through rpc::Envelope and the
/// interceptor chain so spans emitted on different threads (client issue,
/// transport, server queue, kernel) join into a single tree.
///
/// Span ids are *derived*, never allocated: child(salt) hashes the parent
/// span id with a site-specific salt ("queue", "kernel", "retry1", ...), so
/// the ids a request produces depend only on its root trace id and the path
/// it took — not on which worker thread got there first. That keeps the ids
/// safe to include in DST canonical-trace fingerprints.
struct TraceContext {
  std::uint64_t trace_id = 0;        ///< one per client-visible request leg
  std::uint64_t span_id = 0;         ///< this span
  std::uint64_t parent_span_id = 0;  ///< 0 = root

  bool valid() const { return trace_id != 0; }

  /// Deterministically derive a child context at a named site.
  TraceContext child(const std::string& salt) const;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';        ///< 'X' complete, 'i' instant, 'C' counter, 's'/'f' flow
  double ts_us = 0.0;   ///< µs since the tracer epoch (or virtual µs)
  double dur_us = 0.0;  ///< 'X' only
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  double value = 0.0;  ///< 'C' only: the counter sample
  std::uint64_t flow_id = 0;         ///< 's'/'f' only: binds the flow arrow
  std::uint64_t trace_id = 0;        ///< causal context (0 = none)
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

class Tracer {
 public:
  static constexpr std::uint32_t kWallPid = 1;  ///< wall-clock runtime events
  static constexpr std::uint32_t kSimPid = 2;   ///< virtual-time simulator events

  /// The process-wide tracer every instrumented subsystem emits to.
  static Tracer& global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer's epoch, on the injected clock
  /// (common/clock.hpp) — virtual µs under a VirtualClock. clear() resets
  /// the epoch to the current clock's now.
  double now_us() const;

  /// Allocate a fresh root context (new trace id, root span id derived from
  /// it). Ids come from a monotonically increasing counter that clear()
  /// resets, so seeded runs allocate identical ids — callers must only
  /// allocate roots from deterministically ordered sites (the client issue
  /// path), never from racing worker threads.
  TraceContext new_root();

  /// Record a complete ('X') event with explicit timing.
  void complete(std::string name, std::string cat, double ts_us, double dur_us);
  /// Context-carrying variant: the span's ids are emitted as trace args and
  /// joined into the causal tree by tests/viewers.
  void complete(std::string name, std::string cat, double ts_us, double dur_us,
                const TraceContext& ctx);
  /// Record an instant ('i') event at the current wall time.
  void instant(std::string name, std::string cat);
  /// Context-carrying instant.
  void instant(std::string name, std::string cat, const TraceContext& ctx);
  /// Flow events ('s' start / 'f' finish, bound by `id`) draw the arrow that
  /// links a request's spans across threads in the Chrome viewer. Emit the
  /// start on the producing thread and the finish on the consuming one with
  /// the same id (we use the envelope's span id).
  void flow_start(std::string name, std::string cat, std::uint64_t id,
                  const TraceContext& ctx);
  void flow_finish(std::string name, std::string cat, std::uint64_t id,
                   const TraceContext& ctx);
  /// Record a counter ('C') sample at the current wall time.
  void counter(std::string name, double value);
  /// Record a counter sample at an explicit timestamp — the virtual-time
  /// hook the simulator uses (pass sim-now seconds × 1e6 and kSimPid).
  void counter_at(std::string name, double value, double ts_us,
                  std::uint32_t pid = kSimPid);

  std::size_t event_count() const;

  /// Copy of the recorded events (determinism suites compare canonical
  /// projections of this across seeded runs).
  std::vector<TraceEvent> snapshot() const;

  /// Full Chrome trace_event JSON object ({"traceEvents":[...], ...}).
  std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`.
  Status write(const std::string& path) const;

  void clear();

 private:
  void push(TraceEvent e);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_trace_id_{1};  ///< reset by clear()
  /// clock().now() at construction / last clear(). Atomic: now_us() reads
  /// it lock-free from worker threads while clear() re-epochs it.
  std::atomic<Seconds> epoch_{0.0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

inline bool tracing_enabled() { return Tracer::global().enabled(); }

/// RAII scope producing one complete event on the global tracer; measures
/// nothing and stores nothing while tracing is disabled.
class ScopedTrace {
 public:
  ScopedTrace(std::string name, std::string cat);
  /// Context-carrying scope: the resulting complete event joins the causal
  /// tree identified by `ctx`.
  ScopedTrace(std::string name, std::string cat, const TraceContext& ctx);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  std::string cat_;
  double start_us_ = 0.0;
  TraceContext ctx_;
};

}  // namespace dosas::obs
