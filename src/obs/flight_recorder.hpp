// flight_recorder.hpp — always-on, lock-light crash-dump ring buffer.
//
// The metrics registry and tracer answer "how is the system doing" when you
// asked in advance; the flight recorder answers "what just happened" when
// you didn't. It keeps the last few thousand structured events — request
// state transitions, retries, breaker trips, demotions, fault injections —
// in a fixed-size ring of trivially-copyable slots, recording whether or
// not metrics/tracing are enabled. When something goes wrong (a deadline
// miss, an injected node crash), the failing site calls trigger_dump() and
// the recent history lands on the configured sink (stderr by default), so
// DST failures and stress-test flakes are debuggable post-hoc.
//
// Concurrency: writers claim a slot with one fetch_add and publish it with
// a per-slot sequence number (seqlock style) — no mutex on the record path.
// Readers (dump/snapshot) may observe a slot being overwritten mid-copy;
// they detect the torn read via the sequence number and drop that slot.
// Timestamps come from dosas::clock(), so recordings made under a
// VirtualClock carry virtual seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace dosas::obs {

enum class FlightEventKind : std::uint8_t {
  kStateTransition = 0,  ///< request queued / launched / completed / ...
  kRetry,                ///< transport retry attempt
  kBreakerTrip,          ///< circuit breaker opened or re-probed
  kDemotion,             ///< active request demoted to normal I/O
  kInterrupt,            ///< interrupt signalled to a running kernel
  kFaultInjected,        ///< src/fault fired one of its sites
  kDeadlineMiss,         ///< watchdog cancelled a request past its deadline
  kCancel,               ///< request cancelled
  kResume,               ///< client resumed from a checkpoint
  kCoalesce,             ///< request coalesced onto an identical in-flight one
  kHedge,                ///< straggler leg hedged with a local twin
};

const char* flight_event_kind_name(FlightEventKind kind);

/// One recorded event. Trivially copyable (fixed-size note) so slots can be
/// claimed and published without allocation.
struct FlightEvent {
  double ts = 0.0;               ///< clock().now() seconds at record time
  std::uint64_t trace_id = 0;    ///< causal trace, 0 if unknown
  std::uint64_t detail = 0;      ///< site-specific (request id, attempt, ...)
  std::uint32_t node = 0;        ///< server / node id, 0 if n/a
  FlightEventKind kind = FlightEventKind::kStateTransition;
  char note[48] = {0};           ///< short site label, truncated to fit
};
static_assert(std::is_trivially_copyable_v<FlightEvent>);

class FlightRecorder {
 public:
  static constexpr std::size_t kSlots = 4096;

  /// The process-wide recorder every instrumented subsystem records to.
  static FlightRecorder& global();

  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Record one event. Lock-free fast path (one fetch_add + one copy).
  void record(FlightEventKind kind, std::uint64_t trace_id, std::uint32_t node,
              std::uint64_t detail, const char* note);

  /// Dump the recent history to the sink (stderr unless set_sink() was
  /// called), prefixed with `reason`. When `trace_id` is nonzero the dump
  /// also counts how many of the recorded events belong to that trace.
  /// Rate-limited: at most one dump per simulated second per reason site
  /// would still flood, so we cap total dumps per process (resettable via
  /// clear()) — repeated failures point at the same history anyway.
  void trigger_dump(const std::string& reason, std::uint64_t trace_id = 0);

  /// Consistent copy of the ring in record order (oldest first). Torn slots
  /// (being overwritten concurrently) are skipped.
  std::vector<FlightEvent> snapshot() const;

  /// Human-readable rendering of snapshot(), newest last. `only_trace_id`
  /// filters to one trace; `tail` > 0 keeps only the newest N lines.
  std::string dump_text(std::uint64_t only_trace_id = 0, std::size_t tail = 0) const;

  std::uint64_t events_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  std::uint64_t dumps_triggered() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Redirect dumps (tests capture them here). nullptr restores stderr.
  void set_sink(std::function<void(const std::string&)> sink);

  /// Forget everything and reset the dump rate limiter — tests only.
  void clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< odd while being written
    FlightEvent event;
  };

  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dumps_{0};

  std::mutex sink_mu_;  ///< guards sink_ only (dump path, never record path)
  std::function<void(const std::string&)> sink_;
};

/// Free helper mirroring obs::count(): record on the global recorder.
inline void flight_record(FlightEventKind kind, std::uint64_t trace_id,
                          std::uint32_t node, std::uint64_t detail,
                          const char* note) {
  FlightRecorder::global().record(kind, trace_id, node, detail, note);
}

}  // namespace dosas::obs
