// client.hpp — the PFS client library (the pvfs2-client analogue).
//
// Implements whole-file and extent reads/writes by resolving metadata,
// mapping extents through the file's Layout, and issuing per-server object
// operations. This is the "normal I/O" path of the paper's Figure 3; the
// active-storage layers sit beside it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "pfs/file_system.hpp"

namespace dosas::pfs {

class Client {
 public:
  explicit Client(FileSystem& fs) : fs_(fs) {}

  /// Create a file with the volume's default striping.
  Result<FileMeta> create(const std::string& path) {
    return create(path, fs_.default_striping());
  }

  /// Create a file with explicit striping.
  Result<FileMeta> create(const std::string& path, StripingParams striping);

  /// Open (look up) an existing file.
  Result<FileMeta> open(const std::string& path) { return fs_.meta().lookup(path); }

  /// Write `data` at `offset`, extending the file as needed. Returns the
  /// refreshed metadata. Per-server chunks are subspans of `data` all the
  /// way to each data server's store — that terminal store is the write
  /// path's only copy.
  Result<FileMeta> write(const FileMeta& meta, Bytes offset, std::span<const std::uint8_t> data);

  /// BufferRef form: writes the ref's view without materializing a vector
  /// (BufferRef converts to a span; the striping math slices that span).
  Result<FileMeta> write(const FileMeta& meta, Bytes offset, const BufferRef& data) {
    return write(meta, offset, data.span());
  }

  /// Read up to `length` bytes at `offset`. Short reads at EOF; an offset
  /// at or past EOF returns an empty buffer. Materializes an owning
  /// vector; read_ref() is the zero-copy form.
  Result<std::vector<std::uint8_t>> read(const FileMeta& meta, Bytes offset, Bytes length) const;

  /// Zero-copy read: an extent on one strip returns the data server's
  /// arena slab ref directly; striped or sparse extents fall back to the
  /// gather path (one staging copy, recorded in the ledger) and adopt it.
  Result<BufferRef> read_ref(const FileMeta& meta, Bytes offset, Bytes length) const;

  /// Read the whole file.
  Result<std::vector<std::uint8_t>> read_all(const FileMeta& meta) const {
    return read(meta, 0, meta.size);
  }

  /// Remove a file: metadata entry plus all data-server objects.
  Status unlink(const std::string& path);

  FileSystem& file_system() { return fs_; }

  // Transient-error retry for reads issued through the active-storage
  // stack lives in the transport chain (rpc::RetryTransport), not here:
  // this client is the bare metadata + layout path.

 private:
  FileSystem& fs_;
};

/// Convenience for tests/examples: create (or overwrite) `path` holding
/// exactly `data`.
Result<FileMeta> write_file(Client& client, const std::string& path,
                            std::span<const std::uint8_t> data);

/// Convenience: fill `path` with `count` doubles produced by `gen(i)`.
template <typename Gen>
Result<FileMeta> write_doubles(Client& client, const std::string& path, std::size_t count,
                               Gen&& gen) {
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) values[i] = gen(i);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
  return write_file(client, path, std::span(bytes, count * sizeof(double)));
}

}  // namespace dosas::pfs
