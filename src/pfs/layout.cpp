#include "pfs/layout.hpp"

#include <algorithm>
#include <cassert>

namespace dosas::pfs {

Layout::Layout(StripingParams params) : params_(params) {
  assert(params_.strip_size > 0);
  assert(params_.server_count > 0);
  assert(params_.first_server < params_.server_count);
}

ServerId Layout::server_of(Bytes offset) const {
  const Bytes strip = offset / params_.strip_size;
  return params_.base_server +
         static_cast<ServerId>((strip + params_.first_server) % params_.server_count);
}

Bytes Layout::object_offset_of(Bytes offset) const {
  const Bytes strip = offset / params_.strip_size;
  const Bytes within = offset % params_.strip_size;
  // Strips land on a given server every `server_count` strips; they are
  // packed densely in that server's object.
  const Bytes local_strip = strip / params_.server_count;
  return local_strip * params_.strip_size + within;
}

std::vector<StripeSegment> Layout::map_extent(Bytes offset, Bytes length) const {
  std::vector<StripeSegment> segments;
  Bytes pos = offset;
  const Bytes end = offset + length;
  while (pos < end) {
    const Bytes strip_end = (pos / params_.strip_size + 1) * params_.strip_size;
    const Bytes seg_len = std::min(end, strip_end) - pos;
    StripeSegment seg;
    seg.server = server_of(pos);
    seg.logical_offset = pos;
    seg.object_offset = object_offset_of(pos);
    seg.length = seg_len;
    // Merge with the previous segment when contiguous on the same server
    // (happens when server_count == 1).
    if (!segments.empty() && segments.back().server == seg.server &&
        segments.back().logical_offset + segments.back().length == seg.logical_offset &&
        segments.back().object_offset + segments.back().length == seg.object_offset) {
      segments.back().length += seg_len;
    } else {
      segments.push_back(seg);
    }
    pos += seg_len;
  }
  return segments;
}

Bytes Layout::bytes_on_server(Bytes offset, Bytes length, ServerId s) const {
  Bytes total = 0;
  for (const auto& seg : map_extent(offset, length)) {
    if (seg.server == s) total += seg.length;
  }
  return total;
}

Bytes Layout::object_size(Bytes file_size, ServerId s) const {
  if (file_size == 0) return 0;
  // Object size = object offset of the last byte on this server + 1, i.e.
  // count bytes of [0, file_size) mapped to s.
  return bytes_on_server(0, file_size, s);
}

}  // namespace dosas::pfs
