// data_server.hpp — a PFS data server's object store.
//
// Each data server owns one "datafile" object per file handle (as PVFS2
// does) and serves byte-extent reads/writes against it. The store is
// in-memory; I/O counters feed the contention estimator and the metrics
// layer. Thread-safe: the real runtime hits a data server from several
// compute-node client threads at once.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "pfs/layout.hpp"

namespace dosas::pfs {

/// Opaque file identifier handed out by the metadata server.
using FileHandle = std::uint64_t;

class DataServer {
 public:
  explicit DataServer(ServerId id) : id_(id) {}

  ServerId id() const { return id_; }

  /// Fault injection (tests/failure drills): the next `count` read_object
  /// calls fail with kUnavailable, then service recovers. Models a
  /// transient data-server brownout (I/O timeouts under load).
  void fail_next_reads(std::size_t count);

  /// Reads injected-failed so far (monotonic; both fail_next_reads and the
  /// probabilistic injector count here).
  std::size_t injected_failures() const;

  /// Attach a (usually cluster-shared) probabilistic fault injector: each
  /// read_object call may fail kUnavailable per its read_fault rate. Pass
  /// nullptr to detach.
  void set_fault_injector(std::shared_ptr<fault::FaultInjector> fi);

  /// Write `data` at `offset` within the object for `fh`, growing it
  /// (zero-filled) as needed.
  Status write_object(FileHandle fh, Bytes offset, std::span<const std::uint8_t> data);

  /// Read up to `length` bytes at `offset`; reads past the object end are
  /// truncated (short read), reads entirely past it return empty.
  ///
  /// read_object_ref is the hot path: the bytes are copied ONCE out of
  /// the object store (whose vectors writes may resize) into an arena
  /// slab, and the returned BufferRef flows by reference through
  /// rpc → server → kernels → client. read_object is the legacy owning
  /// form for cold callers; it materializes a vector from the same slab
  /// (and that extra copy lands in the data-bytes-copied ledger).
  Result<BufferRef> read_object_ref(FileHandle fh, Bytes offset, Bytes length) const;
  Result<std::vector<std::uint8_t>> read_object(FileHandle fh, Bytes offset, Bytes length) const;

  /// Slab/recycle counters for this server's extent-buffer arena.
  BufferArena::Stats arena_stats() const { return arena_.stats(); }

  /// Current size of the object (0 if absent).
  Bytes object_size(FileHandle fh) const;

  /// Monotonic per-object mutation counter: bumped by every write_object
  /// and remove_object. Lets caches of derived results (the ASS's active
  /// result cache) validate entries cheaply. 0 for never-written objects.
  std::uint64_t object_version(FileHandle fh) const;

  /// Drop the object for `fh`. OK even if absent.
  Status remove_object(FileHandle fh);

  bool has_object(FileHandle fh) const;
  std::size_t object_count() const;

  /// Cumulative served bytes (monotonic; used for utilization probes).
  Bytes bytes_read() const;
  Bytes bytes_written() const;

 private:
  const ServerId id_;
  mutable std::mutex mu_;
  mutable BufferArena arena_;  // extent-buffer slabs handed out by reads
  std::unordered_map<FileHandle, std::vector<std::uint8_t>> objects_;
  mutable Bytes bytes_read_ = 0;  // served-bytes counter bumped on (const) reads
  Bytes bytes_written_ = 0;
  mutable std::size_t fail_reads_ = 0;       // remaining injected read failures
  mutable std::size_t injected_failures_ = 0;
  std::shared_ptr<fault::FaultInjector> faults_;
  std::unordered_map<FileHandle, std::uint64_t> versions_;
};

}  // namespace dosas::pfs
