#include "pfs/data_server.hpp"

#include <algorithm>
#include <cstring>

namespace dosas::pfs {

Status DataServer::write_object(FileHandle fh, Bytes offset, std::span<const std::uint8_t> data) {
  std::lock_guard lock(mu_);
  auto& obj = objects_[fh];
  const Bytes end = offset + data.size();
  if (obj.size() < end) obj.resize(end, 0);
  std::memcpy(obj.data() + offset, data.data(), data.size());
  bytes_written_ += data.size();
  ++versions_[fh];
  return Status::ok();
}

void DataServer::fail_next_reads(std::size_t count) {
  std::lock_guard lock(mu_);
  fail_reads_ = count;
}

std::size_t DataServer::injected_failures() const {
  std::lock_guard lock(mu_);
  return injected_failures_;
}

void DataServer::set_fault_injector(std::shared_ptr<fault::FaultInjector> fi) {
  std::lock_guard lock(mu_);
  faults_ = std::move(fi);
}

Result<BufferRef> DataServer::read_object_ref(FileHandle fh, Bytes offset,
                                              Bytes length) const {
  std::lock_guard lock(mu_);
  if (fail_reads_ > 0) {
    --fail_reads_;
    ++injected_failures_;
    return error(ErrorCode::kUnavailable,
                 "data server " + std::to_string(id_) + ": injected read fault");
  }
  if (faults_ != nullptr && faults_->inject_read_fault(id_)) {
    ++injected_failures_;
    return error(ErrorCode::kUnavailable,
                 "data server " + std::to_string(id_) + ": injected read fault");
  }
  auto it = objects_.find(fh);
  if (it == objects_.end()) {
    return error(ErrorCode::kNotFound, "data server " + std::to_string(id_) +
                                           ": no object for handle " + std::to_string(fh));
  }
  const auto& obj = it->second;
  if (offset >= obj.size()) return BufferRef{};
  const Bytes avail = obj.size() - offset;
  const Bytes n = std::min(length, avail);
  // The ONE copy on the extent path: out of the (resizable) object store
  // into an arena slab; everything downstream shares the slab.
  BufferRef out = arena_.fill(
      std::span<const std::uint8_t>(obj.data() + offset, n));
  bytes_read_ += n;
  return out;
}

Result<std::vector<std::uint8_t>> DataServer::read_object(FileHandle fh, Bytes offset,
                                                          Bytes length) const {
  auto ref = read_object_ref(fh, offset, length);
  if (!ref.is_ok()) return ref.status();
  return ref.value().to_vector();
}

Bytes DataServer::object_size(FileHandle fh) const {
  std::lock_guard lock(mu_);
  auto it = objects_.find(fh);
  return it == objects_.end() ? 0 : it->second.size();
}

Status DataServer::remove_object(FileHandle fh) {
  std::lock_guard lock(mu_);
  if (objects_.erase(fh) > 0) ++versions_[fh];
  return Status::ok();
}

std::uint64_t DataServer::object_version(FileHandle fh) const {
  std::lock_guard lock(mu_);
  auto it = versions_.find(fh);
  return it == versions_.end() ? 0 : it->second;
}

bool DataServer::has_object(FileHandle fh) const {
  std::lock_guard lock(mu_);
  return objects_.count(fh) != 0;
}

std::size_t DataServer::object_count() const {
  std::lock_guard lock(mu_);
  return objects_.size();
}

Bytes DataServer::bytes_read() const {
  std::lock_guard lock(mu_);
  return bytes_read_;
}

Bytes DataServer::bytes_written() const {
  std::lock_guard lock(mu_);
  return bytes_written_;
}

}  // namespace dosas::pfs
