// metadata_server.hpp — the PFS metadata server.
//
// Maps paths to file metadata (handle, size, striping distribution), hands
// out unique handles, and tracks file sizes as clients extend files — the
// same division of labour as PVFS2's MDS. Thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "pfs/data_server.hpp"
#include "pfs/layout.hpp"

namespace dosas::pfs {

/// A file's metadata record.
struct FileMeta {
  FileHandle handle = 0;
  std::string path;
  Bytes size = 0;
  StripingParams striping;
};

class MetadataServer {
 public:
  /// Create `path` with the given distribution. kAlreadyExists on clash.
  Result<FileMeta> create(const std::string& path, StripingParams striping);

  /// Look up metadata by path. kNotFound if absent.
  Result<FileMeta> lookup(const std::string& path) const;

  /// Look up metadata by handle. kNotFound if absent.
  Result<FileMeta> lookup_handle(FileHandle fh) const;

  /// Grow the recorded size to at least `size` (writes extend, never shrink;
  /// use truncate() to shrink).
  Status extend(FileHandle fh, Bytes size);

  /// Set the file size exactly.
  Status truncate(FileHandle fh, Bytes size);

  /// Remove the path. kNotFound if absent. The caller is responsible for
  /// removing data-server objects (the client's unlink path does both).
  Status remove(const std::string& path);

  /// All paths in the namespace, unordered.
  std::vector<std::string> list() const;

  std::size_t file_count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, FileMeta> by_path_;
  std::unordered_map<FileHandle, std::string> by_handle_;
  FileHandle next_handle_ = 1;
};

}  // namespace dosas::pfs
