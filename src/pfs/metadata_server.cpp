#include "pfs/metadata_server.hpp"

namespace dosas::pfs {

Result<FileMeta> MetadataServer::create(const std::string& path, StripingParams striping) {
  std::lock_guard lock(mu_);
  if (by_path_.count(path) != 0) {
    return error(ErrorCode::kAlreadyExists, "file exists: " + path);
  }
  if (striping.strip_size == 0 || striping.server_count == 0 ||
      striping.first_server >= striping.server_count) {
    return error(ErrorCode::kInvalidArgument, "bad striping params for " + path);
  }
  FileMeta meta;
  meta.handle = next_handle_++;
  meta.path = path;
  meta.size = 0;
  meta.striping = striping;
  by_path_.emplace(path, meta);
  by_handle_.emplace(meta.handle, path);
  return meta;
}

Result<FileMeta> MetadataServer::lookup(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = by_path_.find(path);
  if (it == by_path_.end()) return error(ErrorCode::kNotFound, "no such file: " + path);
  return it->second;
}

Result<FileMeta> MetadataServer::lookup_handle(FileHandle fh) const {
  std::lock_guard lock(mu_);
  auto it = by_handle_.find(fh);
  if (it == by_handle_.end()) {
    return error(ErrorCode::kNotFound, "no such handle: " + std::to_string(fh));
  }
  return by_path_.at(it->second);
}

Status MetadataServer::extend(FileHandle fh, Bytes size) {
  std::lock_guard lock(mu_);
  auto it = by_handle_.find(fh);
  if (it == by_handle_.end()) {
    return error(ErrorCode::kNotFound, "no such handle: " + std::to_string(fh));
  }
  auto& meta = by_path_.at(it->second);
  if (size > meta.size) meta.size = size;
  return Status::ok();
}

Status MetadataServer::truncate(FileHandle fh, Bytes size) {
  std::lock_guard lock(mu_);
  auto it = by_handle_.find(fh);
  if (it == by_handle_.end()) {
    return error(ErrorCode::kNotFound, "no such handle: " + std::to_string(fh));
  }
  by_path_.at(it->second).size = size;
  return Status::ok();
}

Status MetadataServer::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  auto it = by_path_.find(path);
  if (it == by_path_.end()) return error(ErrorCode::kNotFound, "no such file: " + path);
  by_handle_.erase(it->second.handle);
  by_path_.erase(it);
  return Status::ok();
}

std::vector<std::string> MetadataServer::list() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(by_path_.size());
  for (const auto& [path, meta] : by_path_) out.push_back(path);
  return out;
}

std::size_t MetadataServer::file_count() const {
  std::lock_guard lock(mu_);
  return by_path_.size();
}

}  // namespace dosas::pfs
