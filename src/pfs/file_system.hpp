// file_system.hpp — the assembled parallel file system instance.
//
// One metadata server plus N data servers, analogous to a deployed PVFS2
// volume. Storage servers of the active-storage layer each wrap one data
// server; PFS clients talk to all of them.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "pfs/data_server.hpp"
#include "pfs/layout.hpp"
#include "pfs/metadata_server.hpp"

namespace dosas::pfs {

class FileSystem {
 public:
  /// `server_count` data servers with `default_strip` striping granularity.
  explicit FileSystem(std::uint32_t server_count, Bytes default_strip = 64_KiB)
      : default_strip_(default_strip) {
    assert(server_count > 0);
    servers_.reserve(server_count);
    for (std::uint32_t i = 0; i < server_count; ++i) {
      servers_.push_back(std::make_unique<DataServer>(i));
    }
  }

  MetadataServer& meta() { return meta_; }
  const MetadataServer& meta() const { return meta_; }

  DataServer& data_server(ServerId id) {
    assert(id < servers_.size());
    return *servers_[id];
  }
  const DataServer& data_server(ServerId id) const {
    assert(id < servers_.size());
    return *servers_[id];
  }

  std::uint32_t server_count() const { return static_cast<std::uint32_t>(servers_.size()); }
  Bytes default_strip_size() const { return default_strip_; }

  /// Default distribution: stripe across every server from server 0.
  StripingParams default_striping() const {
    return StripingParams{default_strip_, server_count(), 0};
  }

 private:
  MetadataServer meta_;
  std::vector<std::unique_ptr<DataServer>> servers_;
  Bytes default_strip_;
};

}  // namespace dosas::pfs
