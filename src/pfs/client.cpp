#include "pfs/client.hpp"

#include <algorithm>

namespace dosas::pfs {

Result<FileMeta> Client::create(const std::string& path, StripingParams striping) {
  if (striping.base_server + striping.server_count > fs_.server_count()) {
    return error(ErrorCode::kInvalidArgument,
                 "striping group [" + std::to_string(striping.base_server) + ", " +
                     std::to_string(striping.base_server + striping.server_count) +
                     ") exceeds the volume's " + std::to_string(fs_.server_count()) +
                     " servers");
  }
  return fs_.meta().create(path, striping);
}

Result<FileMeta> Client::write(const FileMeta& meta, Bytes offset,
                               std::span<const std::uint8_t> data) {
  const Layout layout(meta.striping);
  for (const auto& seg : layout.map_extent(offset, data.size())) {
    const auto chunk = data.subspan(seg.logical_offset - offset, seg.length);
    Status st = fs_.data_server(seg.server).write_object(meta.handle, seg.object_offset, chunk);
    if (!st.is_ok()) return st;
  }
  Status st = fs_.meta().extend(meta.handle, offset + data.size());
  if (!st.is_ok()) return st;
  return fs_.meta().lookup_handle(meta.handle);
}

Result<std::vector<std::uint8_t>> Client::read(const FileMeta& meta, Bytes offset,
                                               Bytes length) const {
  // Refresh size so concurrent extenders are visible, then clamp at EOF.
  auto fresh = fs_.meta().lookup_handle(meta.handle);
  if (!fresh.is_ok()) return fresh.status();
  const Bytes size = fresh.value().size;
  if (offset >= size) return std::vector<std::uint8_t>{};
  length = std::min(length, size - offset);

  std::vector<std::uint8_t> out(length);
  const Layout layout(meta.striping);
  for (const auto& seg : layout.map_extent(offset, length)) {
    auto piece = fs_.data_server(seg.server).read_object_ref(meta.handle, seg.object_offset,
                                                             seg.length);
    if (!piece.is_ok()) {
      // A server with no object for this handle is a hole in a sparse
      // file: reads as zeros (already in place in `out`).
      if (piece.status().code() == ErrorCode::kNotFound) continue;
      return piece.status();
    }
    if (piece.value().size() != seg.length) {
      // A hole (sparse region never written): zero-fill is already in
      // place since `out` is zero-initialised; copy what exists.
    }
    // Gather into the contiguous result — the one owning copy a striped
    // whole-extent read needs (recorded in the bytes-copied ledger).
    note_bytes_copied(piece.value().size(), CopySite::kReadGather);
    std::copy(piece.value().begin(), piece.value().end(),
              out.begin() + static_cast<std::ptrdiff_t>(seg.logical_offset - offset));
  }
  return out;
}

Result<BufferRef> Client::read_ref(const FileMeta& meta, Bytes offset, Bytes length) const {
  auto fresh = fs_.meta().lookup_handle(meta.handle);
  if (!fresh.is_ok()) return fresh.status();
  const Bytes size = fresh.value().size;
  if (offset >= size) return BufferRef{};
  length = std::min(length, size - offset);

  const Layout layout(meta.striping);
  const auto segments = layout.map_extent(offset, length);
  if (segments.size() == 1) {
    const auto& seg = segments[0];
    auto piece =
        fs_.data_server(seg.server).read_object_ref(meta.handle, seg.object_offset, seg.length);
    // Full-length single-strip reads hand the slab ref straight through;
    // holes and short reads need the gather path's zero fill below.
    if (piece.is_ok() && piece.value().size() == length) return std::move(piece).value();
    if (!piece.is_ok() && piece.status().code() != ErrorCode::kNotFound) return piece.status();
  }
  auto owned = read(meta, offset, length);
  if (!owned.is_ok()) return owned.status();
  return BufferRef::adopt(std::move(owned).value());
}

Status Client::unlink(const std::string& path) {
  auto meta = fs_.meta().lookup(path);
  if (!meta.is_ok()) return meta.status();
  for (std::uint32_t s = 0; s < fs_.server_count(); ++s) {
    Status st = fs_.data_server(s).remove_object(meta.value().handle);
    if (!st.is_ok()) return st;
  }
  return fs_.meta().remove(path);
}

Result<FileMeta> write_file(Client& client, const std::string& path,
                            std::span<const std::uint8_t> data) {
  auto meta = client.open(path);
  if (!meta.is_ok()) {
    meta = client.create(path);
    if (!meta.is_ok()) return meta.status();
  } else {
    Status st = client.file_system().meta().truncate(meta.value().handle, 0);
    if (!st.is_ok()) return st;
  }
  return client.write(meta.value(), 0, data);
}

}  // namespace dosas::pfs
