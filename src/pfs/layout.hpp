// layout.hpp — PVFS-style round-robin striping math.
//
// A file is split into fixed-size strips distributed round-robin across the
// file system's data servers, starting at `first_server`. The Layout maps
// logical byte extents to (server, object offset) segments — the core
// address arithmetic every PFS client and every active-storage placement
// decision relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace dosas::pfs {

/// Index of a data server within the file system.
using ServerId = std::uint32_t;

/// Striping parameters stored in a file's metadata (PVFS "distribution").
/// The file stripes over the contiguous server group
/// [base_server, base_server + server_count); `first_server` rotates which
/// member of that group holds strip 0. This mirrors PVFS2's ability to
/// place a file's datafiles on a chosen subset of servers (e.g. a whole
/// file on one specific storage node: server_count=1, base_server=n).
struct StripingParams {
  Bytes strip_size = 64_KiB;       ///< contiguous bytes per strip
  std::uint32_t server_count = 1;  ///< number of data servers in the stripe
  ServerId first_server = 0;       ///< group member holding strip 0 (< server_count)
  ServerId base_server = 0;        ///< first physical server of the group

  bool operator==(const StripingParams&) const = default;
};

/// One contiguous piece of a logical extent on a single server.
struct StripeSegment {
  ServerId server = 0;
  Bytes logical_offset = 0;  ///< offset within the file
  Bytes object_offset = 0;   ///< offset within the server's object
  Bytes length = 0;

  bool operator==(const StripeSegment&) const = default;
};

class Layout {
 public:
  explicit Layout(StripingParams params);

  const StripingParams& params() const { return params_; }

  /// Server holding the byte at `offset`.
  ServerId server_of(Bytes offset) const;

  /// Offset within the server-local object for the file byte at `offset`.
  /// (PVFS stores each server's strips densely in one datafile object.)
  Bytes object_offset_of(Bytes offset) const;

  /// Decompose [offset, offset+length) into per-server contiguous segments
  /// in ascending logical order. Empty when length == 0.
  std::vector<StripeSegment> map_extent(Bytes offset, Bytes length) const;

  /// Bytes of [offset, offset+length) that land on server `s`.
  Bytes bytes_on_server(Bytes offset, Bytes length, ServerId s) const;

  /// Size of server `s`'s object for a file of `file_size` bytes.
  Bytes object_size(Bytes file_size, ServerId s) const;

 private:
  StripingParams params_;
};

}  // namespace dosas::pfs
