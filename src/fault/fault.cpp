#include "fault/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace dosas::fault {

namespace {

// Site ids for the per-(site, node) decision streams.
constexpr int kSiteRead = 1;
constexpr int kSiteThrow = 2;
constexpr int kSiteStall = 3;

Result<double> parse_prob(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return error(ErrorCode::kInvalidArgument,
                 "fault spec: " + key + "=" + value + " is not a probability in [0,1]");
  }
  return p;
}

}  // namespace

Result<FaultSpec> FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      return error(ErrorCode::kInvalidArgument, "fault spec: '" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "read_fault" || key == "kernel_throw" || key == "corrupt_ckpt" ||
               key == "net_error" || key == "stall") {
      auto p = parse_prob(key, value);
      if (!p.is_ok()) return p.status();
      if (key == "read_fault") spec.read_fault = p.value();
      if (key == "kernel_throw") spec.kernel_throw = p.value();
      if (key == "corrupt_ckpt") spec.corrupt_ckpt = p.value();
      if (key == "net_error") spec.net_error = p.value();
      if (key == "stall") spec.stall = p.value();
    } else if (key == "stall_ms") {
      spec.stall_delay = std::strtod(value.c_str(), nullptr) / 1000.0;
    } else if (key == "crash") {
      Crash c;
      const auto at = value.find('@');
      c.node = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
      if (at != std::string::npos) {
        c.after_kernels = std::strtoull(value.c_str() + at + 1, nullptr, 10);
      }
      spec.crashes.push_back(c);
    } else {
      return error(ErrorCode::kInvalidArgument, "fault spec: unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (read_fault > 0) out << ",read_fault=" << read_fault;
  if (kernel_throw > 0) out << ",kernel_throw=" << kernel_throw;
  if (corrupt_ckpt > 0) out << ",corrupt_ckpt=" << corrupt_ckpt;
  if (net_error > 0) out << ",net_error=" << net_error;
  if (stall > 0) out << ",stall=" << stall << ",stall_ms=" << stall_delay * 1000.0;
  for (const auto& c : crashes) {
    out << ",crash=" << c.node;
    if (c.after_kernels > 0) out << "@" << c.after_kernels;
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {
  // Independent stream per fault kind: the decision sequence at one site
  // does not shift when another site's call count changes.
  Rng root(spec_.seed);
  corrupt_rng_ = root.fork();
  net_rng_ = root.fork();
  for (const auto& c : spec_.crashes) {
    if (c.after_kernels == 0) {
      crashed_nodes_.push_back(c.node);
    } else {
      pending_crashes_.push_back(c);
    }
  }
}

bool FaultInjector::draw(Rng& rng, double p) {
  return p > 0.0 && rng.chance(p);
}

Rng& FaultInjector::node_stream_locked(int site, std::uint32_t node) {
  const auto key = std::make_pair(site, node);
  auto it = node_rngs_.find(key);
  if (it == node_rngs_.end()) {
    // Seed derived from (root seed, site, node) only — creation order
    // across threads cannot shift any stream.
    const std::uint64_t derived =
        spec_.seed ^ (0x9E3779B97F4A7C15ULL *
                      (static_cast<std::uint64_t>(site) * 1000003ULL + node + 1ULL));
    it = node_rngs_.emplace(key, Rng(derived)).first;
  }
  return it->second;
}

bool FaultInjector::inject_read_fault(std::uint32_t server) {
  std::lock_guard lock(mu_);
  if (!draw(node_stream_locked(kSiteRead, server), spec_.read_fault)) return false;
  ++stats_.read_faults;
  obs::count("fault.injected.read");
  obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, server, 0, "read fault");
  return true;
}

bool FaultInjector::inject_kernel_throw(std::uint32_t node) {
  std::lock_guard lock(mu_);
  if (!draw(node_stream_locked(kSiteThrow, node), spec_.kernel_throw)) return false;
  ++stats_.kernel_throws;
  obs::count("fault.injected.kernel_throw");
  obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, node, 0, "kernel throw");
  return true;
}

bool FaultInjector::inject_checkpoint_corruption(std::vector<std::uint8_t>& payload) {
  std::lock_guard lock(mu_);
  if (payload.empty() || !draw(corrupt_rng_, spec_.corrupt_ckpt)) return false;
  // Size-preserving garble: flip a handful of bytes spread over the
  // payload. The Checkpoint checksum must catch this downstream.
  const std::size_t flips = std::max<std::size_t>(1, payload.size() / 64);
  for (std::size_t i = 0; i < flips; ++i) {
    payload[corrupt_rng_.uniform_index(payload.size())] ^= 0xA5;
  }
  ++stats_.checkpoints_corrupted;
  obs::count("fault.injected.corrupt_ckpt");
  obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, 0, payload.size(),
                     "checkpoint corrupted");
  return true;
}

bool FaultInjector::inject_net_error() {
  std::lock_guard lock(mu_);
  if (!draw(net_rng_, spec_.net_error)) return false;
  ++stats_.net_errors;
  obs::count("fault.injected.net_error");
  obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, 0, 0, "net error");
  return true;
}

Seconds FaultInjector::inject_stall(std::uint32_t node) {
  std::lock_guard lock(mu_);
  if (spec_.stall_delay <= 0.0 || !draw(node_stream_locked(kSiteStall, node), spec_.stall)) {
    return 0.0;
  }
  ++stats_.stalls;
  obs::count("fault.injected.stall");
  obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, node, 0, "stall");
  return spec_.stall_delay;
}

void FaultInjector::note_kernel_start(std::uint32_t node) {
  std::lock_guard lock(mu_);
  auto it = std::find_if(kernel_starts_.begin(), kernel_starts_.end(),
                         [&](const auto& kv) { return kv.first == node; });
  if (it == kernel_starts_.end()) {
    kernel_starts_.emplace_back(node, 1);
    it = kernel_starts_.end() - 1;
  } else {
    ++it->second;
  }
  for (const auto& c : pending_crashes_) {
    if (c.node == node && it->second >= c.after_kernels &&
        std::find(crashed_nodes_.begin(), crashed_nodes_.end(), node) ==
            crashed_nodes_.end()) {
      crashed_nodes_.push_back(node);
      obs::count("fault.injected.crash");
      obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, node, it->second,
                         "node crashed (armed)");
      obs::FlightRecorder::global().trigger_dump(
          "injected crash of node " + std::to_string(node));
    }
  }
}

void FaultInjector::crash_node(std::uint32_t node) {
  std::lock_guard lock(mu_);
  if (std::find(crashed_nodes_.begin(), crashed_nodes_.end(), node) ==
      crashed_nodes_.end()) {
    crashed_nodes_.push_back(node);
    obs::count("fault.injected.crash");
    obs::flight_record(obs::FlightEventKind::kFaultInjected, 0, node, 0, "node crashed");
    obs::FlightRecorder::global().trigger_dump("injected crash of node " +
                                               std::to_string(node));
  }
}

void FaultInjector::restore_node(std::uint32_t node) {
  std::lock_guard lock(mu_);
  crashed_nodes_.erase(std::remove(crashed_nodes_.begin(), crashed_nodes_.end(), node),
                       crashed_nodes_.end());
}

bool FaultInjector::node_crashed(std::uint32_t node, bool count_rejection) {
  std::lock_guard lock(mu_);
  const bool down = std::find(crashed_nodes_.begin(), crashed_nodes_.end(), node) !=
                    crashed_nodes_.end();
  if (down && count_rejection) {
    ++stats_.crash_rejections;
    obs::count("fault.injected.crash_reject");
  }
  return down;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace dosas::fault
