// fault.hpp — deterministic, seed-driven fault injection for the real
// runtime (the chaos layer the recovery machinery is tested against).
//
// The paper's claim (§III-E, Figs. 7–9) is that DOSAS degrades gracefully
// under pressure; resilient-staging follow-ups treat storage-node failure
// and slow-node stragglers as the common case. This library makes those
// faults injectable on demand so tests and benches can *prove* recovery
// ("N faults injected, N recovered, 0 lost requests") instead of asserting
// it:
//
//   * read faults        — a PFS data server's read_object fails kUnavailable
//                          (transient brownout / I/O timeout under load);
//   * kernel throws      — a storage-side kernel throws mid-stream (the bug
//                          class that used to std::terminate the node);
//   * checkpoint corruption — a shipped checkpoint payload is garbled in
//                          flight (detected by the Checkpoint checksum);
//   * network errors     — an active RPC is lost before reaching the server
//                          (client sees kUnavailable, retries with backoff);
//   * stragglers         — a storage node stalls between kernel chunks
//                          (wall-clock; what per-request timeouts catch);
//   * node crashes       — a storage node's *active* runtime goes down, at
//                          once or after serving N kernels; the PFS daemon
//                          keeps serving normal I/O, so clients demote to
//                          local compute (the paper's TS path) and recover.
//
// Every decision draws from a per-(site, node) stream derived purely from
// one seed, so each node's decision sequence is exactly repeatable even
// when many worker threads interleave their draws; every injected fault is
// counted here and in the obs metrics (fault.injected.*).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace dosas::fault {

/// What to inject, parsed from a --fault-spec string:
///
///   "seed=7,read_fault=0.05,kernel_throw=0.1,corrupt_ckpt=1,
///    net_error=0.2,stall=0.5,stall_ms=20,crash=1@5,crash=2"
///
/// Probabilities are per decision site (per chunk read, per kernel launch,
/// per shipped checkpoint, per RPC, per chunk boundary). `crash=N@K` takes
/// node N's active runtime down after it has *started* K kernels; `crash=N`
/// crashes it from the outset.
struct FaultSpec {
  std::uint64_t seed = 2012;
  double read_fault = 0.0;      ///< P(data-server read fails kUnavailable)
  double kernel_throw = 0.0;    ///< P(kernel throws, per launch)
  double corrupt_ckpt = 0.0;    ///< P(shipped checkpoint garbled)
  double net_error = 0.0;       ///< P(active RPC lost, per attempt)
  double stall = 0.0;           ///< P(straggler stall, per kernel chunk)
  Seconds stall_delay = 0.0;    ///< stall length (really slept; keep small)

  struct Crash {
    std::uint32_t node = 0;
    std::uint64_t after_kernels = 0;  ///< 0 = down from the start
  };
  std::vector<Crash> crashes;

  bool any() const {
    return read_fault > 0 || kernel_throw > 0 || corrupt_ckpt > 0 ||
           net_error > 0 || stall > 0 || !crashes.empty();
  }

  static Result<FaultSpec> parse(const std::string& text);
  std::string to_string() const;
};

/// Thread-safe injection oracle shared by the PFS data servers, the storage
/// servers' kernel paths, and the client's RPC path.
class FaultInjector {
 public:
  struct Stats {
    std::uint64_t read_faults = 0;
    std::uint64_t kernel_throws = 0;
    std::uint64_t checkpoints_corrupted = 0;
    std::uint64_t net_errors = 0;
    std::uint64_t stalls = 0;
    std::uint64_t crash_rejections = 0;  ///< requests refused by a down node

    std::uint64_t total() const {
      return read_faults + kernel_throws + checkpoints_corrupted + net_errors +
             stalls + crash_rejections;
    }
  };

  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// PFS data server `server`: should this read_object call fail?
  bool inject_read_fault(std::uint32_t server);

  /// Storage server `node`: should this kernel launch throw mid-stream?
  bool inject_kernel_throw(std::uint32_t node);

  /// Garble `payload` in place (size-preserving). Returns true if corrupted.
  bool inject_checkpoint_corruption(std::vector<std::uint8_t>& payload);

  /// Client RPC path: is this request/response lost in the network?
  bool inject_net_error();

  /// Straggler on `node`: stall to insert before the next kernel chunk
  /// (0 = none).
  Seconds inject_stall(std::uint32_t node);

  /// Called by a storage server when it *starts* a kernel; arms crash=N@K.
  void note_kernel_start(std::uint32_t node);

  /// Manual crash control (tests; also used by crash=N@K internally).
  void crash_node(std::uint32_t node);
  void restore_node(std::uint32_t node);

  /// Is node's active runtime down? Counts a crash_rejection when
  /// `count_rejection` (the serve path passes true; probes pass false).
  bool node_crashed(std::uint32_t node, bool count_rejection = false);

  Stats stats() const;

 private:
  bool draw(Rng& rng, double p);

  /// Per-(site, node) decision stream, derived purely from the seed and
  /// the coordinates — NOT from fork order — so each node's sequence is
  /// reproducible no matter how draws interleave across worker threads.
  Rng& node_stream_locked(int site, std::uint32_t node);

  const FaultSpec spec_;
  mutable std::mutex mu_;
  Rng corrupt_rng_, net_rng_;
  std::map<std::pair<int, std::uint32_t>, Rng> node_rngs_;
  std::vector<std::uint32_t> crashed_nodes_;
  std::vector<FaultSpec::Crash> pending_crashes_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> kernel_starts_;
  Stats stats_;
};

}  // namespace dosas::fault
