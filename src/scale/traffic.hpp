// traffic.hpp — seed-deterministic cluster-scale traffic generation.
//
// The scale harness (harness.hpp) drives the real runtime with OPEN-LOOP
// traffic: request arrival times are drawn up front from a Poisson process
// and never react to completion latency, so a congested cluster keeps
// receiving load exactly like real multi-tenant clients would (closed-loop
// replay would throttle itself and hide the contention the paper studies).
// Key popularity follows a scrambled Zipfian distribution (Gray et al.,
// the YCSB generator): rank r's probability is proportional to 1/r^theta,
// and ranks are scattered across the keyspace by a SplitMix64 hash so hot
// keys land on unrelated storage nodes instead of clustering at key 0.
//
// Everything is a pure function of (TrafficConfig, seed): the same inputs
// produce a bit-identical Schedule on every run, which is what lets two
// DST runs of the same scenario be fingerprint-compared.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace dosas::scale {

/// Scrambled Zipfian sampler over ranks [0, n) with skew `theta` in
/// [0, 1). theta = 0 degenerates to uniform; the YCSB default 0.99 makes
/// the top rank draw ~10-15% of all samples for typical keyspaces.
class ScrambledZipf {
 public:
  ScrambledZipf(std::uint64_t n, double theta);

  /// Draw one key in [0, n): a Zipf rank, scrambled by a stateless hash.
  std::uint64_t sample(Rng& rng) const;

  /// The UNscrambled rank draw (rank 0 is the hottest). Exposed so tests
  /// can check the skew without inverting the scramble.
  std::uint64_t sample_rank(Rng& rng) const;

  std::uint64_t items() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;   ///< sum_{i=1..n} 1/i^theta
  double zeta2_;   ///< sum_{i=1..2} 1/i^theta
  double alpha_;   ///< 1 / (1 - theta)
  double eta_;
};

/// One tenant class in the workload mix: a share of the arrival stream
/// issuing one operation at one skew over the shared keyspace.
struct TenantSpec {
  std::string name;
  double weight = 1.0;         ///< share of arrivals (normalized over mix)
  std::string operation;       ///< kernel operation string (e.g. "sum")
  double zipf_theta = 0.99;    ///< key-popularity skew (0 = uniform)
  Bytes request_bytes = 256_KiB;  ///< extent each request reads
};

struct TrafficConfig {
  std::uint32_t clients = 1;   ///< logical client population (ids stamped on ops)
  std::uint64_t keys = 1;      ///< shared keyspace size (one file per key)
  double arrival_rate = 100.0; ///< open-loop Poisson arrivals per second
  std::size_t requests = 1000; ///< total ops to generate
  std::vector<TenantSpec> tenants;
};

/// One generated request: who sends what, over which key, when.
struct TrafficOp {
  Seconds arrival = 0.0;
  std::uint32_t client = 0;
  std::uint32_t tenant = 0;  ///< index into TrafficConfig::tenants
  std::uint64_t key = 0;
};

struct Schedule {
  std::vector<TrafficOp> ops;  ///< ascending by arrival

  /// Arrival time of the last op (0 for an empty schedule).
  Seconds horizon() const { return ops.empty() ? 0.0 : ops.back().arrival; }

  /// FNV-1a over every field of every op: bit-identical generation
  /// produces equal fingerprints.
  std::uint64_t fingerprint() const;
};

/// Generate the full open-loop schedule for `config` from `seed`. Pure:
/// same (config, seed) -> bit-identical Schedule.
Schedule generate_traffic(const TrafficConfig& config, std::uint64_t seed);

/// FNV-1a helpers shared by the schedule and harness fingerprints.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h = kFnvOffset);
inline std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h = kFnvOffset) {
  return fnv1a(&v, sizeof v, h);
}

}  // namespace dosas::scale
