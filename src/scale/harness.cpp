#include "scale/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/clock.hpp"
#include "common/ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/client.hpp"

namespace dosas::scale {

namespace {

/// Nearest-rank-interpolated percentile over raw samples, p in [0, 100].
double percentile_of(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  return samples[lo] + (samples[hi] - samples[lo]) * (rank - static_cast<double>(lo));
}

/// Deterministic per-key file contents: doubles any kernel can digest,
/// cheap to regenerate, distinct across keys.
std::vector<std::uint8_t> key_payload(std::uint64_t key, Bytes size) {
  const std::size_t count = size / sizeof(double);
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t mix = fnv1a_u64(key * 2654435761ULL + i);
    values[i] = static_cast<double>(mix % 100000) / 1000.0;
  }
  std::vector<std::uint8_t> bytes(count * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  bytes.resize(size, 0);
  return bytes;
}

/// One queued unit of completer work.
struct PendingItem {
  client::ActiveClient::PendingReadEx pending;
  std::size_t index = 0;
};

}  // namespace

Schedule burst_schedule(std::uint32_t nodes, std::uint32_t per_node, Seconds window,
                        Seconds stagger) {
  Schedule schedule;
  schedule.ops.reserve(static_cast<std::size_t>(nodes) * per_node);
  for (std::uint32_t node = 0; node < nodes; ++node) {
    for (std::uint32_t i = 0; i < per_node; ++i) {
      TrafficOp op;
      op.arrival = static_cast<double>(node) * window + static_cast<double>(i) * stagger;
      op.client = node * per_node + i;
      op.tenant = 0;
      op.key = node;
      schedule.ops.push_back(op);
    }
  }
  return schedule;
}

Seconds mean_node_makespan(const ScaleReport& report) {
  struct Span {
    Seconds first_arrival = 0.0, last_completion = 0.0;
    bool seen = false;
  };
  std::map<std::uint64_t, Span> per_node;
  for (const auto& rec : report.records) {
    auto& span = per_node[rec.key];
    if (!span.seen || rec.arrival < span.first_arrival) span.first_arrival = rec.arrival;
    if (!span.seen || rec.completion > span.last_completion) {
      span.last_completion = rec.completion;
    }
    span.seen = true;
  }
  if (per_node.empty()) return 0.0;
  Seconds total = 0.0;
  for (const auto& [node, span] : per_node) total += span.last_completion - span.first_arrival;
  return total / static_cast<double>(per_node.size());
}

ScaleReport run_scale(const ScaleScenario& scenario) {
  return run_scale(scenario, generate_traffic(scenario.traffic, scenario.seed));
}

ScaleReport run_scale(const ScaleScenario& scenario, const Schedule& schedule) {
  assert(!scenario.traffic.tenants.empty());
  // Quantile sketches and the trace buffer ingest in completion-scheduling
  // order, which is not part of the deterministic surface — force both off
  // for the fingerprinted run (same rule as the striped DST scenario).
  obs::MetricsRegistry::global().set_enabled(false);
  obs::Tracer::global().set_enabled(false);

  ScaleReport report;
  report.requests = schedule.ops.size();
  report.records.resize(schedule.ops.size());

  const Seconds wall_start = wall_clock().now();
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  {
    ClockParticipant submitter;

    core::ClusterConfig cfg;
    cfg.storage_nodes = scenario.nodes;
    cfg.strip_size = scenario.file_bytes;
    // One schedulable core per node: the rate table's S is one core's
    // worth (the second physical core serves PFS I/O — DESIGN.md §5), and
    // serialized per-node kernel execution is also what keeps each node's
    // virtual timeline a pure function of its arrival order.
    cfg.cores_per_node = 1;
    cfg.server_chunk_size = scenario.chunk_size;
    cfg.client_chunk_size = scenario.chunk_size;
    cfg.scheme = scenario.scheme;
    cfg.rates = scenario.pacing.rates;
    // DOSAS at scale uses the exact polynomial optimizer: the default
    // exhaustive search is 2^k per CE evaluation.
    if (scenario.scheme == core::SchemeKind::kDosas) cfg.optimizer_override = "sortmin";
    cfg.pace_kernel_rates = scenario.pacing.pace_server;
    cfg.pace_client_compute = scenario.pacing.pace_client;
    if (scenario.pacing.node_link > 0.0) {
      cfg.network_rate = scenario.pacing.node_link;
      cfg.network_mode = TokenBucket::Mode::kReal;  // sleeps -> virtual jumps
      cfg.network_per_node = true;
    }
    cfg.faults = scenario.faults;
    core::Cluster cluster(cfg);

    // One single-strip file per key, placed whole on node (key % nodes) —
    // deterministic placement, non-mergeable kernels stay single-leg.
    std::vector<pfs::FileMeta> files;
    files.reserve(scenario.traffic.keys);
    Bytes max_request = 0;
    for (const auto& t : scenario.traffic.tenants) max_request = std::max(max_request, t.request_bytes);
    const Bytes file_bytes = std::max(scenario.file_bytes, max_request);
    for (std::uint64_t key = 0; key < scenario.traffic.keys; ++key) {
      pfs::StripingParams striping;
      striping.strip_size = file_bytes;
      striping.server_count = 1;
      striping.base_server = static_cast<std::uint32_t>(key % scenario.nodes);
      auto meta = cluster.pfs_client().create("/scale/key" + std::to_string(key), striping);
      assert(meta.is_ok());
      const auto payload = key_payload(key, file_bytes);
      auto written = cluster.pfs_client().write(meta.value(), 0, payload);
      assert(written.is_ok());
      files.push_back(written.value());
    }

    // Completers are sharded per scenario.affinity (see CompleterAffinity):
    // node affinity serializes all client-side users of one node's token
    // bucket (demoted reads, interrupt resume) on one thread, so two
    // completers never race for the same link when tied at one virtual
    // instant — the one scheduler-order dependence a shared work queue
    // exhibits at hot keys. Client affinity instead gives each logical
    // client its own CPU slot, the paper's cost-model assumption.
    const std::size_t pool = std::max<std::size_t>(1, scenario.completer_threads);
    // Lock-free rings sized for the whole schedule, so the open-loop
    // generator never blocks on a queue hop: a delayed send would distort
    // the arrival process the scenario exists to model.
    const std::size_t ring_cap = std::max<std::size_t>(2, schedule.ops.size());
    // Each per-completer queue has exactly one producer (the open-loop
    // generator below) and one consumer (completer i), so the SPSC ring
    // specialization applies: plain releases on the cursors, no CAS claim
    // loop to retry under contention.
    std::vector<std::unique_ptr<SpscRing<PendingItem>>> queues;
    queues.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      queues.push_back(std::make_unique<SpscRing<PendingItem>>(ring_cap));
    }
    Ring<std::uint8_t> completions(ring_cap);  // one token per resolved request
    std::vector<std::thread> completers;
    completers.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      // Close the spawn window: register before the thread exists, adopt
      // inside it (see ClockParticipant).
      clock().add_participant();
      completers.emplace_back([&, i] {
        ClockParticipant worker(ClockParticipant::kAdoptPreRegistered);
        SpscRing<PendingItem>& queue = *queues[i];
        while (auto item = queue.receive()) {
          auto result = item->pending.wait();
          RequestRecord& rec = report.records[item->index];
          rec.completion = clock().now();
          rec.ok = result.is_ok();
          if (result.is_ok()) {
            rec.result_hash = fnv1a(result.value().data(), result.value().size());
          } else {
            const std::string& msg = result.status().message();
            rec.result_hash = fnv1a(msg.data(), msg.size());
          }
          completions.send(1);
        }
      });
    }

    // Open loop: sleep to each scheduled arrival, submit, hand off. Under
    // the quiescence rule the virtual submit time equals the scheduled
    // arrival exactly — the generator's Poisson process IS the cluster's
    // arrival process.
    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
      const TrafficOp& op = schedule.ops[i];
      const Seconds now = clock().now();
      if (op.arrival > now) clock().sleep(op.arrival - now);
      const TenantSpec& tenant = scenario.traffic.tenants.at(op.tenant);
      const pfs::FileMeta& meta = files.at(op.key % files.size());
      const Bytes length = std::min<Bytes>(tenant.request_bytes, meta.size);
      RequestRecord& rec = report.records[i];
      rec.arrival = op.arrival;
      rec.submitted = clock().now();
      rec.key = op.key;
      rec.tenant = op.tenant;
      const std::size_t shard = scenario.affinity == CompleterAffinity::kNode
                                    ? (op.key % scenario.nodes) % pool
                                    : op.client % pool;
      queues[shard]->send(
          PendingItem{cluster.asc().read_ex_async(meta, 0, length, tenant.operation), i});
    }

    // Drain: one completion token per request, received through the clock
    // seam so virtual time keeps advancing while we wait.
    for (std::size_t i = 0; i < schedule.ops.size(); ++i) completions.receive();
    for (auto& q : queues) q->close();
    for (auto& t : completers) t.join();

    const auto stats = cluster.asc().stats();
    report.completed_remote = stats.completed_remote;
    report.demoted = stats.demoted;
    report.resumed_local = stats.resumed_local;
    report.local_kernel_runs = stats.local_kernel_runs;
    report.virtual_end = clock().now();
  }
  report.wall_seconds = wall_clock().now() - wall_start;

  // Aggregates.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(report.records.size());
  Seconds first_arrival = 0.0, last_completion = 0.0;
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const RequestRecord& rec = report.records[i];
    if (rec.ok) ++report.ok; else ++report.failed;
    latencies_ms.push_back((rec.completion - rec.arrival) * 1e3);
    if (i == 0 || rec.arrival < first_arrival) first_arrival = rec.arrival;
    if (i == 0 || rec.completion > last_completion) last_completion = rec.completion;
  }
  report.virtual_makespan = report.records.empty() ? 0.0 : last_completion - first_arrival;
  if (report.virtual_makespan > 0.0) {
    report.throughput_rps =
        static_cast<double>(report.requests) / report.virtual_makespan;
  }
  if (report.requests > 0) {
    report.demotion_rate = static_cast<double>(report.demoted + report.resumed_local) /
                           static_cast<double>(report.requests);
  }
  report.p50_ms = percentile_of(latencies_ms, 50.0);
  report.p95_ms = percentile_of(latencies_ms, 95.0);
  report.p99_ms = percentile_of(latencies_ms, 99.0);

  // Bit-exact determinism probe: schedule, every record, counters, final
  // virtual time. Two same-seed runs must agree on all of it.
  std::uint64_t h = schedule.fingerprint();
  for (const auto& rec : report.records) {
    h = fnv1a(&rec.arrival, sizeof rec.arrival, h);
    h = fnv1a(&rec.submitted, sizeof rec.submitted, h);
    h = fnv1a(&rec.completion, sizeof rec.completion, h);
    h = fnv1a(&rec.key, sizeof rec.key, h);
    h = fnv1a(&rec.tenant, sizeof rec.tenant, h);
    const std::uint8_t ok = rec.ok ? 1 : 0;
    h = fnv1a(&ok, sizeof ok, h);
    h = fnv1a(&rec.result_hash, sizeof rec.result_hash, h);
  }
  h = fnv1a_u64(report.completed_remote, h);
  h = fnv1a_u64(report.demoted, h);
  h = fnv1a_u64(report.resumed_local, h);
  h = fnv1a_u64(report.local_kernel_runs, h);
  h = fnv1a(&report.virtual_end, sizeof report.virtual_end, h);
  report.fingerprint = h;
  return report;
}

}  // namespace dosas::scale
