#include "scale/traffic.hpp"

#include <cassert>
#include <cmath>

namespace dosas::scale {

namespace {

/// Partial zeta sum: sum_{i=1..n} 1/i^theta.
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

/// SplitMix64 finalizer: the stateless scramble that scatters Zipf ranks
/// across the keyspace. Collisions (two ranks hashing to one key) are
/// accepted, as in the YCSB generator.
std::uint64_t scramble(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ScrambledZipf::ScrambledZipf(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n_ > 0);
  assert(theta_ >= 0.0 && theta_ < 1.0);
  zetan_ = zeta(n_, theta_);
  zeta2_ = zeta(std::min<std::uint64_t>(n_, 2), theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ScrambledZipf::sample_rank(Rng& rng) const {
  // Gray et al., "Quickly Generating Billion-Record Synthetic Databases":
  // invert the Zipf CDF approximately with two exact low-rank branches.
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

std::uint64_t ScrambledZipf::sample(Rng& rng) const {
  return scramble(sample_rank(rng)) % n_;
}

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t Schedule::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& op : ops) {
    h = fnv1a(&op.arrival, sizeof op.arrival, h);
    h = fnv1a(&op.client, sizeof op.client, h);
    h = fnv1a(&op.tenant, sizeof op.tenant, h);
    h = fnv1a(&op.key, sizeof op.key, h);
  }
  return h;
}

Schedule generate_traffic(const TrafficConfig& config, std::uint64_t seed) {
  assert(!config.tenants.empty());
  assert(config.clients > 0 && config.keys > 0 && config.arrival_rate > 0.0);

  // Independent sub-streams so adding a draw to one concern (say, a new
  // per-op field) cannot shift every other concern's sequence.
  Rng root(seed);
  Rng arrivals = root.fork();
  Rng tenant_pick = root.fork();
  Rng key_pick = root.fork();
  Rng client_pick = root.fork();

  double total_weight = 0.0;
  for (const auto& t : config.tenants) total_weight += t.weight;

  std::vector<ScrambledZipf> zipf;
  zipf.reserve(config.tenants.size());
  for (const auto& t : config.tenants) zipf.emplace_back(config.keys, t.zipf_theta);

  Schedule schedule;
  schedule.ops.reserve(config.requests);
  Seconds t = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival: open-loop Poisson process at arrival_rate.
    t += -std::log(1.0 - arrivals.uniform()) / config.arrival_rate;

    // Weighted tenant draw.
    double pick = tenant_pick.uniform() * total_weight;
    std::uint32_t tenant = 0;
    for (; tenant + 1 < config.tenants.size(); ++tenant) {
      pick -= config.tenants[tenant].weight;
      if (pick < 0.0) break;
    }

    TrafficOp op;
    op.arrival = t;
    op.tenant = tenant;
    op.key = zipf[tenant].sample(key_pick);
    op.client = static_cast<std::uint32_t>(client_pick.uniform_index(config.clients));
    schedule.ops.push_back(op);
  }
  return schedule;
}

}  // namespace dosas::scale
