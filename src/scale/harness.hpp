// harness.hpp — the cluster-scale deterministic-simulation harness.
//
// Stands up hundreds of REAL StorageServer instances (each with its CE and
// kernel worker pool) plus the real rpc transport chain and the shared
// ActiveClient in one process, installs a VirtualClock, and replays a
// seed-deterministic traffic Schedule (traffic.hpp) against it — thousands
// of logical clients in seconds of wall time.
//
// The paper-rate calibration is what makes the numbers mean something:
// with PacingConfig's defaults the cluster runs with
//   * kernel execution paced at the rate table's S_{C,op}
//     (StorageServerConfig::pace_kernel_rates),
//   * client-side local kernels paced at C_{C,op}
//     (ActiveClientConfig::pace_compute_rates),
//   * one 118 MB/s TokenBucket per storage node in kReal mode
//     (ClusterConfig::network_per_node), whose sleeps are deterministic
//     jumps under the VirtualClock,
// so the REAL code paths — queueing, CE decisions, demotion, checkpoint
// hand-back — execute under the same timing assumptions as the calibrated
// DES models in core/sim_model.hpp. That is the sim/runtime merge: one
// code base, one timeline, paper-shaped contention at 100x the paper's
// node and client counts.
//
// Concurrency shape (chosen for determinism, see docs/SCALE.md):
//   * ONE submitter thread (the caller) walks the schedule open-loop:
//     clock().sleep() to each arrival, read_ex_async(), push the pending
//     handle to an unbounded channel. It never blocks on completions.
//   * N completer threads model the client-side compute pool, sharded by
//     CompleterAffinity (per target node for fingerprint-grade
//     determinism, per logical client for the paper's one-CPU-per-client
//     cost model): each pops a pending handle and resolves it (wait()
//     runs demoted/interrupted kernels on the completer, paced at C —
//     limited client CPUs queue exactly like the cost model's z term
//     says).
//   * Metrics and tracing are forced OFF during the run: quantile sketches
//     ingest in completion-scheduling order, which is not part of the
//     deterministic surface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/scheme.hpp"
#include "fault/fault.hpp"
#include "scale/traffic.hpp"
#include "server/rate_table.hpp"

namespace dosas::scale {

/// The calibrated-rate knobs merging sim_model assumptions into the real
/// runtime (all on by default — that is the point of the harness).
struct PacingConfig {
  server::RateTable rates = server::RateTable::paper_rates();
  BytesPerSec node_link = mb_per_sec(118.0);  ///< per-node uplink (0 = unmodeled)
  bool pace_server = true;   ///< kernel chunks sleep at S_{C,op}
  bool pace_client = true;   ///< local kernel chunks sleep at C_{C,op}
};

/// How requests map onto completer threads.
///
/// kNode (default): requests for storage node n resolve on completer
/// (n % pool). All client-side users of one node's token bucket share one
/// thread, so tied virtual instants cannot let scheduler order pick who
/// gets the link — this is the fingerprint-grade deterministic mode, at
/// the price of serializing client compute for any one node's demotions.
///
/// kClient: requests from logical client c resolve on completer
/// (c % pool) — the faithful one-CPU-per-client model the paper's cost
/// terms assume (concurrent clients of one node compute in parallel).
/// Hot-node link arbitration between two completers tied at one virtual
/// instant is scheduler-order dependent, so run-to-run completion times
/// can differ by a transfer slot; use it for makespan-shape scenarios,
/// not fingerprint comparisons.
enum class CompleterAffinity { kNode, kClient };

struct ScaleScenario {
  std::string name = "scale";
  std::uint32_t nodes = 200;
  core::SchemeKind scheme = core::SchemeKind::kDosas;
  /// Per-key object size; each key is one single-strip file placed whole
  /// on storage node (key % nodes).
  Bytes file_bytes = 256_KiB;
  Bytes chunk_size = 64_KiB;  ///< streaming/interruption granularity
  std::size_t completer_threads = 32;  ///< client-side compute pool
  CompleterAffinity affinity = CompleterAffinity::kNode;
  std::uint64_t seed = 1;
  PacingConfig pacing;
  TrafficConfig traffic;  ///< used by the generate-and-run overload
  std::shared_ptr<fault::FaultInjector> faults;  ///< optional, cluster-wide
};

/// Outcome of one scheduled request, in schedule order.
struct RequestRecord {
  Seconds arrival = 0.0;    ///< scheduled (open-loop) arrival
  Seconds submitted = 0.0;  ///< virtual time the submitter issued it
  Seconds completion = 0.0; ///< virtual time wait() resolved it
  std::uint64_t key = 0;
  std::uint32_t tenant = 0;
  bool ok = false;
  std::uint64_t result_hash = 0;  ///< FNV-1a of the result bytes (or error)
};

struct ScaleReport {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::uint64_t completed_remote = 0;
  std::uint64_t demoted = 0;        ///< admission rejections finished locally
  std::uint64_t resumed_local = 0;  ///< interruptions finished locally
  std::uint64_t local_kernel_runs = 0;
  double demotion_rate = 0.0;       ///< (demoted + resumed_local) / requests
  Seconds virtual_makespan = 0.0;   ///< last completion - first arrival
  Seconds virtual_end = 0.0;        ///< clock reading at teardown
  Seconds wall_seconds = 0.0;       ///< physical cost of the run
  double throughput_rps = 0.0;      ///< requests per virtual second
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  ///< e2e latency quantiles
  /// FNV-1a over the schedule, every record, the client counters and the
  /// final virtual time: two same-seed runs must produce equal values.
  std::uint64_t fingerprint = 0;
  std::vector<RequestRecord> records;  ///< schedule order
};

/// Replay `schedule` against a fresh cluster under a run-owned
/// VirtualClock. The calling thread is the submitter.
ScaleReport run_scale(const ScaleScenario& scenario, const Schedule& schedule);

/// Generate (scenario.traffic, scenario.seed) and replay it.
ScaleReport run_scale(const ScaleScenario& scenario);

/// Deterministic per-node burst schedule for the contention-crossover
/// scenario: node j receives `per_node` near-simultaneous tenant-0
/// requests on key j starting at j*window. Staggered windows keep the
/// in-flight count per instant ~per_node, so a bounded completer pool
/// never distorts the per-node contention the paper measures.
Schedule burst_schedule(std::uint32_t nodes, std::uint32_t per_node, Seconds window,
                        Seconds stagger = 1e-4);

/// Mean over nodes of (latest completion - earliest arrival) within each
/// node's burst — the per-node makespan a paper figure point reports.
/// Requires a burst_schedule-style run where key == node.
Seconds mean_node_makespan(const ScaleReport& report);

}  // namespace dosas::scale
