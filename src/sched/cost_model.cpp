#include "sched/cost_model.hpp"

#include <algorithm>
#include <cassert>

namespace dosas::sched {

Seconds CostModel::objective(std::span<const ActiveRequest> requests,
                             const std::vector<bool>& active) const {
  assert(active.size() == requests.size());
  Seconds t = 0.0;
  Bytes max_normal = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (active[i]) {
      t += x_i(requests[i]);
    } else {
      t += y_i(requests[i]);
      max_normal = std::max(max_normal, requests[i].size);
    }
  }
  if (max_normal > 0) t += f_compute(max_normal);  // z term (Eq. 7)
  return t;
}

Seconds CostModel::t_all_active(std::span<const ActiveRequest> requests,
                                Bytes normal_bytes) const {
  Bytes d_a = 0;
  Bytes results = 0;
  for (const auto& r : requests) {
    d_a += r.size;
    results += r.result_size;
  }
  return f_storage(d_a) + g(normal_bytes) + g(results);
}

Seconds CostModel::t_all_normal(std::span<const ActiveRequest> requests,
                                Bytes normal_bytes) const {
  Bytes d = normal_bytes;
  Bytes io_max = 0;  // Eq. 2
  for (const auto& r : requests) {
    d += r.size;
    io_max = std::max(io_max, r.size);
  }
  return g(d) + (io_max > 0 ? f_compute(io_max) : 0.0);
}

BytesPerSec derate_storage_rate(BytesPerSec max_rate, double busy_fraction) {
  busy_fraction = std::clamp(busy_fraction, 0.0, 1.0);
  // Leave a floor so the model never divides by zero: a fully-loaded node
  // is modelled at 2% of peak rather than 0 (it still timeshares).
  constexpr double kFloor = 0.02;
  return max_rate * std::max(kFloor, 1.0 - busy_fraction);
}

}  // namespace dosas::sched
