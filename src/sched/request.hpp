// request.hpp — the scheduler's view of an active I/O request.
//
// Paper §III-D assumptions: "Each I/O can be identified with its request
// data size and I/O type". The scheduler additionally needs h(d_i) — the
// result size the kernel would ship back — which the Active Storage Server
// obtains from the kernel registry when the request arrives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dosas::sched {

/// Unique id of an I/O request within a storage node's queue.
using RequestId = std::uint64_t;

struct ActiveRequest {
  RequestId id = 0;
  Bytes size = 0;         ///< d_i: requested data size
  Bytes result_size = 0;  ///< h(d_i): kernel result size for d_i input
  std::string operation;  ///< kernel operation string (informational)
};

/// A scheduling decision for one queue snapshot: decision[i] == true means
/// request i executes as active I/O on the storage node; false means it is
/// demoted to normal I/O (raw data shipped, client runs the kernel).
struct Policy {
  std::vector<bool> active;
  Seconds predicted_time = 0.0;  ///< cost-model objective of this assignment

  std::size_t active_count() const {
    std::size_t n = 0;
    for (bool a : active) n += a;
    return n;
  }
};

}  // namespace dosas::sched
