// cost_model.hpp — the DOSAS cost model, paper §III-D Eq. 1–7.
//
// Notation (paper Table II):
//   d_i        request data size of the i-th active I/O
//   S_{C,op}   computation capability of a storage node for operation op
//   C_{C,op}   computation capability of a compute node for op
//   bw         compute<->storage network bandwidth
//   f(x)       compute time on x bytes  (x / S or x / C)
//   g(x)       transfer time of x bytes (x / bw)
//   h(x)       result size of the kernel on x bytes of input
//
// Per-request terms (Eq. 5–7):
//   x_i = d_i / S_{C,op} + h(d_i) / bw     — serve as active I/O
//   y_i = d_i / bw                          — serve as normal I/O
//   z   = max_{i normal} d_i / C_{C,op}     — client-side compute tail;
//         demoted requests compute in parallel on their own compute nodes,
//         so only the largest matters.
//
// Objective (Eq. 4): t(a) = Σ_i [x_i a_i + y_i (1 - a_i)] + z(a).
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"
#include "sched/request.hpp"

namespace dosas::sched {

struct CostModel {
  BytesPerSec bandwidth = mb_per_sec(118.0);  ///< bw (paper's measured 1 GbE)
  BytesPerSec storage_rate = 0.0;             ///< S_{C,op}, effective (derated) node rate
  BytesPerSec compute_rate = 0.0;             ///< C_{C,op}, one compute node

  /// f(x) on the storage node.
  Seconds f_storage(Bytes x) const { return static_cast<double>(x) / storage_rate; }
  /// f(x) on a compute node.
  Seconds f_compute(Bytes x) const { return static_cast<double>(x) / compute_rate; }
  /// g(x): network transfer time.
  Seconds g(Bytes x) const { return static_cast<double>(x) / bandwidth; }

  /// Eq. 5.
  Seconds x_i(const ActiveRequest& r) const { return f_storage(r.size) + g(r.result_size); }
  /// Eq. 6.
  Seconds y_i(const ActiveRequest& r) const { return g(r.size); }

  /// Eq. 4 objective for a full assignment. `active.size()` must equal
  /// `requests.size()`.
  Seconds objective(std::span<const ActiveRequest> requests,
                    const std::vector<bool>& active) const;

  /// Eq. 1: everything served as active I/O (z = 0). `normal_bytes` is D_N,
  /// the concurrent normal-I/O traffic sharing the link (a constant with
  /// respect to the assignment; included for absolute-time predictions).
  Seconds t_all_active(std::span<const ActiveRequest> requests, Bytes normal_bytes = 0) const;

  /// Eq. 3: everything served as normal I/O; client kernels run in
  /// parallel, so the compute term is f(max d_i).
  Seconds t_all_normal(std::span<const ActiveRequest> requests, Bytes normal_bytes = 0) const;

  bool valid() const { return bandwidth > 0 && storage_rate > 0 && compute_rate > 0; }
};

/// Effective S_{C,op}: the CE's derating of the storage node's maximum
/// capability by its currently observed load (paper §III-D: "estimated by
/// the CE according to its max value ... and the current system
/// environment"). `busy_fraction` in [0,1] is the share of node CPU already
/// committed to other work (normal I/O service, other applications'
/// kernels).
BytesPerSec derate_storage_rate(BytesPerSec max_rate, double busy_fraction);

}  // namespace dosas::sched
