// optimizer.hpp — solvers for the DOSAS binary scheduling program (Eq. 8).
//
//   minimize_{a in {0,1}^k}  Σ_i [x_i a_i + y_i (1 - a_i)] + z(a)
//
// The paper proposes solving it with a constraint-programming solver or by
// enumerating all 2^k assignments (the matrix formulation of Eq. 9–11). We
// provide those two, plus an exact polynomial-time algorithm (the max-term
// structure admits an O(k log k) solution), an exact branch-and-bound, and
// a greedy heuristic used as an ablation baseline.
#pragma once

#include <memory>
#include <string>

#include "sched/cost_model.hpp"
#include "sched/request.hpp"

namespace dosas::sched {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Choose the assignment minimizing the Eq. 4 objective. The returned
  /// Policy's predicted_time is the model objective of that assignment.
  virtual Policy optimize(const CostModel& model,
                          std::span<const ActiveRequest> requests) const = 0;

  /// Instrumented entry point the Contention Estimator calls: runs
  /// optimize() and, when the metrics registry is enabled, records solver
  /// wall time, queue size, and demotions under the strategy's name
  /// (sched.solver_us.<name>, sched.solver_k.<name>,
  /// sched.demotions.<name> — see docs/OBSERVABILITY.md). Zero-cost while
  /// metrics are disabled.
  Policy run(const CostModel& model, std::span<const ActiveRequest> requests) const;
};

/// Brute-force enumeration of all 2^k assignments (the paper's "try all
/// possible combinations"). Exact; k is capped (default 20) — above the cap
/// it delegates to the exact polynomial algorithm.
class ExhaustiveOptimizer final : public Optimizer {
 public:
  explicit ExhaustiveOptimizer(std::size_t max_k = 20) : max_k_(max_k) {}
  std::string name() const override { return "exhaustive"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;

 private:
  std::size_t max_k_;
};

/// The paper's matrix formulation (Eq. 9–11): build A (k × 2^k) of all
/// assignments, B = 1 - A, evaluate X·A + Y·B + max-term as a 1×2^k vector
/// and take the argmin column. Numerically identical to ExhaustiveOptimizer
/// — kept as a faithful implementation of the published method. k capped
/// (default 16) for memory; above the cap it delegates to exhaustive.
class MatrixEnumOptimizer final : public Optimizer {
 public:
  explicit MatrixEnumOptimizer(std::size_t max_k = 16) : max_k_(max_k) {}
  std::string name() const override { return "matrix"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;

 private:
  std::size_t max_k_;
};

/// Exact polynomial algorithm. Key observation: once the largest demoted
/// request (the one defining z) is fixed to be request m, every other
/// request j independently takes min(x_j, y_j) — except requests with
/// d_j > d_m, which must stay active or they would redefine the max.
/// Trying every m (plus the all-active case) covers the space exactly in
/// O(k log k).
class SortMinOptimizer final : public Optimizer {
 public:
  std::string name() const override { return "sortmin"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;
};

/// Exact depth-first branch-and-bound with a min(x_i, y_i) relaxation
/// bound. Exists for the optimizer ablation (node counts / latency vs k);
/// results always match the other exact solvers.
class BranchBoundOptimizer final : public Optimizer {
 public:
  std::string name() const override { return "branchbound"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;

  /// Nodes expanded by the last optimize() call (not thread-safe; for
  /// single-threaded ablation benches only).
  std::uint64_t last_nodes() const { return last_nodes_; }

 private:
  mutable std::uint64_t last_nodes_ = 0;
};

/// Greedy heuristic: a_i = [x_i <= y_i] per request, ignoring the shared
/// z term. The "state-oblivious per-request rule" ablation baseline; can be
/// suboptimal when demoting one more request is free because z is already
/// paid.
class GreedyOptimizer final : public Optimizer {
 public:
  std::string name() const override { return "greedy"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;
};

/// Static baseline: everything active (the AS scheme's implicit policy).
class AllActiveOptimizer final : public Optimizer {
 public:
  std::string name() const override { return "all-active"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;
};

/// Static baseline: everything normal (the TS scheme's implicit policy).
class AllNormalOptimizer final : public Optimizer {
 public:
  std::string name() const override { return "all-normal"; }
  Policy optimize(const CostModel& model,
                  std::span<const ActiveRequest> requests) const override;
};

/// Factory by name: "exhaustive", "matrix", "sortmin", "branchbound",
/// "greedy", "all-active", "all-normal". Returns nullptr for unknown names.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name);

}  // namespace dosas::sched
