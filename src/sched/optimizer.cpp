#include "sched/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"

namespace dosas::sched {

namespace {

Policy make_policy(const CostModel& model, std::span<const ActiveRequest> requests,
                   std::vector<bool> active) {
  Policy p;
  p.predicted_time = model.objective(requests, active);
  p.active = std::move(active);
  return p;
}

}  // namespace

Policy Optimizer::run(const CostModel& model, std::span<const ActiveRequest> requests) const {
  if (!obs::metrics_enabled()) return optimize(model, requests);
  const double t0 = obs::now_us();
  Policy policy = optimize(model, requests);
  const std::string strategy = name();
  obs::observe("sched.solver_us." + strategy, obs::now_us() - t0);
  obs::observe("sched.solver_k." + strategy, static_cast<double>(requests.size()));
  obs::count("sched.demotions." + strategy, requests.size() - policy.active_count());
  return policy;
}

// -------------------------------------------------------------- exhaustive

Policy ExhaustiveOptimizer::optimize(const CostModel& model,
                                     std::span<const ActiveRequest> requests) const {
  assert(model.valid());
  const std::size_t k = requests.size();
  if (k == 0) return Policy{{}, 0.0};
  if (k > max_k_) return SortMinOptimizer{}.optimize(model, requests);

  // Precompute per-request terms.
  std::vector<Seconds> x(k), y(k), z(k);
  for (std::size_t i = 0; i < k; ++i) {
    x[i] = model.x_i(requests[i]);
    y[i] = model.y_i(requests[i]);
    z[i] = model.f_compute(requests[i].size);
  }

  Seconds best = std::numeric_limits<double>::infinity();
  std::uint64_t best_mask = 0;
  const std::uint64_t combos = 1ull << k;
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    Seconds t = 0.0;
    Seconds max_z = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (mask & (1ull << i)) {
        t += x[i];
      } else {
        t += y[i];
        max_z = std::max(max_z, z[i]);
      }
      if (t >= best) break;  // partial sums only grow
    }
    t += max_z;
    if (t < best) {
      best = t;
      best_mask = mask;
    }
  }

  std::vector<bool> active(k);
  for (std::size_t i = 0; i < k; ++i) active[i] = (best_mask >> i) & 1;
  return make_policy(model, requests, std::move(active));
}

// -------------------------------------------------------------- matrix (Eq. 9-11)

Policy MatrixEnumOptimizer::optimize(const CostModel& model,
                                     std::span<const ActiveRequest> requests) const {
  assert(model.valid());
  const std::size_t k = requests.size();
  if (k == 0) return Policy{{}, 0.0};
  if (k > max_k_) return ExhaustiveOptimizer{}.optimize(model, requests);

  const std::size_t m = std::size_t{1} << k;  // paper: m = 2^k columns

  // X = [x_1..x_k], Y = [y_1..y_k], Z-like vector of client compute times.
  std::vector<Seconds> X(k), Y(k), Zc(k);
  for (std::size_t i = 0; i < k; ++i) {
    X[i] = model.x_i(requests[i]);
    Y[i] = model.y_i(requests[i]);
    Zc[i] = model.f_compute(requests[i].size);
  }

  // A: k x m matrix of all distinct assignment columns; B = 1 - A.
  // (Materialized exactly as the paper describes; memory is k*m bytes.)
  std::vector<std::uint8_t> A(k * m);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      A[i * m + j] = static_cast<std::uint8_t>((j >> i) & 1);
    }
  }

  // Row vector t = X·A + Y·B + max_i(Zc_i * B_ij)  (Eq. 10).
  std::vector<Seconds> t(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    Seconds acc = 0.0;
    Seconds max_z = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const bool a = A[i * m + j] != 0;
      acc += a ? X[i] : Y[i];
      if (!a) max_z = std::max(max_z, Zc[i]);
    }
    t[j] = acc + max_z;
  }

  // argmin_j (Eq. 11).
  const std::size_t best_j = static_cast<std::size_t>(
      std::distance(t.begin(), std::min_element(t.begin(), t.end())));

  std::vector<bool> active(k);
  for (std::size_t i = 0; i < k; ++i) active[i] = A[i * m + best_j] != 0;
  return make_policy(model, requests, std::move(active));
}

// -------------------------------------------------------------- sortmin (exact, polynomial)

Policy SortMinOptimizer::optimize(const CostModel& model,
                                  std::span<const ActiveRequest> requests) const {
  assert(model.valid());
  const std::size_t k = requests.size();
  if (k == 0) return Policy{{}, 0.0};

  std::vector<Seconds> x(k), y(k);
  for (std::size_t i = 0; i < k; ++i) {
    x[i] = model.x_i(requests[i]);
    y[i] = model.y_i(requests[i]);
  }

  // Candidate 0: all active (z = 0).
  Seconds best = std::accumulate(x.begin(), x.end(), 0.0);
  std::size_t best_m = k;  // sentinel: no demotions

  // Order indices by size ascending; prefix sums of min(x,y) over that
  // order let us evaluate each "max-demoted = m" candidate in O(1).
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (requests[a].size != requests[b].size) return requests[a].size < requests[b].size;
    return a < b;
  });

  // prefix_min[p] = sum over the first p (smallest) requests of min(x,y);
  // suffix_x[p] = sum over requests from rank p on of x (forced active).
  std::vector<Seconds> prefix_min(k + 1, 0.0), suffix_x(k + 1, 0.0);
  for (std::size_t p = 0; p < k; ++p) {
    prefix_min[p + 1] = prefix_min[p] + std::min(x[order[p]], y[order[p]]);
  }
  for (std::size_t p = k; p-- > 0;) {
    suffix_x[p] = suffix_x[p + 1] + x[order[p]];
  }

  // Candidate m at rank r: request m is demoted and is the largest demoted
  // one. Requests with strictly larger size must be active; same-or-smaller
  // ones (other than m) pick min(x, y) freely. With ties broken by rank,
  // "larger" means rank > r among strictly-larger sizes; equal-size
  // requests may be demoted too (they don't increase the max), so treat
  // ranks <= last-equal as free. Scan ranks and use the equal-size run end.
  std::size_t run_end = 0;  // one past the last rank with size == current
  for (std::size_t r = 0; r < k; ++r) {
    if (r >= run_end) {
      run_end = r + 1;
      while (run_end < k && requests[order[run_end]].size == requests[order[r]].size) {
        ++run_end;
      }
    }
    const std::size_t m = order[r];
    // Free choice for every request of rank < run_end except m itself.
    const Seconds free_sum = prefix_min[run_end] - std::min(x[m], y[m]);
    const Seconds forced = suffix_x[run_end];
    const Seconds t = free_sum + y[m] + forced + model.f_compute(requests[m].size);
    if (t < best) {
      best = t;
      best_m = m;
    }
  }

  // Materialize the winning assignment.
  std::vector<bool> active(k, true);
  if (best_m < k) {
    const Bytes dm = requests[best_m].size;
    for (std::size_t i = 0; i < k; ++i) {
      if (i == best_m) {
        active[i] = false;
      } else if (requests[i].size <= dm) {
        active[i] = x[i] <= y[i];
      } else {
        active[i] = true;
      }
    }
  }
  return make_policy(model, requests, std::move(active));
}

// -------------------------------------------------------------- branch & bound

Policy BranchBoundOptimizer::optimize(const CostModel& model,
                                      std::span<const ActiveRequest> requests) const {
  assert(model.valid());
  const std::size_t k = requests.size();
  last_nodes_ = 0;
  if (k == 0) return Policy{{}, 0.0};

  std::vector<Seconds> x(k), y(k), zc(k);
  for (std::size_t i = 0; i < k; ++i) {
    x[i] = model.x_i(requests[i]);
    y[i] = model.y_i(requests[i]);
    zc[i] = model.f_compute(requests[i].size);
  }

  // Relaxation: each undecided request contributes at least min(x, y) and
  // the z term never shrinks. suffix_min[p] = Σ_{i>=p} min(x_i, y_i).
  std::vector<Seconds> suffix_min(k + 1, 0.0);
  for (std::size_t p = k; p-- > 0;) suffix_min[p] = suffix_min[p + 1] + std::min(x[p], y[p]);

  Seconds best = std::numeric_limits<double>::infinity();
  std::vector<bool> current(k, true), best_assign(k, true);

  // Iterative DFS over (index, partial sum, current max-z).
  struct Frame {
    std::size_t i;
    Seconds sum;
    Seconds max_z;
    int stage;  // 0: try active, 1: try normal, 2: done
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0.0, 0.0, 0});

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.i == k) {
      ++last_nodes_;
      const Seconds t = f.sum + f.max_z;
      if (t < best) {
        best = t;
        best_assign = current;
      }
      stack.pop_back();
      continue;
    }
    if (f.stage == 2 || f.sum + f.max_z + suffix_min[f.i] >= best) {
      stack.pop_back();
      continue;
    }
    ++last_nodes_;
    if (f.stage == 0) {
      f.stage = 1;
      current[f.i] = true;
      stack.push_back({f.i + 1, f.sum + x[f.i], f.max_z, 0});
    } else {
      f.stage = 2;
      current[f.i] = false;
      stack.push_back({f.i + 1, f.sum + y[f.i], std::max(f.max_z, zc[f.i]), 0});
    }
  }

  return make_policy(model, requests, std::move(best_assign));
}

// -------------------------------------------------------------- greedy

Policy GreedyOptimizer::optimize(const CostModel& model,
                                 std::span<const ActiveRequest> requests) const {
  assert(model.valid());
  std::vector<bool> active(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    active[i] = model.x_i(requests[i]) <= model.y_i(requests[i]);
  }
  return make_policy(model, requests, std::move(active));
}

// -------------------------------------------------------------- static baselines

Policy AllActiveOptimizer::optimize(const CostModel& model,
                                    std::span<const ActiveRequest> requests) const {
  return make_policy(model, requests, std::vector<bool>(requests.size(), true));
}

Policy AllNormalOptimizer::optimize(const CostModel& model,
                                    std::span<const ActiveRequest> requests) const {
  return make_policy(model, requests, std::vector<bool>(requests.size(), false));
}

// -------------------------------------------------------------- factory

std::unique_ptr<Optimizer> make_optimizer(const std::string& name) {
  if (name == "exhaustive") return std::make_unique<ExhaustiveOptimizer>();
  if (name == "matrix") return std::make_unique<MatrixEnumOptimizer>();
  if (name == "sortmin") return std::make_unique<SortMinOptimizer>();
  if (name == "branchbound") return std::make_unique<BranchBoundOptimizer>();
  if (name == "greedy") return std::make_unique<GreedyOptimizer>();
  if (name == "all-active") return std::make_unique<AllActiveOptimizer>();
  if (name == "all-normal") return std::make_unique<AllNormalOptimizer>();
  return nullptr;
}

}  // namespace dosas::sched
