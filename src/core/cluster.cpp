#include "core/cluster.hpp"

namespace dosas::core {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      fs_(config_.storage_nodes, config_.strip_size),
      pfs_client_(fs_),
      registry_(kernels::Registry::with_builtins()) {
  const std::string optimizer = config_.optimizer_override.empty()
                                    ? scheme_optimizer(config_.scheme)
                                    : config_.optimizer_override;
  if (config_.network_rate > 0.0 && !config_.network_per_node) {
    network_ = std::make_shared<TokenBucket>(config_.network_rate, /*burst=*/1_MiB,
                                             config_.network_mode);
  }
  if (config_.network_rate > 0.0 && config_.network_per_node) {
    // Small burst: a node's uplink must not hide a whole chunk's transfer
    // cost behind accumulated idle credit, or TS-vs-AS comparisons at low
    // concurrency would see free reads.
    node_links_.reserve(config_.storage_nodes);
    for (std::uint32_t i = 0; i < config_.storage_nodes; ++i) {
      node_links_.push_back(std::make_shared<TokenBucket>(config_.network_rate,
                                                          /*burst=*/8_KiB,
                                                          config_.network_mode));
    }
  }
  servers_.reserve(config_.storage_nodes);
  for (std::uint32_t i = 0; i < config_.storage_nodes; ++i) {
    server::ContentionEstimator::Config ce;
    ce.bandwidth = config_.bandwidth;
    ce.optimizer = optimizer;
    server::StorageServer::Config sc;
    sc.cores = config_.cores_per_node;
    sc.chunk_size = config_.server_chunk_size;
    sc.interrupt_min_remaining = config_.interrupt_min_remaining;
    sc.result_cache_entries = config_.result_cache_entries;
    sc.coalesce_identical = config_.coalesce_identical;
    sc.probe_interval = config_.probe_interval;
    sc.pace_kernel_rates = config_.pace_kernel_rates;
    if (i < config_.node_capacity_factor.size() && config_.node_capacity_factor[i] > 0.0) {
      sc.capacity_factor = config_.node_capacity_factor[i];
    }
    servers_.push_back(std::make_unique<server::StorageServer>(
        fs_, i, kernels::Registry::with_builtins(), ce, config_.rates, sc));
    if (config_.faults != nullptr) {
      servers_.back()->set_fault_injector(config_.faults);
      fs_.data_server(i).set_fault_injector(config_.faults);
    }
  }

  std::vector<server::StorageServer*> raw;
  raw.reserve(servers_.size());
  for (auto& s : servers_) raw.push_back(s.get());
  client::ActiveClient::Config cc;
  cc.chunk_size = config_.client_chunk_size;
  cc.resubmit_interrupted = config_.resubmit_interrupted;
  cc.network = network_;
  cc.network_per_node = node_links_;
  if (config_.pace_client_compute) {
    cc.pace_compute_rates = std::make_shared<server::RateTable>(config_.rates);
  }
  cc.retry = config_.client_retry;
  cc.request_timeout = config_.request_timeout;
  cc.faults = config_.faults;
  cc.circuit_threshold = config_.circuit_threshold;
  cc.hedge_reads = config_.hedge_reads;
  cc.hedge_p99_multiplier = config_.hedge_p99_multiplier;
  cc.hedge_min_delay = config_.hedge_min_delay;
  cc.hedge_min_samples = config_.hedge_min_samples;
  cc.hedge_cold_delay = config_.hedge_cold_delay;
  cc.hedge_max_per_read = config_.hedge_max_per_read;
  asc_ = std::make_unique<client::ActiveClient>(pfs_client_, registry_, std::move(raw), cc);
}

void Cluster::probe_all() {
  for (auto& s : servers_) s->probe();
}

}  // namespace dosas::core
