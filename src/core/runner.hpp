// runner.hpp — drive concurrent active-I/O workloads through the real
// in-process cluster (integration testing and the examples' workhorse).
//
// Spawns one application thread per request (one MPI rank per I/O in the
// paper's setup), issues read_ex through the shared ASC, and gathers
// per-request outcomes plus wall-clock timing and the server/client
// counters that show *where* each kernel actually ran.
#pragma once

#include <string>
#include <vector>

#include "core/cluster.hpp"

namespace dosas::core {

struct WorkloadRequest {
  std::string path;       ///< file to read
  Bytes offset = 0;
  Bytes length = 0;       ///< 0 = whole file
  std::string operation;  ///< kernel operation string
};

struct WorkloadOutcome {
  bool ok = false;
  std::string error;
  std::vector<std::uint8_t> result;
  Seconds latency = 0.0;
};

struct WorkloadReport {
  std::vector<WorkloadOutcome> outcomes;
  Seconds wall_time = 0.0;
  std::size_t failures = 0;
};

/// Run all requests concurrently (one thread each) against the cluster's
/// shared ASC. Blocks until every request resolves.
WorkloadReport run_workload(Cluster& cluster, const std::vector<WorkloadRequest>& requests);

}  // namespace dosas::core
