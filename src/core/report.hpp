// report.hpp — fixed-width table rendering for the bench harnesses.
//
// Every bench prints the same rows/series the paper's tables and figures
// report; this keeps the output uniform and diffable (EXPERIMENTS.md embeds
// the printed tables verbatim).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dosas::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Comma-separated rendering (cells containing commas or quotes are
  /// quoted) for downstream plotting.
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.34" style fixed-precision formatting.
std::string fmt(double value, int precision = 2);

/// "128 MiB" / "1.0 GiB" for a request size.
std::string fmt_bytes_short(Bytes b);

}  // namespace dosas::core
