// multi_node.hpp — multi-storage-node extension of the experiment model.
//
// The paper's evaluation normalizes everything to "I/Os per storage node"
// on one node; a real deployment (their own Discfarm had several I/O
// servers, Intrepid had 1 I/O node per 64 compute nodes) runs many storage
// nodes behind a shared network. This model adds that dimension:
//
//   * N storage nodes, each with its own kernel-capacity CPU and its own
//     DOSAS Contention Estimator (decisions are per node, as in the real
//     architecture — a node only sees its own queue);
//   * one shared backbone link (fair-share across all flows) or,
//     optionally, a dedicated link per storage node;
//   * requests carry a placement (which node holds their data).
//
// Used by the scaling bench (does DOSAS's advantage survive N nodes?) and
// by tests asserting the single-node case degenerates exactly to
// simulate_scheme().
#pragma once

#include <vector>

#include "core/sim_model.hpp"

namespace dosas::core {

struct MultiNodeConfig {
  ModelConfig node;                ///< per-node platform constants
  std::uint32_t storage_nodes = 4;
  bool shared_link = true;  ///< one backbone link; false = link per node
  /// On a shared backbone, a CE that assumes the full nominal bandwidth
  /// demotes into a congested network and loses badly (each node's queue
  /// looks small, but N nodes' demoted transfers pile onto one link). With
  /// this on, each node's CE derates its bandwidth estimate by the number
  /// of currently busy storage nodes — the network analogue of the paper's
  /// CPU-utilization probing. Ignored for dedicated links.
  bool ce_bandwidth_aware = true;
  /// Straggler injection: per-node kernel-capacity multiplier (index =
  /// node id). Missing entries default to 1.0; e.g. {1.0, 0.25} makes
  /// node 1 a 4x-slow straggler. Values must be > 0.
  std::vector<double> node_capacity_factor;
};

struct MultiNodeRequest {
  Bytes size = 0;
  Seconds arrival = 0.0;
  std::uint32_t node = 0;  ///< storage node holding the data
};

struct MultiNodeStats {
  Seconds makespan = 0.0;
  double aggregate_bandwidth_mbps = 0.0;
  Seconds mean_completion = 0.0;
  std::size_t served_active = 0;
  std::size_t demoted = 0;
  std::size_t interrupted = 0;
  std::vector<std::size_t> per_node_active;  ///< kernels completed per node
};

/// Simulate `scheme` on an N-node deployment.
MultiNodeStats simulate_multi_node(SchemeKind scheme, const MultiNodeConfig& config,
                                   const std::vector<MultiNodeRequest>& requests,
                                   Rng* rng = nullptr);

/// `per_node` identical requests of `size` on each of `nodes` nodes, all
/// arriving at t = 0 (the paper's workload, replicated per node).
std::vector<MultiNodeRequest> balanced_workload(std::uint32_t nodes, std::size_t per_node,
                                                Bytes size);

/// Skewed placement: `total` requests distributed over nodes by a Zipf-ish
/// weighting (node 0 hottest) — the hot-spot scenario where per-node
/// scheduling shines.
std::vector<MultiNodeRequest> skewed_workload(std::uint32_t nodes, std::size_t total,
                                              Bytes size, double skew, Rng& rng);

}  // namespace dosas::core
