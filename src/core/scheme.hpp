// scheme.hpp — the three evaluated analysis schemes (paper §IV-A3).
//
//   TS    Traditional Storage: servers do normal I/O only; kernels run at
//         the clients. Realized by the "all-normal" scheduling policy
//         (every active request is demoted).
//   AS    Normal Active Storage: kernels always run at the storage nodes
//         ("all-active" policy).
//   DOSAS Dynamic Operation Scheduling Active Storage: the CE's optimizer
//         decides per request.
//
// Expressing the baselines as degenerate CE policies means all three
// schemes exercise the *same* code path end to end — the only difference
// is the scheduling decision, exactly the paper's experimental design.
#pragma once

#include <string>

namespace dosas::core {

enum class SchemeKind {
  kTraditional,  // TS
  kActive,       // AS
  kDosas,        // DOSAS
};

inline const char* scheme_name(SchemeKind s) {
  switch (s) {
    case SchemeKind::kTraditional: return "TS";
    case SchemeKind::kActive: return "AS";
    case SchemeKind::kDosas: return "DOSAS";
  }
  return "?";
}

/// The CE optimizer that realizes each scheme.
inline std::string scheme_optimizer(SchemeKind s) {
  switch (s) {
    case SchemeKind::kTraditional: return "all-normal";
    case SchemeKind::kActive: return "all-active";
    case SchemeKind::kDosas: return "exhaustive";
  }
  return "exhaustive";
}

}  // namespace dosas::core
