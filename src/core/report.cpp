#include "core/report.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dosas::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_bytes_short(Bytes b) { return format_bytes(b); }

}  // namespace dosas::core
