#include "core/multi_node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <memory>

#include "sim/fluid_resource.hpp"
#include "sim/simulator.hpp"

namespace dosas::core {

std::vector<MultiNodeRequest> balanced_workload(std::uint32_t nodes, std::size_t per_node,
                                                Bytes size) {
  std::vector<MultiNodeRequest> out;
  out.reserve(nodes * per_node);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (std::size_t i = 0; i < per_node; ++i) out.push_back({size, 0.0, n});
  }
  return out;
}

std::vector<MultiNodeRequest> skewed_workload(std::uint32_t nodes, std::size_t total,
                                              Bytes size, double skew, Rng& rng) {
  assert(nodes >= 1);
  // Zipf-style weights w_n = 1/(n+1)^skew, sampled per request.
  std::vector<double> cumulative(nodes);
  double acc = 0.0;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    acc += 1.0 / std::pow(static_cast<double>(n + 1), skew);
    cumulative[n] = acc;
  }
  std::vector<MultiNodeRequest> out;
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double u = rng.uniform(0.0, acc);
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const auto node = static_cast<std::uint32_t>(it - cumulative.begin());
    out.push_back({size, 0.0, std::min(node, nodes - 1)});
  }
  return out;
}

namespace {

enum class MState {
  kNotArrived,
  kPending,
  kActiveCpu,
  kInFlight,  // any link/client phase after the decision
  kDone,
};

struct MTrack {
  MultiNodeRequest req;
  MState state = MState::kNotArrived;
  sim::FluidResource::JobId cpu_job = 0;
};

}  // namespace

MultiNodeStats simulate_multi_node(SchemeKind scheme, const MultiNodeConfig& config,
                                   const std::vector<MultiNodeRequest>& requests, Rng* rng) {
  MultiNodeStats out;
  out.per_node_active.assign(config.storage_nodes, 0);
  if (requests.empty()) return out;
  const auto& mc = config.node;

  sim::Simulator s;

  double actual_bw = mc.bandwidth_mbps;
  if (rng != nullptr && mc.bw_jitter_high_mbps > mc.bw_jitter_low_mbps) {
    actual_bw = rng->uniform(mc.bw_jitter_low_mbps, mc.bw_jitter_high_mbps);
  }

  // Links: one shared backbone, or one per storage node.
  std::vector<std::unique_ptr<sim::FluidResource>> links;
  const std::size_t link_count = config.shared_link ? 1 : config.storage_nodes;
  for (std::size_t i = 0; i < link_count; ++i) {
    links.push_back(std::make_unique<sim::FluidResource>(
        s, sim::FluidResource::Config{.capacity = mb_per_sec(actual_bw),
                                      .per_job_cap = 0.0,
                                      .name = "link" + std::to_string(i)}));
  }
  auto link_for = [&](std::uint32_t node) -> sim::FluidResource& {
    return config.shared_link ? *links[0] : *links[node];
  };

  // Per-node storage CPUs (stragglers get a derated capacity).
  std::vector<std::unique_ptr<sim::FluidResource>> cpus;
  for (std::uint32_t n = 0; n < config.storage_nodes; ++n) {
    const double factor = n < config.node_capacity_factor.size() &&
                                  config.node_capacity_factor[n] > 0.0
                              ? config.node_capacity_factor[n]
                              : 1.0;
    cpus.push_back(std::make_unique<sim::FluidResource>(
        s, sim::FluidResource::Config{.capacity = mb_per_sec(mc.storage_kernel_mbps) * factor,
                                      .per_job_cap = mb_per_sec(mc.storage_core_mbps),
                                      .name = "cpu" + std::to_string(n)}));
  }

  const BytesPerSec client_rate = mb_per_sec(mc.client_mbps);
  std::vector<MTrack> st(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) st[i].req = requests[i];

  std::size_t remaining = requests.size();
  Seconds sum_completion = 0.0;
  Seconds last_completion = 0.0;

  auto done = [&](std::size_t i) {
    st[i].state = MState::kDone;
    sum_completion += s.now();
    last_completion = std::max(last_completion, s.now());
    --remaining;
  };

  auto start_normal = [&](std::size_t i, double move_bytes, double compute_bytes) {
    st[i].state = MState::kInFlight;
    link_for(st[i].req.node).submit(move_bytes, [&, i, compute_bytes](sim::Time) {
      s.schedule_after(compute_bytes / client_rate, [&, i] { done(i); });
    });
  };

  auto start_active = [&](std::size_t i) {
    st[i].state = MState::kActiveCpu;
    const Bytes d = st[i].req.size;
    const std::uint32_t node = st[i].req.node;
    st[i].cpu_job = cpus[node]->submit(static_cast<double>(d), [&, i, d, node](sim::Time) {
      ++out.served_active;
      ++out.per_node_active[node];
      st[i].state = MState::kInFlight;
      link_for(node).submit(static_cast<double>(mc.result_bytes(d)),
                            [&, i](sim::Time) { done(i); });
    });
  };

  // Per-node DOSAS evaluation: each node's CE sees only its own queue.
  auto evaluate_node = [&](std::uint32_t node) {
    std::vector<std::size_t> idx;
    std::vector<sched::ActiveRequest> snapshot;
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (st[i].req.node != node) continue;
      if (st[i].state == MState::kPending) {
        snapshot.push_back({i, st[i].req.size, mc.result_bytes(st[i].req.size), "op"});
        idx.push_back(i);
      } else if (st[i].state == MState::kActiveCpu) {
        const auto rem = static_cast<Bytes>(cpus[node]->remaining(st[i].cpu_job));
        snapshot.push_back({i, rem, mc.result_bytes(st[i].req.size), "op"});
        idx.push_back(i);
      }
    }
    if (snapshot.empty()) return;

    // Bandwidth estimate: on a shared backbone a probing CE sees that
    // other nodes' traffic will contend, and derates accordingly.
    double bw_estimate = mc.bandwidth_mbps;
    if (config.shared_link && config.ce_bandwidth_aware) {
      std::vector<bool> busy(config.storage_nodes, false);
      for (const auto& t : st) {
        if (t.state == MState::kPending || t.state == MState::kActiveCpu ||
            t.state == MState::kInFlight) {
          busy[t.req.node] = true;
        }
      }
      std::size_t busy_nodes = 0;
      for (bool b : busy) busy_nodes += b;
      bw_estimate /= static_cast<double>(std::max<std::size_t>(1, busy_nodes));
    }

    sched::CostModel model;
    model.bandwidth = mb_per_sec(bw_estimate);
    model.storage_rate = mb_per_sec(mc.storage_kernel_mbps);
    model.compute_rate = mb_per_sec(mc.client_mbps);
    auto optimizer = sched::make_optimizer(mc.optimizer);
    assert(optimizer != nullptr);
    const auto policy = optimizer->optimize(model, snapshot);

    for (std::size_t j = 0; j < idx.size(); ++j) {
      const std::size_t i = idx[j];
      if (st[i].state == MState::kPending) {
        if (policy.active[j]) {
          start_active(i);
        } else {
          ++out.demoted;
          const auto d = static_cast<double>(st[i].req.size);
          start_normal(i, d, d);
        }
      } else if (st[i].state == MState::kActiveCpu && !policy.active[j] &&
                 mc.allow_interrupt) {
        const double rem = cpus[node]->remaining(st[i].cpu_job);
        if (rem <= mc.interrupt_min_remaining * static_cast<double>(st[i].req.size)) {
          continue;
        }
        cpus[node]->cancel(st[i].cpu_job);
        ++out.interrupted;
        ++out.demoted;
        start_normal(i, rem + static_cast<double>(mc.checkpoint_size), rem);
      }
    }
  };

  for (std::size_t i = 0; i < st.size(); ++i) {
    assert(st[i].req.node < config.storage_nodes);
    s.schedule_at(st[i].req.arrival, [&, i] {
      switch (scheme) {
        case SchemeKind::kTraditional: {
          ++out.demoted;
          const auto d = static_cast<double>(st[i].req.size);
          start_normal(i, d, d);
          break;
        }
        case SchemeKind::kActive:
          start_active(i);
          break;
        case SchemeKind::kDosas:
          st[i].state = MState::kPending;
          evaluate_node(st[i].req.node);
          break;
      }
    });
  }

  // Periodic probes tick every node.
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    for (std::uint32_t n = 0; n < config.storage_nodes; ++n) evaluate_node(n);
    s.schedule_after(mc.probe_interval, tick);
  };
  if (scheme == SchemeKind::kDosas && mc.probe_interval > 0.0) {
    s.schedule_after(mc.probe_interval, tick);
  }

  s.run();
  assert(remaining == 0);

  out.makespan = last_completion;
  out.mean_completion = sum_completion / static_cast<double>(requests.size());
  Bytes total = 0;
  for (const auto& r : requests) total += r.size;
  out.aggregate_bandwidth_mbps = out.makespan > 0.0 ? to_mib(total) / out.makespan : 0.0;
  return out;
}

}  // namespace dosas::core
