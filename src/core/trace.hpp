// trace.hpp — workload traces for the experiment models.
//
// A trace is a line-oriented text format, one I/O request per line:
//
//   # comments and blank lines are skipped
//   t=0.00  node=0  size=128MiB  op=gaussian2d:width=1024
//   t=0.25  node=1  size=512KiB  op=sum
//
// Fields may appear in any order; `node` and `op` are optional (default 0
// / "sum"). Sizes accept B/KiB/MiB/GiB suffixes (also KB/MB/GB treated as
// binary) or raw byte counts. Traces let experiments be captured,
// versioned, and replayed (`dosas_ctl replay` against the calibrated model,
// `dosas_ctl runtime` against the real in-process cluster).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/multi_node.hpp"

namespace dosas::core {

struct TraceRecord {
  Seconds arrival = 0.0;
  std::uint32_t node = 0;
  Bytes size = 0;
  std::string operation = "sum";
};

struct Trace {
  std::vector<TraceRecord> records;

  /// Requests for the single-node model (node fields ignored).
  std::vector<ModelRequest> to_model_requests() const;

  /// Requests for the multi-node model.
  std::vector<MultiNodeRequest> to_multi_node_requests() const;

  /// Highest node index referenced, plus one (0 for an empty trace).
  std::uint32_t node_count() const;

  /// Canonical text form (round-trips through parse()).
  std::string to_text() const;

  static Result<Trace> parse(std::istream& in);
  static Result<Trace> parse_text(const std::string& text);
  static Result<Trace> load(const std::string& path);
  Status save(const std::string& path) const;
};

/// Parse "128MiB", "4KB", "1073741824" into bytes. Decimal-prefix units
/// (KB/MB/GB) are treated as their binary siblings, matching the paper's
/// loose usage.
Result<Bytes> parse_size(const std::string& text);

/// Render a byte count in canonical trace form (largest exact binary unit).
std::string size_to_text(Bytes b);

}  // namespace dosas::core
