#include "core/experiments.hpp"

#include <algorithm>

namespace dosas::core {

std::vector<std::size_t> paper_io_counts() { return {1, 2, 4, 8, 16, 32, 64}; }

std::vector<SweepPoint> scheme_sweep(const ModelConfig& config,
                                     const std::vector<std::size_t>& ios_list,
                                     Bytes request_size, bool with_dosas) {
  std::vector<SweepPoint> out;
  out.reserve(ios_list.size());
  for (std::size_t n : ios_list) {
    const auto workload = uniform_workload(n, request_size);
    SweepPoint p;
    p.ios = n;
    p.ts = simulate_scheme(SchemeKind::kTraditional, config, workload).makespan;
    p.as = simulate_scheme(SchemeKind::kActive, config, workload).makespan;
    if (with_dosas) {
      p.dosas_stats = simulate_scheme(SchemeKind::kDosas, config, workload);
      p.dosas = p.dosas_stats.makespan;
    }
    out.push_back(p);
  }
  return out;
}

Table sweep_table(const std::vector<SweepPoint>& points, bool with_dosas) {
  std::vector<std::string> headers = {"IOs/node", "TS (s)", "AS (s)"};
  if (with_dosas) {
    headers.push_back("DOSAS (s)");
    headers.push_back("winner");
  } else {
    headers.push_back("winner");
  }
  Table t(headers);
  for (const auto& p : points) {
    std::vector<std::string> row = {std::to_string(p.ios), fmt(p.ts), fmt(p.as)};
    if (with_dosas) {
      row.push_back(fmt(p.dosas));
      const Seconds best = std::min({p.ts, p.as, p.dosas});
      // DOSAS "wins" when it matches the best static scheme (its whole
      // point is tracking the winner); charge it only for real gaps.
      row.push_back(p.dosas <= best * 1.005 ? "DOSAS" : (p.as <= p.ts ? "AS" : "TS"));
    } else {
      row.push_back(p.as <= p.ts ? "AS" : "TS");
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::vector<BandwidthPoint> bandwidth_sweep(const ModelConfig& config,
                                            const std::vector<std::size_t>& ios_list,
                                            Bytes request_size) {
  std::vector<BandwidthPoint> out;
  out.reserve(ios_list.size());
  for (std::size_t n : ios_list) {
    const auto workload = uniform_workload(n, request_size);
    BandwidthPoint p;
    p.ios = n;
    p.ts_mbps =
        simulate_scheme(SchemeKind::kTraditional, config, workload).aggregate_bandwidth_mbps;
    p.as_mbps = simulate_scheme(SchemeKind::kActive, config, workload).aggregate_bandwidth_mbps;
    p.dosas_mbps =
        simulate_scheme(SchemeKind::kDosas, config, workload).aggregate_bandwidth_mbps;
    out.push_back(p);
  }
  return out;
}

Table bandwidth_table(const std::vector<BandwidthPoint>& points) {
  Table t({"IOs/node", "TS (MiB/s)", "AS (MiB/s)", "DOSAS (MiB/s)"});
  for (const auto& p : points) {
    t.add_row({std::to_string(p.ios), fmt(p.ts_mbps), fmt(p.as_mbps), fmt(p.dosas_mbps)});
  }
  return t;
}

AccuracyReport scheduler_accuracy(std::uint64_t seed) {
  AccuracyReport report;
  Rng rng(seed);

  const std::vector<Bytes> sizes = {128_MiB, 256_MiB, 512_MiB, 1_GiB};
  struct KernelCase {
    const char* name;
    ModelConfig config;
  };
  std::vector<KernelCase> kernels = {{"sum", ModelConfig::sum()},
                                     {"gaussian2d", ModelConfig::gaussian()}};
  for (auto& k : kernels) {
    // Actual bandwidth varies 111–120 MB/s (paper §IV-B2); the CE's model
    // stays at the nominal 118. Storage capacity additionally jitters by
    // ±15% (OS/task-scheduling noise — the second misjudgment source the
    // paper names).
    k.config.bw_jitter_low_mbps = 111.0;
    k.config.bw_jitter_high_mbps = 120.0;
    k.config.storage_rate_jitter = 0.15;
  }

  std::size_t correct = 0;
  for (const auto& kc : kernels) {
    for (Bytes size : sizes) {
      for (std::size_t n : paper_io_counts()) {
        // The CE's decision on the initial queue snapshot.
        sched::CostModel model;
        model.bandwidth = mb_per_sec(kc.config.bandwidth_mbps);
        model.storage_rate = mb_per_sec(kc.config.storage_kernel_mbps);
        model.compute_rate = mb_per_sec(kc.config.client_mbps);
        std::vector<sched::ActiveRequest> reqs(n);
        for (std::size_t i = 0; i < n; ++i) {
          reqs[i] = {i + 1, size, kc.config.result_bytes(size), kc.name};
        }
        const auto policy = sched::ExhaustiveOptimizer{}.optimize(model, reqs);
        const bool majority_active = policy.active_count() * 2 >= n;

        // "Practice": the faster static scheme under the jittered truth.
        Rng run_rng = rng.fork();
        const auto workload = uniform_workload(n, size);
        Rng rng_ts = run_rng.fork();
        Rng rng_as = run_rng.fork();
        const Seconds ts =
            simulate_scheme(SchemeKind::kTraditional, kc.config, workload, &rng_ts).makespan;
        const Seconds as =
            simulate_scheme(SchemeKind::kActive, kc.config, workload, &rng_as).makespan;
        const bool practice_active = as <= ts;

        AccuracyCase c;
        c.kernel = kc.name;
        c.ios = n;
        c.request_size = size;
        c.decision = majority_active ? "Active" : "Normal";
        c.practice = practice_active ? "Active" : "Normal";
        c.correct = majority_active == practice_active;
        correct += c.correct;
        report.cases.push_back(std::move(c));
      }
    }
  }
  report.accuracy =
      report.cases.empty() ? 0.0 : static_cast<double>(correct) / report.cases.size();
  return report;
}

Table accuracy_table(const AccuracyReport& report) {
  Table t({"#", "kernel", "IOs", "size", "Algorithm Decision", "Practice", "Judgment"});
  std::size_t i = 1;
  for (const auto& c : report.cases) {
    t.add_row({std::to_string(i++), c.kernel, std::to_string(c.ios),
               fmt_bytes_short(c.request_size), c.decision, c.practice,
               c.correct ? "TRUE" : "FALSE"});
  }
  return t;
}

}  // namespace dosas::core
