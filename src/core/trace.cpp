#include "core/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dosas::core {

Result<Bytes> parse_size(const std::string& text) {
  if (text.empty()) return error(ErrorCode::kInvalidArgument, "size: empty");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) {
    return error(ErrorCode::kInvalidArgument, "size: bad number in '" + text + "'");
  }
  std::string unit(end);
  // Trim and lowercase.
  unit.erase(std::remove_if(unit.begin(), unit.end(),
                            [](unsigned char c) { return std::isspace(c); }),
             unit.end());
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });

  double mult = 1.0;
  if (unit.empty() || unit == "b") {
    mult = 1.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    mult = 1024.0;
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    mult = 1024.0 * 1024.0;
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else {
    return error(ErrorCode::kInvalidArgument, "size: unknown unit '" + unit + "'");
  }
  return static_cast<Bytes>(value * mult);
}

std::string size_to_text(Bytes b) {
  if (b >= 1_GiB && b % 1_GiB == 0) return std::to_string(b >> 30) + "GiB";
  if (b >= 1_MiB && b % 1_MiB == 0) return std::to_string(b >> 20) + "MiB";
  if (b >= 1_KiB && b % 1_KiB == 0) return std::to_string(b >> 10) + "KiB";
  return std::to_string(b) + "B";
}

Result<Trace> Trace::parse(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);

    std::istringstream fields(line);
    std::string field;
    TraceRecord rec;
    bool has_size = false;
    bool any = false;
    while (fields >> field) {
      any = true;
      const auto eq = field.find('=');
      if (eq == std::string::npos || eq == 0) {
        return error(ErrorCode::kInvalidArgument,
                     "trace line " + std::to_string(line_no) + ": bad field '" + field + "'");
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "t") {
        rec.arrival = std::strtod(value.c_str(), nullptr);
        if (rec.arrival < 0) {
          return error(ErrorCode::kInvalidArgument,
                       "trace line " + std::to_string(line_no) + ": negative arrival");
        }
      } else if (key == "node") {
        rec.node = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
      } else if (key == "size") {
        auto size = parse_size(value);
        if (!size.is_ok()) {
          return error(ErrorCode::kInvalidArgument,
                       "trace line " + std::to_string(line_no) + ": " +
                           size.status().message());
        }
        rec.size = size.value();
        has_size = true;
      } else if (key == "op") {
        rec.operation = value;
      } else {
        return error(ErrorCode::kInvalidArgument, "trace line " + std::to_string(line_no) +
                                                      ": unknown key '" + key + "'");
      }
    }
    if (!any) continue;  // blank / comment-only line
    if (!has_size) {
      return error(ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) + ": missing size=");
    }
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

Result<Trace> Trace::parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

Result<Trace> Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return error(ErrorCode::kNotFound, "cannot open trace: " + path);
  return parse(in);
}

Status Trace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return error(ErrorCode::kUnavailable, "cannot write trace: " + path);
  out << to_text();
  return out ? Status::ok() : error(ErrorCode::kUnavailable, "write failed: " + path);
}

std::string Trace::to_text() const {
  std::ostringstream out;
  out << "# dosas workload trace: " << records.size() << " request(s)\n";
  for (const auto& rec : records) {
    char t[32];
    std::snprintf(t, sizeof(t), "%.6f", rec.arrival);
    out << "t=" << t << " node=" << rec.node << " size=" << size_to_text(rec.size)
        << " op=" << rec.operation << "\n";
  }
  return out.str();
}

std::vector<ModelRequest> Trace::to_model_requests() const {
  std::vector<ModelRequest> out;
  out.reserve(records.size());
  for (const auto& rec : records) out.push_back({rec.size, rec.arrival});
  return out;
}

std::vector<MultiNodeRequest> Trace::to_multi_node_requests() const {
  std::vector<MultiNodeRequest> out;
  out.reserve(records.size());
  for (const auto& rec : records) out.push_back({rec.size, rec.arrival, rec.node});
  return out;
}

std::uint32_t Trace::node_count() const {
  std::uint32_t max_node = 0;
  if (records.empty()) return 0;
  for (const auto& rec : records) max_node = std::max(max_node, rec.node);
  return max_node + 1;
}

}  // namespace dosas::core
