#include "core/sim_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "sim/fluid_resource.hpp"
#include "sim/server_pool.hpp"
#include "sim/simulator.hpp"

namespace dosas::core {

ModelConfig ModelConfig::gaussian() {
  ModelConfig c;
  c.storage_kernel_mbps = 80.0;
  c.storage_core_mbps = 80.0;
  c.client_mbps = 80.0;
  return c;
}

ModelConfig ModelConfig::sum() {
  ModelConfig c;
  c.storage_kernel_mbps = 860.0;
  c.storage_core_mbps = 860.0;
  c.client_mbps = 860.0;
  return c;
}

Result<ModelConfig> ModelConfig::from_rates(const server::RateTable& rates,
                                            const std::string& op) {
  auto entry = rates.get(op);
  if (!entry.is_ok()) return entry.status();
  ModelConfig c;
  c.storage_kernel_mbps = to_mib_per_sec(entry.value().storage_max);
  c.storage_core_mbps = c.storage_kernel_mbps;
  c.client_mbps = to_mib_per_sec(entry.value().compute);
  return c;
}

std::vector<ModelRequest> uniform_workload(std::size_t n, Bytes size) {
  return std::vector<ModelRequest>(n, ModelRequest{size, 0.0});
}

std::vector<ModelRequest> poisson_workload(std::size_t n, Bytes size, Seconds mean_gap,
                                           Rng& rng) {
  std::vector<ModelRequest> out(n);
  Seconds t = 0.0;
  for (auto& r : out) {
    r.size = size;
    r.arrival = t;
    // Exponential inter-arrival via inverse CDF.
    t += -mean_gap * std::log(1.0 - rng.uniform());
  }
  return out;
}

namespace {

enum class ReqState {
  kNotArrived,     // scheduled for a future arrival time
  kPending,        // arrived, awaiting a DOSAS decision
  kActiveCpu,      // kernel running on the storage node
  kResultXfer,     // kernel done; result crossing the link
  kNormalXfer,     // demoted; raw data crossing the link
  kClientCompute,  // client running the kernel
  kDone,
};

struct ReqTrack {
  ModelRequest req;
  ReqState state = ReqState::kNotArrived;
  sim::FluidResource::JobId cpu_job = 0;
  bool on_disk = false;  ///< active request still staging through the disk
};

/// Uniform facade over the two storage-CPU disciplines (fluid processor
/// sharing vs FCFS run-to-completion).
struct CpuAdapter {
  sim::FluidResource* fluid = nullptr;
  sim::ServerPool* pool = nullptr;

  std::uint64_t submit(double work, std::function<void(sim::Time)> done) {
    return fluid != nullptr ? fluid->submit(work, std::move(done))
                            : pool->submit(work, std::move(done));
  }
  double remaining(std::uint64_t id) const {
    return fluid != nullptr ? fluid->remaining(id) : pool->remaining(id);
  }
  double cancel(std::uint64_t id) {
    return fluid != nullptr ? fluid->cancel(id) : pool->cancel(id);
  }
};

}  // namespace

RunStats simulate_scheme(SchemeKind scheme, const ModelConfig& config,
                         const std::vector<ModelRequest>& requests, Rng* rng) {
  RunStats out;
  if (requests.empty()) return out;

  sim::Simulator s;

  // Actual link bandwidth: jittered if configured (the CE always assumes
  // the nominal value — see header comment).
  double actual_bw_mbps = config.bandwidth_mbps;
  if (rng != nullptr && config.bw_jitter_high_mbps > config.bw_jitter_low_mbps) {
    actual_bw_mbps = rng->uniform(config.bw_jitter_low_mbps, config.bw_jitter_high_mbps);
  }
  // Actual storage capacity: jittered by unmodeled OS/task-scheduling
  // noise; the CE's model below always assumes the nominal rate.
  double rate_factor = 1.0;
  if (rng != nullptr && config.storage_rate_jitter > 0.0) {
    rate_factor =
        rng->uniform(1.0 - config.storage_rate_jitter, 1.0 + config.storage_rate_jitter);
  }

  sim::FluidResource link(
      s, {.capacity = mb_per_sec(actual_bw_mbps), .per_job_cap = 0.0, .name = "link"});

  // Storage CPU under the configured discipline.
  std::unique_ptr<sim::FluidResource> cpu_fluid;
  std::unique_ptr<sim::ServerPool> cpu_pool;
  CpuAdapter cpu;
  if (config.fcfs_cpu) {
    const auto cores = static_cast<std::size_t>(std::max(
        1.0, std::round(config.storage_kernel_mbps / config.storage_core_mbps)));
    cpu_pool = std::make_unique<sim::ServerPool>(
        s, sim::ServerPool::Config{cores, mb_per_sec(config.storage_core_mbps * rate_factor),
                                   "storage-cpu"});
    cpu.pool = cpu_pool.get();
  } else {
    cpu_fluid = std::make_unique<sim::FluidResource>(
        s, sim::FluidResource::Config{
               .capacity = mb_per_sec(config.storage_kernel_mbps * rate_factor),
               .per_job_cap = mb_per_sec(config.storage_core_mbps * rate_factor),
               .name = "storage-cpu"});
    cpu.fluid = cpu_fluid.get();
  }
  // Optional disk tier: requests stage their data through the node disk
  // before network transfer (demoted) or kernel execution (active).
  std::unique_ptr<sim::FluidResource> disk;
  if (config.disk_mbps > 0.0) {
    disk = std::make_unique<sim::FluidResource>(
        s, sim::FluidResource::Config{.capacity = mb_per_sec(config.disk_mbps),
                                      .per_job_cap = 0.0,
                                      .name = "disk"});
  }
  const BytesPerSec client_rate = mb_per_sec(config.client_mbps);

  std::vector<ReqTrack> st(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) st[i].req = requests[i];

  std::size_t remaining = requests.size();
  Seconds sum_completion = 0.0;
  Seconds last_completion = 0.0;

  auto done = [&](std::size_t i) {
    st[i].state = ReqState::kDone;
    sum_completion += s.now();
    last_completion = std::max(last_completion, s.now());
    --remaining;
  };

  // Stage `bytes` through the disk tier (if modelled) before `then` runs.
  auto stage_disk = [&](double bytes, std::function<void()> then) {
    if (disk == nullptr) {
      then();
    } else {
      disk->submit(bytes, [then = std::move(then)](sim::Time) { then(); });
    }
  };

  // Demoted / TS path: stage from disk, move `move_bytes` over the link,
  // then the client computes `compute_bytes` on its dedicated core.
  auto start_normal = [&](std::size_t i, double move_bytes, double compute_bytes) {
    st[i].state = ReqState::kNormalXfer;
    out.bytes_over_link += static_cast<Bytes>(move_bytes);
    stage_disk(move_bytes, [&, i, move_bytes, compute_bytes] {
      link.submit(move_bytes, [&, i, compute_bytes](sim::Time) {
        st[i].state = ReqState::kClientCompute;
        s.schedule_after(compute_bytes / client_rate, [&, i] { done(i); });
      });
    });
  };

  // Active / AS path: stage from disk, kernel on the storage CPU, then the
  // result transfer.
  auto start_active = [&](std::size_t i) {
    st[i].state = ReqState::kActiveCpu;
    const Bytes d = st[i].req.size;
    st[i].on_disk = disk != nullptr;
    stage_disk(static_cast<double>(d), [&, i, d] {
      st[i].on_disk = false;
      st[i].cpu_job = cpu.submit(static_cast<double>(d), [&, i, d](sim::Time) {
        ++out.served_active;
        st[i].state = ReqState::kResultXfer;
        const Bytes h = config.result_bytes(d);
        out.bytes_over_link += h;
        link.submit(static_cast<double>(h), [&, i](sim::Time) { done(i); });
      });
    });
  };

  // The DOSAS CE: re-optimize the unfinished snapshot with nominal rates.
  auto evaluate = [&] {
    std::vector<std::size_t> idx;
    std::vector<sched::ActiveRequest> snapshot;
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (st[i].state == ReqState::kPending) {
        snapshot.push_back({i, st[i].req.size, config.result_bytes(st[i].req.size), "op"});
        idx.push_back(i);
      } else if (st[i].state == ReqState::kActiveCpu) {
        // Disk-staging requests count as full-size committed work (the CE
        // must see them or it admits unboundedly); they just can't be
        // interrupted until the kernel actually runs.
        const auto rem = st[i].on_disk
                             ? st[i].req.size
                             : static_cast<Bytes>(cpu.remaining(st[i].cpu_job));
        snapshot.push_back({i, rem, config.result_bytes(st[i].req.size), "op"});
        idx.push_back(i);
      }
    }
    if (snapshot.empty()) return;

    sched::CostModel model;
    model.bandwidth = mb_per_sec(config.bandwidth_mbps);  // nominal, not actual
    model.storage_rate = mb_per_sec(config.storage_kernel_mbps);
    model.compute_rate = mb_per_sec(config.client_mbps);
    auto optimizer = sched::make_optimizer(config.optimizer);
    assert(optimizer != nullptr);
    const auto policy = optimizer->optimize(model, snapshot);

    for (std::size_t j = 0; j < idx.size(); ++j) {
      const std::size_t i = idx[j];
      if (st[i].state == ReqState::kPending) {
        if (policy.active[j]) {
          start_active(i);
        } else {
          ++out.demoted;
          const auto d = static_cast<double>(st[i].req.size);
          start_normal(i, d, d);
        }
      } else if (st[i].state == ReqState::kActiveCpu && !policy.active[j] &&
                 config.allow_interrupt && !st[i].on_disk) {
        // Interrupt: the remaining raw bytes plus the checkpoint cross the
        // link; the client restores and finishes only the remainder.
        const double rem = cpu.remaining(st[i].cpu_job);
        if (rem <= config.interrupt_min_remaining * static_cast<double>(st[i].req.size)) {
          continue;  // hysteresis: nearly-done kernels run to completion
        }
        cpu.cancel(st[i].cpu_job);
        ++out.interrupted;
        ++out.demoted;
        start_normal(i, rem + static_cast<double>(config.checkpoint_size), rem);
      }
    }
  };

  // Arrivals.
  for (std::size_t i = 0; i < st.size(); ++i) {
    // Per-request startup overhead (RPC/connection) precedes any service.
    s.schedule_at(st[i].req.arrival + config.per_request_overhead, [&, i] {
      switch (scheme) {
        case SchemeKind::kTraditional: {
          ++out.demoted;
          const auto d = static_cast<double>(st[i].req.size);
          start_normal(i, d, d);
          break;
        }
        case SchemeKind::kActive:
          start_active(i);
          break;
        case SchemeKind::kDosas:
          st[i].state = ReqState::kPending;
          evaluate();  // the new arrival is pending; decide the whole queue
          break;
      }
    });
  }

  // DOSAS periodic probe. `tick` must outlive s.run(): it re-schedules a
  // copy of itself that captures this function-scope object by reference.
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    evaluate();
    s.schedule_after(config.probe_interval, tick);
  };
  if (scheme == SchemeKind::kDosas && config.probe_interval > 0.0) {
    s.schedule_after(config.probe_interval, tick);
  }

  s.run();
  assert(remaining == 0);

  out.makespan = last_completion;
  out.mean_completion = sum_completion / static_cast<double>(requests.size());
  Bytes total = 0;
  for (const auto& r : requests) total += r.size;
  out.aggregate_bandwidth_mbps =
      out.makespan > 0.0 ? to_mib(total) / out.makespan : 0.0;
  return out;
}

}  // namespace dosas::core
