#include "core/runner.hpp"

#include <chrono>
#include <thread>

namespace dosas::core {

WorkloadReport run_workload(Cluster& cluster, const std::vector<WorkloadRequest>& requests) {
  using Clock = std::chrono::steady_clock;
  WorkloadReport report;
  report.outcomes.resize(requests.size());

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    threads.emplace_back([&, i] {
      const auto& req = requests[i];
      auto& out = report.outcomes[i];
      const auto t0 = Clock::now();

      auto meta = cluster.pfs_client().open(req.path);
      if (!meta.is_ok()) {
        out.error = meta.status().to_string();
        out.latency = std::chrono::duration<double>(Clock::now() - t0).count();
        return;
      }
      const Bytes length = req.length != 0 ? req.length : meta.value().size;
      auto result = cluster.asc().read_ex(meta.value(), req.offset, length, req.operation);
      out.latency = std::chrono::duration<double>(Clock::now() - t0).count();
      if (result.is_ok()) {
        out.ok = true;
        out.result = std::move(result).value();
      } else {
        out.error = result.status().to_string();
      }
    });
  }
  for (auto& t : threads) t.join();
  report.wall_time = std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& o : report.outcomes) report.failures += o.ok ? 0 : 1;
  return report;
}

}  // namespace dosas::core
