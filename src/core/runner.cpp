#include "core/runner.hpp"

#include <thread>

#include "common/clock.hpp"

namespace dosas::core {

WorkloadReport run_workload(Cluster& cluster, const std::vector<WorkloadRequest>& requests) {
  WorkloadReport report;
  report.outcomes.resize(requests.size());

  const Seconds start = clock().now();
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Pre-registered here so a VirtualClock cannot advance between thread
    // creation and the thread's own registration (see ClockParticipant).
    clock().add_participant();
    threads.emplace_back([&, i] {
      // Request threads drive work, so under a VirtualClock they are DST
      // participants: blocking in read_ex counts toward quiescence.
      ClockParticipant participant(ClockParticipant::kAdoptPreRegistered);
      const auto& req = requests[i];
      auto& out = report.outcomes[i];
      const Seconds t0 = clock().now();

      auto meta = cluster.pfs_client().open(req.path);
      if (!meta.is_ok()) {
        out.error = meta.status().to_string();
        out.latency = clock().now() - t0;
        return;
      }
      const Bytes length = req.length != 0 ? req.length : meta.value().size;
      auto result = cluster.asc().read_ex(meta.value(), req.offset, length, req.operation);
      out.latency = clock().now() - t0;
      if (result.is_ok()) {
        out.ok = true;
        out.result = std::move(result).value();
      } else {
        out.error = result.status().to_string();
      }
    });
  }
  for (auto& t : threads) t.join();
  report.wall_time = clock().now() - start;
  for (const auto& o : report.outcomes) report.failures += o.ok ? 0 : 1;
  return report;
}

}  // namespace dosas::core
