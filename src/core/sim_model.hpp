// sim_model.hpp — calibrated discrete-event models of TS / AS / DOSAS.
//
// This is the experiment substrate standing in for the paper's 16-node
// Discfarm cluster (DESIGN.md §2): one storage node with a fluid-flow CPU
// model, k compute nodes each owning a dedicated core, and a shared
// network link with processor-sharing bandwidth. Every paper figure is a
// sweep of `simulate_scheme` over (scheme × request count × request size).
//
// Model elements and their paper counterparts:
//   * link: FluidResource, capacity = measured bandwidth (118 MB/s,
//     optionally jittered 111–120 per §IV-B2's observation);
//   * storage CPU: FluidResource, capacity = the node's effective kernel
//     capacity S_max (one core's rate by default — see DESIGN.md §5),
//     per-kernel cap = one core's rate;
//   * client compute: a dedicated delay d/C per request (compute nodes are
//     not shared);
//   * DOSAS control: on every arrival and every probe tick the CE snapshot
//     of unfinished work is re-optimized with the *nominal* bandwidth (the
//     CE cannot see the jittered truth — the paper's stated source of
//     Table-IV misjudgments), demoting queued requests and, optionally,
//     interrupting running kernels (remaining bytes + checkpoint cross the
//     link, the client finishes).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/scheme.hpp"
#include "sched/optimizer.hpp"
#include "server/rate_table.hpp"

namespace dosas::core {

struct ModelConfig {
  // --- platform (paper §IV-A1 defaults) ---
  double bandwidth_mbps = 118.0;   ///< nominal link bandwidth (what the CE assumes)
  double bw_jitter_low_mbps = 0.0;   ///< actual bandwidth ~ U[low, high]; 0 = no jitter
  double bw_jitter_high_mbps = 0.0;
  /// Relative jitter on the storage node's actual kernel capacity
  /// (OS/task-scheduling noise the paper's Table IV blames for
  /// misjudgments — the cost model "only considers the processing and
  /// network transfer time"). Actual S ~ S_nominal * U[1-j, 1+j].
  double storage_rate_jitter = 0.0;
  double storage_kernel_mbps = 80.0;  ///< S_max: node kernel capacity (Gaussian default)
  double storage_core_mbps = 80.0;    ///< per-kernel cap (one core's rate)
  double client_mbps = 80.0;           ///< C_{C,op} of one compute node

  /// Storage-node disk bandwidth, shared fairly by concurrent reads.
  /// 0 = infinite — the paper's (implicit) assumption that disk time is
  /// negligible; the disk ablation bench probes when that breaks down.
  /// Store-and-forward model: a request's bytes stage through the disk
  /// before its next phase (transfer or kernel) begins.
  double disk_mbps = 0.0;

  /// Fixed per-request startup latency (RPC/connection overhead) before
  /// any service begins. 0 = the paper's model.
  double per_request_overhead = 0.0;

  /// Storage-CPU scheduling discipline. The paper never says whether its
  /// prototype time-shares concurrent kernels or runs them to completion:
  ///   false (default): processor sharing — k kernels each progress at
  ///     capacity/k (Linux CFS behaviour for CPU-bound processes);
  ///   true: FCFS run-to-completion on cores = capacity/core_rate (a
  ///     one-kernel-per-core worker pool, like our real runtime).
  /// Makespan under uniform all-at-once workloads is identical; mean
  /// completion time and interruption dynamics differ (see tests).
  bool fcfs_cpu = false;

  // --- kernel result model ---
  Bytes result_size = 40;        ///< h(d) floor (digest payload)
  double result_fraction = 0.0;  ///< h(d) = max(result_size, fraction * d)

  // --- DOSAS control ---
  std::string optimizer = "exhaustive";
  Seconds probe_interval = 0.25;   ///< CE tick; <= 0 disables periodic probes
  bool allow_interrupt = true;     ///< may interrupt running kernels
  Bytes checkpoint_size = 4096;    ///< shipped with an interrupted kernel
  /// Interruption hysteresis: only interrupt a running kernel while it
  /// still has more than this fraction of its input left. The paper's
  /// runtime interrupts unconditionally; the ablation bench shows that is
  /// counterproductive when storage compute overlaps demoted transfers
  /// (the additive Eq. 4 model cannot see the overlap), so this knob is
  /// provided as an extension. 0 = the paper's behaviour.
  double interrupt_min_remaining = 0.0;

  /// h(d) under this config.
  Bytes result_bytes(Bytes d) const {
    const auto frac = static_cast<Bytes>(result_fraction * static_cast<double>(d));
    return std::max(result_size, frac);
  }

  /// Config with the paper's Gaussian-filter rates.
  static ModelConfig gaussian();
  /// Config with the paper's SUM rates.
  static ModelConfig sum();

  /// Config from a rate table entry — the bridge from measured kernel
  /// rates (kernels/calibrate.hpp -> RateTable) to the simulator. kNotFound
  /// if the table has no entry for `op`.
  static Result<ModelConfig> from_rates(const server::RateTable& rates, const std::string& op);
};

/// One I/O request in the simulated workload.
struct ModelRequest {
  Bytes size = 0;
  Seconds arrival = 0.0;
};

/// Outcome of one simulated run.
struct RunStats {
  Seconds makespan = 0.0;            ///< completion time of the last request
  double aggregate_bandwidth_mbps = 0.0;  ///< Σ d_i / makespan (paper Fig. 11/12)
  Seconds mean_completion = 0.0;
  std::size_t served_active = 0;     ///< kernels that finished on the storage node
  std::size_t demoted = 0;           ///< served as normal I/O (incl. TS's all)
  std::size_t interrupted = 0;       ///< kernels interrupted mid-run
  Bytes bytes_over_link = 0;         ///< total data that crossed the network
};

/// Simulate `scheme` over `requests`. `rng` drives bandwidth jitter (pass
/// nullptr for the nominal deterministic run).
RunStats simulate_scheme(SchemeKind scheme, const ModelConfig& config,
                         const std::vector<ModelRequest>& requests, Rng* rng = nullptr);

/// Uniform workload: `n` requests of `size` bytes arriving at t = 0
/// (the paper's experimental shape: one benchmark, many instances).
std::vector<ModelRequest> uniform_workload(std::size_t n, Bytes size);

/// Poisson arrivals with mean inter-arrival `mean_gap` (extension
/// workloads for the ablations).
std::vector<ModelRequest> poisson_workload(std::size_t n, Bytes size, Seconds mean_gap,
                                           Rng& rng);

}  // namespace dosas::core
