// experiments.hpp — reusable drivers for the paper's evaluation sweeps.
//
// The bench binaries (one per table/figure) are thin wrappers over these:
//   * scheme_sweep      — Figs. 2, 4–10: execution time of TS/AS/DOSAS as
//                         the number of I/Os per storage node grows;
//   * bandwidth_sweep   — Figs. 11–12: aggregate bandwidth of each scheme;
//   * accuracy_table    — Table IV: CE decision vs best-in-practice under
//                         bandwidth jitter (the paper's 111–120 MB/s range).
#pragma once

#include <vector>

#include "core/report.hpp"
#include "core/sim_model.hpp"

namespace dosas::core {

/// The paper's request-count axis: 1..64 I/Os per storage node.
std::vector<std::size_t> paper_io_counts();

struct SweepPoint {
  std::size_t ios = 0;
  Seconds ts = 0.0;
  Seconds as = 0.0;
  Seconds dosas = 0.0;  ///< NaN-free: 0 when DOSAS not requested
  RunStats dosas_stats;
};

/// Execution time of the schemes for `ios_list` × one request size.
/// DOSAS is included when `with_dosas` is set. Deterministic (no jitter).
std::vector<SweepPoint> scheme_sweep(const ModelConfig& config,
                                     const std::vector<std::size_t>& ios_list,
                                     Bytes request_size, bool with_dosas);

/// Render a scheme sweep as the paper's figure series.
Table sweep_table(const std::vector<SweepPoint>& points, bool with_dosas);

struct BandwidthPoint {
  std::size_t ios = 0;
  double ts_mbps = 0.0;
  double as_mbps = 0.0;
  double dosas_mbps = 0.0;
};

/// Aggregate bandwidth (Σ data / makespan) of the schemes (Figs. 11–12).
std::vector<BandwidthPoint> bandwidth_sweep(const ModelConfig& config,
                                            const std::vector<std::size_t>& ios_list,
                                            Bytes request_size);

Table bandwidth_table(const std::vector<BandwidthPoint>& points);

struct AccuracyCase {
  std::string kernel;       ///< "sum" or "gaussian2d"
  std::size_t ios = 0;
  Bytes request_size = 0;
  std::string decision;     ///< CE majority decision: "Active" / "Normal"
  std::string practice;     ///< faster static scheme in the jittered run
  bool correct = false;
};

struct AccuracyReport {
  std::vector<AccuracyCase> cases;
  double accuracy = 0.0;  ///< fraction of correct judgments
};

/// Paper Table IV: evaluate the scheduling algorithm's decision against
/// the simulated best across {SUM, Gaussian} × io counts × request sizes,
/// with actual bandwidth jittered in [111, 120] MB/s while the CE assumes
/// the nominal 118 (the paper's stated misjudgment source).
AccuracyReport scheduler_accuracy(std::uint64_t seed = 2012);

Table accuracy_table(const AccuracyReport& report);

}  // namespace dosas::core
