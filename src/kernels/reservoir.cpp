#include "kernels/reservoir.hpp"

#include <cassert>
#include <cstring>

namespace dosas::kernels {

ReservoirKernel::ReservoirKernel(std::size_t n, std::uint64_t seed)
    : n_(n), seed_(seed), rng_(seed) {
  assert(n_ >= 1);
}

Result<std::unique_ptr<Kernel>> ReservoirKernel::from_spec(const OperationSpec& spec) {
  const auto n = spec.get_int("n", 64);
  if (n < 1 || n > (1 << 22)) {
    return error(ErrorCode::kInvalidArgument, "reservoir: n out of range");
  }
  const auto seed = static_cast<std::uint64_t>(spec.get_int("seed", 0xD05A5));
  return std::unique_ptr<Kernel>(
      std::make_unique<ReservoirKernel>(static_cast<std::size_t>(n), seed));
}

void ReservoirKernel::process_items(std::span<const double> items) {
  for (double v : items) {
    ++count_;
    if (sample_.size() < n_) {
      sample_.push_back(v);
    } else {
      // Algorithm R: replace a random slot with probability n/count.
      const std::uint64_t j = rng_.uniform_index(count_);
      if (j < n_) sample_[j] = v;
    }
  }
}

std::vector<std::uint8_t> ReservoirKernel::finalize() const {
  ByteWriter w;
  w.put_u64(count_);
  w.put_u64(seed_);
  w.put_u32(static_cast<std::uint32_t>(sample_.size()));
  for (double v : sample_) w.put_f64(v);
  return w.take();
}

Bytes ReservoirKernel::result_size(Bytes input) const {
  (void)input;
  return 2 * sizeof(std::uint64_t) + sizeof(std::uint32_t) + n_ * sizeof(double);
}

Checkpoint ReservoirKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("n", static_cast<std::int64_t>(n_));
  ck.set_i64("seed", static_cast<std::int64_t>(seed_));
  ck.set_i64("count", static_cast<std::int64_t>(count_));
  std::vector<std::uint8_t> sample_bytes(sample_.size() * sizeof(double));
  if (!sample_.empty()) {
    std::memcpy(sample_bytes.data(), sample_.data(), sample_bytes.size());
  }
  ck.set_blob("sample", std::move(sample_bytes));
  // Algorithm R consumes exactly one draw per item past the fill phase, so
  // the RNG can be reconstructed by replaying; storing the draw count
  // (== count_) with the seed suffices — but replaying millions of draws
  // on restore would be O(count), so persist the raw generator state via
  // its own serialization: we re-derive it by replaying only when small
  // and otherwise fork deterministically from (seed, count).
  ck.set_i64("rng_replay", static_cast<std::int64_t>(count_ > n_ ? count_ - n_ : 0));
  save_carry(ck);
  return ck;
}

Status ReservoirKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a reservoir checkpoint");
  }
  if (ck.get_i64("n", -1) != static_cast<std::int64_t>(n_)) {
    return error(ErrorCode::kInvalidArgument, "reservoir: checkpoint n mismatch");
  }
  seed_ = static_cast<std::uint64_t>(ck.get_i64("seed"));
  count_ = static_cast<std::uint64_t>(ck.get_i64("count"));
  const auto* sample = ck.get_blob("sample");
  if (sample == nullptr) return error(ErrorCode::kInvalidArgument, "reservoir: missing sample");
  sample_.resize(sample->size() / sizeof(double));
  if (!sample_.empty()) {
    std::memcpy(sample_.data(), sample->data(), sample_.size() * sizeof(double));
  }
  // Reconstruct the RNG by replaying the draws made so far (one per item
  // after the fill phase). Deterministic and exact.
  rng_.reseed(seed_);
  const auto replay = static_cast<std::uint64_t>(ck.get_i64("rng_replay"));
  for (std::uint64_t i = 0; i < replay; ++i) {
    (void)rng_.uniform_index(n_ + 1 + i);  // same bounded-draw sequence shape
  }
  return load_carry(ck);
}

std::unique_ptr<Kernel> ReservoirKernel::clone() const {
  return std::make_unique<ReservoirKernel>(n_, seed_);
}

Status ReservoirKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = ReservoirResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  const auto& o = other.value();
  if (o.sample.empty()) return Status::ok();
  if (sample_.empty()) {
    sample_ = o.sample;
    count_ = o.count;
    return Status::ok();
  }
  // Weighted merge: each slot of the combined reservoir comes from the
  // other side with probability count_other / (count_this + count_other).
  const double p_other =
      static_cast<double>(o.count) / static_cast<double>(count_ + o.count);
  const std::size_t limit = std::min(n_, o.sample.size());
  for (std::size_t i = 0; i < sample_.size(); ++i) {
    if (rng_.chance(p_other)) {
      sample_[i] = o.sample[rng_.uniform_index(limit)];
    }
  }
  count_ += o.count;
  return Status::ok();
}

Result<ReservoirResult> ReservoirResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  ReservoirResult out;
  std::uint32_t n = 0;
  if (!r.get_u64(out.count) || !r.get_u64(out.seed) || !r.get_u32(n)) {
    return error(ErrorCode::kInvalidArgument, "reservoir: bad result header");
  }
  if (r.remaining() != static_cast<std::size_t>(n) * sizeof(double)) {
    return error(ErrorCode::kInvalidArgument, "reservoir: sample count does not match payload");
  }
  out.sample.resize(n);
  for (auto& v : out.sample) {
    if (!r.get_f64(v)) return error(ErrorCode::kInvalidArgument, "reservoir: truncated sample");
  }
  if (!r.exhausted()) return error(ErrorCode::kInvalidArgument, "reservoir: trailing bytes");
  return out;
}

}  // namespace dosas::kernels
