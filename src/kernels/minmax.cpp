#include "kernels/minmax.hpp"

namespace dosas::kernels {

Result<MinMaxResult> MinMaxResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  MinMaxResult out;
  if (!r.get_u64(out.count) || !r.get_f64(out.min) || !r.get_f64(out.max) || !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "minmax: bad result payload");
  }
  return out;
}

std::vector<std::uint8_t> MinMaxKernel::finalize() const {
  ByteWriter w;
  w.put_u64(count_);
  w.put_f64(min_);
  w.put_f64(max_);
  return w.take();
}

Bytes MinMaxKernel::result_size(Bytes input) const {
  (void)input;
  return sizeof(std::uint64_t) + 2 * sizeof(double);
}

Checkpoint MinMaxKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("count", static_cast<std::int64_t>(count_));
  ck.set_f64("min", min_);
  ck.set_f64("max", max_);
  save_carry(ck);
  return ck;
}

Status MinMaxKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a minmax checkpoint");
  }
  count_ = static_cast<std::uint64_t>(ck.get_i64("count"));
  min_ = ck.get_f64("min");
  max_ = ck.get_f64("max");
  return load_carry(ck);
}

std::unique_ptr<Kernel> MinMaxKernel::clone() const { return std::make_unique<MinMaxKernel>(); }

Status MinMaxKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = MinMaxResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  const auto& o = other.value();
  if (o.count == 0) return Status::ok();
  if (count_ == 0) {
    count_ = o.count;
    min_ = o.min;
    max_ = o.max;
  } else {
    count_ += o.count;
    if (o.min < min_) min_ = o.min;
    if (o.max > max_) max_ = o.max;
  }
  return Status::ok();
}

}  // namespace dosas::kernels
