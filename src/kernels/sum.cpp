#include "kernels/sum.hpp"

namespace dosas::kernels {

Result<SumResult> SumResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  SumResult out;
  if (!r.get_u64(out.count) || !r.get_f64(out.sum) || !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "sum: bad result payload");
  }
  return out;
}

std::vector<std::uint8_t> SumKernel::finalize() const {
  ByteWriter w;
  w.put_u64(count_);
  w.put_f64(sum_);
  return w.take();
}

Bytes SumKernel::result_size(Bytes input) const {
  (void)input;
  return sizeof(std::uint64_t) + sizeof(double);
}

Checkpoint SumKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_f64("sum", sum_);
  ck.set_i64("count", static_cast<std::int64_t>(count_));
  save_carry(ck);
  return ck;
}

Status SumKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a sum checkpoint");
  }
  sum_ = ck.get_f64("sum");
  count_ = static_cast<std::uint64_t>(ck.get_i64("count"));
  return load_carry(ck);
}

std::unique_ptr<Kernel> SumKernel::clone() const { return std::make_unique<SumKernel>(); }

Status SumKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = SumResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  sum_ += other.value().sum;
  count_ += other.value().count;
  return Status::ok();
}

}  // namespace dosas::kernels
