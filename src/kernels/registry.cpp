#include "kernels/registry.hpp"

#include "kernels/byte_grep.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/histogram.hpp"
#include "kernels/mean_stddev.hpp"
#include "kernels/minmax.hpp"
#include "kernels/pipeline.hpp"
#include "kernels/reservoir.hpp"
#include "kernels/scale.hpp"
#include "kernels/sobel2d.hpp"
#include "kernels/sum.hpp"
#include "kernels/threshold_count.hpp"
#include "kernels/topk.hpp"

namespace dosas::kernels {

void Registry::register_kernel(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<Kernel>> Registry::create(const std::string& operation) const {
  auto spec = OperationSpec::parse(operation);
  if (!spec.is_ok()) return spec.status();
  return create(spec.value());
}

Result<std::unique_ptr<Kernel>> Registry::create(const OperationSpec& spec) const {
  auto it = factories_.find(spec.kernel);
  if (it == factories_.end()) {
    return error(ErrorCode::kNotFound, "no such kernel: " + spec.kernel);
  }
  return it->second(spec);
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, f] : factories_) out.push_back(name);
  return out;
}

Registry Registry::with_builtins() {
  Registry r;
  r.register_kernel("sum", [](const OperationSpec&) -> Result<std::unique_ptr<Kernel>> {
    return std::unique_ptr<Kernel>(std::make_unique<SumKernel>());
  });
  r.register_kernel("minmax", [](const OperationSpec&) -> Result<std::unique_ptr<Kernel>> {
    return std::unique_ptr<Kernel>(std::make_unique<MinMaxKernel>());
  });
  r.register_kernel("meanstddev", [](const OperationSpec&) -> Result<std::unique_ptr<Kernel>> {
    return std::unique_ptr<Kernel>(std::make_unique<MeanStddevKernel>());
  });
  r.register_kernel("histogram",
                    [](const OperationSpec& s) { return HistogramKernel::from_spec(s); });
  r.register_kernel("thresholdcount",
                    [](const OperationSpec& s) { return ThresholdCountKernel::from_spec(s); });
  r.register_kernel("gaussian2d",
                    [](const OperationSpec& s) { return Gaussian2dKernel::from_spec(s); });
  r.register_kernel("bytegrep",
                    [](const OperationSpec& s) { return ByteGrepKernel::from_spec(s); });
  r.register_kernel("sobel2d",
                    [](const OperationSpec& s) { return Sobel2dKernel::from_spec(s); });
  r.register_kernel("topk", [](const OperationSpec& s) { return TopKKernel::from_spec(s); });
  r.register_kernel("reservoir",
                    [](const OperationSpec& s) { return ReservoirKernel::from_spec(s); });
  r.register_kernel("scale", [](const OperationSpec& s) { return ScaleKernel::from_spec(s); });

  // "pipe" resolves its stage names against a snapshot of the registry
  // taken here (shared by every copy of the returned registry). Stages can
  // be any builtin above; nested pipes and later-registered custom kernels
  // are not visible inside stages by design (no ownership cycles).
  auto snapshot = std::make_shared<Registry>(r);
  r.register_kernel("pipe",
                    [snapshot](const OperationSpec& s) -> Result<std::unique_ptr<Kernel>> {
                      return PipelineKernel::from_spec(s, *snapshot);
                    });
  return r;
}

}  // namespace dosas::kernels
