#include "kernels/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace dosas::kernels {

HistogramKernel::HistogramKernel(std::uint32_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins >= 1);
  assert(lo < hi);
}

Result<std::unique_ptr<Kernel>> HistogramKernel::from_spec(const OperationSpec& spec) {
  const auto bins = spec.get_int("bins", 16);
  const double lo = spec.get_double("lo", 0.0);
  const double hi = spec.get_double("hi", 1.0);
  if (bins < 1 || bins > 1 << 20) {
    return error(ErrorCode::kInvalidArgument, "histogram: bins out of range");
  }
  if (!(lo < hi)) {
    return error(ErrorCode::kInvalidArgument, "histogram: lo must be < hi");
  }
  return std::unique_ptr<Kernel>(
      std::make_unique<HistogramKernel>(static_cast<std::uint32_t>(bins), lo, hi));
}

Result<HistogramResult> HistogramResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  HistogramResult out;
  std::uint32_t bins = 0;
  if (!r.get_u32(bins) || !r.get_f64(out.lo) || !r.get_f64(out.hi) || !r.get_u64(out.below) ||
      !r.get_u64(out.above)) {
    return error(ErrorCode::kInvalidArgument, "histogram: bad result header");
  }
  if (r.remaining() != static_cast<std::size_t>(bins) * sizeof(std::uint64_t)) {
    return error(ErrorCode::kInvalidArgument, "histogram: bin count does not match payload");
  }
  out.counts.resize(bins);
  for (auto& c : out.counts) {
    if (!r.get_u64(c)) return error(ErrorCode::kInvalidArgument, "histogram: truncated counts");
  }
  if (!r.exhausted()) return error(ErrorCode::kInvalidArgument, "histogram: trailing bytes");
  return out;
}

std::vector<std::uint8_t> HistogramKernel::finalize() const {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(counts_.size()));
  w.put_f64(lo_);
  w.put_f64(hi_);
  w.put_u64(below_);
  w.put_u64(above_);
  for (auto c : counts_) w.put_u64(c);
  return w.take();
}

Bytes HistogramKernel::result_size(Bytes input) const {
  (void)input;
  return sizeof(std::uint32_t) + 2 * sizeof(double) + (2 + counts_.size()) * sizeof(std::uint64_t);
}

Checkpoint HistogramKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_f64("lo", lo_);
  ck.set_f64("hi", hi_);
  ck.set_i64("below", static_cast<std::int64_t>(below_));
  ck.set_i64("above", static_cast<std::int64_t>(above_));
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(counts_.size()));
  for (auto c : counts_) w.put_u64(c);
  ck.set_blob("counts", w.take());
  save_carry(ck);
  return ck;
}

Status HistogramKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a histogram checkpoint");
  }
  lo_ = ck.get_f64("lo");
  hi_ = ck.get_f64("hi");
  below_ = static_cast<std::uint64_t>(ck.get_i64("below"));
  above_ = static_cast<std::uint64_t>(ck.get_i64("above"));
  const auto* blob = ck.get_blob("counts");
  if (blob == nullptr) return error(ErrorCode::kInvalidArgument, "histogram: missing counts");
  ByteReader r(*blob);
  std::uint32_t bins = 0;
  if (!r.get_u32(bins)) return error(ErrorCode::kInvalidArgument, "histogram: bad counts blob");
  if (r.remaining() != static_cast<std::size_t>(bins) * sizeof(std::uint64_t)) {
    return error(ErrorCode::kInvalidArgument, "histogram: counts blob size mismatch");
  }
  counts_.assign(bins, 0);
  for (auto& c : counts_) {
    if (!r.get_u64(c)) return error(ErrorCode::kInvalidArgument, "histogram: bad counts blob");
  }
  return load_carry(ck);
}

std::unique_ptr<Kernel> HistogramKernel::clone() const {
  return std::make_unique<HistogramKernel>(static_cast<std::uint32_t>(counts_.size()), lo_, hi_);
}

Status HistogramKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = HistogramResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  const auto& o = other.value();
  if (o.counts.size() != counts_.size() || o.lo != lo_ || o.hi != hi_) {
    return error(ErrorCode::kInvalidArgument, "histogram: merge with mismatched binning");
  }
  below_ += o.below;
  above_ += o.above;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts[i];
  return Status::ok();
}

}  // namespace dosas::kernels
