// mean_stddev.hpp — streaming mean/standard-deviation kernel.
//
// Welford's algorithm, so checkpoints stay O(1) and stripe-level partials
// merge exactly (Chan et al.'s parallel variance combination).
#pragma once

#include "kernels/kernel.hpp"

namespace dosas::kernels {

struct MeanStddevResult {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations

  double variance() const {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  }

  static Result<MeanStddevResult> decode(std::span<const std::uint8_t> bytes);
};

class MeanStddevKernel final : public ItemwiseKernel {
 public:
  std::string name() const override { return "meanstddev"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

 protected:
  void reset_state() override {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }
  void process_items(std::span<const double> items) override {
    for (double v : items) {
      ++count_;
      const double delta = v - mean_;
      mean_ += delta / static_cast<double>(count_);
      m2_ += delta * (v - mean_);
    }
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dosas::kernels
