// sobel2d.hpp — Sobel edge-detection kernel (extension).
//
// The second stencil kernel, from the active-disk literature's
// edge-detection workload (Riedel et al.): 3×3 Sobel gradients over a
// row-major grid of doubles, reporting an edge digest (count of pixels
// whose gradient magnitude exceeds a threshold, plus magnitude statistics).
// Structurally like the Gaussian filter — row-carrying, checkpointable,
// not stripe-mergeable — but with a different operation mix (12 mul,
// 10 add/sub, 1 sqrt, 1 cmp per item), giving the scheduler a third
// cost point between SUM and Gaussian.
#pragma once

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct SobelDigest {
  std::uint64_t rows = 0;    ///< output rows produced
  std::uint64_t count = 0;   ///< gradient magnitudes produced
  std::uint64_t edges = 0;   ///< magnitudes above the threshold
  double max_magnitude = 0.0;
  double mean_magnitude = 0.0;

  static Result<SobelDigest> decode(std::span<const std::uint8_t> bytes);
};

class Sobel2dKernel final : public Kernel {
 public:
  explicit Sobel2dKernel(std::size_t width = 1024, double threshold = 1.0);

  /// "sobel2d:width=512,t=2.5"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "sobel2d"; }
  void reset() override;
  void consume(std::span<const std::uint8_t> chunk) override;
  Bytes consumed() const override { return consumed_; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;

  std::size_t width() const { return width_; }
  double threshold() const { return threshold_; }

  /// Reference implementation for tests: gradient magnitudes of the
  /// interior rows of a rows×width grid (edge-clamped columns).
  static std::vector<double> magnitude_reference(const std::vector<double>& grid,
                                                 std::size_t width);

 private:
  void push_row(const double* row);
  void process_center(const double* above, const double* center, const double* below);

  std::size_t width_;
  double threshold_;
  Bytes consumed_ = 0;

  std::vector<std::uint8_t> pending_;
  std::vector<double> prev1_;
  std::vector<double> prev2_;
  std::size_t rows_seen_ = 0;

  std::uint64_t out_rows_ = 0;
  std::uint64_t out_count_ = 0;
  std::uint64_t edges_ = 0;
  double max_mag_ = 0.0;
  double sum_mag_ = 0.0;
};

}  // namespace dosas::kernels
