#include "kernels/topk.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>

namespace dosas::kernels {

TopKKernel::TopKKernel(std::size_t k) : k_(k) { assert(k_ >= 1); }

Result<std::unique_ptr<Kernel>> TopKKernel::from_spec(const OperationSpec& spec) {
  const auto k = spec.get_int("k", 10);
  if (k < 1 || k > (1 << 22)) {
    return error(ErrorCode::kInvalidArgument, "topk: k out of range");
  }
  return std::unique_ptr<Kernel>(std::make_unique<TopKKernel>(static_cast<std::size_t>(k)));
}

void TopKKernel::push_value(double v) {
  if (heap_.size() < k_) {
    heap_.push_back(v);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  } else if (v > heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.back() = v;
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
}

void TopKKernel::process_items(std::span<const double> items) {
  for (double v : items) push_value(v);
  count_ += items.size();
}

std::vector<std::uint8_t> TopKKernel::finalize() const {
  std::vector<double> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>{});
  ByteWriter w;
  w.put_u64(count_);
  w.put_u32(static_cast<std::uint32_t>(sorted.size()));
  for (double v : sorted) w.put_f64(v);
  return w.take();
}

Bytes TopKKernel::result_size(Bytes input) const {
  (void)input;
  return sizeof(std::uint64_t) + sizeof(std::uint32_t) + k_ * sizeof(double);
}

Checkpoint TopKKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("k", static_cast<std::int64_t>(k_));
  ck.set_i64("count", static_cast<std::int64_t>(count_));
  std::vector<std::uint8_t> heap_bytes(heap_.size() * sizeof(double));
  if (!heap_.empty()) {
    std::memcpy(heap_bytes.data(), heap_.data(), heap_bytes.size());
  }
  ck.set_blob("heap", std::move(heap_bytes));
  save_carry(ck);
  return ck;
}

Status TopKKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a topk checkpoint");
  }
  if (ck.get_i64("k", -1) != static_cast<std::int64_t>(k_)) {
    return error(ErrorCode::kInvalidArgument, "topk: checkpoint k mismatch");
  }
  count_ = static_cast<std::uint64_t>(ck.get_i64("count"));
  const auto* heap = ck.get_blob("heap");
  if (heap == nullptr) return error(ErrorCode::kInvalidArgument, "topk: missing heap");
  heap_.resize(heap->size() / sizeof(double));
  if (!heap_.empty()) {
    std::memcpy(heap_.data(), heap->data(), heap_.size() * sizeof(double));
  }
  // The blob preserves heap order, but re-establish the invariant anyway
  // (cheap, and robust to hand-built checkpoints).
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return load_carry(ck);
}

std::unique_ptr<Kernel> TopKKernel::clone() const { return std::make_unique<TopKKernel>(k_); }

Status TopKKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = TopKResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  for (double v : other.value().values) push_value(v);
  count_ += other.value().count;
  return Status::ok();
}

Result<TopKResult> TopKResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  TopKResult out;
  std::uint32_t n = 0;
  if (!r.get_u64(out.count) || !r.get_u32(n)) {
    return error(ErrorCode::kInvalidArgument, "topk: bad result header");
  }
  if (r.remaining() != static_cast<std::size_t>(n) * sizeof(double)) {
    return error(ErrorCode::kInvalidArgument, "topk: value count does not match payload");
  }
  out.values.resize(n);
  for (auto& v : out.values) {
    if (!r.get_f64(v)) return error(ErrorCode::kInvalidArgument, "topk: truncated values");
  }
  if (!r.exhausted()) return error(ErrorCode::kInvalidArgument, "topk: trailing bytes");
  return out;
}

}  // namespace dosas::kernels
