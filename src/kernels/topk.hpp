// topk.hpp — top-K selection kernel (extension).
//
// Keeps the K largest items of the stream in a min-heap; the result is the
// sorted top-K list (descending). h(x) is K·8 bytes regardless of input
// size — a tunable middle ground between SUM's constant and Gaussian-full's
// proportional result. Mergeable across stripes (union of partial top-Ks
// re-selected), which makes it the interesting case for the striped
// fan-out path.
#pragma once

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct TopKResult {
  std::uint64_t count = 0;       ///< items seen
  std::vector<double> values;    ///< top-K, descending

  static Result<TopKResult> decode(std::span<const std::uint8_t> bytes);
};

class TopKKernel final : public ItemwiseKernel {
 public:
  explicit TopKKernel(std::size_t k = 10);

  /// "topk:k=100"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "topk"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

  std::size_t k() const { return k_; }

 protected:
  void reset_state() override {
    heap_.clear();
    count_ = 0;
  }
  void process_items(std::span<const double> items) override;

 private:
  void push_value(double v);

  std::size_t k_;
  std::vector<double> heap_;  // min-heap of the current top-K
  std::uint64_t count_ = 0;
};

}  // namespace dosas::kernels
