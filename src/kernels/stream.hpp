// stream.hpp — the one chunk-streaming loop shared by every path that
// pumps an object extent through a kernel.
//
// Three call sites used to hand-roll this loop — the storage server's
// runtime path (run_kernel), the client's local-completion path
// (finish_locally), and the client's whole-file TS path (local_kernel) —
// and they drifted once already on empty-chunk handling. stream_extent()
// is the single definition of the contract:
//
//   * a failed read fails the stream (status propagates);
//   * an empty chunk ends the stream (end of data);
//   * a short chunk is consumed, then ends the stream (end of object);
//   * the optional stop check runs before every read — the interruption
//     hook, evaluated at chunk granularity exactly as paper §III-C's
//     interruption-check interval prescribes.
#pragma once

#include <functional>

#include "common/arena.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "kernels/kernel.hpp"

namespace dosas::kernels {

/// How a stream_extent() call ended (when it did not fail).
struct StreamResult {
  Bytes processed = 0;   ///< bytes fed to the kernel by this call
  Bytes position = 0;    ///< next unread offset (resume point when stopped)
  bool stopped = false;  ///< the stop check ended the stream early
};

/// Produce the chunk at [pos, pos+len); may return short or empty at the
/// end of the data. May throw (the server's fault-injection path does);
/// exceptions propagate to the caller. Returns a ref-counted BufferRef so
/// the arena slab the PFS data server filled flows straight into
/// Kernel::consume without an owning copy (locally produced bytes cross
/// via BufferRef::adopt).
using ChunkReader = std::function<Result<BufferRef>(Bytes pos, Bytes len)>;

/// Polled before each read; returning true stops the stream (the kernel
/// keeps its state, `position` is the resume offset). May be null.
using StopCheck = std::function<bool()>;

/// Invoked after each consumed chunk with (chunk bytes, total processed
/// this call). May be null.
using ProgressFn = std::function<void(Bytes chunk_bytes, Bytes total_processed)>;

/// Stream [from, end) through `kernel` in `chunk_size` pieces.
Result<StreamResult> stream_extent(Kernel& kernel, Bytes from, Bytes end, Bytes chunk_size,
                                   const ChunkReader& read, const StopCheck& stop = nullptr,
                                   const ProgressFn& progress = nullptr);

}  // namespace dosas::kernels
