#include "kernels/operation.hpp"

#include <cstdlib>

namespace dosas::kernels {

Result<OperationSpec> OperationSpec::parse(const std::string& text) {
  OperationSpec spec;
  const auto colon = text.find(':');
  spec.kernel = text.substr(0, colon);
  if (spec.kernel.empty()) {
    return error(ErrorCode::kInvalidArgument, "operation: empty kernel name");
  }
  if (colon == std::string::npos) return spec;

  const std::string rest = text.substr(colon + 1);
  std::size_t pos = 0;
  while (pos < rest.size()) {
    auto comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string pair = rest.substr(pos, comma - pos);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      return error(ErrorCode::kInvalidArgument, "operation: bad parameter '" + pair + "'");
    }
    spec.args[pair.substr(0, eq)] = pair.substr(eq + 1);
    pos = comma + 1;
  }
  return spec;
}

std::string OperationSpec::to_string() const {
  std::string out = kernel;
  bool first = true;
  for (const auto& [k, v] : args) {
    out += first ? ':' : ',';
    out += k;
    out += '=';
    out += v;
    first = false;
  }
  return out;
}

std::string OperationSpec::get(const std::string& key, const std::string& fallback) const {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::int64_t OperationSpec::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double OperationSpec::get_double(const std::string& key, double fallback) const {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace dosas::kernels
