// scale.hpp — affine transform kernel, y = a*x + b (extension).
//
// A pure streaming transformer (unit conversion, normalization): consumes
// doubles, emits doubles. Exists chiefly as a pipeline stage — e.g.
// convert raw sensor counts to physical units before aggregating — and as
// the minimal example of a streams_output() kernel.
#pragma once

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

class ScaleKernel final : public ItemwiseKernel {
 public:
  explicit ScaleKernel(double a = 1.0, double b = 0.0) : a_(a), b_(b) {}

  /// "scale:a=1.8,b=32"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "scale"; }

  /// Raw transformed doubles not yet drained (a transformer's "result" is
  /// its output stream).
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override { return input; }
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;

  bool streams_output() const override { return true; }
  std::vector<std::uint8_t> drain_stream() override;

  double a() const { return a_; }
  double b() const { return b_; }

 protected:
  void reset_state() override { out_.clear(); }
  void process_items(std::span<const double> items) override {
    out_.reserve(out_.size() + items.size());
    for (double v : items) out_.push_back(a_ * v + b_);
  }

 private:
  double a_;
  double b_;
  std::vector<double> out_;  // produced but not yet drained
};

}  // namespace dosas::kernels
