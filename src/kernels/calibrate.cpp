#include "kernels/calibrate.hpp"

#include <cstring>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace dosas::kernels {

CalibrationResult calibrate(Kernel& kernel, const CalibrationOptions& opts) {
  // One reusable chunk of pseudo-random doubles; contents don't affect the
  // instruction mix of the kernels we calibrate.
  const std::size_t chunk_doubles = opts.chunk_size / sizeof(double);
  std::vector<double> values(chunk_doubles);
  Rng rng(0xCA11B);
  for (auto& v : values) v = rng.uniform();
  std::vector<std::uint8_t> chunk(chunk_doubles * sizeof(double));
  std::memcpy(chunk.data(), values.data(), chunk.size());

  kernel.reset();
  for (int i = 0; i < opts.warmup_chunks; ++i) kernel.consume(chunk);

  CalibrationResult out;
  // Calibration measures *physical* machine speed, so it reads the wall
  // clock explicitly — virtual time must never distort kernel rates.
  const Seconds start = wall_clock().now();
  while (out.bytes_processed < opts.total_bytes) {
    kernel.consume(chunk);
    out.bytes_processed += chunk.size();
  }
  out.elapsed = wall_clock().now() - start;
  out.rate = out.elapsed > 0.0 ? static_cast<double>(out.bytes_processed) / out.elapsed : 0.0;
  return out;
}

}  // namespace dosas::kernels
