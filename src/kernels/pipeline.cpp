#include "kernels/pipeline.hpp"

#include <cassert>

namespace dosas::kernels {

PipelineKernel::PipelineKernel(std::vector<std::unique_ptr<Kernel>> stages)
    : stages_(std::move(stages)) {
  assert(!stages_.empty());
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
    assert(stages_[i]->streams_output() && "non-final pipeline stage must stream");
  }
}

Result<OperationSpec> PipelineKernel::parse_stage(const std::string& text) {
  // "name[;k=v...]": rewrite into the standard "name[:k=v,...]" form.
  std::string standard;
  const auto semi = text.find(';');
  standard = text.substr(0, semi);
  if (semi != std::string::npos) {
    standard += ':';
    std::string rest = text.substr(semi + 1);
    for (char& c : rest) {
      if (c == ';') c = ',';
    }
    standard += rest;
  }
  return OperationSpec::parse(standard);
}

Result<std::unique_ptr<Kernel>> PipelineKernel::from_spec(const OperationSpec& spec,
                                                          const Registry& registry) {
  const std::string ops = spec.get("ops", "");
  if (ops.empty()) {
    return error(ErrorCode::kInvalidArgument, "pipe: missing ops= stage list");
  }
  std::vector<std::unique_ptr<Kernel>> stages;
  std::size_t pos = 0;
  while (pos <= ops.size()) {
    auto bar = ops.find('|', pos);
    if (bar == std::string::npos) bar = ops.size();
    const std::string stage_text = ops.substr(pos, bar - pos);
    auto stage_spec = parse_stage(stage_text);
    if (!stage_spec.is_ok()) return stage_spec.status();
    auto kernel = registry.create(stage_spec.value());
    if (!kernel.is_ok()) return kernel.status();
    stages.push_back(std::move(kernel).value());
    pos = bar + 1;
    if (bar == ops.size()) break;
  }
  if (stages.empty()) return error(ErrorCode::kInvalidArgument, "pipe: no stages");
  for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
    if (!stages[i]->streams_output()) {
      return error(ErrorCode::kInvalidArgument,
                   "pipe: stage '" + stages[i]->name() +
                       "' does not stream output and cannot feed the next stage");
    }
  }
  return std::unique_ptr<Kernel>(std::make_unique<PipelineKernel>(std::move(stages)));
}

void PipelineKernel::reset() {
  consumed_ = 0;
  for (auto& stage : stages_) stage->reset();
}

void PipelineKernel::pump() {
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
    const auto bytes = stages_[i]->drain_stream();
    if (!bytes.empty()) stages_[i + 1]->consume(bytes);
  }
}

void PipelineKernel::consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();
  stages_.front()->consume(chunk);
  pump();
}

std::vector<std::uint8_t> PipelineKernel::finalize() const {
  // pump() after every consume keeps intermediate streams empty, so the
  // last stage already holds everything producible from the input seen.
  return stages_.back()->finalize();
}

Bytes PipelineKernel::result_size(Bytes input) const {
  Bytes size = input;
  for (const auto& stage : stages_) size = stage->result_size(size);
  return size;
}

Checkpoint PipelineKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("consumed", static_cast<std::int64_t>(consumed_));
  ck.set_i64("stages", static_cast<std::int64_t>(stages_.size()));
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    ck.set_blob("stage" + std::to_string(i), stages_[i]->checkpoint().encode());
  }
  return ck;
}

Status PipelineKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a pipe checkpoint");
  }
  if (ck.get_i64("stages", -1) != static_cast<std::int64_t>(stages_.size())) {
    return error(ErrorCode::kInvalidArgument, "pipe: checkpoint stage count mismatch");
  }
  consumed_ = static_cast<Bytes>(ck.get_i64("consumed"));
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const auto* blob = ck.get_blob("stage" + std::to_string(i));
    if (blob == nullptr) {
      return error(ErrorCode::kInvalidArgument,
                   "pipe: missing checkpoint for stage " + std::to_string(i));
    }
    auto decoded = Checkpoint::decode(*blob);
    if (!decoded.is_ok()) return decoded.status();
    Status st = stages_[i]->restore(decoded.value());
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

std::unique_ptr<Kernel> PipelineKernel::clone() const {
  std::vector<std::unique_ptr<Kernel>> fresh;
  fresh.reserve(stages_.size());
  for (const auto& stage : stages_) fresh.push_back(stage->clone());
  return std::make_unique<PipelineKernel>(std::move(fresh));
}

}  // namespace dosas::kernels
