#include "kernels/byte_grep.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dosas::kernels {

ByteGrepKernel::ByteGrepKernel(std::string pattern) : pattern_(std::move(pattern)) {
  assert(!pattern_.empty());
}

Result<std::unique_ptr<Kernel>> ByteGrepKernel::from_spec(const OperationSpec& spec) {
  const std::string pat = spec.get("pat", "ERROR");
  if (pat.empty()) return error(ErrorCode::kInvalidArgument, "bytegrep: empty pattern");
  return std::unique_ptr<Kernel>(std::make_unique<ByteGrepKernel>(pat));
}

void ByteGrepKernel::reset() {
  consumed_ = 0;
  matches_ = 0;
  tail_.clear();
}

void ByteGrepKernel::consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();
  const std::size_t plen = pattern_.size();

  // Scan tail_ + chunk so boundary-spanning matches are found; tail_ holds
  // at most plen-1 bytes, so matches found here were not counted before.
  std::vector<std::uint8_t> window;
  window.reserve(tail_.size() + chunk.size());
  window.insert(window.end(), tail_.begin(), tail_.end());
  window.insert(window.end(), chunk.begin(), chunk.end());

  if (window.size() >= plen) {
    const auto* hay = window.data();
    const auto* pat = reinterpret_cast<const std::uint8_t*>(pattern_.data());
    for (std::size_t i = 0; i + plen <= window.size(); ++i) {
      if (std::memcmp(hay + i, pat, plen) == 0) ++matches_;
    }
  }

  // Keep the trailing plen-1 bytes for the next chunk.
  const std::size_t keep = std::min(window.size(), plen - 1);
  tail_.assign(window.end() - static_cast<std::ptrdiff_t>(keep), window.end());
}

std::vector<std::uint8_t> ByteGrepKernel::finalize() const {
  ByteWriter w;
  w.put_u64(matches_);
  w.put_u64(consumed_);
  return w.take();
}

Bytes ByteGrepKernel::result_size(Bytes input) const {
  (void)input;
  return 2 * sizeof(std::uint64_t);
}

Checkpoint ByteGrepKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_string("pattern", pattern_);
  ck.set_i64("consumed", static_cast<std::int64_t>(consumed_));
  ck.set_i64("matches", static_cast<std::int64_t>(matches_));
  ck.set_blob("tail", tail_);
  return ck;
}

Status ByteGrepKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a bytegrep checkpoint");
  }
  if (ck.get_string("pattern") != pattern_) {
    return error(ErrorCode::kInvalidArgument, "bytegrep: checkpoint pattern mismatch");
  }
  const auto* tail = ck.get_blob("tail");
  if (tail == nullptr) return error(ErrorCode::kInvalidArgument, "bytegrep: missing tail");
  consumed_ = static_cast<Bytes>(ck.get_i64("consumed"));
  matches_ = static_cast<std::uint64_t>(ck.get_i64("matches"));
  tail_ = *tail;
  return Status::ok();
}

std::unique_ptr<Kernel> ByteGrepKernel::clone() const {
  return std::make_unique<ByteGrepKernel>(pattern_);
}

Result<ByteGrepResult> ByteGrepResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  ByteGrepResult out;
  if (!r.get_u64(out.matches) || !r.get_u64(out.scanned) || !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "bytegrep: bad result payload");
  }
  return out;
}

}  // namespace dosas::kernels
