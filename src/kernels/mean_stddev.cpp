#include "kernels/mean_stddev.hpp"

namespace dosas::kernels {

Result<MeanStddevResult> MeanStddevResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  MeanStddevResult out;
  if (!r.get_u64(out.count) || !r.get_f64(out.mean) || !r.get_f64(out.m2) || !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "meanstddev: bad result payload");
  }
  return out;
}

std::vector<std::uint8_t> MeanStddevKernel::finalize() const {
  ByteWriter w;
  w.put_u64(count_);
  w.put_f64(mean_);
  w.put_f64(m2_);
  return w.take();
}

Bytes MeanStddevKernel::result_size(Bytes input) const {
  (void)input;
  return sizeof(std::uint64_t) + 2 * sizeof(double);
}

Checkpoint MeanStddevKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("count", static_cast<std::int64_t>(count_));
  ck.set_f64("mean", mean_);
  ck.set_f64("m2", m2_);
  save_carry(ck);
  return ck;
}

Status MeanStddevKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a meanstddev checkpoint");
  }
  count_ = static_cast<std::uint64_t>(ck.get_i64("count"));
  mean_ = ck.get_f64("mean");
  m2_ = ck.get_f64("m2");
  return load_carry(ck);
}

std::unique_ptr<Kernel> MeanStddevKernel::clone() const {
  return std::make_unique<MeanStddevKernel>();
}

Status MeanStddevKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = MeanStddevResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  const auto& o = other.value();
  if (o.count == 0) return Status::ok();
  if (count_ == 0) {
    count_ = o.count;
    mean_ = o.mean;
    m2_ = o.m2;
    return Status::ok();
  }
  // Chan et al. pairwise combination.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(o.count);
  const double delta = o.mean - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2 + delta * delta * na * nb / n;
  count_ += o.count;
  return Status::ok();
}

}  // namespace dosas::kernels
