#include "kernels/sobel2d.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace dosas::kernels {

Sobel2dKernel::Sobel2dKernel(std::size_t width, double threshold)
    : width_(width), threshold_(threshold) {
  assert(width_ >= 1);
  reset();
}

Result<std::unique_ptr<Kernel>> Sobel2dKernel::from_spec(const OperationSpec& spec) {
  const auto width = spec.get_int("width", 1024);
  if (width < 1 || width > (1 << 26)) {
    return error(ErrorCode::kInvalidArgument, "sobel2d: width out of range");
  }
  const double threshold = spec.get_double("t", 1.0);
  return std::unique_ptr<Kernel>(
      std::make_unique<Sobel2dKernel>(static_cast<std::size_t>(width), threshold));
}

void Sobel2dKernel::reset() {
  consumed_ = 0;
  pending_.clear();
  prev1_.clear();
  prev2_.clear();
  rows_seen_ = 0;
  out_rows_ = 0;
  out_count_ = 0;
  edges_ = 0;
  max_mag_ = 0.0;
  sum_mag_ = 0.0;
}

void Sobel2dKernel::consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();
  const std::size_t row_bytes = width_ * sizeof(double);

  std::size_t pos = 0;
  if (!pending_.empty()) {
    const std::size_t need = row_bytes - pending_.size();
    const std::size_t take = std::min(need, chunk.size());
    pending_.insert(pending_.end(), chunk.begin(),
                    chunk.begin() + static_cast<std::ptrdiff_t>(take));
    pos = take;
    if (pending_.size() == row_bytes) {
      std::vector<double> row(width_);
      std::memcpy(row.data(), pending_.data(), row_bytes);
      pending_.clear();
      push_row(row.data());
    } else {
      return;
    }
  }

  std::vector<double> row(width_);
  while (chunk.size() - pos >= row_bytes) {
    std::memcpy(row.data(), chunk.data() + pos, row_bytes);
    push_row(row.data());
    pos += row_bytes;
  }
  if (pos < chunk.size()) {
    pending_.assign(chunk.begin() + static_cast<std::ptrdiff_t>(pos), chunk.end());
  }
}

void Sobel2dKernel::push_row(const double* row) {
  ++rows_seen_;
  if (rows_seen_ >= 3) {
    process_center(prev2_.data(), prev1_.data(), row);
  }
  prev2_.swap(prev1_);
  prev1_.assign(row, row + width_);
}

void Sobel2dKernel::process_center(const double* above, const double* center,
                                   const double* below) {
  ++out_rows_;
  const std::size_t w = width_;
  for (std::size_t x = 0; x < w; ++x) {
    const std::size_t xl = x == 0 ? 0 : x - 1;
    const std::size_t xr = x + 1 == w ? x : x + 1;
    // Sobel gradients:  Gx = [-1 0 1; -2 0 2; -1 0 1],  Gy = Gx^T.
    const double gx = -above[xl] + above[xr] - 2.0 * center[xl] + 2.0 * center[xr] -
                      below[xl] + below[xr];
    const double gy = -above[xl] - 2.0 * above[x] - above[xr] + below[xl] +
                      2.0 * below[x] + below[xr];
    const double mag = std::sqrt(gx * gx + gy * gy);
    if (mag > threshold_) ++edges_;
    if (mag > max_mag_) max_mag_ = mag;
    sum_mag_ += mag;
    ++out_count_;
  }
}

std::vector<std::uint8_t> Sobel2dKernel::finalize() const {
  ByteWriter w;
  w.put_u64(out_rows_);
  w.put_u64(out_count_);
  w.put_u64(edges_);
  w.put_f64(max_mag_);
  w.put_f64(out_count_ > 0 ? sum_mag_ / static_cast<double>(out_count_) : 0.0);
  return w.take();
}

Bytes Sobel2dKernel::result_size(Bytes input) const {
  (void)input;
  return 3 * sizeof(std::uint64_t) + 2 * sizeof(double);
}

Checkpoint Sobel2dKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("width", static_cast<std::int64_t>(width_));
  ck.set_f64("threshold", threshold_);
  ck.set_i64("consumed", static_cast<std::int64_t>(consumed_));
  ck.set_i64("rows_seen", static_cast<std::int64_t>(rows_seen_));
  ck.set_i64("out_rows", static_cast<std::int64_t>(out_rows_));
  ck.set_i64("out_count", static_cast<std::int64_t>(out_count_));
  ck.set_i64("edges", static_cast<std::int64_t>(edges_));
  ck.set_f64("max_mag", max_mag_);
  ck.set_f64("sum_mag", sum_mag_);
  ck.set_blob("pending", pending_);
  auto row_blob = [](const std::vector<double>& row) {
    std::vector<std::uint8_t> b(row.size() * sizeof(double));
    if (!row.empty()) std::memcpy(b.data(), row.data(), b.size());
    return b;
  };
  ck.set_blob("prev1", row_blob(prev1_));
  ck.set_blob("prev2", row_blob(prev2_));
  return ck;
}

Status Sobel2dKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a sobel2d checkpoint");
  }
  if (ck.get_i64("width", -1) != static_cast<std::int64_t>(width_)) {
    return error(ErrorCode::kInvalidArgument, "sobel2d: checkpoint width mismatch");
  }
  threshold_ = ck.get_f64("threshold");
  consumed_ = static_cast<Bytes>(ck.get_i64("consumed"));
  rows_seen_ = static_cast<std::size_t>(ck.get_i64("rows_seen"));
  out_rows_ = static_cast<std::uint64_t>(ck.get_i64("out_rows"));
  out_count_ = static_cast<std::uint64_t>(ck.get_i64("out_count"));
  edges_ = static_cast<std::uint64_t>(ck.get_i64("edges"));
  max_mag_ = ck.get_f64("max_mag");
  sum_mag_ = ck.get_f64("sum_mag");
  const auto* pending = ck.get_blob("pending");
  const auto* prev1 = ck.get_blob("prev1");
  const auto* prev2 = ck.get_blob("prev2");
  if (pending == nullptr || prev1 == nullptr || prev2 == nullptr) {
    return error(ErrorCode::kInvalidArgument, "sobel2d: checkpoint missing row state");
  }
  pending_ = *pending;
  auto blob_rows = [](const std::vector<std::uint8_t>& b, std::vector<double>& out) {
    out.resize(b.size() / sizeof(double));
    if (!out.empty()) std::memcpy(out.data(), b.data(), out.size() * sizeof(double));
  };
  blob_rows(*prev1, prev1_);
  blob_rows(*prev2, prev2_);
  return Status::ok();
}

std::unique_ptr<Kernel> Sobel2dKernel::clone() const {
  return std::make_unique<Sobel2dKernel>(width_, threshold_);
}

std::vector<double> Sobel2dKernel::magnitude_reference(const std::vector<double>& grid,
                                                       std::size_t width) {
  assert(width >= 1);
  assert(grid.size() % width == 0);
  const std::size_t rows = grid.size() / width;
  std::vector<double> out;
  if (rows < 3) return out;
  out.reserve((rows - 2) * width);
  for (std::size_t y = 1; y + 1 < rows; ++y) {
    const double* above = grid.data() + (y - 1) * width;
    const double* center = grid.data() + y * width;
    const double* below = grid.data() + (y + 1) * width;
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t xl = x == 0 ? 0 : x - 1;
      const std::size_t xr = x + 1 == width ? x : x + 1;
      const double gx = -above[xl] + above[xr] - 2.0 * center[xl] + 2.0 * center[xr] -
                        below[xl] + below[xr];
      const double gy = -above[xl] - 2.0 * above[x] - above[xr] + below[xl] +
                        2.0 * below[x] + below[xr];
      out.push_back(std::sqrt(gx * gx + gy * gy));
    }
  }
  return out;
}

Result<SobelDigest> SobelDigest::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  SobelDigest out;
  if (!r.get_u64(out.rows) || !r.get_u64(out.count) || !r.get_u64(out.edges) ||
      !r.get_f64(out.max_magnitude) || !r.get_f64(out.mean_magnitude) || !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "sobel2d: bad digest payload");
  }
  return out;
}

}  // namespace dosas::kernels
