// pipeline.hpp — streaming kernel composition (extension).
//
// The original active-disk programming model (Acharya et al.) composes
// *streamlets*: filter stages feeding aggregation stages, all running at
// the disk. PipelineKernel brings that to DOSAS: every stage except the
// last must be a transformer (`streams_output()`); after each consume()
// the stages are pumped — stage i's drained output becomes stage i+1's
// input — and finalize() is the last stage's result. Classic use:
//
//   pipe:ops=scale;a=1.8;b=32|thresholdcount;t=100
//   pipe:ops=gaussian2d;width=256;mode=full|minmax
//
// Operation syntax (inside the single `ops=` value): stages separated by
// '|', each stage "name[;key=val...]" — ';' plays ','/':' because those
// delimit the outer operation string.
//
// Checkpoints compose: each stage's checkpoint rides as one blob, so an
// interrupted pipeline resumes mid-stream on either side of the network
// exactly like a single kernel.
#pragma once

#include <memory>
#include <vector>

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"
#include "kernels/registry.hpp"

namespace dosas::kernels {

class PipelineKernel final : public Kernel {
 public:
  /// Stages run in order; all but the last must stream output. Asserts on
  /// an empty stage list (use from_spec for validated construction).
  explicit PipelineKernel(std::vector<std::unique_ptr<Kernel>> stages);

  /// Parse "pipe:ops=<stage>|<stage>..." resolving stage names against
  /// `registry`.
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec,
                                                   const Registry& registry);

  /// Parse one stage string "name[;k=v...]" into an OperationSpec.
  static Result<OperationSpec> parse_stage(const std::string& text);

  std::string name() const override { return "pipe"; }
  void reset() override;
  void consume(std::span<const std::uint8_t> chunk) override;
  Bytes consumed() const override { return consumed_; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;

  std::size_t stage_count() const { return stages_.size(); }
  const Kernel& stage(std::size_t i) const { return *stages_[i]; }

 private:
  /// Move drained bytes down the chain.
  void pump();

  std::vector<std::unique_ptr<Kernel>> stages_;
  Bytes consumed_ = 0;
};

}  // namespace dosas::kernels
