// byte_grep.hpp — count occurrences of a byte pattern in the raw stream.
//
// The unstructured-data representative (log scanning / sequence search à la
// Riedel's active-disk search workloads). Operates on raw bytes, not
// doubles, and carries a (pattern-1)-byte overlap window across chunks so
// matches spanning chunk boundaries are found exactly. Overlapping
// occurrences count (search resumes one byte after each match start).
#pragma once

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct ByteGrepResult {
  std::uint64_t matches = 0;
  std::uint64_t scanned = 0;  ///< total bytes scanned

  static Result<ByteGrepResult> decode(std::span<const std::uint8_t> bytes);
};

class ByteGrepKernel final : public Kernel {
 public:
  /// pattern must be non-empty.
  explicit ByteGrepKernel(std::string pattern = "ERROR");

  /// "bytegrep:pat=needle"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "bytegrep"; }
  void reset() override;
  void consume(std::span<const std::uint8_t> chunk) override;
  Bytes consumed() const override { return consumed_; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
  Bytes consumed_ = 0;
  std::uint64_t matches_ = 0;
  std::vector<std::uint8_t> tail_;  // last pattern-1 bytes of the stream so far
};

}  // namespace dosas::kernels
