// calibrate.hpp — measure kernel processing rates on this host.
//
// Paper §IV-A2 / Table III: the authors measured each kernel's per-core
// processing rate (SUM: 860 MB/s, Gaussian: 80 MB/s) and fed those rates
// into the scheduling algorithm as S_{C,op} and C_{C,op}. This calibrator
// reproduces that measurement: it streams synthetic data through a kernel
// and reports sustained bytes/sec, which benches print (Table III) and the
// simulator config can adopt in place of the paper's rates.
#pragma once

#include "common/units.hpp"
#include "kernels/kernel.hpp"

namespace dosas::kernels {

struct CalibrationResult {
  BytesPerSec rate = 0.0;      ///< sustained processing rate
  Bytes bytes_processed = 0;   ///< total data streamed
  Seconds elapsed = 0.0;       ///< wall-clock time
};

struct CalibrationOptions {
  Bytes total_bytes = 64_MiB;  ///< data volume to stream
  Bytes chunk_size = 1_MiB;    ///< consume() granularity
  int warmup_chunks = 4;       ///< chunks processed before timing starts
};

/// Stream `opts.total_bytes` of synthetic doubles through `kernel` and
/// measure the sustained consume() rate. The kernel is reset first and left
/// finalized-able afterwards.
CalibrationResult calibrate(Kernel& kernel, const CalibrationOptions& opts = {});

}  // namespace dosas::kernels
