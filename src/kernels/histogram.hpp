// histogram.hpp — fixed-bin histogram kernel.
//
// Parameters: bins (default 16), lo/hi value range (default [0,1)). Items
// outside the range land in dedicated under/overflow counters. The result
// size depends on the bin count, not the input size — a mid-size h(x)
// between SUM's constant and Gaussian's proportional output.
#pragma once

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct HistogramResult {
  double lo = 0.0;
  double hi = 1.0;
  std::uint64_t below = 0;
  std::uint64_t above = 0;
  std::vector<std::uint64_t> counts;

  std::uint64_t total() const {
    std::uint64_t t = below + above;
    for (auto c : counts) t += c;
    return t;
  }

  static Result<HistogramResult> decode(std::span<const std::uint8_t> bytes);
};

class HistogramKernel final : public ItemwiseKernel {
 public:
  /// bins >= 1, lo < hi.
  HistogramKernel(std::uint32_t bins = 16, double lo = 0.0, double hi = 1.0);

  /// Construct from an operation spec: "histogram:bins=32,lo=-1,hi=1".
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "histogram"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

 protected:
  void reset_state() override {
    below_ = above_ = 0;
    std::fill(counts_.begin(), counts_.end(), 0);
  }
  void process_items(std::span<const double> items) override {
    const double scale = static_cast<double>(counts_.size()) / (hi_ - lo_);
    for (double v : items) {
      if (v < lo_) {
        ++below_;
      } else if (v >= hi_) {
        ++above_;
      } else {
        const auto bin = static_cast<std::size_t>((v - lo_) * scale);
        ++counts_[bin < counts_.size() ? bin : counts_.size() - 1];
      }
    }
  }

 private:
  double lo_;
  double hi_;
  std::uint64_t below_ = 0;
  std::uint64_t above_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace dosas::kernels
