// gaussian2d.hpp — the 2D Gaussian Filter benchmark kernel (paper Table III).
//
// A 3×3 Gaussian convolution (weights 1-2-1 / 2-4-2 / 1-2-1, divided by 16)
// over a row-major grid of doubles: exactly the paper's "9 multiplication
// operations, 9 addition operations and 1 divide operation per data item".
// It is the *expensive* kernel (~80 MB/s per core on the paper's testbed)
// whose offloading causes the storage-node contention DOSAS schedules
// around.
//
// The stream is interpreted as rows of `width` doubles. Output rows are
// produced for every row with both vertical neighbours (the first and last
// input rows produce none); columns are edge-clamped. Two result modes:
//
//   * kDigest (default): (rows, count, sum, min, max) of the filtered
//     field — the "derived statistic of the filtered image" use case; this
//     is what makes active Gaussian worth offloading (h(x) constant).
//   * kFull: the filtered rows themselves (h(x) ≈ x), used by correctness
//     tests and by consumers that need the full filtered image.
#pragma once

#include <deque>

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct GaussianDigest {
  std::uint64_t rows = 0;   ///< output rows produced
  std::uint64_t count = 0;  ///< filtered values produced
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Result<GaussianDigest> decode(std::span<const std::uint8_t> bytes);
};

class Gaussian2dKernel final : public Kernel {
 public:
  enum class Mode { kDigest, kFull };

  /// width: doubles per row (>= 1).
  explicit Gaussian2dKernel(std::size_t width = 1024, Mode mode = Mode::kDigest);

  /// "gaussian2d:width=512,mode=full"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "gaussian2d"; }
  void reset() override;
  void consume(std::span<const std::uint8_t> chunk) override;
  Bytes consumed() const override { return consumed_; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;

  /// Full mode doubles as a pipeline transformer: drain_stream() hands out
  /// the filtered values (raw doubles) produced so far and removes them
  /// from the full-mode buffer (finalize() then reports only undrained
  /// values). Digest mode does not stream.
  bool streams_output() const override { return mode_ == Mode::kFull; }
  std::vector<std::uint8_t> drain_stream() override;

  std::size_t width() const { return width_; }
  Mode mode() const { return mode_; }

  /// Reference implementation over a whole image (for tests): filters
  /// `rows` × `width` values, returning (rows-2) × width output values.
  static std::vector<double> filter_reference(const std::vector<double>& grid,
                                              std::size_t width);

 private:
  void push_row(const double* row);
  void filter_center(const double* above, const double* center, const double* below);

  std::size_t width_;
  Mode mode_;
  Bytes consumed_ = 0;

  std::vector<std::uint8_t> pending_;  // bytes of the incomplete current row
  std::vector<double> prev1_;          // last complete row
  std::vector<double> prev2_;          // row before that
  std::size_t rows_seen_ = 0;

  // Digest accumulators.
  std::uint64_t out_rows_ = 0;
  std::uint64_t out_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  // Full-mode output (filtered rows, row-major).
  std::vector<double> full_out_;
};

}  // namespace dosas::kernels
