#include "kernels/stream.hpp"

#include <algorithm>

namespace dosas::kernels {

Result<StreamResult> stream_extent(Kernel& kernel, Bytes from, Bytes end, Bytes chunk_size,
                                   const ChunkReader& read, const StopCheck& stop,
                                   const ProgressFn& progress) {
  StreamResult r;
  r.position = from;
  while (r.position < end) {
    if (stop && stop()) {
      r.stopped = true;
      return r;
    }
    Bytes n = std::min<Bytes>(chunk_size, end - r.position);
    if (r.position + n < end) {
      // Keep non-final chunk boundaries on whole-item (8-byte) multiples:
      // an item-aligned stream then never splits an item across chunks, so
      // ItemwiseKernel's carry stays empty and every aligned slab is
      // consumed in place instead of restaging around a ragged head.
      const Bytes ragged = n % sizeof(double);
      if (ragged != 0 && n > ragged) n -= ragged;
    }
    auto chunk = read(r.position, n);
    if (!chunk.is_ok()) return chunk.status();
    if (chunk.value().empty()) break;  // end of data
    kernel.consume(chunk.value().span());
    r.processed += chunk.value().size();
    r.position += chunk.value().size();
    if (progress) progress(chunk.value().size(), r.processed);
    if (chunk.value().size() < n) break;  // short read: end of object
  }
  return r;
}

}  // namespace dosas::kernels
