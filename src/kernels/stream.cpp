#include "kernels/stream.hpp"

#include <algorithm>

namespace dosas::kernels {

Result<StreamResult> stream_extent(Kernel& kernel, Bytes from, Bytes end, Bytes chunk_size,
                                   const ChunkReader& read, const StopCheck& stop,
                                   const ProgressFn& progress) {
  StreamResult r;
  r.position = from;
  while (r.position < end) {
    if (stop && stop()) {
      r.stopped = true;
      return r;
    }
    const Bytes n = std::min<Bytes>(chunk_size, end - r.position);
    auto chunk = read(r.position, n);
    if (!chunk.is_ok()) return chunk.status();
    if (chunk.value().empty()) break;  // end of data
    kernel.consume(chunk.value().span());
    r.processed += chunk.value().size();
    r.position += chunk.value().size();
    if (progress) progress(chunk.value().size(), r.processed);
    if (chunk.value().size() < n) break;  // short read: end of object
  }
  return r;
}

}  // namespace dosas::kernels
