// threshold_count.hpp — count items exceeding a threshold.
//
// The classic active-disk "filter + count" selection kernel (Acharya et
// al.'s SQL-select analogue): one comparison per item, tiny result.
#pragma once

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct ThresholdCountResult {
  std::uint64_t count = 0;    ///< items seen
  std::uint64_t matches = 0;  ///< items > threshold
  double threshold = 0.0;

  static Result<ThresholdCountResult> decode(std::span<const std::uint8_t> bytes);
};

class ThresholdCountKernel final : public ItemwiseKernel {
 public:
  explicit ThresholdCountKernel(double threshold = 0.5) : threshold_(threshold) {}

  /// "thresholdcount:t=0.9"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "thresholdcount"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

 protected:
  void reset_state() override {
    count_ = 0;
    matches_ = 0;
  }
  void process_items(std::span<const double> items) override {
    for (double v : items) {
      if (v > threshold_) ++matches_;
    }
    count_ += items.size();
  }

 private:
  double threshold_;
  std::uint64_t count_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace dosas::kernels
