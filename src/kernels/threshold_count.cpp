#include "kernels/threshold_count.hpp"

namespace dosas::kernels {

Result<std::unique_ptr<Kernel>> ThresholdCountKernel::from_spec(const OperationSpec& spec) {
  return std::unique_ptr<Kernel>(
      std::make_unique<ThresholdCountKernel>(spec.get_double("t", 0.5)));
}

Result<ThresholdCountResult> ThresholdCountResult::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  ThresholdCountResult out;
  if (!r.get_u64(out.count) || !r.get_u64(out.matches) || !r.get_f64(out.threshold) ||
      !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "thresholdcount: bad result payload");
  }
  return out;
}

std::vector<std::uint8_t> ThresholdCountKernel::finalize() const {
  ByteWriter w;
  w.put_u64(count_);
  w.put_u64(matches_);
  w.put_f64(threshold_);
  return w.take();
}

Bytes ThresholdCountKernel::result_size(Bytes input) const {
  (void)input;
  return 2 * sizeof(std::uint64_t) + sizeof(double);
}

Checkpoint ThresholdCountKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_f64("threshold", threshold_);
  ck.set_i64("count", static_cast<std::int64_t>(count_));
  ck.set_i64("matches", static_cast<std::int64_t>(matches_));
  save_carry(ck);
  return ck;
}

Status ThresholdCountKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a thresholdcount checkpoint");
  }
  threshold_ = ck.get_f64("threshold");
  count_ = static_cast<std::uint64_t>(ck.get_i64("count"));
  matches_ = static_cast<std::uint64_t>(ck.get_i64("matches"));
  return load_carry(ck);
}

std::unique_ptr<Kernel> ThresholdCountKernel::clone() const {
  return std::make_unique<ThresholdCountKernel>(threshold_);
}

Status ThresholdCountKernel::merge(std::span<const std::uint8_t> other_result) {
  auto other = ThresholdCountResult::decode(other_result);
  if (!other.is_ok()) return other.status();
  if (other.value().threshold != threshold_) {
    return error(ErrorCode::kInvalidArgument, "thresholdcount: merge with mismatched threshold");
  }
  count_ += other.value().count;
  matches_ += other.value().matches;
  return Status::ok();
}

}  // namespace dosas::kernels
