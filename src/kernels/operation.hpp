// operation.hpp — parsing of the `operation` string in the enhanced
// MPI-IO call.
//
// Paper Table I: MPI_File_read_ex(..., char *operation, ...). We encode an
// operation as "<kernel>" or "<kernel>:k1=v1,k2=v2", e.g.
//   "sum"
//   "gaussian2d:width=1024"
//   "histogram:bins=32,lo=0,hi=1"
#pragma once

#include <map>
#include <string>

#include "common/status.hpp"

namespace dosas::kernels {

struct OperationSpec {
  std::string kernel;                       ///< registry name
  std::map<std::string, std::string> args;  ///< kernel parameters

  /// Parse "<kernel>[:k=v[,k=v]...]". Whitespace is not trimmed; empty
  /// kernel names, empty keys, and malformed pairs are rejected.
  static Result<OperationSpec> parse(const std::string& text);

  /// Canonical text form (round-trips through parse()).
  std::string to_string() const;

  /// Typed argument accessors with defaults.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  bool operator==(const OperationSpec&) const = default;
};

}  // namespace dosas::kernels
