#include "kernels/gaussian2d.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dosas::kernels {

namespace {
// 3x3 Gaussian weights; the explicit divide (not a multiply by 1/16) keeps
// the per-item operation mix identical to the paper's Table III.
constexpr double kW[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};
constexpr double kDivisor = 16.0;
}  // namespace

Gaussian2dKernel::Gaussian2dKernel(std::size_t width, Mode mode) : width_(width), mode_(mode) {
  assert(width_ >= 1);
  reset();
}

Result<std::unique_ptr<Kernel>> Gaussian2dKernel::from_spec(const OperationSpec& spec) {
  const auto width = spec.get_int("width", 1024);
  if (width < 1 || width > (1 << 26)) {
    return error(ErrorCode::kInvalidArgument, "gaussian2d: width out of range");
  }
  const std::string mode_s = spec.get("mode", "digest");
  Mode mode;
  if (mode_s == "digest") {
    mode = Mode::kDigest;
  } else if (mode_s == "full") {
    mode = Mode::kFull;
  } else {
    return error(ErrorCode::kInvalidArgument, "gaussian2d: unknown mode '" + mode_s + "'");
  }
  return std::unique_ptr<Kernel>(
      std::make_unique<Gaussian2dKernel>(static_cast<std::size_t>(width), mode));
}

void Gaussian2dKernel::reset() {
  consumed_ = 0;
  pending_.clear();
  prev1_.clear();
  prev2_.clear();
  rows_seen_ = 0;
  out_rows_ = 0;
  out_count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  full_out_.clear();
}

void Gaussian2dKernel::consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();
  const std::size_t row_bytes = width_ * sizeof(double);

  // Fast path: no pending partial row and the chunk is row-aligned slices.
  std::size_t pos = 0;
  if (!pending_.empty()) {
    const std::size_t need = row_bytes - pending_.size();
    const std::size_t take = std::min(need, chunk.size());
    pending_.insert(pending_.end(), chunk.begin(),
                    chunk.begin() + static_cast<std::ptrdiff_t>(take));
    pos = take;
    if (pending_.size() == row_bytes) {
      std::vector<double> row(width_);
      std::memcpy(row.data(), pending_.data(), row_bytes);
      pending_.clear();
      push_row(row.data());
    } else {
      return;
    }
  }

  std::vector<double> row(width_);
  while (chunk.size() - pos >= row_bytes) {
    std::memcpy(row.data(), chunk.data() + pos, row_bytes);
    push_row(row.data());
    pos += row_bytes;
  }

  if (pos < chunk.size()) {
    pending_.assign(chunk.begin() + static_cast<std::ptrdiff_t>(pos), chunk.end());
  }
}

void Gaussian2dKernel::push_row(const double* row) {
  ++rows_seen_;
  if (rows_seen_ >= 3) {
    filter_center(prev2_.data(), prev1_.data(), row);
  }
  prev2_.swap(prev1_);
  prev1_.assign(row, row + width_);
}

void Gaussian2dKernel::filter_center(const double* above, const double* center,
                                     const double* below) {
  ++out_rows_;
  const std::size_t w = width_;
  for (std::size_t x = 0; x < w; ++x) {
    // Edge-clamp columns.
    const std::size_t xl = x == 0 ? 0 : x - 1;
    const std::size_t xr = x + 1 == w ? x : x + 1;
    const double v = (kW[0][0] * above[xl] + kW[0][1] * above[x] + kW[0][2] * above[xr] +
                      kW[1][0] * center[xl] + kW[1][1] * center[x] + kW[1][2] * center[xr] +
                      kW[2][0] * below[xl] + kW[2][1] * below[x] + kW[2][2] * below[xr]) /
                     kDivisor;
    if (out_count_ == 0) {
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
    sum_ += v;
    ++out_count_;
    if (mode_ == Mode::kFull) full_out_.push_back(v);
  }
}

std::vector<std::uint8_t> Gaussian2dKernel::drain_stream() {
  if (mode_ != Mode::kFull || full_out_.empty()) return {};
  std::vector<std::uint8_t> out(full_out_.size() * sizeof(double));
  std::memcpy(out.data(), full_out_.data(), out.size());
  full_out_.clear();
  return out;
}

std::vector<std::uint8_t> Gaussian2dKernel::finalize() const {
  ByteWriter w;
  if (mode_ == Mode::kDigest) {
    w.put_u64(out_rows_);
    w.put_u64(out_count_);
    w.put_f64(sum_);
    w.put_f64(min_);
    w.put_f64(max_);
  } else {
    w.put_u64(out_rows_);
    w.put_u64(static_cast<std::uint64_t>(width_));
    for (double v : full_out_) w.put_f64(v);
  }
  return w.take();
}

Bytes Gaussian2dKernel::result_size(Bytes input) const {
  if (mode_ == Mode::kDigest) {
    return 2 * sizeof(std::uint64_t) + 3 * sizeof(double);
  }
  // Full mode: (rows - 2) output rows for `rows` input rows.
  const Bytes row_bytes = width_ * sizeof(double);
  const Bytes rows = input / row_bytes;
  const Bytes out_rows = rows >= 2 ? rows - 2 : 0;
  return 2 * sizeof(std::uint64_t) + out_rows * row_bytes;
}

Checkpoint Gaussian2dKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_i64("width", static_cast<std::int64_t>(width_));
  ck.set_string("mode", mode_ == Mode::kDigest ? "digest" : "full");
  ck.set_i64("consumed", static_cast<std::int64_t>(consumed_));
  ck.set_i64("rows_seen", static_cast<std::int64_t>(rows_seen_));
  ck.set_i64("out_rows", static_cast<std::int64_t>(out_rows_));
  ck.set_i64("out_count", static_cast<std::int64_t>(out_count_));
  ck.set_f64("sum", sum_);
  ck.set_f64("min", min_);
  ck.set_f64("max", max_);
  ck.set_blob("pending", pending_);

  auto rows_to_blob = [](const std::vector<double>& row) {
    std::vector<std::uint8_t> b(row.size() * sizeof(double));
    if (!row.empty()) std::memcpy(b.data(), row.data(), b.size());
    return b;
  };
  ck.set_blob("prev1", rows_to_blob(prev1_));
  ck.set_blob("prev2", rows_to_blob(prev2_));
  if (mode_ == Mode::kFull) ck.set_blob("full_out", rows_to_blob(full_out_));
  return ck;
}

Status Gaussian2dKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a gaussian2d checkpoint");
  }
  const auto width = ck.get_i64("width", -1);
  if (width != static_cast<std::int64_t>(width_)) {
    return error(ErrorCode::kInvalidArgument, "gaussian2d: checkpoint width mismatch");
  }
  const std::string mode_s = ck.get_string("mode");
  if ((mode_ == Mode::kDigest) != (mode_s == "digest")) {
    return error(ErrorCode::kInvalidArgument, "gaussian2d: checkpoint mode mismatch");
  }
  consumed_ = static_cast<Bytes>(ck.get_i64("consumed"));
  rows_seen_ = static_cast<std::size_t>(ck.get_i64("rows_seen"));
  out_rows_ = static_cast<std::uint64_t>(ck.get_i64("out_rows"));
  out_count_ = static_cast<std::uint64_t>(ck.get_i64("out_count"));
  sum_ = ck.get_f64("sum");
  min_ = ck.get_f64("min");
  max_ = ck.get_f64("max");

  auto blob_to_rows = [](const std::vector<std::uint8_t>& b, std::vector<double>& out) {
    out.resize(b.size() / sizeof(double));
    if (!out.empty()) std::memcpy(out.data(), b.data(), out.size() * sizeof(double));
  };
  const auto* pending = ck.get_blob("pending");
  const auto* prev1 = ck.get_blob("prev1");
  const auto* prev2 = ck.get_blob("prev2");
  if (pending == nullptr || prev1 == nullptr || prev2 == nullptr) {
    return error(ErrorCode::kInvalidArgument, "gaussian2d: checkpoint missing row state");
  }
  pending_ = *pending;
  blob_to_rows(*prev1, prev1_);
  blob_to_rows(*prev2, prev2_);
  if (mode_ == Mode::kFull) {
    const auto* full = ck.get_blob("full_out");
    if (full == nullptr) {
      return error(ErrorCode::kInvalidArgument, "gaussian2d: checkpoint missing output");
    }
    blob_to_rows(*full, full_out_);
  }
  return Status::ok();
}

std::unique_ptr<Kernel> Gaussian2dKernel::clone() const {
  return std::make_unique<Gaussian2dKernel>(width_, mode_);
}

std::vector<double> Gaussian2dKernel::filter_reference(const std::vector<double>& grid,
                                                       std::size_t width) {
  assert(width >= 1);
  assert(grid.size() % width == 0);
  const std::size_t rows = grid.size() / width;
  std::vector<double> out;
  if (rows < 3) return out;
  out.reserve((rows - 2) * width);
  for (std::size_t y = 1; y + 1 < rows; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t xl = x == 0 ? 0 : x - 1;
      const std::size_t xr = x + 1 == width ? x : x + 1;
      double acc = 0.0;
      const std::size_t cols[3] = {xl, x, xr};
      for (int dy = -1; dy <= 1; ++dy) {
        const double* row = grid.data() + (y + static_cast<std::size_t>(dy + 1) - 1) * width;
        for (int dx = 0; dx < 3; ++dx) {
          acc += kW[dy + 1][dx] * row[cols[dx]];
        }
      }
      out.push_back(acc / kDivisor);
    }
  }
  return out;
}

Result<GaussianDigest> GaussianDigest::decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  ByteReader r(buf);
  GaussianDigest out;
  if (!r.get_u64(out.rows) || !r.get_u64(out.count) || !r.get_f64(out.sum) ||
      !r.get_f64(out.min) || !r.get_f64(out.max) || !r.exhausted()) {
    return error(ErrorCode::kInvalidArgument, "gaussian2d: bad digest payload");
  }
  return out;
}

}  // namespace dosas::kernels
