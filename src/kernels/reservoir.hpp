// reservoir.hpp — uniform reservoir-sampling kernel (extension).
//
// Returns a uniform sample of N items from the stream (Vitter's Algorithm
// R), the active-storage answer to "give me a representative sample of this
// dataset without reading it": h(x) = N·8 bytes. Deterministic for a given
// seed, so interrupted/resumed runs reproduce exactly (the RNG state rides
// in the checkpoint). Mergeable: two reservoirs combine by weighted
// subsampling using their item counts.
#pragma once

#include "common/rng.hpp"
#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

struct ReservoirResult {
  std::uint64_t count = 0;      ///< items seen
  std::uint64_t seed = 0;       ///< sampling seed (for reproducibility checks)
  std::vector<double> sample;   ///< the reservoir (size <= N)

  static Result<ReservoirResult> decode(std::span<const std::uint8_t> bytes);
};

class ReservoirKernel final : public ItemwiseKernel {
 public:
  explicit ReservoirKernel(std::size_t n = 64, std::uint64_t seed = 0xD05A5);

  /// "reservoir:n=128,seed=7"
  static Result<std::unique_ptr<Kernel>> from_spec(const OperationSpec& spec);

  std::string name() const override { return "reservoir"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

  std::size_t capacity() const { return n_; }

 protected:
  void reset_state() override {
    sample_.clear();
    count_ = 0;
    rng_.reseed(seed_);
  }
  void process_items(std::span<const double> items) override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<double> sample_;
  std::uint64_t count_ = 0;
};

}  // namespace dosas::kernels
