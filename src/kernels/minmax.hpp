// minmax.hpp — min/max reduction kernel.
//
// Two comparisons per item; with SUM and MEAN/STDDEV this covers the cheap
// statistics family active storage was originally proposed for (Riedel's
// active-disk data-mining workloads).
#pragma once

#include "kernels/kernel.hpp"

namespace dosas::kernels {

struct MinMaxResult {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;

  static Result<MinMaxResult> decode(std::span<const std::uint8_t> bytes);
};

class MinMaxKernel final : public ItemwiseKernel {
 public:
  std::string name() const override { return "minmax"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

 protected:
  void reset_state() override {
    count_ = 0;
    min_ = 0.0;
    max_ = 0.0;
  }
  void process_items(std::span<const double> items) override {
    for (double v : items) {
      if (count_ == 0) {
        min_ = max_ = v;
      } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
      }
      ++count_;
    }
  }

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dosas::kernels
