#include "kernels/kernel.hpp"

#include <algorithm>
#include <cstring>

#include "common/arena.hpp"

namespace dosas::kernels {

void ItemwiseKernel::consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();

  // Complete a partial item carried from the previous chunk.
  if (carry_len_ > 0) {
    const std::size_t need = sizeof(double) - carry_len_;
    const std::size_t take = std::min(need, chunk.size());
    // Empty chunks have a null data(); memcpy's pointers must be non-null
    // even for size 0.
    if (take > 0) std::memcpy(carry_ + carry_len_, chunk.data(), take);
    carry_len_ += take;
    chunk = chunk.subspan(take);
    if (carry_len_ == sizeof(double)) {
      double item;
      std::memcpy(&item, carry_, sizeof(double));
      process_items(std::span(&item, 1));
      carry_len_ = 0;
    } else {
      return;  // chunk exhausted without completing the item
    }
  }

  // Process the whole-item middle.
  const std::size_t whole = chunk.size() / sizeof(double);
  if (whole > 0) {
    if (reinterpret_cast<std::uintptr_t>(chunk.data()) % alignof(double) == 0) {
      // Aligned input — every arena slab is (vectors are allocator-aligned,
      // and stream_extent keeps chunk boundaries on item multiples) — is
      // consumed IN PLACE: the slab the data server filled is the very
      // memory process_items() reads. No staging, no ledger charge.
      process_items(
          std::span(reinterpret_cast<const double*>(chunk.data()), whole));
    } else {
      // Misaligned byte stream (ragged head after a carry, foreign
      // buffers): copy into an aligned scratch in bounded blocks to keep
      // memory flat. This staging copy is what the ledger's kernel_stage
      // site measures.
      constexpr std::size_t kBlock = 8192;
      static thread_local std::vector<double> scratch;
      note_bytes_copied(whole * sizeof(double), CopySite::kKernelStage);
      std::size_t done = 0;
      while (done < whole) {
        const std::size_t n = std::min(kBlock, whole - done);
        scratch.resize(n);
        std::memcpy(scratch.data(), chunk.data() + done * sizeof(double), n * sizeof(double));
        process_items(std::span(scratch.data(), n));
        done += n;
      }
    }
  }

  // Stash the trailing partial item.
  const std::size_t tail = chunk.size() % sizeof(double);
  if (tail > 0) {
    std::memcpy(carry_, chunk.data() + chunk.size() - tail, tail);
    carry_len_ = tail;
  }
}

void ItemwiseKernel::save_carry(Checkpoint& ck) const {
  ck.set_i64("itemwise.consumed", static_cast<std::int64_t>(consumed_));
  ck.set_blob("itemwise.carry",
              std::vector<std::uint8_t>(carry_, carry_ + carry_len_));
}

Status ItemwiseKernel::load_carry(const Checkpoint& ck) {
  if (!ck.has_i64("itemwise.consumed") || ck.get_blob("itemwise.carry") == nullptr) {
    return error(ErrorCode::kInvalidArgument, "checkpoint missing itemwise state");
  }
  consumed_ = static_cast<Bytes>(ck.get_i64("itemwise.consumed"));
  const auto& carry = *ck.get_blob("itemwise.carry");
  if (carry.size() >= sizeof(double)) {
    return error(ErrorCode::kInvalidArgument, "checkpoint carry too large");
  }
  if (!carry.empty()) std::memcpy(carry_, carry.data(), carry.size());
  carry_len_ = carry.size();
  return Status::ok();
}

}  // namespace dosas::kernels
