// kernel.hpp — the Processing Kernel (PK) framework.
//
// Paper §III-E: PKs are "a collection of predefined analysis kernels that
// are widely used in data-intensive applications", deployed on BOTH storage
// nodes and compute nodes, and required to support interruption: on a
// terminating signal a kernel dumps its variables (<name, type, value>) so
// the peer side can resume it. That contract is this interface:
//
//   * streaming: data arrives in arbitrary chunk boundaries via consume();
//   * restartable: checkpoint() captures complete state, restore() resumes
//     on a *different* Kernel instance (e.g. client-side after a demotion);
//   * mergeable (optional): partial results from different stripes of a
//     striped file can be combined (the Piernas-style striped-file
//     extension the paper lists as related work).
//
// Kernels interpret input as a stream of little-endian doubles ("data
// items" in the paper's Table III) unless documented otherwise.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace dosas::kernels {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Registry name, e.g. "sum", "gaussian2d".
  virtual std::string name() const = 0;

  /// Clear all state; the next consume() starts a fresh run.
  virtual void reset() = 0;

  /// Feed the next chunk of the input stream. Chunks may split items.
  virtual void consume(std::span<const std::uint8_t> chunk) = 0;

  /// Total bytes consumed since reset()/restore().
  virtual Bytes consumed() const = 0;

  /// Produce the encoded result for everything consumed so far. The kernel
  /// remains valid; finalize() is idempotent.
  virtual std::vector<std::uint8_t> finalize() const = 0;

  /// h(x) of the cost model: encoded result size for `input` bytes of data.
  virtual Bytes result_size(Bytes input) const = 0;

  /// Serialize complete execution state (paper's variable dump).
  virtual Checkpoint checkpoint() const = 0;

  /// Adopt the state in `ck`; subsequent consume() calls continue the
  /// interrupted run.
  virtual Status restore(const Checkpoint& ck) = 0;

  /// Fresh instance with the same construction parameters and clean state.
  virtual std::unique_ptr<Kernel> clone() const = 0;

  /// Whether partial results can be combined across stripes.
  virtual bool mergeable() const { return false; }

  /// Fold another instance's finalize() output into this kernel's state.
  /// Only valid when mergeable().
  virtual Status merge(std::span<const std::uint8_t> other_result) {
    (void)other_result;
    return error(ErrorCode::kInvalidArgument, name() + " is not mergeable");
  }

  /// Whether the kernel produces a byte STREAM as it consumes (a
  /// transformer usable as a non-final pipeline stage), as opposed to only
  /// an aggregate at finalize().
  virtual bool streams_output() const { return false; }

  /// Take the output bytes produced since the last drain (empty unless
  /// streams_output()). PipelineKernel pumps these into the next stage
  /// after every consume() call.
  virtual std::vector<std::uint8_t> drain_stream() { return {}; }
};

/// Base for kernels that process a stream of 8-byte doubles: handles items
/// split across chunk boundaries and the consumed-bytes counter; subclasses
/// implement process_items() over whole items.
class ItemwiseKernel : public Kernel {
 public:
  void reset() override {
    consumed_ = 0;
    carry_len_ = 0;
    reset_state();
  }

  void consume(std::span<const std::uint8_t> chunk) override;

  Bytes consumed() const override { return consumed_; }

 protected:
  /// Subclass state hooks.
  virtual void reset_state() = 0;
  virtual void process_items(std::span<const double> items) = 0;

  /// Checkpoint/restore helpers for the shared carry state. Subclasses
  /// call these from their checkpoint()/restore().
  void save_carry(Checkpoint& ck) const;
  Status load_carry(const Checkpoint& ck);

 private:
  Bytes consumed_ = 0;
  std::uint8_t carry_[sizeof(double)] = {};
  std::size_t carry_len_ = 0;
};

}  // namespace dosas::kernels
