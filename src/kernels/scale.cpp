#include "kernels/scale.hpp"

#include <cstring>

namespace dosas::kernels {

Result<std::unique_ptr<Kernel>> ScaleKernel::from_spec(const OperationSpec& spec) {
  return std::unique_ptr<Kernel>(
      std::make_unique<ScaleKernel>(spec.get_double("a", 1.0), spec.get_double("b", 0.0)));
}

std::vector<std::uint8_t> ScaleKernel::finalize() const {
  std::vector<std::uint8_t> bytes(out_.size() * sizeof(double));
  if (!out_.empty()) std::memcpy(bytes.data(), out_.data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> ScaleKernel::drain_stream() {
  auto bytes = finalize();
  out_.clear();
  return bytes;
}

Checkpoint ScaleKernel::checkpoint() const {
  Checkpoint ck;
  ck.set_string("kernel", name());
  ck.set_f64("a", a_);
  ck.set_f64("b", b_);
  ck.set_blob("out", finalize());
  save_carry(ck);
  return ck;
}

Status ScaleKernel::restore(const Checkpoint& ck) {
  if (ck.get_string("kernel") != name()) {
    return error(ErrorCode::kInvalidArgument, "checkpoint is not a scale checkpoint");
  }
  a_ = ck.get_f64("a");
  b_ = ck.get_f64("b");
  const auto* out = ck.get_blob("out");
  if (out == nullptr) return error(ErrorCode::kInvalidArgument, "scale: missing output");
  out_.resize(out->size() / sizeof(double));
  if (!out_.empty()) std::memcpy(out_.data(), out->data(), out_.size() * sizeof(double));
  return load_carry(ck);
}

std::unique_ptr<Kernel> ScaleKernel::clone() const {
  return std::make_unique<ScaleKernel>(a_, b_);
}

}  // namespace dosas::kernels
