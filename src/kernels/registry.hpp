// registry.hpp — the kernel registry/factory.
//
// The paper's PK component is "a collection of predefined analysis
// kernels ... deployed both at storage nodes and compute nodes". A Registry
// instance is that collection: both the Active Storage Server and the
// Active Storage Client hold one and instantiate kernels from the
// `operation` string of an active I/O request, guaranteeing the two sides
// agree on semantics (a demoted request restores a storage-side checkpoint
// into a client-side instance of the same kernel).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernel.hpp"
#include "kernels/operation.hpp"

namespace dosas::kernels {

class Registry {
 public:
  using Factory = std::function<Result<std::unique_ptr<Kernel>>(const OperationSpec&)>;

  /// Register a kernel factory under `name`. Re-registration replaces.
  void register_kernel(const std::string& name, Factory factory);

  /// Instantiate from an operation string, e.g. "gaussian2d:width=512".
  Result<std::unique_ptr<Kernel>> create(const std::string& operation) const;

  /// Instantiate from a parsed spec.
  Result<std::unique_ptr<Kernel>> create(const OperationSpec& spec) const;

  bool contains(const std::string& name) const { return factories_.count(name) != 0; }
  std::vector<std::string> names() const;

  /// A registry pre-loaded with every built-in kernel: sum, minmax,
  /// meanstddev, histogram, thresholdcount, gaussian2d, bytegrep, sobel2d,
  /// topk, reservoir.
  static Registry with_builtins();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace dosas::kernels
