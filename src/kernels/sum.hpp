// sum.hpp — the SUM benchmark kernel (paper Table III).
//
// One addition per data item; the cheapest kernel in the paper, processing
// ~860 MB/s per core on the Discfarm testbed. Its result is a 16-byte
// (count, sum) record, so active execution reduces an x-byte read to a
// constant-size transfer: the regime where active storage always wins.
#pragma once

#include "kernels/kernel.hpp"

namespace dosas::kernels {

/// Decoded result payload of SumKernel::finalize().
struct SumResult {
  std::uint64_t count = 0;
  double sum = 0.0;

  static Result<SumResult> decode(std::span<const std::uint8_t> bytes);
};

class SumKernel final : public ItemwiseKernel {
 public:
  std::string name() const override { return "sum"; }
  std::vector<std::uint8_t> finalize() const override;
  Bytes result_size(Bytes input) const override;
  Checkpoint checkpoint() const override;
  Status restore(const Checkpoint& ck) override;
  std::unique_ptr<Kernel> clone() const override;
  bool mergeable() const override { return true; }
  Status merge(std::span<const std::uint8_t> other_result) override;

 protected:
  void reset_state() override {
    sum_ = 0.0;
    count_ = 0;
  }
  void process_items(std::span<const double> items) override {
    for (double v : items) sum_ += v;
    count_ += items.size();
  }

 private:
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace dosas::kernels
