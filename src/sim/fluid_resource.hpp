// fluid_resource.hpp — processor-sharing ("fluid flow") resource model.
//
// Models a capacity shared fairly among concurrent jobs, with an optional
// per-job rate cap. Two instantiations cover the paper's platform:
//
//  * the shared 1 GbE link: capacity = 118 MB/s, per-flow cap = link rate
//    (or a NIC rate), jobs = in-flight transfers measured in bytes;
//  * a storage node's CPU: capacity = cores × per-core kernel rate,
//    per-job cap = one core's rate, jobs = running kernels measured in
//    bytes of input left to process. With k kernels on a 2-core node each
//    gets min(1 core, 2/k cores) — exactly the contention regime the paper
//    studies.
//
// Rates are recomputed with water-filling whenever membership changes, and
// the earliest completion is (re)scheduled on the simulator. Deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.hpp"

namespace dosas::sim {

class FluidResource {
 public:
  struct Config {
    double capacity = 1.0;     ///< total service rate (work units / sec)
    double per_job_cap = 0.0;  ///< max rate per job; <= 0 means uncapped
    std::string name = "fluid";
  };

  using JobId = std::uint64_t;
  /// Called when a job's work reaches zero; argument is completion time.
  using CompletionFn = std::function<void(Time)>;

  FluidResource(Simulator& sim, Config cfg);

  /// Add a job with `work` units. `cap_override` > 0 replaces the
  /// configured per-job cap for this job only. Zero-work jobs complete at
  /// the current time via a scheduled event (callbacks never run inline).
  JobId submit(double work, CompletionFn on_complete, double cap_override = 0.0);

  /// Remove a job before completion; returns the work it still had left.
  /// The job's completion callback is never invoked. Returns 0 for ids
  /// that are unknown or already complete.
  double cancel(JobId id);

  /// Remaining work of an active job as of now() (0 if unknown).
  double remaining(JobId id) const;

  /// Instantaneous service rate the job currently receives (0 if unknown).
  double current_rate(JobId id) const;

  std::size_t active_jobs() const { return jobs_.size(); }

  /// Integral of "has at least one active job" over time, up to now().
  double busy_time() const;

  /// Total work served to completed or cancelled jobs so far.
  double work_done() const { return work_done_; }

  const std::string& name() const { return cfg_.name; }
  double capacity() const { return cfg_.capacity; }

  /// Change the total service rate mid-run (straggler / degraded-node
  /// injection): elapsed work is settled at the old capacity first, then
  /// rates and the pending completion are re-derived. Must be > 0.
  void set_capacity(double capacity);

 private:
  struct Job {
    double remaining = 0.0;
    double rate = 0.0;  // as of last recompute
    double cap = 0.0;   // effective per-job cap (<=0 uncapped)
    CompletionFn on_complete;
  };

  /// Charge elapsed virtual time against every job's remaining work.
  void advance();
  /// Recompute water-filling rates and (re)schedule the next completion.
  void reschedule();
  /// Record a `sim.util.<name>` sample and a virtual-time trace counter.
  void obs_utilization(double util) const;
  /// Completion event body.
  void on_completion_event();

  Simulator& sim_;
  Config cfg_;
  std::map<JobId, Job> jobs_;  // ordered: deterministic iteration
  JobId next_id_ = 1;
  Time last_update_ = 0.0;
  EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  double work_done_ = 0.0;
  mutable double busy_accum_ = 0.0;
  mutable Time busy_mark_ = 0.0;
};

}  // namespace dosas::sim
