// server_pool.hpp — k-server FCFS queueing resource.
//
// The alternative CPU discipline to processor sharing: a storage node's
// cores run queued kernels to completion in arrival order (run-to-complete
// scheduling). DOSAS ablations compare this against the fluid model; the
// PFS disk service and strictly-ordered I/O queues also use it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace dosas::sim {

class ServerPool {
 public:
  struct Config {
    std::size_t servers = 1;    ///< number of parallel servers (cores)
    double service_rate = 1.0;  ///< work units per second per server
    std::string name = "pool";
  };

  using JobId = std::uint64_t;
  using CompletionFn = std::function<void(Time)>;

  ServerPool(Simulator& sim, Config cfg);

  /// Enqueue a job with `work` units. Starts immediately if a server is
  /// idle, otherwise waits FCFS.
  JobId submit(double work, CompletionFn on_complete);

  /// Remove a queued or running job; returns remaining work (0 if unknown
  /// or already complete). A preempted server picks up the next queued job.
  double cancel(JobId id);

  /// True if the job is currently being served (not just queued).
  bool is_running(JobId id) const;

  /// Remaining work for a queued or running job as of now().
  double remaining(JobId id) const;

  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t running_jobs() const { return running_.size(); }
  std::size_t servers() const { return cfg_.servers; }
  double service_rate() const { return cfg_.service_rate; }

  /// Time-integral of busy servers (for utilization reporting).
  double busy_server_time() const;

 private:
  struct Running {
    double work = 0.0;       // total work of the job
    Time started = 0.0;      // when service began
    EventId event = 0;       // completion event
    CompletionFn on_complete;
  };
  struct Queued {
    JobId id;
    double work;
    CompletionFn on_complete;
  };

  void start_next_if_possible();
  void start(JobId id, double work, CompletionFn cb);
  void note_busy_change(std::size_t new_busy);

  Simulator& sim_;
  Config cfg_;
  std::deque<Queued> queue_;
  std::map<JobId, Running> running_;
  JobId next_id_ = 1;
  mutable double busy_accum_ = 0.0;
  mutable Time busy_mark_ = 0.0;
  std::size_t busy_now_ = 0;
};

}  // namespace dosas::sim
