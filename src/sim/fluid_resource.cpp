#include "sim/fluid_resource.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dosas::sim {

namespace {
// A job is considered finished when its remaining work would complete in
// under a nanosecond at its current rate (absorbs float drift).
bool finished(double remaining, double rate) {
  return remaining <= rate * 1e-9 + 1e-12;
}
}  // namespace

FluidResource::FluidResource(Simulator& sim, Config cfg)
    : sim_(sim), cfg_(std::move(cfg)), last_update_(sim.now()), busy_mark_(sim.now()) {
  assert(cfg_.capacity > 0.0);
}

FluidResource::JobId FluidResource::submit(double work, CompletionFn on_complete,
                                           double cap_override) {
  assert(work >= 0.0);
  advance();
  const JobId id = next_id_++;
  Job job;
  job.remaining = work;
  job.cap = cap_override > 0.0 ? cap_override : cfg_.per_job_cap;
  job.on_complete = std::move(on_complete);
  jobs_.emplace(id, std::move(job));
  reschedule();
  return id;
}

void FluidResource::set_capacity(double capacity) {
  assert(capacity > 0.0);
  advance();  // settle work already served at the old rate allocation
  cfg_.capacity = capacity;
  reschedule();
}

double FluidResource::cancel(JobId id) {
  advance();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return 0.0;
  const double rem = it->second.remaining;
  jobs_.erase(it);
  reschedule();
  return rem;
}

double FluidResource::remaining(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return 0.0;
  // Account for time elapsed since the last recompute without mutating.
  const double dt = sim_.now() - last_update_;
  return std::max(0.0, it->second.remaining - it->second.rate * dt);
}

double FluidResource::current_rate(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? 0.0 : it->second.rate;
}

double FluidResource::busy_time() const {
  if (!jobs_.empty()) {
    busy_accum_ += sim_.now() - busy_mark_;
    busy_mark_ = sim_.now();
  }
  return busy_accum_;
}

void FluidResource::advance() {
  const Time now = sim_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (auto& [id, job] : jobs_) {
      const double served = std::min(job.remaining, job.rate * dt);
      job.remaining -= served;
      work_done_ += served;
    }
    if (!jobs_.empty()) {
      busy_accum_ += now - busy_mark_;
    }
  }
  last_update_ = now;
  busy_mark_ = now;
}

void FluidResource::reschedule() {
  if (has_pending_event_) {
    sim_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (jobs_.empty()) {
    obs_utilization(0.0);
    return;
  }

  // Water-filling: process jobs in ascending cap order; each takes
  // min(cap, fair share of what's left). Uncapped jobs (cap<=0) sort last
  // and split the remainder evenly.
  std::vector<std::pair<double, Job*>> order;  // (effective cap, job)
  order.reserve(jobs_.size());
  for (auto& [id, job] : jobs_) {
    const double cap = job.cap > 0.0 ? job.cap : std::numeric_limits<double>::infinity();
    order.emplace_back(cap, &job);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double left = cfg_.capacity;
  std::size_t n = order.size();
  for (auto& [cap, job] : order) {
    const double fair = left / static_cast<double>(n);
    const double rate = std::min(cap, fair);
    job->rate = rate;
    left -= rate;
    --n;
  }
  obs_utilization((cfg_.capacity - left) / cfg_.capacity);

  // Earliest completion among active jobs.
  Time best_dt = std::numeric_limits<double>::infinity();
  for (auto& [id, job] : jobs_) {
    if (job.rate <= 0.0) continue;  // cannot finish; wait for membership change
    const double dt = job.remaining / job.rate;
    best_dt = std::min(best_dt, dt);
  }
  if (best_dt == std::numeric_limits<double>::infinity()) return;

  pending_event_ = sim_.schedule_after(best_dt, [this] { on_completion_event(); });
  has_pending_event_ = true;
}

void FluidResource::obs_utilization(double util) const {
  // One sample per reschedule: every membership change (submit, cancel,
  // completion) re-derives the water-filling allocation, so the sample
  // stream is exactly the piecewise-constant utilization signal.
  if (obs::metrics_enabled()) {
    obs::observe("sim.util." + cfg_.name, util);
  }
  if (obs::tracing_enabled()) {
    obs::Tracer::global().counter_at(cfg_.name + ".util", util, sim_.now() * 1e6,
                                     obs::Tracer::kSimPid);
  }
}

void FluidResource::on_completion_event() {
  has_pending_event_ = false;
  advance();

  // Collect every job that is now done (ties complete together).
  std::vector<CompletionFn> callbacks;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (finished(it->second.remaining, it->second.rate)) {
      work_done_ += it->second.remaining;  // absorb the drift remainder
      callbacks.push_back(std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();

  const Time now = sim_.now();
  for (auto& cb : callbacks) {
    if (cb) cb(now);
  }
}

}  // namespace dosas::sim
