#include "sim/server_pool.hpp"

#include <algorithm>
#include <cassert>

namespace dosas::sim {

ServerPool::ServerPool(Simulator& sim, Config cfg)
    : sim_(sim), cfg_(std::move(cfg)), busy_mark_(sim.now()) {
  assert(cfg_.servers >= 1);
  assert(cfg_.service_rate > 0.0);
}

ServerPool::JobId ServerPool::submit(double work, CompletionFn on_complete) {
  assert(work >= 0.0);
  const JobId id = next_id_++;
  if (running_.size() < cfg_.servers) {
    start(id, work, std::move(on_complete));
  } else {
    queue_.push_back(Queued{id, work, std::move(on_complete)});
  }
  return id;
}

void ServerPool::start(JobId id, double work, CompletionFn cb) {
  Running r;
  r.work = work;
  r.started = sim_.now();
  r.on_complete = std::move(cb);
  const Time dt = work / cfg_.service_rate;
  r.event = sim_.schedule_after(dt, [this, id] {
    auto it = running_.find(id);
    assert(it != running_.end());
    CompletionFn done = std::move(it->second.on_complete);
    running_.erase(it);
    note_busy_change(running_.size());
    start_next_if_possible();
    if (done) done(sim_.now());
  });
  running_.emplace(id, std::move(r));
  note_busy_change(running_.size());
}

void ServerPool::start_next_if_possible() {
  while (running_.size() < cfg_.servers && !queue_.empty()) {
    Queued q = std::move(queue_.front());
    queue_.pop_front();
    start(q.id, q.work, std::move(q.on_complete));
  }
}

double ServerPool::cancel(JobId id) {
  // Queued?
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      const double rem = it->work;
      queue_.erase(it);
      return rem;
    }
  }
  // Running?
  auto it = running_.find(id);
  if (it == running_.end()) return 0.0;
  const double served = (sim_.now() - it->second.started) * cfg_.service_rate;
  const double rem = std::max(0.0, it->second.work - served);
  sim_.cancel(it->second.event);
  running_.erase(it);
  note_busy_change(running_.size());
  start_next_if_possible();
  return rem;
}

bool ServerPool::is_running(JobId id) const { return running_.count(id) != 0; }

double ServerPool::remaining(JobId id) const {
  auto rit = running_.find(id);
  if (rit != running_.end()) {
    const double served = (sim_.now() - rit->second.started) * cfg_.service_rate;
    return std::max(0.0, rit->second.work - served);
  }
  for (const auto& q : queue_) {
    if (q.id == id) return q.work;
  }
  return 0.0;
}

double ServerPool::busy_server_time() const {
  busy_accum_ += static_cast<double>(busy_now_) * (sim_.now() - busy_mark_);
  busy_mark_ = sim_.now();
  return busy_accum_;
}

void ServerPool::note_busy_change(std::size_t new_busy) {
  busy_accum_ += static_cast<double>(busy_now_) * (sim_.now() - busy_mark_);
  busy_mark_ = sim_.now();
  busy_now_ = new_busy;
}

}  // namespace dosas::sim
