// simulator.hpp — discrete-event simulation engine (virtual time).
//
// The reproduction's cluster substrate: storage/compute nodes, the shared
// Ethernet link, and I/O queues are all modelled as events and resources on
// one `Simulator`. Time is virtual seconds; execution is single-threaded
// and deterministic (events at equal times fire in scheduling order).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace dosas::sim {

/// Virtual time in seconds since simulation start.
using Time = double;

/// Handle to a scheduled event, usable with Simulator::cancel().
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn) {
    assert(t >= now_ - 1e-12 && "cannot schedule into the past");
    if (t < now_) t = now_;
    const EventId id = next_id_++;
    heap_.push(Entry{t, id, std::move(fn)});
    pending_ids_.insert(id);
    return id;
  }

  /// Schedule `fn` `dt` seconds from now.
  EventId schedule_after(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a pending event. Safe to call with an already-fired or
  /// already-cancelled id (returns false in that case).
  bool cancel(EventId id) {
    if (pending_ids_.erase(id) == 0) return false;  // unknown, fired, or cancelled
    cancelled_.insert(id);                          // lazily dropped at pop time
    return true;
  }

  /// Run the next pending event. Returns false when the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (cancelled_.erase(e.id) > 0) continue;  // lazily dropped
      pending_ids_.erase(e.id);
      assert(e.time >= now_);
      now_ = e.time;
      ++executed_;
      e.fn();
      return true;
    }
    return false;
  }

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Time t) {
    while (!heap_.empty()) {
      // Peek past cancelled entries.
      const Entry& e = heap_.top();
      if (cancelled_.count(e.id) != 0) {
        cancelled_.erase(e.id);
        heap_.pop();
        continue;
      }
      if (e.time > t) break;
      step();
    }
    if (now_ < t) now_ = t;
  }

  /// Number of events still pending (excluding cancelled ones).
  std::size_t pending_events() const { return pending_ids_.size(); }

  /// Count of events executed so far (for micro-benchmarks / sanity).
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace dosas::sim
