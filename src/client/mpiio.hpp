// mpiio.hpp — the enhanced MPI-IO-shaped facade (paper Table I).
//
// The paper extends exactly one MPI-IO call:
//
//   MPI_File_read_ex(MPI_File fh, struct result *buf, int count,
//                    MPI_Datatype, char *operation, MPI_Status *status);
//
// with `struct result { bool completed; void *buf; MPI_File fh;
// long offset; }`. This facade reproduces that shape over the ASC without
// requiring an MPI installation: `File` is the file handle, `ResultBuf` is
// `struct result`, and `file_read_ex` takes (count, datatype_size,
// operation). Since the ASC transparently finishes demoted/interrupted
// requests, `completed` is true on return and `buf` holds the finished
// kernel result; `offset` reports the file position after the call. The
// unmodified `file_read` is the normal-I/O path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/active_client.hpp"

namespace dosas::mpiio {

/// Datatype sizes, in the spirit of MPI_Datatype for this facade.
inline constexpr std::size_t kDouble = sizeof(double);
inline constexpr std::size_t kByte = 1;

/// An open file handle (MPI_File analogue). Tracks an independent file
/// pointer per handle, like MPI's individual file pointer.
struct File {
  pfs::FileMeta meta;
  Bytes position = 0;
  client::ActiveClient* asc = nullptr;

  bool valid() const { return asc != nullptr; }
};

/// The paper's `struct result`.
struct ResultBuf {
  bool completed = false;             ///< 1 once the operation's result is final
  std::vector<std::uint8_t> buf;      ///< kernel result payload
  Bytes offset = 0;                   ///< file position after the read
};

/// MPI_File_open analogue (read-only).
Status file_open(client::ActiveClient& asc, const std::string& path, File& fh);

/// MPI_File_read analogue: read count*datatype_size bytes at the current
/// file pointer into `buf` (resized), advancing the pointer. Short reads
/// at EOF shrink `buf`.
Status file_read(File& fh, std::vector<std::uint8_t>& buf, std::size_t count,
                 std::size_t datatype_size);

/// The enhanced call (paper Table I): run `operation` server-side over the
/// next count*datatype_size bytes; the ASC finishes any demoted or
/// interrupted work, so on success `result.completed` is true and
/// `result.buf` holds the kernel output. Advances the file pointer.
Status file_read_ex(File& fh, ResultBuf* result, std::size_t count, std::size_t datatype_size,
                    const char* operation);

/// Collective form (MPI_File_read_all spirit): every rank's active read is
/// submitted in one batch so each storage node's Contention Estimator makes
/// a single decision over the whole group — the cure for the
/// admit-then-interrupt churn that per-arrival scheduling suffers when many
/// ranks hit the same node simultaneously. `files`, `counts`, and `results`
/// are positionally aligned; each file's pointer advances on success.
Status file_read_ex_all(std::vector<File*> files, std::vector<ResultBuf>& results,
                        const std::vector<std::size_t>& counts, std::size_t datatype_size,
                        const char* operation);

/// MPI_File_seek analogue (absolute).
Status file_seek(File& fh, Bytes offset);

/// MPI_File_get_size analogue.
Result<Bytes> file_size(const File& fh);

}  // namespace dosas::mpiio
