// active_client.hpp — the Active Storage Client (ASC).
//
// Paper §III-B: the ASC runs on compute nodes with two jobs: (1) the
// application-facing API for active I/O, and (2) finishing active I/O that
// storage nodes hand back — either rejected at arrival (the client reads
// the raw data and runs the kernel locally) or interrupted mid-kernel (the
// client restores the shipped checkpoint and processes only the remaining
// bytes). Both paths are transparent to the application: read_ex() always
// returns the finished kernel result.
//
// Every byte the ASC exchanges with a storage node — active RPCs AND
// normal-I/O object reads — travels through the rpc::Transport chain the
// client assembles over its servers, so retry, circuit breaking, fault
// injection, network byte charging, and tracing each exist exactly once,
// as transport interceptors (rpc/interceptors.hpp).
//
// Striped files: when the extent spans several storage nodes and the
// kernel is mergeable, the ASC fans the request out per node — submitted
// CONCURRENTLY through the async transport (read_ex_async) — and merges
// the partial results in stripe order (the striped-file support of Piernas
// et al. that the paper cites); non-mergeable kernels (gaussian2d) fall
// back to normal reads plus one local kernel pass.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "common/token_bucket.hpp"
#include "fault/fault.hpp"
#include "kernels/registry.hpp"
#include "obs/trace.hpp"
#include "pfs/client.hpp"
#include "rpc/interceptors.hpp"
#include "server/storage_server.hpp"

namespace dosas::client {

/// ActiveClient construction options (namespace-scope so it is complete
/// where member declarations use it as a default argument).
struct ActiveClientConfig {
  Bytes chunk_size = 4_MiB;          ///< local kernel streaming granularity
  bool allow_striped_fanout = true;  ///< per-server partials + merge
  /// Cooperative resumption (extension): when a kernel is interrupted,
  /// resubmit it once WITH its checkpoint instead of finishing locally —
  /// useful when the client is compute-poor and the storage spike was
  /// transient. A second interruption/rejection falls back to local
  /// completion as usual.
  bool resubmit_interrupted = false;
  /// Shared link model (usually the cluster's): installed as the
  /// transport's NetChargeTransport, which charges every reply payload
  /// byte (results, checkpoints, raw reads). May be null.
  std::shared_ptr<TokenBucket> network;

  /// Per-storage-node link model (mutually exclusive with `network`, which
  /// wins when both are set): bucket i charges bytes node i sends. The
  /// scale harness's shape — one NIC per node, not one shared switch.
  std::vector<std::shared_ptr<TokenBucket>> network_per_node;

  /// Pace local kernel execution at the table's C_{C,op} compute rate:
  /// each chunk a client-side kernel consumes sleeps chunk/C on the
  /// injected clock. This is the client half of the calibrated-pacing seam
  /// (see StorageServerConfig::pace_kernel_rates); operations without
  /// table rates run unpaced. Null disables.
  std::shared_ptr<const server::RateTable> pace_compute_rates;

  /// Remote retry discipline (the transport's RetryTransport): a failed
  /// active RPC whose error is transient (kUnavailable/kTimedOut, see
  /// is_transient) is re-sent up to retry.max_attempts times with capped
  /// exponential backoff before the client falls back to local compute.
  /// Default (max_attempts = 1): off.
  RetryPolicy retry;

  /// Per-request deadline stamped on every active envelope (0 = wait
  /// forever): a request still unanswered after this many seconds is
  /// cancelled server-side, fails kTimedOut, and the client recovers
  /// locally.
  Seconds request_timeout = 0;

  /// Shared fault injector (usually the cluster's), installed as the
  /// transport's FaultTransport: models transient network errors on the
  /// client->server active RPC. May be null.
  std::shared_ptr<fault::FaultInjector> faults;

  /// Demote-to-local circuit breaker (the transport's
  /// CircuitBreakerTransport): after this many *consecutive* kUnavailable
  /// failures from one storage node, the client stops offloading to it and
  /// serves requests via normal I/O + local kernel (every 4th request
  /// re-probes the node so recovery is noticed). 0 disables.
  int circuit_threshold = 0;

  /// Seed for retry backoff jitter (deterministic per client).
  std::uint64_t retry_seed = 1234;

  /// Straggler-aware hedged striped reads: when a fan-out leg is still
  /// outstanding past a p99-derived delay, duplicate it down the
  /// demote-to-local path (normal I/O + local kernel — the replica-capable
  /// twin this architecture has) and race the two, cancelling the loser via
  /// PendingReply::cancel() so exactly one leg's bytes are charged. Legs
  /// are also resolved fastest-predicted-node first, so the hedge timer
  /// spends the wait budget on the straggler, not on legs that are already
  /// done. Off by default.
  bool hedge_reads = false;
  /// Hedge delay for a warm node = max(hedge_min_delay,
  /// hedge_p99_multiplier × that node's p99 active-RPC latency).
  double hedge_p99_multiplier = 3.0;
  /// Floor under the derived delay: a node whose history is microseconds
  /// must not hedge on scheduling noise.
  Seconds hedge_min_delay = 0.002;
  /// Per-node samples required before the p99 is trusted; colder nodes
  /// hedge after hedge_cold_delay instead (0 = never hedge a cold node).
  std::uint64_t hedge_min_samples = 8;
  Seconds hedge_cold_delay = 0;
  /// Hedge budget per read_ex (all fan-out legs share it): bounds the
  /// extra bytes a fully-stalled cluster could cost.
  std::size_t hedge_max_per_read = 1;
};

class ActiveClient {
 private:
  struct ServerExtent {
    pfs::ServerId server = 0;
    Bytes object_offset = 0;
    Bytes length = 0;
  };

 public:
  using Config = ActiveClientConfig;

  struct Stats {
    std::uint64_t reads_ex = 0;             ///< read_ex() calls
    std::uint64_t completed_remote = 0;     ///< served fully on storage nodes
    std::uint64_t demoted = 0;              ///< rejected -> full local fallback
    std::uint64_t resumed_local = 0;        ///< interrupted -> checkpoint resume
    std::uint64_t local_kernel_runs = 0;    ///< kernels executed on this client
    std::uint64_t striped_fanouts = 0;      ///< multi-server merged requests
    std::uint64_t failed_remote_retries = 0;  ///< server failures retried locally
    std::uint64_t resubmitted = 0;            ///< interrupted kernels re-offloaded
    Bytes raw_bytes_read = 0;               ///< raw data pulled over "the network"
    Bytes raw_bytes_written = 0;            ///< raw data shipped via write()
    Bytes result_bytes_received = 0;        ///< kernel results/checkpoints received
    std::uint64_t remote_retries = 0;       ///< transient active RPCs re-sent
    std::uint64_t exhausted_retries = 0;    ///< retry budget spent without success
    std::uint64_t timed_out = 0;            ///< responses that hit the deadline
    std::uint64_t node_down_demotes = 0;    ///< circuit open: straight to local compute
    std::uint64_t checkpoint_corrupt_restarts = 0;  ///< bad checkpoint -> clean local restart
    Seconds backoff_total = 0;              ///< accrued retry backoff (virtual or slept)
    std::uint64_t hedges_fired = 0;         ///< legs duplicated past their hedge delay
    std::uint64_t hedges_won = 0;           ///< hedges whose local twin beat the RPC
    std::uint64_t hedges_wasted = 0;        ///< hedges where the remote leg won anyway
  };

  /// `servers[i]` must be the Active Storage Server wrapping PFS data
  /// server i of the same file system `pfs` operates on. The client builds
  /// its transport chain over them (rpc::make_chain) from the config's
  /// retry/fault/network/breaker knobs.
  ActiveClient(pfs::Client& pfs, const kernels::Registry& registry,
               std::vector<server::StorageServer*> servers, Config config = {});

  /// Handle for one in-flight read_ex(): the per-extent active RPCs are
  /// already submitted (concurrent striped fan-out), wait() resolves the
  /// outcomes — rejection, interruption, failure — on the calling thread
  /// and returns the finished kernel result. Single consumer: wait() once.
  class PendingReadEx {
   public:
    PendingReadEx() = default;

    /// Dropping an unawaited handle must not leak: outstanding legs are
    /// cancelled (withdrawing queued/running server work) and the root span
    /// is closed, exactly as if the request had failed.
    ~PendingReadEx();
    PendingReadEx(PendingReadEx&& other) noexcept;
    PendingReadEx& operator=(PendingReadEx&& other) noexcept;
    PendingReadEx(const PendingReadEx&) = delete;
    PendingReadEx& operator=(const PendingReadEx&) = delete;

    /// Block for the remaining replies and finish any handed-back work.
    Result<std::vector<std::uint8_t>> wait();

   private:
    friend class ActiveClient;

    enum class Mode {
      kImmediate,  ///< resolved at submission (EOF, bad operation)
      kRemote,     ///< one or more in-flight per-extent active RPCs
      kLocalPass,  ///< non-mergeable striped extent: normal I/O + one kernel
    };

    struct Leg {
      ServerExtent ext;
      rpc::PendingReply reply;  ///< invalid: serve locally (circuit open)
      obs::TraceContext ctx;    ///< per-leg child of the request's root trace
      /// Absolute clock time after which this still-outstanding leg is
      /// hedged (0 = hedging off / node too cold). Stamped at submission.
      Seconds hedge_at = 0;
    };

    /// Resolve the result (wait() minus the root-span/e2e bookkeeping).
    Result<std::vector<std::uint8_t>> resolve();

    /// Cancel every leg whose RPC is still outstanding (a failed sibling or
    /// an abandoned handle must not leave storage nodes burning kernel time
    /// on a doomed request).
    void cancel_outstanding(const char* why);

    ActiveClient* client_ = nullptr;
    Mode mode_ = Mode::kImmediate;
    obs::TraceContext ctx_;  ///< causal root of this request's span tree
    double t0_us_ = 0.0;     ///< submission time, for the e2e span/histogram
    Result<std::vector<std::uint8_t>> immediate_{std::vector<std::uint8_t>{}};
    pfs::FileMeta meta_;
    std::string operation_;
    Bytes offset_ = 0;  ///< clamped extent (kLocalPass)
    Bytes length_ = 0;
    std::vector<Leg> legs_;
    bool fanout_ = false;  ///< merge per-leg partials in stripe order
    /// Leg indices in resolution order: fastest predicted node first, so
    /// the slowest node is waited on last with the hedge timer armed.
    std::vector<std::size_t> wait_order_;
    std::size_t hedge_budget_ = 0;  ///< hedges this read may still fire
    bool waited_ = false;           ///< wait() consumed this handle
  };

  /// The enhanced read: run `operation` over file bytes
  /// [offset, offset+length) and return the encoded kernel result.
  /// Equivalent to the paper's MPI_File_read_ex() with the ASC's
  /// completion duties folded in. Blocking form of read_ex_async().
  Result<std::vector<std::uint8_t>> read_ex(const pfs::FileMeta& meta, Bytes offset,
                                            Bytes length, const std::string& operation);

  /// Submit the active read and return without blocking: striped extents
  /// fan out as concurrent RPCs, so N pending reads pipeline across the
  /// storage nodes instead of serializing. Results are bit-identical to
  /// read_ex() (merge order is stripe order regardless of completion
  /// order).
  PendingReadEx read_ex_async(const pfs::FileMeta& meta, Bytes offset, Bytes length,
                              const std::string& operation);

  /// Normal read (the unmodified PFS path), assembled from per-server
  /// object reads issued through the transport. Materializes an owning
  /// vector (the copy lands in the data-bytes-copied ledger); hot callers
  /// use read_ref().
  Result<std::vector<std::uint8_t>> read(const pfs::FileMeta& meta, Bytes offset, Bytes length);

  /// Zero-copy form of read(): an extent on one strip returns the storage
  /// node's slab ref directly; only striped/sparse extents stage through a
  /// gather buffer (charged to the ledger's read_gather site).
  Result<BufferRef> read_ref(const pfs::FileMeta& meta, Bytes offset, Bytes length);

  /// Normal write through the transport: the extent fans out as one kWrite
  /// per storage node, each leg carrying a slice (shared slab view) of
  /// `data`, then the file is extended. The data servers' stores are the
  /// only copies; the link model charges each leg's request bytes exactly
  /// once (rpc::NetChargeTransport). Returns the refreshed metadata.
  Result<pfs::FileMeta> write(const pfs::FileMeta& meta, Bytes offset, const BufferRef& data);

  /// One active read in a batch.
  struct BatchItem {
    pfs::FileMeta meta;
    Bytes offset = 0;
    Bytes length = 0;
    std::string operation;
  };

  /// Collective active read: items whose extents live on a single storage
  /// node ride one transport batch submission, which hands each node its
  /// sub-group at once — so each node's CE makes ONE decision over the
  /// whole batch (no admit-then-interrupt churn). Striped/multi-node items
  /// fall back to individual read_ex calls. Results align positionally
  /// with `items`.
  std::vector<Result<std::vector<std::uint8_t>>> read_ex_batch(
      const std::vector<BatchItem>& items);

  Stats stats() const;

  /// Aggregated counters of the client's transport chain (in-flight HWM,
  /// batched/coalesced, latency quantiles, ...). Surfaced by
  /// `dosas_ctl runtime`.
  rpc::TransportStats transport_stats() const { return rpc::stats_of(*transport_); }

  /// The transport chain head (tests and tools may submit through it).
  rpc::Transport& transport() { return *transport_; }

  pfs::Client& pfs() { return pfs_; }
  const kernels::Registry& registry() const { return registry_; }

 private:
  /// Decompose a file extent into one contiguous object range per server.
  std::vector<ServerExtent> server_extents(const pfs::FileMeta& meta, Bytes offset,
                                           Bytes length) const;

  /// Build the kActiveIo envelope for one server extent.
  rpc::Envelope active_envelope(const pfs::FileMeta& meta, const ServerExtent& ext,
                                const std::string& operation) const;

  /// Blocking object-extent read from one server through the transport.
  /// A valid `ctx` joins the read to an existing causal tree (the
  /// demote/resume paths); an invalid one lets the transport start a fresh
  /// root trace.
  Result<BufferRef> remote_read(pfs::ServerId target, pfs::FileHandle handle,
                                Bytes object_offset, Bytes length,
                                const obs::TraceContext& ctx = {});

  /// EOF-clamped striped read assembled from per-server kRead RPCs (one
  /// batch submission; holes read as zeros). Single-strip extents return
  /// the server's slab ref without staging. No stats side effects.
  Result<BufferRef> assemble_read(const pfs::FileMeta& meta, Bytes offset, Bytes length);

  /// Run the kernel locally over a file extent (the TS path).
  Result<std::vector<std::uint8_t>> local_kernel(const pfs::FileMeta& meta, Bytes offset,
                                                 Bytes length, const std::string& operation);

  /// Resolve one leg of a pending read: wait for its reply (or serve it
  /// locally when the circuit was open) and finish any handed-back work.
  /// `hedge_budget` (may be null: no hedging) is decremented when the leg's
  /// hedge timer expires and a local twin is raced against the RPC.
  Result<std::vector<std::uint8_t>> resolve_leg(const pfs::FileMeta& meta,
                                                PendingReadEx::Leg& leg,
                                                const std::string& operation,
                                                std::size_t* hedge_budget = nullptr);

  /// The hedge: race a local twin (normal I/O + local kernel, chunked so it
  /// aborts as soon as the remote reply lands) against the still-outstanding
  /// RPC, and cancel the loser. Exactly one of the two becomes the leg's
  /// result; the cancelled loser is charged no bytes.
  Result<std::vector<std::uint8_t>> hedge_leg(const pfs::FileMeta& meta,
                                              PendingReadEx::Leg& leg,
                                              const std::string& operation);

  /// How long a leg to `server` may stay outstanding before it is hedged
  /// (0 = do not hedge this leg). p99-derived for warm nodes, the cold
  /// delay otherwise.
  Seconds hedge_delay_for(pfs::ServerId server) const;

  /// True when the circuit for `server` is open (too many consecutive
  /// kUnavailable) and this request is not a re-probe.
  bool circuit_open(pfs::ServerId server);

  /// Full local service of one extent (normal I/O + local kernel), used
  /// when the circuit is open. Reuses the node's still-live data path.
  Result<std::vector<std::uint8_t>> serve_extent_locally(const pfs::FileMeta& meta,
                                                         const ServerExtent& ext,
                                                         const std::string& operation,
                                                         const obs::TraceContext& ctx = {});

  /// Resolve an already-received server response for one extent (the
  /// completion/demotion/resume/retry state machine shared by the single
  /// and batch paths).
  Result<std::vector<std::uint8_t>> resolve_response(const pfs::FileMeta& meta,
                                                     const ServerExtent& ext,
                                                     const std::string& operation,
                                                     server::ActiveIoResponse resp,
                                                     bool allow_resubmit = true,
                                                     const obs::TraceContext& ctx = {});

  /// Stream object bytes [from, ext end) through `kernel` via the node's
  /// normal-I/O path (transport kRead per chunk) and finalize. The
  /// demoted / resumed / retried completion loop.
  Result<std::vector<std::uint8_t>> finish_locally(const pfs::FileMeta& meta,
                                                   const ServerExtent& ext, Bytes from,
                                                   kernels::Kernel& kernel,
                                                   const obs::TraceContext& ctx = {});

  /// Count a deadline expiry on a final active response.
  void note_timed_out(const server::ActiveIoResponse& resp);

  pfs::Client& pfs_;
  const kernels::Registry& registry_;
  std::vector<server::StorageServer*> servers_;
  Config config_;

  // The transport chain over servers_; destroyed before the servers (the
  // owner keeps them alive — see InProcessTransport).
  std::shared_ptr<rpc::Transport> transport_;
  std::shared_ptr<rpc::CircuitBreakerTransport> breaker_;  ///< null: no breaker

  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace dosas::client
