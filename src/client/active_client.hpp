// active_client.hpp — the Active Storage Client (ASC).
//
// Paper §III-B: the ASC runs on compute nodes with two jobs: (1) the
// application-facing API for active I/O, and (2) finishing active I/O that
// storage nodes hand back — either rejected at arrival (the client reads
// the raw data and runs the kernel locally) or interrupted mid-kernel (the
// client restores the shipped checkpoint and processes only the remaining
// bytes). Both paths are transparent to the application: read_ex() always
// returns the finished kernel result.
//
// Striped files: when the extent spans several storage nodes and the
// kernel is mergeable, the ASC fans the request out per node and merges
// the partial results (the striped-file support of Piernas et al. that the
// paper cites); non-mergeable kernels (gaussian2d) fall back to normal
// reads plus one local kernel pass.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "common/token_bucket.hpp"
#include "fault/fault.hpp"
#include "kernels/registry.hpp"
#include "pfs/client.hpp"
#include "server/storage_server.hpp"

namespace dosas::client {

/// ActiveClient construction options (namespace-scope so it is complete
/// where member declarations use it as a default argument).
struct ActiveClientConfig {
  Bytes chunk_size = 4_MiB;          ///< local kernel streaming granularity
  bool allow_striped_fanout = true;  ///< per-server partials + merge
  /// Cooperative resumption (extension): when a kernel is interrupted,
  /// resubmit it once WITH its checkpoint instead of finishing locally —
  /// useful when the client is compute-poor and the storage spike was
  /// transient. A second interruption/rejection falls back to local
  /// completion as usual.
  bool resubmit_interrupted = false;
  /// Shared link model (usually the cluster's): bytes pulled through the
  /// direct PFS paths (read(), striped local fallback) are charged here;
  /// server-side paths charge themselves. May be null.
  std::shared_ptr<TokenBucket> network;

  /// Remote retry discipline: a failed active RPC whose error is transient
  /// (kUnavailable/kTimedOut, see is_transient) is re-sent up to
  /// retry.max_attempts times with capped exponential backoff before the
  /// client falls back to local compute. Default (max_attempts = 1): off —
  /// a transient failure goes straight to the single local retry.
  RetryPolicy retry;

  /// Per-request deadline forwarded to the server (0 = wait forever): a
  /// request still unanswered after this many seconds fails kTimedOut and
  /// the client recovers locally.
  Seconds request_timeout = 0;

  /// Shared fault injector (usually the cluster's): models transient
  /// network errors on the client->server active RPC. May be null.
  std::shared_ptr<fault::FaultInjector> faults;

  /// Demote-to-local circuit breaker: after this many *consecutive*
  /// kUnavailable failures from one storage node, the client stops
  /// offloading to it and serves requests via normal I/O + local kernel
  /// (every 4th request re-probes the node so recovery is noticed).
  /// 0 disables.
  int circuit_threshold = 0;

  /// Seed for retry backoff jitter (deterministic per client).
  std::uint64_t retry_seed = 1234;
};

class ActiveClient {
 public:
  using Config = ActiveClientConfig;

  struct Stats {
    std::uint64_t reads_ex = 0;             ///< read_ex() calls
    std::uint64_t completed_remote = 0;     ///< served fully on storage nodes
    std::uint64_t demoted = 0;              ///< rejected -> full local fallback
    std::uint64_t resumed_local = 0;        ///< interrupted -> checkpoint resume
    std::uint64_t local_kernel_runs = 0;    ///< kernels executed on this client
    std::uint64_t striped_fanouts = 0;      ///< multi-server merged requests
    std::uint64_t failed_remote_retries = 0;  ///< server failures retried locally
    std::uint64_t resubmitted = 0;            ///< interrupted kernels re-offloaded
    Bytes raw_bytes_read = 0;               ///< raw data pulled over "the network"
    Bytes result_bytes_received = 0;        ///< kernel results/checkpoints received
    std::uint64_t remote_retries = 0;       ///< transient active RPCs re-sent
    std::uint64_t exhausted_retries = 0;    ///< retry budget spent without success
    std::uint64_t timed_out = 0;            ///< responses that hit the deadline
    std::uint64_t node_down_demotes = 0;    ///< circuit open: straight to local compute
    std::uint64_t checkpoint_corrupt_restarts = 0;  ///< bad checkpoint -> clean local restart
    Seconds backoff_total = 0;              ///< accrued retry backoff (virtual or slept)
  };

  /// `servers[i]` must be the Active Storage Server wrapping PFS data
  /// server i of the same file system `pfs` operates on.
  ActiveClient(pfs::Client& pfs, const kernels::Registry& registry,
               std::vector<server::StorageServer*> servers, Config config = {});

  /// The enhanced read: run `operation` over file bytes
  /// [offset, offset+length) and return the encoded kernel result.
  /// Equivalent to the paper's MPI_File_read_ex() with the ASC's
  /// completion duties folded in.
  Result<std::vector<std::uint8_t>> read_ex(const pfs::FileMeta& meta, Bytes offset,
                                            Bytes length, const std::string& operation);

  /// Normal read (the unmodified PFS path), for symmetry with read_ex.
  Result<std::vector<std::uint8_t>> read(const pfs::FileMeta& meta, Bytes offset, Bytes length);

  /// One active read in a batch.
  struct BatchItem {
    pfs::FileMeta meta;
    Bytes offset = 0;
    Bytes length = 0;
    std::string operation;
  };

  /// Collective active read: items whose extents live on a single storage
  /// node are submitted together per node via the server's batch endpoint,
  /// so each node's CE makes ONE decision over the whole batch (no
  /// admit-then-interrupt churn). Striped/multi-node items fall back to
  /// individual read_ex calls. Results align positionally with `items`.
  std::vector<Result<std::vector<std::uint8_t>>> read_ex_batch(
      const std::vector<BatchItem>& items);

  Stats stats() const;
  pfs::Client& pfs() { return pfs_; }
  const kernels::Registry& registry() const { return registry_; }

 private:
  struct ServerExtent {
    pfs::ServerId server = 0;
    Bytes object_offset = 0;
    Bytes length = 0;
  };

  /// Decompose a file extent into one contiguous object range per server.
  std::vector<ServerExtent> server_extents(const pfs::FileMeta& meta, Bytes offset,
                                           Bytes length) const;

  /// Run the kernel locally over a file extent (the TS path).
  Result<std::vector<std::uint8_t>> local_kernel(const pfs::FileMeta& meta, Bytes offset,
                                                 Bytes length, const std::string& operation);

  /// Dispatch one server extent as an active request and fully resolve it
  /// (handling rejection, interruption, and server failure). Returns the
  /// kernel result for that extent.
  Result<std::vector<std::uint8_t>> resolve_extent(const pfs::FileMeta& meta,
                                                   const ServerExtent& ext,
                                                   const std::string& operation);

  /// Send one active RPC with net-error injection and the config's
  /// transient-retry policy; feeds the circuit breaker.
  server::ActiveIoResponse send_active(server::StorageServer& server,
                                       const server::ActiveIoRequest& req);

  /// True when the circuit for `server` is open (too many consecutive
  /// kUnavailable) and this request is not a re-probe.
  bool circuit_open(pfs::ServerId server);

  /// Record a remote outcome for the breaker: unavailability opens it,
  /// anything else resets it.
  void note_remote_result(pfs::ServerId server, bool unavailable);

  /// Full local service of one extent (normal I/O + local kernel), used
  /// when the circuit is open. Reuses the node's still-live data path.
  Result<std::vector<std::uint8_t>> serve_extent_locally(server::StorageServer& server,
                                                         const pfs::FileMeta& meta,
                                                         const ServerExtent& ext,
                                                         const std::string& operation);

  /// Resolve an already-received server response for one extent (the
  /// completion/demotion/resume/retry state machine shared by the single
  /// and batch paths).
  Result<std::vector<std::uint8_t>> resolve_response(server::StorageServer& server,
                                                     const pfs::FileMeta& meta,
                                                     const ServerExtent& ext,
                                                     const std::string& operation,
                                                     server::ActiveIoResponse resp,
                                                     bool allow_resubmit = true);

  /// Stream object bytes [from, ext end) through `kernel` via the server's
  /// normal-I/O path and finalize. The demoted / resumed / retried
  /// completion loop.
  Result<std::vector<std::uint8_t>> finish_locally(server::StorageServer& server,
                                                   const pfs::FileMeta& meta,
                                                   const ServerExtent& ext, Bytes from,
                                                   kernels::Kernel& kernel);

  pfs::Client& pfs_;
  const kernels::Registry& registry_;
  std::vector<server::StorageServer*> servers_;
  Config config_;

  mutable std::mutex mu_;
  Stats stats_;
  std::uint64_t retry_seq_ = 0;  ///< distinct Backoff seed per retry sequence

  struct CircuitState {
    int consecutive_unavailable = 0;
    std::uint64_t skips = 0;  ///< requests short-circuited while open
  };
  std::vector<CircuitState> circuit_;  ///< indexed by server id
};

}  // namespace dosas::client
