#include "client/mpiio.hpp"

namespace dosas::mpiio {

Status file_open(client::ActiveClient& asc, const std::string& path, File& fh) {
  auto meta = asc.pfs().open(path);
  if (!meta.is_ok()) return meta.status();
  fh.meta = meta.value();
  fh.position = 0;
  fh.asc = &asc;
  return Status::ok();
}

Status file_read(File& fh, std::vector<std::uint8_t>& buf, std::size_t count,
                 std::size_t datatype_size) {
  if (!fh.valid()) return error(ErrorCode::kInvalidArgument, "file not open");
  const Bytes want = static_cast<Bytes>(count) * datatype_size;
  auto data = fh.asc->read(fh.meta, fh.position, want);
  if (!data.is_ok()) return data.status();
  buf = std::move(data).value();
  fh.position += buf.size();
  return Status::ok();
}

Status file_read_ex(File& fh, ResultBuf* result, std::size_t count, std::size_t datatype_size,
                    const char* operation) {
  if (!fh.valid()) return error(ErrorCode::kInvalidArgument, "file not open");
  if (result == nullptr) return error(ErrorCode::kInvalidArgument, "null result buffer");
  if (operation == nullptr) return error(ErrorCode::kInvalidArgument, "null operation");
  result->completed = false;
  result->buf.clear();

  const Bytes want = static_cast<Bytes>(count) * datatype_size;
  auto out = fh.asc->read_ex(fh.meta, fh.position, want, operation);
  if (!out.is_ok()) return out.status();

  // Advance by what was actually covered (clamped at EOF like file_read).
  auto fresh = fh.asc->pfs().file_system().meta().lookup_handle(fh.meta.handle);
  const Bytes size = fresh.is_ok() ? fresh.value().size : fh.meta.size;
  const Bytes covered = fh.position >= size ? 0 : std::min(want, size - fh.position);
  fh.position += covered;

  result->completed = true;
  result->buf = std::move(out).value();
  result->offset = fh.position;
  return Status::ok();
}

Status file_read_ex_all(std::vector<File*> files, std::vector<ResultBuf>& results,
                        const std::vector<std::size_t>& counts, std::size_t datatype_size,
                        const char* operation) {
  if (operation == nullptr) return error(ErrorCode::kInvalidArgument, "null operation");
  if (files.size() != counts.size()) {
    return error(ErrorCode::kInvalidArgument, "files/counts size mismatch");
  }
  if (files.empty()) {
    results.clear();
    return Status::ok();
  }
  client::ActiveClient* asc = nullptr;
  std::vector<client::ActiveClient::BatchItem> items;
  items.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i] == nullptr || !files[i]->valid()) {
      return error(ErrorCode::kInvalidArgument,
                   "file " + std::to_string(i) + " not open");
    }
    if (asc == nullptr) asc = files[i]->asc;
    if (files[i]->asc != asc) {
      return error(ErrorCode::kInvalidArgument, "files span different clients");
    }
    client::ActiveClient::BatchItem item;
    item.meta = files[i]->meta;
    item.offset = files[i]->position;
    item.length = static_cast<Bytes>(counts[i]) * datatype_size;
    item.operation = operation;
    items.push_back(std::move(item));
  }

  auto outs = asc->read_ex_batch(items);
  results.assign(files.size(), ResultBuf{});
  Status first_error = Status::ok();
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!outs[i].is_ok()) {
      if (first_error.is_ok()) first_error = outs[i].status();
      continue;
    }
    auto fresh = asc->pfs().file_system().meta().lookup_handle(files[i]->meta.handle);
    const Bytes size = fresh.is_ok() ? fresh.value().size : files[i]->meta.size;
    const Bytes want = items[i].length;
    const Bytes covered =
        files[i]->position >= size ? 0 : std::min(want, size - files[i]->position);
    files[i]->position += covered;
    results[i].completed = true;
    results[i].buf = std::move(outs[i]).value();
    results[i].offset = files[i]->position;
  }
  return first_error;
}

Status file_seek(File& fh, Bytes offset) {
  if (!fh.valid()) return error(ErrorCode::kInvalidArgument, "file not open");
  fh.position = offset;
  return Status::ok();
}

Result<Bytes> file_size(const File& fh) {
  if (!fh.valid()) return error(ErrorCode::kInvalidArgument, "file not open");
  auto fresh = fh.asc->pfs().file_system().meta().lookup_handle(fh.meta.handle);
  if (!fresh.is_ok()) return fresh.status();
  return fresh.value().size;
}

}  // namespace dosas::mpiio
