#include "client/active_client.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <new>
#include <optional>
#include <utility>

#include "common/clock.hpp"
#include "common/logging.hpp"
#include "kernels/stream.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/layout.hpp"

namespace dosas::client {

namespace {

/// Request class for per-stage latency histograms: the operation name up
/// to its first parameter (e.g. "grep:needle" -> "grep").
std::string stage_class(const std::string& operation) {
  return operation.substr(0, operation.find(':'));
}

/// Close out one request's observability: the causal root span plus the
/// end-to-end latency histogram (exemplared with the trace id).
void emit_request_e2e(const obs::TraceContext& root, double t0_us, const std::string& operation) {
  const double t1 = obs::now_us();
  if (obs::tracing_enabled() && root.valid()) {
    obs::Tracer::global().complete("client.read_ex", "client", t0_us, t1 - t0_us, root);
  }
  if (obs::metrics_enabled()) {
    obs::observe("stage.e2e_us." + stage_class(operation), t1 - t0_us, root.trace_id);
  }
}

/// Client-compute pacing (ActiveClientConfig::pace_compute_rates): the
/// progress hook that charges each locally-processed chunk its cost at the
/// table's C_{C,op} rate, on the injected clock. Null when pacing is off
/// or the operation has no table entry.
kernels::ProgressFn compute_pacer(const std::shared_ptr<const server::RateTable>& rates,
                                  const std::string& operation) {
  if (rates == nullptr) return nullptr;
  auto op_rates = rates->get(operation.substr(0, operation.find(':')));
  if (!op_rates.is_ok() || op_rates.value().compute <= 0.0) return nullptr;
  return [rate = op_rates.value().compute](Bytes chunk, Bytes) {
    if (chunk > 0) clock().sleep(static_cast<double>(chunk) / rate);
  };
}

}  // namespace

ActiveClient::ActiveClient(pfs::Client& pfs, const kernels::Registry& registry,
                           std::vector<server::StorageServer*> servers, Config config)
    : pfs_(pfs), registry_(registry), servers_(std::move(servers)), config_(config) {
  assert(!servers_.empty());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    assert(servers_[i] != nullptr);
    assert(servers_[i]->server_id() == i && "servers must be indexed by data-server id");
  }
  rpc::ChainOptions options;
  options.retry = config_.retry;
  options.retry_seed = config_.retry_seed;
  options.circuit_threshold = config_.circuit_threshold;
  options.faults = config_.faults;
  options.network = config_.network;
  options.network_per_node = config_.network_per_node;
  auto chain = rpc::make_chain(servers_, options);
  transport_ = std::move(chain.head);
  breaker_ = std::move(chain.breaker);
}

bool ActiveClient::circuit_open(pfs::ServerId server) {
  return breaker_ != nullptr && breaker_->should_short_circuit(server);
}

void ActiveClient::note_timed_out(const server::ActiveIoResponse& resp) {
  if (resp.outcome == server::ActiveOutcome::kFailed &&
      resp.status.code() == ErrorCode::kTimedOut) {
    std::lock_guard lock(mu_);
    ++stats_.timed_out;
  }
}

rpc::Envelope ActiveClient::active_envelope(const pfs::FileMeta& meta, const ServerExtent& ext,
                                            const std::string& operation) const {
  rpc::Envelope env;
  env.target = ext.server;
  env.kind = rpc::OpKind::kActiveIo;
  env.active.handle = meta.handle;
  env.active.object_offset = ext.object_offset;
  env.active.length = ext.length;
  env.active.operation = operation;
  env.deadline = config_.request_timeout;
  return env;
}

Result<BufferRef> ActiveClient::remote_read(pfs::ServerId target,
                                            pfs::FileHandle handle,
                                            Bytes object_offset, Bytes length,
                                            const obs::TraceContext& ctx) {
  rpc::Envelope env;
  env.target = target;
  env.kind = rpc::OpKind::kRead;
  env.read.handle = handle;
  env.read.object_offset = object_offset;
  env.read.length = length;
  env.trace = ctx;  // invalid: the transport starts a fresh root trace
  auto reply = transport_->submit(std::move(env)).wait();
  if (!reply.read.status.is_ok()) return reply.read.status;
  return std::move(reply.read.data);
}

Result<std::vector<std::uint8_t>> ActiveClient::serve_extent_locally(
    const pfs::FileMeta& meta, const ServerExtent& ext, const std::string& operation,
    const obs::TraceContext& ctx) {
  {
    std::lock_guard lock(mu_);
    ++stats_.node_down_demotes;
    ++stats_.local_kernel_runs;
  }
  if (obs::metrics_enabled()) obs::count("client.node_down_demotes");
  obs::flight_record(obs::FlightEventKind::kDemotion, ctx.trace_id,
                     static_cast<std::uint32_t>(ext.server), 0,
                     "circuit open: serving via normal I/O");
  if (obs::tracing_enabled() && ctx.valid()) {
    obs::Tracer::global().instant("client.node_down_demote", "client", ctx.child("node_down"));
  }
  auto kernel = registry_.create(operation);
  if (!kernel.is_ok()) return kernel.status();
  kernel.value()->reset();
  return finish_locally(meta, ext, ext.object_offset, *kernel.value(), ctx);
}

std::vector<ActiveClient::ServerExtent> ActiveClient::server_extents(const pfs::FileMeta& meta,
                                                                     Bytes offset,
                                                                     Bytes length) const {
  const pfs::Layout layout(meta.striping);
  std::map<pfs::ServerId, ServerExtent> per_server;
  for (const auto& seg : layout.map_extent(offset, length)) {
    auto [it, inserted] = per_server.try_emplace(
        seg.server, ServerExtent{seg.server, seg.object_offset, seg.length});
    if (!inserted) {
      // Object strips of one file extent are dense per server, so the
      // union stays contiguous: just extend.
      assert(seg.object_offset == it->second.object_offset + it->second.length);
      it->second.length += seg.length;
    }
  }
  std::vector<ServerExtent> out;
  out.reserve(per_server.size());
  for (auto& [server, ext] : per_server) out.push_back(ext);
  return out;
}

Result<BufferRef> ActiveClient::assemble_read(const pfs::FileMeta& meta, Bytes offset,
                                              Bytes length) {
  // Refresh size so concurrent extenders are visible, then clamp at EOF.
  auto fresh = pfs_.file_system().meta().lookup_handle(meta.handle);
  if (!fresh.is_ok()) return fresh.status();
  const Bytes size = fresh.value().size;
  if (offset >= size) return BufferRef{};
  length = std::min(length, size - offset);

  const pfs::Layout layout(meta.striping);
  const auto segments = layout.map_extent(offset, length);
  std::vector<rpc::Envelope> envs;
  envs.reserve(segments.size());
  for (const auto& seg : segments) {
    rpc::Envelope env;
    env.target = seg.server;
    env.kind = rpc::OpKind::kRead;
    env.read.handle = meta.handle;
    env.read.object_offset = seg.object_offset;
    env.read.length = seg.length;
    envs.push_back(std::move(env));
  }
  auto replies = transport_->submit_batch(std::move(envs));

  // Single-segment full reads — every chunk of a demoted/local kernel run
  // whose chunk fits one strip — are the hot case: the server's slab ref
  // IS the result, no staging buffer and no copy.
  if (segments.size() == 1) {
    auto r = replies[0].wait();
    if (!r.read.status.is_ok()) {
      if (r.read.status.code() != ErrorCode::kNotFound) return r.read.status;
      return BufferRef::adopt(std::vector<std::uint8_t>(length, 0));  // hole: zeros
    }
    if (r.read.data.size() == length) return std::move(r.read.data);
    // Short read (sparse tail): stage with the zero fill below.
    std::vector<std::uint8_t> out(length);
    note_bytes_copied(r.read.data.size(), CopySite::kReadGather);
    std::copy(r.read.data.begin(), r.read.data.end(), out.begin());
    return BufferRef::adopt(std::move(out));
  }

  std::vector<std::uint8_t> out(length);  // holes/short reads stay zero
  for (std::size_t i = 0; i < segments.size(); ++i) {
    auto r = replies[i].wait();
    if (!r.read.status.is_ok()) {
      // A server with no object for this handle is a hole in a sparse
      // file: reads as zeros (already in place in `out`).
      if (r.read.status.code() == ErrorCode::kNotFound) continue;
      return r.read.status;
    }
    // Gather into the contiguous staging buffer: the one owning copy a
    // striped whole-extent read cannot avoid (and the ledger records it).
    note_bytes_copied(r.read.data.size(), CopySite::kReadGather);
    std::copy(r.read.data.begin(), r.read.data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(segments[i].logical_offset - offset));
  }
  return BufferRef::adopt(std::move(out));
}

Result<BufferRef> ActiveClient::read_ref(const pfs::FileMeta& meta, Bytes offset,
                                         Bytes length) {
  auto data = assemble_read(meta, offset, length);
  if (data.is_ok()) {
    std::lock_guard lock(mu_);
    stats_.raw_bytes_read += data.value().size();
  }
  return data;
}

Result<std::vector<std::uint8_t>> ActiveClient::read(const pfs::FileMeta& meta, Bytes offset,
                                                     Bytes length) {
  auto data = read_ref(meta, offset, length);
  if (!data.is_ok()) return data.status();
  return data.value().to_vector();
}

Result<std::vector<std::uint8_t>> ActiveClient::read_ex(const pfs::FileMeta& meta, Bytes offset,
                                                        Bytes length,
                                                        const std::string& operation) {
  // The causal root span ("client.read_ex") is emitted by wait() so the
  // async form is covered identically.
  return read_ex_async(meta, offset, length, operation).wait();
}

ActiveClient::PendingReadEx ActiveClient::read_ex_async(const pfs::FileMeta& meta, Bytes offset,
                                                        Bytes length,
                                                        const std::string& operation) {
  PendingReadEx pending;
  pending.client_ = this;
  pending.meta_ = meta;
  pending.operation_ = operation;
  // Root of this request's causal tree, allocated on the issuing thread so
  // trace ids are assigned in deterministic submission order under DST.
  pending.ctx_ = obs::Tracer::global().new_root();
  pending.t0_us_ = obs::now_us();
  {
    std::lock_guard lock(mu_);
    ++stats_.reads_ex;
  }

  // Clamp at EOF like a normal read.
  auto fresh = pfs_.file_system().meta().lookup_handle(meta.handle);
  if (!fresh.is_ok()) {
    pending.immediate_ = fresh.status();
    return pending;
  }
  const Bytes size = fresh.value().size;
  if (offset >= size) length = 0;
  length = std::min(length, size > offset ? size - offset : 0);

  auto probe = registry_.create(operation);
  if (!probe.is_ok()) {
    pending.immediate_ = probe.status();
    return pending;
  }

  if (length == 0) {
    probe.value()->reset();
    pending.immediate_ = probe.value()->finalize();
    return pending;
  }

  auto extents = server_extents(meta, offset, length);
  if (extents.empty()) {
    // A non-empty clamped range must map to at least one server; reaching
    // here means the layout math is broken. A typed error beats UB straight
    // into legs_[0] in release builds.
    pending.immediate_ = Result<std::vector<std::uint8_t>>(
        error(ErrorCode::kInternal, "layout mapped a non-empty extent to no servers"));
    return pending;
  }

  // Multi-server extents need fan-out + merge; when the kernel cannot
  // merge (gaussian2d) or item boundaries misalign with strips, the bytes
  // must flow in logical file order: one local pass (the TS path).
  const bool aligned = meta.striping.strip_size % sizeof(double) == 0 &&
                       offset % sizeof(double) == 0;
  if (extents.size() > 1 &&
      !(config_.allow_striped_fanout && probe.value()->mergeable() && aligned)) {
    pending.mode_ = PendingReadEx::Mode::kLocalPass;
    pending.offset_ = offset;
    pending.length_ = length;
    return pending;
  }

  if (extents.size() > 1) {
    std::lock_guard lock(mu_);
    ++stats_.striped_fanouts;
  }

  // Submit every extent's active RPC before waiting on any: a striped
  // request keeps all its storage nodes busy concurrently, and N pending
  // read_ex_async() calls pipeline across the cluster.
  pending.mode_ = PendingReadEx::Mode::kRemote;
  pending.fanout_ = extents.size() > 1;
  pending.hedge_budget_ = config_.hedge_reads ? config_.hedge_max_per_read : 0;
  pending.legs_.reserve(extents.size());
  for (auto& ext : extents) {
    PendingReadEx::Leg leg;
    leg.ext = ext;
    leg.ctx = pending.ctx_.child("s" + std::to_string(ext.server));
    if (ext.server < servers_.size() && !circuit_open(ext.server)) {
      auto env = active_envelope(meta, ext, operation);
      env.trace = leg.ctx;
      leg.reply = transport_->submit(std::move(env));
      if (config_.hedge_reads && leg.reply.valid()) {
        const Seconds delay = hedge_delay_for(ext.server);
        if (delay > 0) leg.hedge_at = clock().now() + delay;
      }
    }
    pending.legs_.push_back(std::move(leg));
  }

  // Resolution order: fastest predicted node first (submission above stays
  // in stripe order, so per-node arrival order is unchanged). The predicted
  // straggler is then waited on LAST, with the whole hedge budget and the
  // fast legs' results already in hand.
  pending.wait_order_.resize(pending.legs_.size());
  for (std::size_t i = 0; i < pending.wait_order_.size(); ++i) pending.wait_order_[i] = i;
  if (config_.hedge_reads && pending.legs_.size() > 1) {
    std::vector<double> predicted(pending.legs_.size());
    for (std::size_t i = 0; i < pending.legs_.size(); ++i) {
      predicted[i] =
          transport_->node_latency(static_cast<std::uint32_t>(pending.legs_[i].ext.server))
              .p50_us;
    }
    std::stable_sort(pending.wait_order_.begin(), pending.wait_order_.end(),
                     [&](std::size_t a, std::size_t b) { return predicted[a] < predicted[b]; });
  }
  return pending;
}

ActiveClient::PendingReadEx::~PendingReadEx() {
  if (client_ == nullptr || waited_) return;
  // Abandoned without wait(): withdraw the server-side work (a queued leg
  // never starts, a running one is interrupted) and close the root span so
  // the causal tree is not left dangling.
  cancel_outstanding("read_ex handle dropped before wait()");
  if (ctx_.valid()) emit_request_e2e(ctx_, t0_us_, operation_);
}

ActiveClient::PendingReadEx::PendingReadEx(PendingReadEx&& other) noexcept
    : client_(std::exchange(other.client_, nullptr)),
      mode_(other.mode_),
      ctx_(other.ctx_),
      t0_us_(other.t0_us_),
      immediate_(std::move(other.immediate_)),
      meta_(other.meta_),
      operation_(std::move(other.operation_)),
      offset_(other.offset_),
      length_(other.length_),
      legs_(std::move(other.legs_)),
      fanout_(other.fanout_),
      wait_order_(std::move(other.wait_order_)),
      hedge_budget_(other.hedge_budget_),
      waited_(other.waited_) {}

ActiveClient::PendingReadEx& ActiveClient::PendingReadEx::operator=(
    PendingReadEx&& other) noexcept {
  if (this != &other) {
    this->~PendingReadEx();
    new (this) PendingReadEx(std::move(other));
  }
  return *this;
}

void ActiveClient::PendingReadEx::cancel_outstanding(const char* why) {
  for (auto& leg : legs_) {
    if (!leg.reply.valid() || leg.reply.ready()) continue;
    if (leg.reply.cancel(error(ErrorCode::kCancelled, why))) {
      obs::flight_record(obs::FlightEventKind::kCancel, leg.ctx.trace_id,
                         static_cast<std::uint32_t>(leg.ext.server), 0, why);
    }
  }
}

Result<std::vector<std::uint8_t>> ActiveClient::PendingReadEx::wait() {
  waited_ = true;
  auto result = resolve();
  // The root span of the causal tree: every transport/server/kernel span
  // of this request is a descendant of ctx_.
  if (client_ != nullptr && ctx_.valid()) emit_request_e2e(ctx_, t0_us_, operation_);
  return result;
}

Result<std::vector<std::uint8_t>> ActiveClient::PendingReadEx::resolve() {
  switch (mode_) {
    case Mode::kImmediate:
      return std::move(immediate_);
    case Mode::kLocalPass:
      return client_->local_kernel(meta_, offset_, length_, operation_);
    case Mode::kRemote:
      break;
  }

  if (!fanout_) return client_->resolve_leg(meta_, legs_[0], operation_, &hedge_budget_);

  auto master = client_->registry_.create(operation_);
  if (!master.is_ok()) {
    cancel_outstanding("fan-out merge kernel unavailable");
    return master.status();
  }
  master.value()->reset();
  // Resolve legs fastest-predicted-node first (wait_order_), buffering the
  // partials; the merge below runs in stripe order regardless of
  // resolution or completion order, so the result is bit-identical to the
  // sequential path.
  std::vector<std::optional<Result<std::vector<std::uint8_t>>>> partials(legs_.size());
  for (std::size_t idx : wait_order_) {
    auto partial = client_->resolve_leg(meta_, legs_[idx], operation_, &hedge_budget_);
    if (!partial.is_ok()) {
      // One failed leg dooms the whole read: withdraw every sibling still
      // in flight BEFORE propagating, or the storage nodes keep burning
      // queue slots and kernel time on a request nobody will merge.
      cancel_outstanding("sibling fan-out leg failed");
      return partial.status();
    }
    partials[idx] = std::move(partial);
  }
  for (std::size_t i = 0; i < legs_.size(); ++i) {
    Status st = master.value()->merge(partials[i]->value());
    if (!st.is_ok()) return st;
  }
  return master.value()->finalize();
}

Result<std::vector<std::uint8_t>> ActiveClient::resolve_leg(const pfs::FileMeta& meta,
                                                            PendingReadEx::Leg& leg,
                                                            const std::string& operation,
                                                            std::size_t* hedge_budget) {
  if (leg.ext.server >= servers_.size()) {
    return error(ErrorCode::kInternal, "no storage server for data server id " +
                                           std::to_string(leg.ext.server));
  }
  // Open circuit: the node's active runtime has stopped responding, so the
  // doomed remote attempt was skipped entirely at submission — normal I/O
  // + local kernel (the node's data path survives an active-runtime
  // crash).
  if (!leg.reply.valid()) {
    return serve_extent_locally(meta, leg.ext, operation, leg.ctx);
  }
  // Hedge timer: give the RPC until its p99-derived deadline, then race a
  // local twin against it instead of waiting out the straggler.
  if (leg.hedge_at > 0 && hedge_budget != nullptr && *hedge_budget > 0 &&
      !leg.reply.wait_until_ready(leg.hedge_at)) {
    --*hedge_budget;
    return hedge_leg(meta, leg, operation);
  }
  auto reply = leg.reply.wait();
  note_timed_out(reply.active);
  return resolve_response(meta, leg.ext, operation, std::move(reply.active),
                          /*allow_resubmit=*/true, leg.ctx);
}

Seconds ActiveClient::hedge_delay_for(pfs::ServerId server) const {
  if (!config_.hedge_reads) return 0;
  const auto nl = transport_->node_latency(static_cast<std::uint32_t>(server));
  if (nl.samples < config_.hedge_min_samples) return config_.hedge_cold_delay;
  return std::max(config_.hedge_min_delay, config_.hedge_p99_multiplier * nl.p99_us * 1e-6);
}

Result<std::vector<std::uint8_t>> ActiveClient::hedge_leg(const pfs::FileMeta& meta,
                                                          PendingReadEx::Leg& leg,
                                                          const std::string& operation) {
  {
    std::lock_guard lock(mu_);
    ++stats_.hedges_fired;
  }
  if (obs::metrics_enabled()) obs::count("client.hedges_fired");
  obs::flight_record(obs::FlightEventKind::kHedge, leg.ctx.trace_id,
                     static_cast<std::uint32_t>(leg.ext.server), 0,
                     "leg past hedge delay: racing a local twin");
  // The hedge branch of the causal tree: the twin's chunk reads hang off
  // this child, so the trace shows the race explicitly.
  const obs::TraceContext hedge_ctx = leg.ctx.child("hedge");
  if (obs::tracing_enabled() && leg.ctx.valid()) {
    obs::Tracer::global().instant("client.hedge", "client", hedge_ctx);
  }

  auto kernel = registry_.create(operation);
  if (!kernel.is_ok()) {
    // No local twin possible; fall back to waiting out the remote leg.
    auto reply = leg.reply.wait();
    note_timed_out(reply.active);
    return resolve_response(meta, leg.ext, operation, std::move(reply.active),
                            /*allow_resubmit=*/true, leg.ctx);
  }
  kernel.value()->reset();

  // The local twin: this architecture has no remote replica to re-issue the
  // active RPC to, so the replica-capable path IS demote-to-local — normal
  // I/O chunks through the node's still-live data path, kernel on this
  // client. The stop check ends the twin at chunk granularity the moment
  // the remote reply lands.
  auto streamed = kernels::stream_extent(
      *kernel.value(), leg.ext.object_offset, leg.ext.object_offset + leg.ext.length,
      config_.chunk_size,
      [&](Bytes pos, Bytes len) -> Result<BufferRef> {
        auto chunk = remote_read(leg.ext.server, meta.handle, pos, len,
                                 hedge_ctx.child("read@" + std::to_string(pos)));
        if (chunk.is_ok()) {
          std::lock_guard lock(mu_);
          stats_.raw_bytes_read += chunk.value().size();
        }
        return chunk;
      },
      /*stop=*/[&] { return leg.reply.ready(); },
      compute_pacer(config_.pace_compute_rates, operation));

  // Arbitration: the twin only wins if it finished AND the remote leg can
  // still be withdrawn. cancel() is the atomic arbiter — when it returns
  // true the RPC completes kCancelled (its server work withdrawn, no bytes
  // charged); when false the real reply already landed and stands.
  const bool twin_finished = streamed.is_ok() && !streamed.value().stopped;
  if (twin_finished &&
      leg.reply.cancel(error(ErrorCode::kCancelled, "hedged leg lost: local twin finished first"))) {
    {
      std::lock_guard lock(mu_);
      ++stats_.hedges_won;
      ++stats_.local_kernel_runs;
    }
    if (obs::metrics_enabled()) obs::count("client.hedges_won");
    obs::flight_record(obs::FlightEventKind::kHedge, leg.ctx.trace_id,
                       static_cast<std::uint32_t>(leg.ext.server), 0,
                       "hedge won: remote leg cancelled");
    return kernel.value()->finalize();
  }

  // The remote reply won the race (or the twin's read failed): the twin's
  // partial work is the hedge's waste, the reply is the leg's result —
  // resolved through the normal completion/demotion/resume state machine.
  {
    std::lock_guard lock(mu_);
    ++stats_.hedges_wasted;
  }
  if (obs::metrics_enabled()) obs::count("client.hedges_wasted");
  obs::flight_record(obs::FlightEventKind::kHedge, leg.ctx.trace_id,
                     static_cast<std::uint32_t>(leg.ext.server), 0,
                     "hedge wasted: remote reply stands");
  auto reply = leg.reply.wait();
  note_timed_out(reply.active);
  return resolve_response(meta, leg.ext, operation, std::move(reply.active),
                          /*allow_resubmit=*/true, leg.ctx);
}

Result<std::vector<std::uint8_t>> ActiveClient::resolve_response(
    const pfs::FileMeta& meta, const ServerExtent& ext, const std::string& operation,
    server::ActiveIoResponse resp, bool allow_resubmit, const obs::TraceContext& ctx) {
  switch (resp.outcome) {
    case server::ActiveOutcome::kCompleted: {
      {
        std::lock_guard lock(mu_);
        ++stats_.completed_remote;
        stats_.result_bytes_received += resp.result.size();
      }
      // Materialize the h(d)-sized result for the owning API; the charge
      // is the result's bytes, not the extent's.
      return resp.result.to_vector();
    }

    case server::ActiveOutcome::kRejected: {
      // Paper §III-C case 1: "For new arrival active I/O requests, R just
      // set completed argument to 0 ... The request is now changed to be a
      // normal I/O and will be processed by ASC."
      {
        std::lock_guard lock(mu_);
        ++stats_.demoted;
        ++stats_.local_kernel_runs;
      }
      obs::flight_record(obs::FlightEventKind::kDemotion, ctx.trace_id,
                         static_cast<std::uint32_t>(ext.server), 0,
                         "rejected at admission: finishing locally");
      if (obs::tracing_enabled() && ctx.valid()) {
        obs::Tracer::global().instant("client.demote", "client", ctx.child("client_demote"));
      }
      auto kernel = registry_.create(operation);
      if (!kernel.is_ok()) return kernel.status();
      kernel.value()->reset();
      // Client-side compute time for a demoted kernel: the cost the CE's
      // y_i + z terms predict the client pays instead of the server.
      const bool obs_on = obs::metrics_enabled();
      const double t0 = obs_on ? obs::now_us() : 0.0;
      auto result = finish_locally(meta, ext, ext.object_offset, *kernel.value(), ctx);
      if (obs_on) {
        obs::count("client.demoted");
        obs::observe("client.demoted_compute_us", obs::now_us() - t0);
      }
      return result;
    }

    case server::ActiveOutcome::kInterrupted: {
      // Extension: offer the checkpoint back to the storage node once (the
      // spike that caused the interruption may have passed). Whatever the
      // second round returns, accumulated kernel progress is never lost:
      // every fallback resumes from the freshest checkpoint.
      if (config_.resubmit_interrupted && allow_resubmit) {
        {
          std::lock_guard lock(mu_);
          ++stats_.resubmitted;
        }
        obs::flight_record(obs::FlightEventKind::kStateTransition, ctx.trace_id,
                           static_cast<std::uint32_t>(ext.server), resp.resume_offset,
                           "resubmitting interrupted kernel with checkpoint");
        auto env = active_envelope(meta, ext, operation);
        env.active.resume_checkpoint = resp.checkpoint;
        env.active.resume_from = resp.resume_offset;
        env.trace = ctx.child("resubmit");
        auto second_reply = transport_->submit(std::move(env)).wait();
        note_timed_out(second_reply.active);
        auto second = std::move(second_reply.active);
        if (second.outcome == server::ActiveOutcome::kCompleted) {
          {
            std::lock_guard lock(mu_);
            ++stats_.completed_remote;
            stats_.result_bytes_received += second.result.size();
          }
          return second.result.to_vector();
        }
        // Rejected (no progress since the first checkpoint) keeps the
        // original state; a second interruption carries fresher state.
        if (second.outcome == server::ActiveOutcome::kInterrupted) {
          resp = std::move(second);
        }
        // Fall through to local completion from resp's checkpoint.
      }
      // Paper §III-C case 2: restore the shipped variable dump and finish
      // the remaining bytes locally.
      {
        std::lock_guard lock(mu_);
        ++stats_.resumed_local;
        ++stats_.local_kernel_runs;
        stats_.result_bytes_received += resp.checkpoint.size();
      }
      auto kernel = registry_.create(operation);
      if (!kernel.is_ok()) return kernel.status();
      Bytes resume_from = resp.resume_offset;
      auto decoded = Checkpoint::decode(resp.checkpoint);
      Status st = decoded.is_ok() ? kernel.value()->restore(decoded.value()) : decoded.status();
      if (!st.is_ok()) {
        // A dropped/corrupted checkpoint (checksum mismatch -> kCorrupted)
        // loses the server's progress but never correctness: restart the
        // kernel cleanly over the whole extent instead of resuming from
        // garbage — and never from silently-defaulted state.
        {
          std::lock_guard lock(mu_);
          ++stats_.checkpoint_corrupt_restarts;
        }
        if (obs::metrics_enabled()) obs::count("client.ckpt_corrupt_restarts");
        obs::flight_record(obs::FlightEventKind::kStateTransition, ctx.trace_id,
                           static_cast<std::uint32_t>(ext.server), 0,
                           "checkpoint corrupt: clean local restart");
        kernel.value()->reset();
        resume_from = ext.object_offset;
      }
      obs::flight_record(obs::FlightEventKind::kResume, ctx.trace_id,
                         static_cast<std::uint32_t>(ext.server), resume_from,
                         "restoring checkpoint, finishing locally");
      if (obs::tracing_enabled() && ctx.valid()) {
        obs::Tracer::global().instant("client.resume", "client", ctx.child("client_resume"));
      }
      const bool obs_on = obs::metrics_enabled();
      const double t0 = obs_on ? obs::now_us() : 0.0;
      auto result = finish_locally(meta, ext, resume_from, *kernel.value(), ctx);
      if (obs_on) {
        obs::count("client.resumed");
        obs::observe("client.resume_compute_us", obs::now_us() - t0);
      }
      return result;
    }

    case server::ActiveOutcome::kFailed: {
      // Resilience: a transient server-side failure (e.g. a data-server
      // brownout mid-kernel) is retried once as plain normal I/O + a local
      // kernel. A persistent fault will fail that retry and propagate.
      if (resp.status.code() == ErrorCode::kNotFound ||
          resp.status.code() == ErrorCode::kInvalidArgument) {
        return resp.status;  // not transient: bad operation or missing file
      }
      {
        std::lock_guard lock(mu_);
        ++stats_.failed_remote_retries;
        ++stats_.local_kernel_runs;
      }
      obs::flight_record(obs::FlightEventKind::kStateTransition, ctx.trace_id,
                         static_cast<std::uint32_t>(ext.server), 0,
                         "remote active I/O failed: local fallback");
      auto kernel = registry_.create(operation);
      if (!kernel.is_ok()) return kernel.status();
      kernel.value()->reset();
      auto retried = finish_locally(meta, ext, ext.object_offset, *kernel.value(), ctx);
      if (!retried.is_ok()) return resp.status;  // persistent: surface the original error
      return retried;
    }
  }
  return error(ErrorCode::kInternal, "unreachable active outcome");
}

std::vector<Result<std::vector<std::uint8_t>>> ActiveClient::read_ex_batch(
    const std::vector<BatchItem>& items) {
  std::vector<std::optional<Result<std::vector<std::uint8_t>>>> results(items.size());

  struct PendingItem {
    std::size_t index;
    ServerExtent ext;
    obs::TraceContext ctx;      ///< root of the item's causal tree
    obs::TraceContext leg_ctx;  ///< per-server child stamped on the envelope
    double t0_us = 0.0;
  };
  std::vector<PendingItem> pending;

  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    {
      std::lock_guard lock(mu_);
      ++stats_.reads_ex;
    }
    auto fresh = pfs_.file_system().meta().lookup_handle(item.meta.handle);
    if (!fresh.is_ok()) {
      results[i] = fresh.status();
      continue;
    }
    const Bytes size = fresh.value().size;
    Bytes length = item.length;
    if (item.offset >= size) length = 0;
    length = std::min(length, size > item.offset ? size - item.offset : 0);

    auto probe = registry_.create(item.operation);
    if (!probe.is_ok()) {
      results[i] = probe.status();
      continue;
    }
    if (length == 0) {
      probe.value()->reset();
      results[i] = probe.value()->finalize();
      continue;
    }
    const auto extents = server_extents(item.meta, item.offset, length);
    if (extents.size() == 1) {
      if (extents[0].server >= servers_.size()) {
        results[i] = Result<std::vector<std::uint8_t>>(
            error(ErrorCode::kInternal, "no storage server for data server id " +
                                            std::to_string(extents[0].server)));
      } else if (circuit_open(extents[0].server)) {
        const obs::TraceContext root = obs::Tracer::global().new_root();
        const double t0 = obs::now_us();
        results[i] = serve_extent_locally(
            item.meta, extents[0], item.operation,
            root.child("s" + std::to_string(extents[0].server)));
        emit_request_e2e(root, t0, item.operation);
      } else {
        PendingItem p;
        p.index = i;
        p.ext = extents[0];
        p.ctx = obs::Tracer::global().new_root();
        p.leg_ctx = p.ctx.child("s" + std::to_string(extents[0].server));
        p.t0_us = obs::now_us();
        pending.push_back(std::move(p));
      }
    } else {
      // Striped items take the individual path (fan-out + merge). Undo the
      // double-counted reads_ex bump from read_ex itself.
      {
        std::lock_guard lock(mu_);
        --stats_.reads_ex;
      }
      results[i] = read_ex(item.meta, item.offset, length, item.operation);
    }
  }

  // One transport batch over all single-node items: the transport hands
  // each storage node its sub-group in one submit_active_batch, so the
  // node's CE decides over the whole group at once.
  std::vector<rpc::Envelope> envs;
  envs.reserve(pending.size());
  for (const auto& p : pending) {
    envs.push_back(active_envelope(items[p.index].meta, p.ext, items[p.index].operation));
    envs.back().trace = p.leg_ctx;
  }
  auto replies = transport_->submit_batch(std::move(envs));
  for (std::size_t j = 0; j < pending.size(); ++j) {
    const auto& p = pending[j];
    auto reply = replies[j].wait();
    note_timed_out(reply.active);
    results[p.index] = resolve_response(items[p.index].meta, p.ext, items[p.index].operation,
                                        std::move(reply.active), /*allow_resubmit=*/true,
                                        p.leg_ctx);
    emit_request_e2e(p.ctx, p.t0_us, items[p.index].operation);
  }

  std::vector<Result<std::vector<std::uint8_t>>> out;
  out.reserve(items.size());
  for (auto& r : results) {
    out.push_back(r.has_value() ? std::move(*r)
                                : Result<std::vector<std::uint8_t>>(
                                      error(ErrorCode::kInternal, "batch item unresolved")));
  }
  return out;
}

Result<std::vector<std::uint8_t>> ActiveClient::finish_locally(const pfs::FileMeta& meta,
                                                               const ServerExtent& ext,
                                                               Bytes from,
                                                               kernels::Kernel& kernel,
                                                               const obs::TraceContext& ctx) {
  auto streamed = kernels::stream_extent(
      kernel, from, ext.object_offset + ext.length, config_.chunk_size,
      [&](Bytes pos, Bytes len) -> Result<BufferRef> {
        // Each chunk read joins the request's causal tree (distinct salt
        // per offset, so spans stay unique).
        auto chunk = remote_read(ext.server, meta.handle, pos, len,
                                 ctx.child("read@" + std::to_string(pos)));
        if (chunk.is_ok()) {
          std::lock_guard lock(mu_);
          stats_.raw_bytes_read += chunk.value().size();
        }
        return chunk;
      },
      /*stop=*/nullptr, compute_pacer(config_.pace_compute_rates, kernel.name()));
  if (!streamed.is_ok()) return streamed.status();
  return kernel.finalize();
}

Result<std::vector<std::uint8_t>> ActiveClient::local_kernel(const pfs::FileMeta& meta,
                                                             Bytes offset, Bytes length,
                                                             const std::string& operation) {
  obs::ScopedTrace span("client.local_kernel", "client");
  const bool obs_on = obs::metrics_enabled();
  const double t0 = obs_on ? obs::now_us() : 0.0;
  {
    std::lock_guard lock(mu_);
    ++stats_.local_kernel_runs;
  }
  auto kernel = registry_.create(operation);
  if (!kernel.is_ok()) return kernel.status();
  kernel.value()->reset();
  auto streamed = kernels::stream_extent(
      *kernel.value(), offset, offset + length, config_.chunk_size,
      // read_ref() clamps each chunk at EOF and counts raw_bytes_read
      // itself; a chunk on one strip crosses the ChunkReader boundary as
      // the server's own slab ref — no staging copy.
      [&](Bytes pos, Bytes len) -> Result<BufferRef> { return read_ref(meta, pos, len); },
      /*stop=*/nullptr, compute_pacer(config_.pace_compute_rates, operation));
  if (!streamed.is_ok()) return streamed.status();
  auto result = kernel.value()->finalize();
  if (obs_on) obs::observe("client.local_kernel_us", obs::now_us() - t0);
  return result;
}

Result<pfs::FileMeta> ActiveClient::write(const pfs::FileMeta& meta, Bytes offset,
                                          const BufferRef& data) {
  obs::ScopedTrace span("client.write", "client");
  const pfs::Layout layout(meta.striping);
  std::vector<rpc::Envelope> envs;
  for (const auto& seg : layout.map_extent(offset, data.size())) {
    rpc::Envelope env;
    env.target = seg.server;
    env.kind = rpc::OpKind::kWrite;
    env.write.handle = meta.handle;
    env.write.object_offset = seg.object_offset;
    // slice() shares the caller's slab — the striped fan-out ships N views
    // of one buffer; each data server's store is that leg's only copy.
    env.write.data = data.slice(seg.logical_offset - offset, seg.length);
    envs.push_back(std::move(env));
  }
  auto replies = transport_->submit_batch(std::move(envs));
  Status failed = Status::ok();
  for (auto& reply : replies) {
    auto r = reply.wait();
    // Drain every leg before propagating a failure: siblings already hit
    // their data servers, and abandoning their replies would strand the
    // transport's in-flight accounting.
    if (!r.write.status.is_ok() && failed.is_ok()) failed = r.write.status;
  }
  if (!failed.is_ok()) return failed;
  {
    std::lock_guard lock(mu_);
    stats_.raw_bytes_written += data.size();
  }
  Status st = pfs_.file_system().meta().extend(meta.handle, offset + data.size());
  if (!st.is_ok()) return st;
  return pfs_.file_system().meta().lookup_handle(meta.handle);
}

ActiveClient::Stats ActiveClient::stats() const {
  Stats s;
  {
    std::lock_guard lock(mu_);
    s = stats_;
  }
  // Retry accounting lives in the transport's retry interceptor now.
  const auto t = rpc::stats_of(*transport_);
  s.remote_retries = t.retries;
  s.exhausted_retries = t.retries_exhausted;
  s.backoff_total = t.backoff_total;
  return s;
}

}  // namespace dosas::client
