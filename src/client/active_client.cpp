#include "client/active_client.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/layout.hpp"

namespace dosas::client {

ActiveClient::ActiveClient(pfs::Client& pfs, const kernels::Registry& registry,
                           std::vector<server::StorageServer*> servers, Config config)
    : pfs_(pfs), registry_(registry), servers_(std::move(servers)), config_(config) {
  assert(!servers_.empty());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    assert(servers_[i] != nullptr);
    assert(servers_[i]->server_id() == i && "servers must be indexed by data-server id");
  }
  circuit_.resize(servers_.size());
}

bool ActiveClient::circuit_open(pfs::ServerId server) {
  if (config_.circuit_threshold <= 0) return false;
  std::lock_guard lock(mu_);
  auto& st = circuit_[server];
  if (st.consecutive_unavailable < config_.circuit_threshold) return false;
  // Every 4th short-circuited request re-probes the node so the breaker
  // closes again once the node recovers.
  ++st.skips;
  return st.skips % 4 != 0;
}

void ActiveClient::note_remote_result(pfs::ServerId server, bool unavailable) {
  if (config_.circuit_threshold <= 0) return;
  std::lock_guard lock(mu_);
  auto& st = circuit_[server];
  if (unavailable) {
    ++st.consecutive_unavailable;
  } else {
    st.consecutive_unavailable = 0;
    st.skips = 0;
  }
}

server::ActiveIoResponse ActiveClient::send_active(server::StorageServer& server,
                                                   const server::ActiveIoRequest& req) {
  const auto& fi = config_.faults;
  auto attempt_once = [&]() -> server::ActiveIoResponse {
    if (fi != nullptr && fi->inject_net_error()) {
      server::ActiveIoResponse r;
      r.outcome = server::ActiveOutcome::kFailed;
      r.status = error(ErrorCode::kUnavailable, "injected network error on active RPC");
      return r;
    }
    return server.serve_active(req);
  };

  auto resp = attempt_once();
  const auto transient_failure = [](const server::ActiveIoResponse& r) {
    return r.outcome == server::ActiveOutcome::kFailed && is_transient(r.status.code());
  };
  if (config_.retry.enabled() && transient_failure(resp)) {
    std::uint64_t seq;
    {
      std::lock_guard lock(mu_);
      seq = retry_seq_++;
    }
    Backoff backoff(config_.retry, config_.retry_seed + seq);
    for (int attempt = 1; attempt < config_.retry.max_attempts && transient_failure(resp);
         ++attempt) {
      backoff.next_delay(attempt);
      {
        std::lock_guard lock(mu_);
        ++stats_.remote_retries;
      }
      if (obs::metrics_enabled()) obs::count("client.retries");
      resp = attempt_once();
    }
    {
      std::lock_guard lock(mu_);
      stats_.backoff_total += backoff.total();
      if (transient_failure(resp)) ++stats_.exhausted_retries;
    }
    if (obs::metrics_enabled()) {
      obs::count(transient_failure(resp) ? "client.retries_exhausted"
                                         : "client.retry_recovered");
    }
  }
  if (resp.outcome == server::ActiveOutcome::kFailed &&
      resp.status.code() == ErrorCode::kTimedOut) {
    std::lock_guard lock(mu_);
    ++stats_.timed_out;
  }
  note_remote_result(server.server_id(), transient_failure(resp));
  return resp;
}

Result<std::vector<std::uint8_t>> ActiveClient::serve_extent_locally(
    server::StorageServer& server, const pfs::FileMeta& meta, const ServerExtent& ext,
    const std::string& operation) {
  {
    std::lock_guard lock(mu_);
    ++stats_.node_down_demotes;
    ++stats_.local_kernel_runs;
  }
  if (obs::metrics_enabled()) obs::count("client.node_down_demotes");
  auto kernel = registry_.create(operation);
  if (!kernel.is_ok()) return kernel.status();
  kernel.value()->reset();
  return finish_locally(server, meta, ext, ext.object_offset, *kernel.value());
}

std::vector<ActiveClient::ServerExtent> ActiveClient::server_extents(const pfs::FileMeta& meta,
                                                                     Bytes offset,
                                                                     Bytes length) const {
  const pfs::Layout layout(meta.striping);
  std::map<pfs::ServerId, ServerExtent> per_server;
  for (const auto& seg : layout.map_extent(offset, length)) {
    auto [it, inserted] = per_server.try_emplace(
        seg.server, ServerExtent{seg.server, seg.object_offset, seg.length});
    if (!inserted) {
      // Object strips of one file extent are dense per server, so the
      // union stays contiguous: just extend.
      assert(seg.object_offset == it->second.object_offset + it->second.length);
      it->second.length += seg.length;
    }
  }
  std::vector<ServerExtent> out;
  out.reserve(per_server.size());
  for (auto& [server, ext] : per_server) out.push_back(ext);
  return out;
}

Result<std::vector<std::uint8_t>> ActiveClient::read(const pfs::FileMeta& meta, Bytes offset,
                                                     Bytes length) {
  auto data = pfs_.read(meta, offset, length);
  if (data.is_ok()) {
    {
      std::lock_guard lock(mu_);
      stats_.raw_bytes_read += data.value().size();
    }
    if (config_.network != nullptr) config_.network->acquire(data.value().size());
  }
  return data;
}

Result<std::vector<std::uint8_t>> ActiveClient::read_ex(const pfs::FileMeta& meta, Bytes offset,
                                                        Bytes length,
                                                        const std::string& operation) {
  obs::ScopedTrace span("client.read_ex", "client");
  {
    std::lock_guard lock(mu_);
    ++stats_.reads_ex;
  }

  // Clamp at EOF like a normal read.
  auto fresh = pfs_.file_system().meta().lookup_handle(meta.handle);
  if (!fresh.is_ok()) return fresh.status();
  const Bytes size = fresh.value().size;
  if (offset >= size) length = 0;
  length = std::min(length, size > offset ? size - offset : 0);

  auto probe = registry_.create(operation);
  if (!probe.is_ok()) return probe.status();

  if (length == 0) {
    probe.value()->reset();
    return probe.value()->finalize();
  }

  const auto extents = server_extents(meta, offset, length);
  assert(!extents.empty());

  if (extents.size() == 1) {
    return resolve_extent(meta, extents[0], operation);
  }

  // Multi-server extent. Fan out per server and merge when the kernel
  // supports it and item boundaries align with strip boundaries.
  const bool aligned = meta.striping.strip_size % sizeof(double) == 0 &&
                       offset % sizeof(double) == 0;
  if (config_.allow_striped_fanout && probe.value()->mergeable() && aligned) {
    {
      std::lock_guard lock(mu_);
      ++stats_.striped_fanouts;
    }
    auto master = probe.value()->clone();
    master->reset();
    for (const auto& ext : extents) {
      auto partial = resolve_extent(meta, ext, operation);
      if (!partial.is_ok()) return partial.status();
      Status st = master->merge(partial.value());
      if (!st.is_ok()) return st;
    }
    return master->finalize();
  }

  // Non-mergeable (or misaligned) kernels need the bytes in logical file
  // order: plain normal I/O plus one local kernel pass (the TS path).
  return local_kernel(meta, offset, length, operation);
}

Result<std::vector<std::uint8_t>> ActiveClient::resolve_extent(const pfs::FileMeta& meta,
                                                               const ServerExtent& ext,
                                                               const std::string& operation) {
  if (ext.server >= servers_.size()) {
    return error(ErrorCode::kInternal, "no storage server for data server id " +
                                           std::to_string(ext.server));
  }
  server::StorageServer& server = *servers_[ext.server];

  // Open circuit: the node's active runtime has stopped responding, so
  // skip the doomed remote attempt entirely — normal I/O + local kernel
  // (the node's data path survives an active-runtime crash).
  if (circuit_open(ext.server)) {
    return serve_extent_locally(server, meta, ext, operation);
  }

  server::ActiveIoRequest req;
  req.handle = meta.handle;
  req.object_offset = ext.object_offset;
  req.length = ext.length;
  req.operation = operation;
  req.timeout = config_.request_timeout;
  return resolve_response(server, meta, ext, operation, send_active(server, req));
}

Result<std::vector<std::uint8_t>> ActiveClient::resolve_response(
    server::StorageServer& server, const pfs::FileMeta& meta, const ServerExtent& ext,
    const std::string& operation, server::ActiveIoResponse resp, bool allow_resubmit) {
  switch (resp.outcome) {
    case server::ActiveOutcome::kCompleted: {
      std::lock_guard lock(mu_);
      ++stats_.completed_remote;
      stats_.result_bytes_received += resp.result.size();
      return resp.result;
    }

    case server::ActiveOutcome::kRejected: {
      // Paper §III-C case 1: "For new arrival active I/O requests, R just
      // set completed argument to 0 ... The request is now changed to be a
      // normal I/O and will be processed by ASC."
      {
        std::lock_guard lock(mu_);
        ++stats_.demoted;
        ++stats_.local_kernel_runs;
      }
      auto kernel = registry_.create(operation);
      if (!kernel.is_ok()) return kernel.status();
      kernel.value()->reset();
      // Client-side compute time for a demoted kernel: the cost the CE's
      // y_i + z terms predict the client pays instead of the server.
      const bool obs_on = obs::metrics_enabled();
      const double t0 = obs_on ? obs::now_us() : 0.0;
      auto result = finish_locally(server, meta, ext, ext.object_offset, *kernel.value());
      if (obs_on) {
        obs::count("client.demoted");
        obs::observe("client.demoted_compute_us", obs::now_us() - t0);
      }
      return result;
    }

    case server::ActiveOutcome::kInterrupted: {
      // Extension: offer the checkpoint back to the storage node once (the
      // spike that caused the interruption may have passed). Whatever the
      // second round returns, accumulated kernel progress is never lost:
      // every fallback resumes from the freshest checkpoint.
      if (config_.resubmit_interrupted && allow_resubmit) {
        {
          std::lock_guard lock(mu_);
          ++stats_.resubmitted;
        }
        server::ActiveIoRequest again;
        again.handle = meta.handle;
        again.object_offset = ext.object_offset;
        again.length = ext.length;
        again.operation = operation;
        again.resume_checkpoint = resp.checkpoint;
        again.resume_from = resp.resume_offset;
        again.timeout = config_.request_timeout;
        auto second = send_active(server, again);
        if (second.outcome == server::ActiveOutcome::kCompleted) {
          std::lock_guard lock(mu_);
          ++stats_.completed_remote;
          stats_.result_bytes_received += second.result.size();
          return second.result;
        }
        // Rejected (no progress since the first checkpoint) keeps the
        // original state; a second interruption carries fresher state.
        if (second.outcome == server::ActiveOutcome::kInterrupted) {
          resp = std::move(second);
        }
        // Fall through to local completion from resp's checkpoint.
      }
      // Paper §III-C case 2: restore the shipped variable dump and finish
      // the remaining bytes locally.
      {
        std::lock_guard lock(mu_);
        ++stats_.resumed_local;
        ++stats_.local_kernel_runs;
        stats_.result_bytes_received += resp.checkpoint.size();
      }
      auto kernel = registry_.create(operation);
      if (!kernel.is_ok()) return kernel.status();
      Bytes resume_from = resp.resume_offset;
      auto decoded = Checkpoint::decode(resp.checkpoint);
      Status st = decoded.is_ok() ? kernel.value()->restore(decoded.value()) : decoded.status();
      if (!st.is_ok()) {
        // A dropped/corrupted checkpoint (checksum mismatch -> kCorrupted)
        // loses the server's progress but never correctness: restart the
        // kernel cleanly over the whole extent instead of resuming from
        // garbage — and never from silently-defaulted state.
        {
          std::lock_guard lock(mu_);
          ++stats_.checkpoint_corrupt_restarts;
        }
        if (obs::metrics_enabled()) obs::count("client.ckpt_corrupt_restarts");
        kernel.value()->reset();
        resume_from = ext.object_offset;
      }
      const bool obs_on = obs::metrics_enabled();
      const double t0 = obs_on ? obs::now_us() : 0.0;
      auto result = finish_locally(server, meta, ext, resume_from, *kernel.value());
      if (obs_on) {
        obs::count("client.resumed");
        obs::observe("client.resume_compute_us", obs::now_us() - t0);
      }
      return result;
    }

    case server::ActiveOutcome::kFailed: {
      // Resilience: a transient server-side failure (e.g. a data-server
      // brownout mid-kernel) is retried once as plain normal I/O + a local
      // kernel. A persistent fault will fail that retry and propagate.
      if (resp.status.code() == ErrorCode::kNotFound ||
          resp.status.code() == ErrorCode::kInvalidArgument) {
        return resp.status;  // not transient: bad operation or missing file
      }
      {
        std::lock_guard lock(mu_);
        ++stats_.failed_remote_retries;
        ++stats_.local_kernel_runs;
      }
      auto kernel = registry_.create(operation);
      if (!kernel.is_ok()) return kernel.status();
      kernel.value()->reset();
      auto retried = finish_locally(server, meta, ext, ext.object_offset, *kernel.value());
      if (!retried.is_ok()) return resp.status;  // persistent: surface the original error
      return retried;
    }
  }
  return error(ErrorCode::kInternal, "unreachable active outcome");
}

std::vector<Result<std::vector<std::uint8_t>>> ActiveClient::read_ex_batch(
    const std::vector<BatchItem>& items) {
  std::vector<std::optional<Result<std::vector<std::uint8_t>>>> results(items.size());

  struct PendingItem {
    std::size_t index;
    ServerExtent ext;
  };
  std::map<pfs::ServerId, std::vector<PendingItem>> groups;

  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    {
      std::lock_guard lock(mu_);
      ++stats_.reads_ex;
    }
    auto fresh = pfs_.file_system().meta().lookup_handle(item.meta.handle);
    if (!fresh.is_ok()) {
      results[i] = fresh.status();
      continue;
    }
    const Bytes size = fresh.value().size;
    Bytes length = item.length;
    if (item.offset >= size) length = 0;
    length = std::min(length, size > item.offset ? size - item.offset : 0);

    auto probe = registry_.create(item.operation);
    if (!probe.is_ok()) {
      results[i] = probe.status();
      continue;
    }
    if (length == 0) {
      probe.value()->reset();
      results[i] = probe.value()->finalize();
      continue;
    }
    const auto extents = server_extents(item.meta, item.offset, length);
    if (extents.size() == 1) {
      groups[extents[0].server].push_back({i, extents[0]});
    } else {
      // Striped items take the individual path (fan-out + merge). Undo the
      // double-counted reads_ex bump from read_ex itself.
      {
        std::lock_guard lock(mu_);
        --stats_.reads_ex;
      }
      results[i] = read_ex(item.meta, item.offset, length, item.operation);
    }
  }

  // One batched submission per storage node: the node's CE decides over
  // the whole group at once.
  for (auto& [server_id, pending] : groups) {
    server::StorageServer& server = *servers_[server_id];
    std::vector<server::ActiveIoRequest> reqs;
    reqs.reserve(pending.size());
    for (const auto& p : pending) {
      server::ActiveIoRequest req;
      req.handle = items[p.index].meta.handle;
      req.object_offset = p.ext.object_offset;
      req.length = p.ext.length;
      req.operation = items[p.index].operation;
      req.timeout = config_.request_timeout;
      reqs.push_back(std::move(req));
    }
    auto responses = server.serve_active_batch(std::move(reqs));
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const auto& p = pending[j];
      results[p.index] = resolve_response(server, items[p.index].meta, p.ext,
                                          items[p.index].operation, std::move(responses[j]));
    }
  }

  std::vector<Result<std::vector<std::uint8_t>>> out;
  out.reserve(items.size());
  for (auto& r : results) {
    out.push_back(r.has_value() ? std::move(*r)
                                : Result<std::vector<std::uint8_t>>(
                                      error(ErrorCode::kInternal, "batch item unresolved")));
  }
  return out;
}

Result<std::vector<std::uint8_t>> ActiveClient::finish_locally(server::StorageServer& server,
                                                               const pfs::FileMeta& meta,
                                                               const ServerExtent& ext,
                                                               Bytes from,
                                                               kernels::Kernel& kernel) {
  Bytes pos = from;
  const Bytes end = ext.object_offset + ext.length;
  while (pos < end) {
    const Bytes n = std::min<Bytes>(config_.chunk_size, end - pos);
    auto chunk = server.serve_normal(meta.handle, pos, n);
    if (!chunk.is_ok()) return chunk.status();
    if (chunk.value().empty()) break;
    {
      std::lock_guard lock(mu_);
      stats_.raw_bytes_read += chunk.value().size();
    }
    kernel.consume(chunk.value());
    const bool short_read = chunk.value().size() < n;
    pos += chunk.value().size();
    if (short_read) break;
  }
  return kernel.finalize();
}

Result<std::vector<std::uint8_t>> ActiveClient::local_kernel(const pfs::FileMeta& meta,
                                                             Bytes offset, Bytes length,
                                                             const std::string& operation) {
  obs::ScopedTrace span("client.local_kernel", "client");
  const bool obs_on = obs::metrics_enabled();
  const double t0 = obs_on ? obs::now_us() : 0.0;
  {
    std::lock_guard lock(mu_);
    ++stats_.local_kernel_runs;
  }
  auto kernel = registry_.create(operation);
  if (!kernel.is_ok()) return kernel.status();
  kernel.value()->reset();
  Bytes pos = offset;
  const Bytes end = offset + length;
  while (pos < end) {
    const Bytes n = std::min<Bytes>(config_.chunk_size, end - pos);
    auto chunk = pfs_.read(meta, pos, n);
    if (!chunk.is_ok()) return chunk.status();
    if (chunk.value().empty()) break;
    {
      std::lock_guard lock(mu_);
      stats_.raw_bytes_read += chunk.value().size();
    }
    if (config_.network != nullptr) config_.network->acquire(chunk.value().size());
    kernel.value()->consume(chunk.value());
    const bool short_read = chunk.value().size() < n;
    pos += chunk.value().size();
    if (short_read) break;
  }
  auto result = kernel.value()->finalize();
  if (obs_on) obs::observe("client.local_kernel_us", obs::now_us() - t0);
  return result;
}

ActiveClient::Stats ActiveClient::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace dosas::client
