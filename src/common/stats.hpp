// stats.hpp — streaming statistics accumulators used by the contention
// estimator (utilization smoothing), the metrics layer, and the benches
// (reporting mean/stddev/percentiles of repeated runs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dosas {

/// Welford streaming mean/variance/min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially-weighted moving average, the smoother the contention
/// estimator applies to noisy utilization probes (paper §III-D: the CE
/// "periodically probes the system state").
class Ewma {
 public:
  /// alpha in (0,1]: weight of the newest sample.
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void add(double x) {
    if (!primed_) {
      value_ = x;
      primed_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool primed() const { return primed_; }
  double value() const { return value_; }
  void reset() { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985): tracks a
/// single quantile in O(1) memory with five markers, no sample storage.
/// Used by the metrics layer for p50/p90/p99 summaries of unbounded event
/// streams (per-kernel rates, decision latencies).
class P2Quantile {
 public:
  /// q in (0,1): the quantile to track (0.5 = median).
  explicit P2Quantile(double q = 0.5) : q_(q) {}

  void add(double x) {
    ++count_;
    if (count_ <= 5) {
      heights_[count_ - 1] = x;
      if (count_ == 5) {
        std::sort(heights_, heights_ + 5);
        for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
        desired_[0] = 1.0;
        desired_[1] = 1.0 + 2.0 * q_;
        desired_[2] = 1.0 + 4.0 * q_;
        desired_[3] = 3.0 + 2.0 * q_;
        desired_[4] = 5.0;
      }
      return;
    }

    // Locate the cell containing x, extending the extremes when needed.
    int k = 0;
    if (x < heights_[0]) {
      heights_[0] = x;
      k = 0;
    } else if (x >= heights_[4]) {
      heights_[4] = x;
      k = 3;
    } else {
      while (k < 3 && x >= heights_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) ++pos_[i];
    desired_[1] += q_ / 2.0;
    desired_[2] += q_;
    desired_[3] += (1.0 + q_) / 2.0;
    desired_[4] += 1.0;

    // Nudge the interior markers toward their desired positions, using a
    // piecewise-parabolic height prediction (linear fallback).
    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - static_cast<double>(pos_[i]);
      if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1) || (d <= -1.0 && pos_[i - 1] - pos_[i] < -1)) {
        const int s = d >= 0.0 ? 1 : -1;
        const double h = parabolic(i, s);
        heights_[i] = (heights_[i - 1] < h && h < heights_[i + 1]) ? h : linear(i, s);
        pos_[i] += s;
      }
    }
  }

  std::size_t count() const { return count_; }

  /// Current estimate; exact (nearest-rank interpolation) below 5 samples.
  double value() const {
    if (count_ == 0) return 0.0;
    if (count_ < 5) {
      double tmp[5];
      std::copy(heights_, heights_ + count_, tmp);
      std::sort(tmp, tmp + count_);
      const double rank = q_ * static_cast<double>(count_ - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const auto hi = std::min(lo + 1, count_ - 1);
      const double frac = rank - static_cast<double>(lo);
      return tmp[lo] * (1.0 - frac) + tmp[hi] * frac;
    }
    return heights_[2];
  }

  void reset() { *this = P2Quantile{q_}; }

 private:
  double parabolic(int i, int s) const {
    const double ds = static_cast<double>(s);
    const double np = static_cast<double>(pos_[i + 1]);
    const double n = static_cast<double>(pos_[i]);
    const double nm = static_cast<double>(pos_[i - 1]);
    return heights_[i] +
           ds / (np - nm) *
               ((n - nm + ds) * (heights_[i + 1] - heights_[i]) / (np - n) +
                (np - n - ds) * (heights_[i] - heights_[i - 1]) / (n - nm));
  }

  double linear(int i, int s) const {
    return heights_[i] + static_cast<double>(s) * (heights_[i + s] - heights_[i]) /
                             static_cast<double>(pos_[i + s] - pos_[i]);
  }

  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {};
  long long pos_[5] = {};
  double desired_[5] = {};
};

/// Stores samples and answers percentile queries; used by benches.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }

  double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  /// p in [0,100]; nearest-rank percentile.
  double percentile(double p) {
    if (data_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(data_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, data_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  double median() { return percentile(50.0); }
  const std::vector<double>& raw() const { return data_; }

 private:
  std::vector<double> data_;
  bool sorted_ = false;
};

}  // namespace dosas
