// stats.hpp — streaming statistics accumulators used by the contention
// estimator (utilization smoothing), the metrics layer, and the benches
// (reporting mean/stddev/percentiles of repeated runs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dosas {

/// Welford streaming mean/variance/min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially-weighted moving average, the smoother the contention
/// estimator applies to noisy utilization probes (paper §III-D: the CE
/// "periodically probes the system state").
class Ewma {
 public:
  /// alpha in (0,1]: weight of the newest sample.
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void add(double x) {
    if (!primed_) {
      value_ = x;
      primed_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool primed() const { return primed_; }
  double value() const { return value_; }
  void reset() { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Stores samples and answers percentile queries; used by benches.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }

  double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  /// p in [0,100]; nearest-rank percentile.
  double percentile(double p) {
    if (data_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(data_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, data_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  double median() { return percentile(50.0); }
  const std::vector<double>& raw() const { return data_; }

 private:
  std::vector<double> data_;
  bool sorted_ = false;
};

}  // namespace dosas
