// logging.hpp — minimal leveled logger.
//
// Single global sink guarded by a mutex; default level is kWarn so tests
// and benches stay quiet. Enable kDebug to trace scheduler decisions.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace dosas {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style log statement; no-op below the global level.
void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define DOSAS_LOG_DEBUG(...) ::dosas::log(::dosas::LogLevel::kDebug, __VA_ARGS__)
#define DOSAS_LOG_INFO(...) ::dosas::log(::dosas::LogLevel::kInfo, __VA_ARGS__)
#define DOSAS_LOG_WARN(...) ::dosas::log(::dosas::LogLevel::kWarn, __VA_ARGS__)
#define DOSAS_LOG_ERROR(...) ::dosas::log(::dosas::LogLevel::kError, __VA_ARGS__)

}  // namespace dosas
