// clock.hpp — the single time seam for the whole runtime.
//
// The DOSAS control loop is all about timing: CE probe ticks, per-request
// deadlines, retry backoff, interrupt/resume latencies. Before this seam
// the real runtime read wall-clock time directly in a dozen files while
// the discrete-event engine in src/sim kept its own virtual Time — two
// parallel time worlds, with hacks like the old TokenBucket::advance()
// leaking between them. Now every component asks the injected Clock:
//
//   * Clock        — now()/sleep()/wait()/timed_wait(); every blocking or
//                    time-reading site in src/, tests/, tools/ and bench/
//                    goes through it (enforced by tools/check_clock.sh);
//   * WallClock    — the production clock: std::chrono::steady_clock with
//                    an epoch at process start, real sleeps, real waits;
//   * VirtualClock — a deterministic-simulation-testing clock à la
//                    FoundationDB: virtual time stands still while any
//                    registered participant thread is runnable and jumps
//                    straight to the earliest armed deadline once every
//                    participant is blocked in a clock wait (the
//                    "quiescence rule"). Seconds of sleeping/backoff/
//                    deadline collapse into microseconds of real time,
//                    and the virtual timeline is a pure function of the
//                    program's blocking structure — replayable.
//
// Participation: under a VirtualClock, every thread that *drives* work
// (test driver threads, pool workers, the rpc watchdog, runner threads)
// must hold a ClockParticipant for its lifetime; threads that block
// outside the clock (e.g. in thread::join) must not be registered while
// they do. ThreadPool workers and the transport watchdog register
// themselves automatically, so a DST harness only registers its own
// driver threads — and must install the VirtualClock (ScopedClockOverride)
// BEFORE constructing the cluster so those runtime threads bind to it.
//
// With zero registered participants a VirtualClock auto-advances on every
// timed wait (single-threaded mode: sleeps become jumps, manual
// advance_by() models idle time) — which is what deleted the old
// TokenBucket::advance() dual path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/units.hpp"

namespace dosas {

/// The injectable time base. All methods are thread-safe. `deadline`
/// arguments are absolute clock time (seconds since the clock's epoch).
class Clock {
 public:
  /// Introspection snapshot (surfaced by `dosas_ctl runtime` for
  /// debugging stuck DST runs).
  struct Status {
    bool virtual_time = false;
    Seconds now = 0.0;
    int participants = 0;    ///< registered driver threads
    int blocked = 0;         ///< participants currently in a clock wait
    int timed_waiters = 0;   ///< armed (unexpired) deadlines
    std::uint64_t advances = 0;      ///< virtual-time jumps so far
    std::uint64_t stalled_checks = 0;  ///< quiescent with nothing armed (deadlock sign)
  };

  using Predicate = std::function<bool()>;

  virtual ~Clock() = default;

  virtual bool is_virtual() const = 0;

  /// Seconds since this clock's epoch.
  virtual Seconds now() const = 0;

  /// Block the calling thread for `d` seconds of clock time.
  virtual void sleep(Seconds d) = 0;

  /// Wait on a caller-owned cv/lock until `pred` holds. Equivalent to
  /// `cv.wait(lock, pred)` but visible to the clock's quiescence
  /// accounting. The caller must hold `lock` and `pred` is evaluated
  /// under it, as with std::condition_variable.
  virtual void wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                    const Predicate& pred) = 0;

  /// Wait until `pred` holds or clock time reaches `deadline` (absolute).
  /// Returns the final `pred()` — false means the deadline expired first.
  virtual bool timed_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                          Seconds deadline, const Predicate& pred) = 0;

  /// Notify waiters blocked through this clock on `cv`. Producers MUST use
  /// these instead of cv.notify_*() for any cv that clock waits block on:
  /// under a VirtualClock the notification edge (not the OS wake-up) is
  /// what moves a waiter out of the quiescence accounting — a plain
  /// notify would leave the signalled thread counted as blocked until the
  /// scheduler runs it, letting virtual time jump a deadline that the
  /// woken thread was about to beat. Under a VirtualClock wake_one wakes
  /// every waiter on `cv` (each re-checks its predicate); under the wall
  /// clock these are plain notify_one/notify_all.
  virtual void wake_all(std::condition_variable& cv) = 0;
  virtual void wake_one(std::condition_variable& cv) = 0;

  /// Register/unregister the calling thread as a DST participant (see the
  /// quiescence rule above). Prefer the ClockParticipant RAII guard.
  virtual void add_participant() = 0;
  virtual void remove_participant() = 0;

  virtual Status status() const = 0;
};

/// Production clock: steady_clock with an epoch fixed at singleton
/// construction (process start, in practice). sleep() and timed_wait()
/// consume real time.
class WallClock final : public Clock {
 public:
  /// The process-wide wall clock (also the default global clock).
  static WallClock& instance();

  bool is_virtual() const override { return false; }
  Seconds now() const override;
  void sleep(Seconds d) override;
  void wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
            const Predicate& pred) override;
  bool timed_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                  Seconds deadline, const Predicate& pred) override;
  void wake_all(std::condition_variable& cv) override;
  void wake_one(std::condition_variable& cv) override;
  void add_participant() override;
  void remove_participant() override;
  Status status() const override;

 private:
  WallClock();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  int participants_ = 0;
  int blocked_ = 0;
  int timed_waiters_ = 0;
};

/// Deterministic virtual-time clock. Starts at now() == 0. Time advances
/// only (a) when every registered participant is blocked in a clock wait
/// and at least one deadline is armed — it jumps to the earliest — or
/// (b) through manual advance_by()/advance_to() (single-threaded tests).
class VirtualClock final : public Clock {
 public:
  VirtualClock() = default;
  ~VirtualClock() override;

  bool is_virtual() const override { return true; }
  Seconds now() const override;
  void sleep(Seconds d) override;
  void wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
            const Predicate& pred) override;
  bool timed_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                  Seconds deadline, const Predicate& pred) override;
  void add_participant() override;
  void remove_participant() override;
  Status status() const override;

  /// Manually move virtual time forward (models idle time in
  /// single-threaded tests). Fires any deadlines the jump crosses.
  void advance_by(Seconds dt);
  void advance_to(Seconds t);

  void wake_all(std::condition_variable& cv) override;
  void wake_one(std::condition_variable& cv) override;

 private:
  struct TimedWaiter {
    std::uint64_t id = 0;
    Seconds deadline = 0.0;
    std::condition_variable* cv = nullptr;
    bool participant = false;  ///< counts toward blocked_ while armed
    bool fired = false;        ///< deadline reached; waiter is runnable
    bool poked = false;        ///< wake_*() delivered; waiter is runnable
  };
  struct UntimedWaiter {
    std::uint64_t id = 0;
    std::condition_variable* cv = nullptr;
    bool participant = false;
    bool poked = false;
  };

  /// Quiescence check; caller holds mu_. If all participants are blocked
  /// and a deadline is armed, jump to the earliest and fire it.
  void check_advance_locked();
  void fire_crossed_locked();

  std::vector<TimedWaiter>::iterator find_timed_locked(std::uint64_t id);
  std::vector<UntimedWaiter>::iterator find_untimed_locked(std::uint64_t id);

  mutable std::mutex mu_;
  Seconds now_ = 0.0;
  int participants_ = 0;
  int blocked_ = 0;  ///< participants inside wait()/timed_wait()/sleep()
  /// Non-participant waiters that have been fired/poked but not yet
  /// rescheduled by the OS. Gates advancement so the clock cannot race
  /// past a wake-up it just delivered.
  int waking_ = 0;
  std::uint64_t next_waiter_id_ = 1;
  std::vector<TimedWaiter> timed_;
  std::vector<UntimedWaiter> untimed_;
  std::uint64_t advances_ = 0;
  std::uint64_t stalled_checks_ = 0;
};

/// The current global clock (WallClock unless overridden). This is the
/// seam every call site uses: `clock().now()`, `clock().sleep(d)`, ...
Clock& clock();

/// The wall clock, regardless of any override — for call sites that
/// measure *physical* machine speed (kernel calibration, bench harnesses,
/// DST real-vs-virtual speedup checks).
Clock& wall_clock();

/// Install `c` as the global clock (nullptr restores the wall clock).
/// Returns the previous override (nullptr if none). Must not be called
/// while runtime threads bound to the old clock are still alive.
Clock* set_global_clock(Clock* c);

/// Scoped clock override: installs in the constructor, restores the
/// previous clock in the destructor. Construct BEFORE the cluster /
/// transport / pools whose threads should bind to the override.
class ScopedClockOverride {
 public:
  explicit ScopedClockOverride(Clock& c) : prev_(set_global_clock(&c)) {}
  ~ScopedClockOverride() { set_global_clock(prev_); }

  ScopedClockOverride(const ScopedClockOverride&) = delete;
  ScopedClockOverride& operator=(const ScopedClockOverride&) = delete;

 private:
  Clock* prev_;
};

/// RAII participant registration for the calling thread, bound to the
/// global clock at construction. Hold for the thread's whole driving
/// lifetime; never hold across blocking that bypasses the clock
/// (thread::join, I/O waits).
///
/// A thread that SPAWNS a participating thread must not leave a window in
/// which the clock cannot see it: between std::thread construction and the
/// new thread's registration, a VirtualClock would count one participant
/// too few and could jump a deadline the new thread was about to arm. The
/// spawner closes the window by calling clock().add_participant() BEFORE
/// constructing the thread, and the spawned thread takes over that count
/// with the kAdoptPreRegistered constructor (its destructor releases it).
class ClockParticipant {
 public:
  enum class Adopt { kPreRegistered };
  static constexpr Adopt kAdoptPreRegistered = Adopt::kPreRegistered;

  ClockParticipant();
  /// Take over a count the spawning thread already registered via
  /// clock().add_participant() — binds the thread-local without
  /// re-incrementing.
  explicit ClockParticipant(Adopt);
  ~ClockParticipant();

  ClockParticipant(const ClockParticipant&) = delete;
  ClockParticipant& operator=(const ClockParticipant&) = delete;

 private:
  Clock* clock_;
  Clock* prev_;
};

}  // namespace dosas
