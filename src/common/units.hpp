// units.hpp — byte-size and rate units used throughout DOSAS.
//
// The paper's cost model (Eq. 1-7) works in data sizes, bandwidths and
// processing rates; keeping these as distinct vocabulary types makes the
// model code read like the equations and prevents MB-vs-bytes mistakes.
#pragma once

#include <cstdint>
#include <string>

namespace dosas {

/// Data size in bytes. All sizes in the code base are carried in bytes;
/// the helpers below construct them from human units.
using Bytes = std::uint64_t;

/// Seconds of (virtual or wall) time, always double precision.
using Seconds = double;

/// Throughput in bytes per second (network bandwidth, kernel processing
/// rate, disk rate). Double so derated/estimated capacities are exact.
using BytesPerSec = double;

inline constexpr Bytes operator""_B(unsigned long long v) { return Bytes{v}; }
inline constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v} << 10; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v} << 20; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v} << 30; }

/// The paper reports sizes in decimal-ish "MB" but measures bandwidth with
/// binary-sized buffers; we standardise on binary units (128 MB == 128 MiB).
inline constexpr Bytes kilobytes(double v) { return static_cast<Bytes>(v * 1024.0); }
inline constexpr Bytes megabytes(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0); }
inline constexpr Bytes gigabytes(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0); }

/// Bandwidths quoted in MB/s (paper: 118 MB/s Ethernet, 860 MB/s SUM rate).
inline constexpr BytesPerSec mb_per_sec(double v) { return v * 1024.0 * 1024.0; }

/// Convert a byte count to MiB as a double (for reporting).
inline constexpr double to_mib(Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0); }
/// Convert a rate to MiB/s as a double (for reporting).
inline constexpr double to_mib_per_sec(BytesPerSec r) { return r / (1024.0 * 1024.0); }

/// Render a byte count with an appropriate unit suffix, e.g. "512.0 MiB".
std::string format_bytes(Bytes b);

/// Render a duration, e.g. "12.34 s" or "8.21 ms".
std::string format_seconds(Seconds s);

}  // namespace dosas
