// status.hpp — lightweight error handling for DOSAS.
//
// The I/O stack (PFS client/server, active runtime) reports recoverable
// failures as values, not exceptions: a storage server refusing an active
// request is normal control flow in this system (it is *the* mechanism the
// paper's scheduler is built on). `Status` carries an error code + message;
// `Result<T>` is a Status-or-value sum type.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dosas {

enum class ErrorCode {
  kOk = 0,
  kNotFound,        // no such file / object / kernel
  kAlreadyExists,   // create of an existing file
  kInvalidArgument, // malformed request
  kOutOfRange,      // read past EOF, bad stripe index
  kUnavailable,     // server refused (overloaded / draining / crashed)
  kRejected,        // active request demoted to normal I/O by policy
  kInterrupted,     // active request interrupted mid-kernel; checkpoint attached
  kCorrupted,       // payload failed an integrity check (e.g. checkpoint checksum)
  kTimedOut,        // request exceeded its deadline
  kCancelled,       // caller withdrew the request before completion
  kInternal,        // invariant violation
};

/// Failures that a retry (possibly after backoff) can plausibly fix:
/// overloaded/crashed-and-restarting servers and expired deadlines. Errors
/// like kNotFound or kInvalidArgument are deterministic and never retried.
inline bool is_transient(ErrorCode c) {
  return c == ErrorCode::kUnavailable || c == ErrorCode::kTimedOut;
}

/// Human-readable name for an error code ("NOT_FOUND", ...).
const char* error_code_name(ErrorCode c);

/// A success/failure outcome with an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: no such file".
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status error(ErrorCode code, std::string message) {
  return Status{code, std::move(message)};
}

/// Either a value of type T or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.is_ok() && "Result constructed from OK status without a value");
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return is_ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

}  // namespace dosas
