#include "common/clock.hpp"

#include <atomic>
#include <chrono>
#include <thread>

namespace dosas {

namespace {

// The clock the calling thread registered as a participant of (via
// ClockParticipant). A VirtualClock consults this to decide whether a
// waiter counts toward its quiescence accounting.
thread_local Clock* t_participant_clock = nullptr;

// Real-time poll bound for VirtualClock waits. Wake-ups normally arrive
// through wake_all()/fire notifications; the poll only bounds the latency
// of a notify that raced past a waiter between its predicate check and
// the underlying cv wait.
constexpr std::chrono::milliseconds kPoll{2};

// Relative waits beyond this many seconds are effectively untimed; they
// would overflow steady_clock arithmetic anyway (~292 years in ns).
constexpr Seconds kForever = 3.0e8;  // ~9.5 years

}  // namespace

// ---------------------------------------------------------------------------
// WallClock

WallClock& WallClock::instance() {
  static WallClock wall;
  return wall;
}

WallClock::WallClock() : epoch_(std::chrono::steady_clock::now()) {}

Seconds WallClock::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void WallClock::sleep(Seconds d) {
  if (d <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(d));
}

void WallClock::wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                     const Predicate& pred) {
  {
    std::lock_guard g(mu_);
    ++blocked_;
  }
  cv.wait(lock, pred);
  {
    std::lock_guard g(mu_);
    --blocked_;
  }
}

bool WallClock::timed_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                           Seconds deadline, const Predicate& pred) {
  if (deadline - now() > kForever) {
    wait(cv, lock, pred);
    return true;
  }
  const auto when = epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(deadline));
  {
    std::lock_guard g(mu_);
    ++blocked_;
    ++timed_waiters_;
  }
  const bool ok = cv.wait_until(lock, when, pred);
  {
    std::lock_guard g(mu_);
    --blocked_;
    --timed_waiters_;
  }
  return ok;
}

void WallClock::wake_all(std::condition_variable& cv) { cv.notify_all(); }

void WallClock::wake_one(std::condition_variable& cv) { cv.notify_one(); }

void WallClock::add_participant() {
  std::lock_guard g(mu_);
  ++participants_;
}

void WallClock::remove_participant() {
  std::lock_guard g(mu_);
  --participants_;
}

Clock::Status WallClock::status() const {
  std::lock_guard g(mu_);
  Status s;
  s.virtual_time = false;
  s.now = std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  s.participants = participants_;
  s.blocked = blocked_;
  s.timed_waiters = timed_waiters_;
  return s;
}

// ---------------------------------------------------------------------------
// VirtualClock
//
// Accounting invariants (all under mu_):
//   * A waiter entry is COUNTED while armed: participant entries hold one
//     unit of blocked_, non-participant entries hold nothing.
//   * fire (deadline crossed) or poke (wake_* delivered) moves an entry
//     to RUNNABLE: participant entries release their blocked_ unit,
//     non-participant entries take one unit of waking_. Either way the
//     quiescence condition (blocked_ == participants_ && waking_ == 0)
//     turns false until the woken thread actually runs.
//   * A spuriously poked waiter whose predicate is still false re-arms
//     (reverse transition) and re-checks advancement before re-waiting.
//   * The owning thread is the only one that erases its entry.

VirtualClock::~VirtualClock() = default;

Seconds VirtualClock::now() const {
  std::lock_guard g(mu_);
  return now_;
}

void VirtualClock::sleep(Seconds d) {
  if (d <= 0.0) return;
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock lock(m);
  Seconds deadline;
  {
    std::lock_guard g(mu_);
    deadline = now_ + d;
  }
  timed_wait(cv, lock, deadline, [] { return false; });
}

std::vector<VirtualClock::TimedWaiter>::iterator VirtualClock::find_timed_locked(
    std::uint64_t id) {
  auto it = timed_.begin();
  while (it != timed_.end() && it->id != id) ++it;
  return it;
}

std::vector<VirtualClock::UntimedWaiter>::iterator VirtualClock::find_untimed_locked(
    std::uint64_t id) {
  auto it = untimed_.begin();
  while (it != untimed_.end() && it->id != id) ++it;
  return it;
}

void VirtualClock::wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                        const Predicate& pred) {
  if (pred()) return;
  const bool participant = (t_participant_clock == this);
  std::uint64_t id;
  {
    std::lock_guard g(mu_);
    id = next_waiter_id_++;
    untimed_.push_back(UntimedWaiter{id, &cv, participant, /*poked=*/false});
    if (participant) {
      ++blocked_;
      check_advance_locked();
    }
  }
  for (;;) {
    cv.wait_for(lock, kPoll);
    if (pred()) break;
    std::lock_guard g(mu_);
    auto it = find_untimed_locked(id);
    if (it->poked) {  // over-broad or spurious wake: re-arm
      it->poked = false;
      if (it->participant) {
        ++blocked_;
        check_advance_locked();
      } else {
        --waking_;
      }
    }
  }
  {
    std::lock_guard g(mu_);
    auto it = find_untimed_locked(id);
    if (it->poked) {
      if (!it->participant) --waking_;
    } else if (it->participant) {
      --blocked_;
    }
    untimed_.erase(it);
  }
}

bool VirtualClock::timed_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                              Seconds deadline, const Predicate& pred) {
  if (pred()) return true;
  const bool participant = (t_participant_clock == this);
  std::uint64_t id;
  {
    std::lock_guard g(mu_);
    id = next_waiter_id_++;
    const bool expired = now_ >= deadline;
    timed_.push_back(TimedWaiter{id, deadline, &cv, participant, /*fired=*/expired,
                                 /*poked=*/false});
    if (expired) {
      if (!participant) ++waking_;  // erased below without ever blocking
    } else {
      if (participant) ++blocked_;
      check_advance_locked();
    }
  }
  for (;;) {
    {
      std::lock_guard g(mu_);
      auto it = find_timed_locked(id);
      if (it->fired) {
        if (!it->participant && !it->poked) --waking_;
        timed_.erase(it);
        break;  // deadline reached (possibly instantly, via quiescent jump)
      }
    }
    cv.wait_for(lock, kPoll);
    if (pred()) {
      std::lock_guard g(mu_);
      auto it = find_timed_locked(id);
      if (it->fired || it->poked) {
        if (!it->participant) --waking_;
      } else if (it->participant) {
        --blocked_;
      }
      timed_.erase(it);
      return true;
    }
    {
      std::lock_guard g(mu_);
      auto it = find_timed_locked(id);
      if (it->poked && !it->fired) {  // spurious poke: re-arm
        it->poked = false;
        if (it->participant) {
          ++blocked_;
          check_advance_locked();
        } else {
          --waking_;
        }
      }
    }
  }
  return pred();
}

void VirtualClock::wake_all(std::condition_variable& cv) {
  {
    std::lock_guard g(mu_);
    for (auto& w : timed_) {
      if (w.cv == &cv && !w.fired && !w.poked) {
        w.poked = true;
        if (w.participant) {
          --blocked_;
        } else {
          ++waking_;
        }
      }
    }
    for (auto& w : untimed_) {
      if (w.cv == &cv && !w.poked) {
        w.poked = true;
        if (w.participant) {
          --blocked_;
        } else {
          ++waking_;
        }
      }
    }
  }
  cv.notify_all();
}

void VirtualClock::wake_one(std::condition_variable& cv) {
  // notify_one picks an unspecified waiter, which the quiescence
  // accounting cannot model; wake everyone and let predicates sort it
  // out (spuriously woken waiters re-arm).
  wake_all(cv);
}

void VirtualClock::add_participant() {
  std::lock_guard g(mu_);
  ++participants_;
}

void VirtualClock::remove_participant() {
  std::lock_guard g(mu_);
  --participants_;
  // The departing thread may have been the only runnable participant.
  check_advance_locked();
}

void VirtualClock::advance_by(Seconds dt) {
  if (dt < 0.0) dt = 0.0;
  std::lock_guard g(mu_);
  now_ += dt;
  ++advances_;
  fire_crossed_locked();
}

void VirtualClock::advance_to(Seconds t) {
  std::lock_guard g(mu_);
  if (t > now_) now_ = t;
  ++advances_;
  fire_crossed_locked();
}

void VirtualClock::check_advance_locked() {
  if (blocked_ < participants_ || waking_ > 0) return;
  Seconds earliest = 0.0;
  bool armed = false;
  for (const auto& w : timed_) {
    if (!w.fired && (!armed || w.deadline < earliest)) {
      earliest = w.deadline;
      armed = true;
    }
  }
  if (!armed) {
    // Quiescent with nothing to wait for: either the program is done
    // (threads idling in untimed waits) or it deadlocked on a
    // non-clock event. Surfaced via status().stalled_checks.
    ++stalled_checks_;
    return;
  }
  if (earliest > now_) now_ = earliest;
  ++advances_;
  fire_crossed_locked();
}

void VirtualClock::fire_crossed_locked() {
  for (auto& w : timed_) {
    if (w.fired || w.deadline > now_) continue;
    w.fired = true;
    if (!w.poked) {
      if (w.participant) {
        --blocked_;
      } else {
        ++waking_;
      }
    }
    // Notifying without the waiter's mutex is safe: fired waiters also
    // poll, so a missed notify costs at most one kPoll interval.
    w.cv->notify_all();
  }
}

Clock::Status VirtualClock::status() const {
  std::lock_guard g(mu_);
  Status s;
  s.virtual_time = true;
  s.now = now_;
  s.participants = participants_;
  s.blocked = blocked_;
  for (const auto& w : timed_) {
    if (!w.fired) ++s.timed_waiters;
  }
  s.advances = advances_;
  s.stalled_checks = stalled_checks_;
  return s;
}

// ---------------------------------------------------------------------------
// Global seam

namespace {
std::atomic<Clock*> g_clock{nullptr};
}  // namespace

Clock& clock() {
  Clock* c = g_clock.load(std::memory_order_acquire);
  return c != nullptr ? *c : WallClock::instance();
}

Clock& wall_clock() { return WallClock::instance(); }

Clock* set_global_clock(Clock* c) {
  return g_clock.exchange(c, std::memory_order_acq_rel);
}

ClockParticipant::ClockParticipant() : clock_(&dosas::clock()), prev_(t_participant_clock) {
  t_participant_clock = clock_;
  clock_->add_participant();
}

ClockParticipant::ClockParticipant(Adopt)
    : clock_(&dosas::clock()), prev_(t_participant_clock) {
  t_participant_clock = clock_;
  // participants_ was already counted by the spawning thread (see the
  // class comment), so the clock never advanced in the window between
  // thread creation and this adoption.
}

ClockParticipant::~ClockParticipant() {
  clock_->remove_participant();
  t_participant_clock = prev_;
}

}  // namespace dosas
