// token_bucket.hpp — byte-rate limiter for the real runtime's network model.
//
// When integration tests/examples want the in-process cluster to *exhibit*
// the paper's bandwidth ceiling (118 MB/s shared 1 GbE) rather than just
// account for it, each transfer acquires bytes from a shared TokenBucket.
// Virtual mode accrues the wait analytically (no sleeping) and reports it;
// real mode actually blocks, so wall-clock measurements show the contention.
//
// Clock discipline: virtual mode runs entirely on an injectable virtual
// clock that only advance() moves. It used to refill from wall-clock
// Clock::now(), so real time elapsing between simulated transfers silently
// granted free tokens and under-reported contention — back-to-back virtual
// acquires now accrue the full deficit regardless of how long the caller
// computed in between.
#pragma once

#include <chrono>
#include <mutex>
#include <thread>

#include "common/units.hpp"

namespace dosas {

class TokenBucket {
 public:
  enum class Mode {
    kVirtual,  // account delay, never sleep (fast; used by tests)
    kReal,     // sleep to enforce the rate in wall-clock time
  };

  /// rate: sustained bytes/sec. burst: bucket depth in bytes (how much can
  /// pass instantaneously). rate <= 0 disables limiting.
  TokenBucket(BytesPerSec rate, Bytes burst, Mode mode = Mode::kVirtual)
      : rate_(rate), burst_(static_cast<double>(burst)), mode_(mode),
        tokens_(static_cast<double>(burst)),
        last_(Clock::now()) {}

  /// Acquire `n` bytes of budget. Returns the delay this transfer incurred
  /// (virtual mode) or actually slept (real mode), in seconds.
  Seconds acquire(Bytes n) {
    if (rate_ <= 0.0) return 0.0;
    Seconds wait = 0.0;
    {
      std::lock_guard lock(mu_);
      refill_locked();
      tokens_ -= static_cast<double>(n);
      if (tokens_ < 0.0) {
        wait = -tokens_ / rate_;
        // Model the deficit as time the caller spends waiting; the bucket
        // itself advances so concurrent acquirers queue behind this one.
        virtual_debt_ += wait;
        tokens_ = 0.0;
        if (mode_ == Mode::kVirtual) {
          vlast_ = vnow_ + wait;  // booked into the virtual future
        } else {
          last_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(wait));
        }
      }
    }
    if (mode_ == Mode::kReal && wait > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    return wait;
  }

  /// Advance the virtual clock by `dt` seconds: the only way virtual mode
  /// earns tokens back. Tests and simulators call this to model idle link
  /// time. No-op in real mode (wall clock is the clock there).
  void advance(Seconds dt) {
    if (dt <= 0.0) return;
    std::lock_guard lock(mu_);
    vnow_ += dt;
  }

  /// Total virtual waiting accrued so far (both modes).
  Seconds accrued_delay() const {
    std::lock_guard lock(mu_);
    return virtual_debt_;
  }

  BytesPerSec rate() const { return rate_; }
  Mode mode() const { return mode_; }

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked() {
    double dt = 0.0;
    if (mode_ == Mode::kVirtual) {
      if (vnow_ <= vlast_) return;
      dt = vnow_ - vlast_;
      vlast_ = vnow_;
    } else {
      const auto now = Clock::now();
      if (now <= last_) return;
      dt = std::chrono::duration<double>(now - last_).count();
      last_ = now;
    }
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
  }

  const BytesPerSec rate_;
  const double burst_;
  const Mode mode_;

  mutable std::mutex mu_;
  double tokens_;
  Clock::time_point last_;   // real mode: last refill instant
  Seconds vnow_ = 0.0;       // virtual mode: injectable clock
  Seconds vlast_ = 0.0;      // virtual mode: last refill instant
  Seconds virtual_debt_ = 0.0;
};

}  // namespace dosas
