// token_bucket.hpp — byte-rate limiter for the real runtime's network model.
//
// When integration tests/examples want the in-process cluster to *exhibit*
// the paper's bandwidth ceiling (118 MB/s shared 1 GbE) rather than just
// account for it, each transfer acquires bytes from a shared TokenBucket.
// Virtual mode accrues the wait analytically (no sleeping) and reports it;
// real mode actually blocks, so clock-time measurements show the contention.
//
// Clock discipline: virtual mode never earns tokens from elapsing time at
// all — it is pure debt accounting over the byte stream (the bucket starts
// with `burst` bytes of credit and every byte after that costs 1/rate
// seconds of reported delay). That keeps analytic contention numbers
// independent of how long the caller computed between acquires. Real mode
// refills from the injected Clock seam (clock.hpp) and sleeps through it,
// so under a VirtualClock "real" rate enforcement runs in deterministic
// virtual time — which is what replaced the old advance() escape hatch.
#pragma once

#include <algorithm>
#include <mutex>

#include "common/clock.hpp"
#include "common/units.hpp"

namespace dosas {

class TokenBucket {
 public:
  enum class Mode {
    kVirtual,  // account delay analytically, never sleep (fast; used by tests)
    kReal,     // sleep on the injected clock to enforce the rate
  };

  /// rate: sustained bytes/sec. burst: bucket depth in bytes (how much can
  /// pass instantaneously). rate <= 0 disables limiting.
  TokenBucket(BytesPerSec rate, Bytes burst, Mode mode = Mode::kVirtual)
      : rate_(rate), burst_(static_cast<double>(burst)), mode_(mode),
        tokens_(static_cast<double>(burst)),
        last_(mode == Mode::kReal ? clock().now() : 0.0) {}

  /// Acquire `n` bytes of budget. Returns the delay this transfer incurred
  /// (virtual mode) or actually slept (real mode), in seconds.
  Seconds acquire(Bytes n) {
    if (rate_ <= 0.0) return 0.0;
    Seconds wait = 0.0;
    {
      std::lock_guard lock(mu_);
      if (mode_ == Mode::kReal) refill_locked();
      tokens_ -= static_cast<double>(n);
      if (tokens_ < 0.0) {
        wait = -tokens_ / rate_;
        // Model the deficit as time the caller spends waiting; the bucket
        // itself advances so concurrent acquirers queue behind this one.
        debt_ += wait;
        tokens_ = 0.0;
        if (mode_ == Mode::kReal) last_ = clock().now() + wait;
      }
    }
    if (mode_ == Mode::kReal && wait > 0.0) clock().sleep(wait);
    return wait;
  }

  /// Total waiting accrued so far (both modes).
  Seconds accrued_delay() const {
    std::lock_guard lock(mu_);
    return debt_;
  }

  BytesPerSec rate() const { return rate_; }
  Mode mode() const { return mode_; }

 private:
  void refill_locked() {
    const Seconds now = clock().now();
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
    last_ = now;
  }

  const BytesPerSec rate_;
  const double burst_;
  const Mode mode_;

  mutable std::mutex mu_;
  double tokens_;
  Seconds last_;  // real mode: last refill instant (clock time); booked into
                  // the future while a deficit is being slept off
  Seconds debt_ = 0.0;
};

}  // namespace dosas
