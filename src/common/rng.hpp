// rng.hpp — deterministic random number generation.
//
// Every stochastic element of the reproduction (bandwidth jitter, workload
// generation, property-test inputs) draws from a seeded SplitMix64/xoshiro
// generator so experiments are exactly repeatable. Never use global RNG
// state: pass an Rng by reference (CP.3 — no shared mutable statics).
#pragma once

#include <cstdint>
#include <limits>

namespace dosas {

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator,
/// so it can also drive <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p).
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-entity RNGs).
  Rng fork() { return Rng{(*this)()}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4]{};
};

}  // namespace dosas
