// ring.hpp — bounded lock-free MPMC ring with a Clock-seam parking fallback.
//
// DOSAS's argument is about where *storage* contention lives; the runtime
// must not manufacture its own. Channel (channel.hpp) takes a mutex on
// every hop, so the storage-server dispatch queue and the scale-harness
// completer queues serialized on locks the paper never modeled. Ring is
// the lock-free replacement for those hot hops:
//
//   * fast path: a Vyukov-style bounded MPMC ring — per-slot sequence
//     numbers, one CAS on enqueue_pos_/dequeue_pos_ per operation, no
//     mutex, no syscall;
//   * slow path: after a bounded spin, producers/consumers park on a
//     condition variable *through the Clock seam* (clock.hpp), so a worker
//     blocked in receive() counts as quiescent under a VirtualClock and
//     DST bit-identity survives the swap;
//   * close(): same contract as Channel — sends fail after close, and any
//     send() that returned true is guaranteed to be drained by receivers
//     (a producers-in-flight count lets receivers distinguish "drained"
//     from "a producer is mid-commit");
//   * SPSC specialization: Ring<T, RingKind::kSpsc> (alias SpscRing<T>)
//     drops the cursor CAS entirely — with one producer owning
//     enqueue_pos_ and one consumer owning dequeue_pos_, a plain store
//     claims the slot. Same parking, same close-then-drain contract,
//     same stats shape; the CAS-retry counters simply stay at zero. Use
//     it ONLY where single-producer/single-consumer is provable (e.g.
//     the scale harness's per-completer queues: one submitter, one
//     completer each).
//
// Instrumented per the temporal-slab contention template (SNIPPETS.md
// Snippet 1): CAS retry counters with attempt denominators, and a
// trylock-probe on the wake path that splits lock acquisitions into
// fast vs contended. Stats are exposed as a snapshot struct — they are
// schedule-dependent, so they must NOT auto-flow into the metrics
// registry (DST fingerprints compare the full metrics text); callers
// publish them explicitly (obs/contention.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <utility>

#include "common/clock.hpp"
#include "common/queue_poll.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence (GCC warns
// [-Wtsan] and the runtime ignores it), so the Dekker wake protocol
// below would look unsynchronized to it. Under TSan we substitute a
// seq_cst RMW on a shared dummy atomic: two RMWs on one location are
// ordered by its modification order, and the later one acquires every
// write that happened before the earlier one — the same pairing the
// fence provides, expressed in operations the sanitizer models.
#if defined(__SANITIZE_THREAD__)
#define DOSAS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DOSAS_TSAN 1
#endif
#endif
#ifndef DOSAS_TSAN
#define DOSAS_TSAN 0
#endif

namespace dosas {

/// Snapshot of a Ring's contention counters. `*_attempts` are the
/// denominators for the CAS retry rates; `lock_fast`/`lock_contended` is
/// the trylock probe on the parking wake path; `*_parks` count how often
/// the lock-free fast path gave up and blocked through the Clock seam.
struct RingStats {
  std::uint64_t push_attempts = 0;
  std::uint64_t push_cas_retries = 0;
  std::uint64_t pop_attempts = 0;
  std::uint64_t pop_cas_retries = 0;
  std::uint64_t lock_fast = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t producer_parks = 0;
  std::uint64_t consumer_parks = 0;

  RingStats& operator+=(const RingStats& o) {
    push_attempts += o.push_attempts;
    push_cas_retries += o.push_cas_retries;
    pop_attempts += o.pop_attempts;
    pop_cas_retries += o.pop_cas_retries;
    lock_fast += o.lock_fast;
    lock_contended += o.lock_contended;
    producer_parks += o.producer_parks;
    consumer_parks += o.consumer_parks;
    return *this;
  }
};

/// Compile-time concurrency policy for Ring. kMpmc (default) CASes the
/// enqueue/dequeue cursors; kSpsc assumes exactly one producer thread and
/// exactly one consumer thread and claims slots with plain stores. The
/// parking, close-then-drain, and poll contracts are identical — kSpsc is
/// purely a fast path for queues whose SPSC shape is provable.
enum class RingKind : std::uint8_t { kMpmc, kSpsc };

template <typename T, RingKind K = RingKind::kMpmc>
class Ring {
 public:
  /// Capacity is rounded up to a power of two (minimum 2). A Ring is
  /// always bounded; pick the capacity so steady-state sends never park
  /// (an unbounded queue just hides the backpressure somewhere worse).
  explicit Ring(std::size_t capacity)
      : mask_(round_up_pow2(capacity < 2 ? 2 : capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  ~Ring() {
    // Destroy any items still committed in slots (no concurrency here).
    std::optional<T> out;
    while (pop_slot(out) == PopResult::kItem) out.reset();
  }

  /// Blocks while the ring is full. Returns false if the ring was closed
  /// (the item is dropped). A true return guarantees the item will be
  /// drained by some receiver before receivers see kClosed/nullopt.
  bool send(T item) {
    producers_inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (closed_.load(std::memory_order_seq_cst)) {
      exit_producer_on_close();
      return false;
    }
    bool sent = false;
    switch (spin_push(item)) {
      case PushResult::kOk:
        sent = true;
        break;
      case PushResult::kClosed:
        exit_producer_on_close();
        return false;
      case PushResult::kFull: {
        std::unique_lock lock(full_mu_);
        producer_parks_.fetch_add(1, std::memory_order_relaxed);
        waiting_producers_.fetch_add(1, std::memory_order_relaxed);
        dekker_fence();
        clock().wait(not_full_, lock, [&] {
          switch (push_slot(item)) {
            case PushResult::kOk:
              sent = true;
              return true;
            case PushResult::kClosed:
              return true;
            case PushResult::kFull:
              return false;
          }
          return false;
        });
        waiting_producers_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
    }
    if (!sent) {
      exit_producer_on_close();
      return false;
    }
    producers_inflight_.fetch_sub(1, std::memory_order_release);
    wake_consumers();
    return true;
  }

  /// Non-blocking send; returns false if full or closed.
  bool try_send(T item) {
    producers_inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (closed_.load(std::memory_order_seq_cst)) {
      exit_producer_on_close();
      return false;
    }
    const bool ok = push_slot(item) == PushResult::kOk;
    if (!ok) {
      exit_producer_on_close();
      return false;
    }
    producers_inflight_.fetch_sub(1, std::memory_order_release);
    wake_consumers();
    return true;
  }

  /// Blocks until an item is available or the ring is closed *and*
  /// drained; nullopt means closed-and-empty (same contract as Channel).
  std::optional<T> receive() {
    std::optional<T> out;
    for (int i = 0; i < kSpins; ++i) {
      const QueuePoll r = poll_once(out);
      if (r == QueuePoll::kItem) {
        wake_producers();
        return out;
      }
      if (r == QueuePoll::kClosed) return std::nullopt;
      cpu_relax();
    }
    QueuePoll state = QueuePoll::kEmpty;
    {
      std::unique_lock lock(empty_mu_);
      consumer_parks_.fetch_add(1, std::memory_order_relaxed);
      waiting_consumers_.fetch_add(1, std::memory_order_relaxed);
      dekker_fence();
      clock().wait(not_empty_, lock, [&] {
        state = poll_once(out);
        return state != QueuePoll::kEmpty;
      });
      waiting_consumers_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (state == QueuePoll::kClosed) return std::nullopt;
    wake_producers();
    return out;
  }

  /// Non-blocking tri-state receive (same contract as Channel::poll):
  /// kItem fills `out`; kEmpty means open-but-nothing-now (including a
  /// producer mid-commit); kClosed means closed and fully drained.
  QueuePoll poll(std::optional<T>& out) {
    out.reset();
    const QueuePoll r = poll_once(out);
    if (r == QueuePoll::kItem) wake_producers();
    return r;
  }

  /// Non-blocking receive; nullopt conflates empty with closed (use
  /// poll() in loops that must terminate).
  std::optional<T> try_receive() {
    std::optional<T> out;
    poll(out);
    return out;
  }

  /// After close(), sends fail and receivers drain remaining items then
  /// get nullopt. Idempotent.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    lock_bridge(empty_mu_);
    clock().wake_all(not_empty_);
    lock_bridge(full_mu_);
    clock().wake_all(not_full_);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (racy by nature; exact when quiescent).
  std::size_t size() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq >= deq ? enq - deq : 0;
  }

  std::size_t capacity() const { return mask_ + 1; }

  RingStats stats() const {
    RingStats s;
    s.push_attempts = push_attempts_.load(std::memory_order_relaxed);
    s.push_cas_retries = push_cas_retries_.load(std::memory_order_relaxed);
    s.pop_attempts = pop_attempts_.load(std::memory_order_relaxed);
    s.pop_cas_retries = pop_cas_retries_.load(std::memory_order_relaxed);
    s.lock_fast = lock_fast_.load(std::memory_order_relaxed);
    s.lock_contended = lock_contended_.load(std::memory_order_relaxed);
    s.producer_parks = producer_parks_.load(std::memory_order_relaxed);
    s.consumer_parks = consumer_parks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq;
    alignas(T) unsigned char storage[sizeof(T)];
    T* ptr() { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  enum class PushResult { kOk, kFull, kClosed };
  enum class PopResult { kItem, kEmpty, kPending };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  /// One lock-free push attempt. kFull is a stable verdict for the
  /// current instant; kClosed is only reported when observed on entry.
  PushResult push_slot(T& item) {
    if (closed_.load(std::memory_order_seq_cst)) return PushResult::kClosed;
    push_attempts_.fetch_add(1, std::memory_order_relaxed);
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        bool claimed;
        if constexpr (K == RingKind::kSpsc) {
          // Single producer: nobody else can claim this slot, so a plain
          // store advances the cursor (still atomic — the consumer reads
          // it in pop_slot's empty check and size()).
          enqueue_pos_.store(pos + 1, std::memory_order_relaxed);
          claimed = true;
        } else {
          claimed = enqueue_pos_.compare_exchange_weak(
              pos, pos + 1, std::memory_order_relaxed);
        }
        if (claimed) {
          ::new (static_cast<void*>(slot.storage)) T(std::move(item));
          slot.seq.store(pos + 1, std::memory_order_release);
          return PushResult::kOk;
        }
        push_cas_retries_.fetch_add(1, std::memory_order_relaxed);
      } else if (dif < 0) {
        return PushResult::kFull;
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// One lock-free pop attempt. kEmpty means *no committed or claimed
  /// item exists* (enqueue_pos_ == dequeue_pos_); kPending means a
  /// producer has claimed a slot but not yet published it.
  PopResult pop_slot(std::optional<T>& out) {
    pop_attempts_.fetch_add(1, std::memory_order_relaxed);
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        bool claimed;
        if constexpr (K == RingKind::kSpsc) {
          dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
          claimed = true;
        } else {
          claimed = dequeue_pos_.compare_exchange_weak(
              pos, pos + 1, std::memory_order_relaxed);
        }
        if (claimed) {
          out.emplace(std::move(*slot.ptr()));
          slot.ptr()->~T();
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return PopResult::kItem;
        }
        pop_cas_retries_.fetch_add(1, std::memory_order_relaxed);
      } else if (dif < 0) {
        if (enqueue_pos_.load(std::memory_order_acquire) == pos) {
          return PopResult::kEmpty;
        }
        return PopResult::kPending;
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  PushResult spin_push(T& item) {
    for (int i = 0; i < kSpins; ++i) {
      const PushResult r = push_slot(item);
      if (r != PushResult::kFull) return r;
      cpu_relax();
    }
    return PushResult::kFull;
  }

  /// One tri-state attempt: kItem fills `out`; kClosed is only reported
  /// when the ring is closed, no producer is between its entry check and
  /// its commit, and a *final* pop (ordered after the inflight read —
  /// the acquire load pairs with the release decrement that follows a
  /// commit) still sees nothing. That ordering is what guarantees every
  /// send() that returned true is drained before anyone sees kClosed.
  QueuePoll poll_once(std::optional<T>& out) {
    switch (pop_slot(out)) {
      case PopResult::kItem:
        return QueuePoll::kItem;
      case PopResult::kPending:
        return QueuePoll::kEmpty;
      case PopResult::kEmpty:
        break;
    }
    if (!closed_.load(std::memory_order_seq_cst)) return QueuePoll::kEmpty;
    if (producers_inflight_.load(std::memory_order_acquire) != 0) {
      return QueuePoll::kEmpty;
    }
    switch (pop_slot(out)) {
      case PopResult::kItem:
        return QueuePoll::kItem;
      case PopResult::kPending:
        return QueuePoll::kEmpty;
      case PopResult::kEmpty:
        return QueuePoll::kClosed;
    }
    return QueuePoll::kEmpty;
  }

  /// Producer observed closed after registering in-flight: deregister
  /// and wake consumers so their drained_closed() re-check can pass.
  void exit_producer_on_close() {
    producers_inflight_.fetch_sub(1, std::memory_order_release);
    dekker_fence();
    if (waiting_consumers_.load(std::memory_order_relaxed) == 0) return;
    lock_bridge(empty_mu_);
    clock().wake_all(not_empty_);
  }

  /// Dekker-style wake: the seq-store that published the item (or the
  /// pop that freed a slot) is ordered before the waiting-count read by
  /// a seq_cst fence; the waiter orders its count increment before its
  /// failed pop/push attempt with the matching fence. The lock bridge
  /// closes the window between a waiter's failed predicate and its
  /// actual block on the condition variable.
  void wake_consumers() {
    dekker_fence();
    if (waiting_consumers_.load(std::memory_order_relaxed) == 0) return;
    lock_bridge(empty_mu_);
    clock().wake_one(not_empty_);
  }

  void wake_producers() {
    dekker_fence();
    if (waiting_producers_.load(std::memory_order_relaxed) == 0) return;
    lock_bridge(full_mu_);
    clock().wake_one(not_full_);
  }

  /// The Dekker pairing point: a seq_cst fence normally; under TSan a
  /// seq_cst RMW on `fence_sync_` (see the DOSAS_TSAN note at the top
  /// of this header). Every waiter/waker pair goes through this same
  /// member, so the RMW chain orders them exactly as the fence would.
  void dekker_fence() {
#if DOSAS_TSAN
    fence_sync_.fetch_add(1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

  /// Acquire-and-release the parking mutex (never held across the wake
  /// itself). The trylock probe is the Snippet-1 contention split: a
  /// failed try_lock means a waiter was inside its predicate window.
  void lock_bridge(std::mutex& mu) {
    if (mu.try_lock()) {
      lock_fast_.fetch_add(1, std::memory_order_relaxed);
    } else {
      lock_contended_.fetch_add(1, std::memory_order_relaxed);
      mu.lock();
    }
    mu.unlock();
  }

  static constexpr int kSpins = 64;

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};

  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> producers_inflight_{0};

  // Parking seam: producers park on full_mu_/not_full_, consumers on
  // empty_mu_/not_empty_ — separate domains so a parked producer whose
  // predicate succeeds never needs its own mutex to wake the other side.
  std::mutex empty_mu_;
  std::mutex full_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<std::int32_t> waiting_consumers_{0};
  std::atomic<std::int32_t> waiting_producers_{0};

  // Dekker pairing point under TSan (see dekker_fence()); unused — at
  // zero runtime cost — in normal builds, which use the plain fence.
  std::atomic<std::uint32_t> fence_sync_{0};

  // Contention counters (relaxed; snapshot via stats()).
  std::atomic<std::uint64_t> push_attempts_{0};
  std::atomic<std::uint64_t> push_cas_retries_{0};
  std::atomic<std::uint64_t> pop_attempts_{0};
  std::atomic<std::uint64_t> pop_cas_retries_{0};
  std::atomic<std::uint64_t> lock_fast_{0};
  std::atomic<std::uint64_t> lock_contended_{0};
  std::atomic<std::uint64_t> producer_parks_{0};
  std::atomic<std::uint64_t> consumer_parks_{0};
};

/// The single-producer/single-consumer specialization. Same API and
/// contracts as Ring<T>; CAS-free cursor claims (see RingKind::kSpsc).
template <typename T>
using SpscRing = Ring<T, RingKind::kSpsc>;

}  // namespace dosas
