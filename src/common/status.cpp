#include "common/status.hpp"

namespace dosas {

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kRejected: return "REJECTED";
    case ErrorCode::kInterrupted: return "INTERRUPTED";
    case ErrorCode::kCorrupted: return "CORRUPTED";
    case ErrorCode::kTimedOut: return "TIMED_OUT";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = error_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace dosas
