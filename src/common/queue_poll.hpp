// queue_poll.hpp — the tri-state poll protocol shared by every in-process
// queue (Ring, Channel).
//
// Extracted from channel.hpp so the lock-free Ring does not have to pull
// in the mutex Channel just to name the enum: Ring is the default queue
// for new code (see channel.hpp's deprecation note), and its header should
// not depend on the thing it replaced.
#pragma once

#include <cstdint>

namespace dosas {

/// Tri-state result of a non-blocking queue poll. Distinguishes "nothing
/// right now" from "closed and fully drained" so pollers can terminate —
/// a plain optional cannot (nullopt is ambiguous between the two).
enum class QueuePoll : std::uint8_t {
  kItem,    // out-param holds a dequeued item
  kEmpty,   // nothing available, but the queue is still open
  kClosed,  // closed and drained: no item will ever arrive again
};

}  // namespace dosas
