// thread_pool.hpp — fixed-size worker pool.
//
// Storage servers in the real runtime run their kernels on a pool sized to
// the node's core count (2 in the paper's testbed), which is what makes the
// contention the paper studies *real* in our integration tests: queueing a
// fifth kernel behind two busy cores is observable behaviour, not a model.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/channel.hpp"

namespace dosas {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  /// Enqueue work. Returns false after shutdown().
  bool submit(std::function<void()> task) { return tasks_.send(std::move(task)); }

  std::size_t thread_count() const { return workers_.size(); }

  /// Stop accepting work, drain the queue, join all workers. Idempotent.
  void shutdown() {
    tasks_.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  void run() {
    while (auto task = tasks_.receive()) {
      (*task)();
    }
  }

  Channel<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace dosas
