// thread_pool.hpp — fixed-size worker pool.
//
// Storage servers in the real runtime run their kernels on a pool sized to
// the node's core count (2 in the paper's testbed), which is what makes the
// contention the paper studies *real* in our integration tests: queueing a
// fifth kernel behind two busy cores is observable behaviour, not a model.
//
// Workers never die: a task that throws is caught, counted, and reported
// through the optional error callback. Before this, one throwing kernel
// would propagate out of the worker thread and std::terminate the whole
// storage node — the opposite of the graceful degradation the paper's
// interrupt/demote machinery promises.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/ring.hpp"

namespace dosas {

class ThreadPool {
 public:
  /// Invoked (from the worker thread) with the exception a task leaked.
  /// Must not throw. May be null.
  using ErrorCallback = std::function<void(std::exception_ptr)>;

  /// `queue_capacity` bounds the dispatch ring; a submit against a full
  /// ring blocks (through the Clock seam) until a worker drains a slot —
  /// real backpressure instead of an unbounded queue.
  explicit ThreadPool(std::size_t threads, ErrorCallback on_error = nullptr,
                      std::size_t queue_capacity = 4096)
      : tasks_(queue_capacity), on_error_(std::move(on_error)) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      // Pre-register each worker's clock participation from this thread
      // so a VirtualClock never advances in the spawn window (see
      // ClockParticipant); run() adopts the count.
      clock().add_participant();
      workers_.emplace_back([this] { run(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  /// Enqueue work. Returns false after shutdown() — callers that ignore
  /// this leave their request unanswered forever (see StorageServer).
  bool submit(std::function<void()> task) { return tasks_.send(std::move(task)); }

  std::size_t thread_count() const { return workers_.size(); }

  /// Tasks whose exceptions were caught by the pool (monotonic).
  std::uint64_t task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

  /// Contention counters of the lock-free dispatch ring (CAS retries,
  /// park/wake trylock probe). Snapshot; publish explicitly if desired.
  RingStats ring_stats() const { return tasks_.stats(); }

  /// Stop accepting work, drain the queue, join all workers. Idempotent.
  void shutdown() {
    tasks_.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  void run() {
    // Workers are DST participants: an idle worker parked in receive() is
    // quiescent, so a VirtualClock can advance past it. Binds to the
    // global clock at pool construction — install any override first.
    // The count itself was pre-registered by the constructor.
    ClockParticipant participant(ClockParticipant::kAdoptPreRegistered);
    while (auto task = tasks_.receive()) {
      try {
        (*task)();
      } catch (...) {
        task_exceptions_.fetch_add(1, std::memory_order_relaxed);
        if (on_error_) on_error_(std::current_exception());
      }
    }
  }

  // The dispatch hop every active request crosses: lock-free ring on the
  // fast path, Clock-seam parking when idle/full (see ring.hpp).
  Ring<std::function<void()>> tasks_;
  ErrorCallback on_error_;
  std::atomic<std::uint64_t> task_exceptions_{0};
  std::vector<std::thread> workers_;
};

}  // namespace dosas
