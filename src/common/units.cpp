#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace dosas {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(b);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < suffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[48];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, suffix[i]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffix[i]);
  }
  return buf;
}

std::string format_seconds(Seconds s) {
  char buf[48];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
  }
  return buf;
}

}  // namespace dosas
