#include "common/serialize.hpp"

namespace dosas {

namespace {
constexpr std::uint32_t kMagic = 0xD05A5CE0;  // "DOSAS checkpoint"

// FNV-1a 64 over the encoded payload. A checkpoint crosses "the network"
// between storage and compute nodes; a corrupted one that still parses
// would silently restore default field values (restart-from-zero) and
// produce a wrong result, so integrity is verified before any field is
// trusted.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

std::vector<std::uint8_t> Checkpoint::encode() const {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u32(static_cast<std::uint32_t>(field_count()));
  for (const auto& [name, v] : i64_) {
    w.put_string(name);
    w.put_u8(static_cast<std::uint8_t>(FieldType::kI64));
    w.put_i64(v);
  }
  for (const auto& [name, v] : f64_) {
    w.put_string(name);
    w.put_u8(static_cast<std::uint8_t>(FieldType::kF64));
    w.put_f64(v);
  }
  for (const auto& [name, v] : str_) {
    w.put_string(name);
    w.put_u8(static_cast<std::uint8_t>(FieldType::kString));
    w.put_string(v);
  }
  for (const auto& [name, v] : blob_) {
    w.put_string(name);
    w.put_u8(static_cast<std::uint8_t>(FieldType::kBlob));
    w.put_blob(v);
  }
  w.put_u64(fnv1a(w.bytes().data(), w.bytes().size()));
  return w.take();
}

Result<Checkpoint> Checkpoint::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  std::uint32_t magic = 0;
  std::uint32_t count = 0;
  if (!r.get_u32(magic) || magic != kMagic) {
    return error(ErrorCode::kInvalidArgument, "checkpoint: bad magic");
  }
  // Verify the trailing checksum before trusting any field.
  if (bytes.size() < sizeof(std::uint64_t)) {
    return error(ErrorCode::kInvalidArgument, "checkpoint: truncated header");
  }
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  if (stored != fnv1a(bytes.data(), body)) {
    return error(ErrorCode::kCorrupted, "checkpoint: checksum mismatch");
  }
  if (!r.get_u32(count)) {
    return error(ErrorCode::kInvalidArgument, "checkpoint: truncated header");
  }
  Checkpoint ck;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::uint8_t tag = 0;
    if (!r.get_string(name) || !r.get_u8(tag)) {
      return error(ErrorCode::kInvalidArgument, "checkpoint: truncated field");
    }
    switch (static_cast<FieldType>(tag)) {
      case FieldType::kI64: {
        std::int64_t v = 0;
        if (!r.get_i64(v)) return error(ErrorCode::kInvalidArgument, "checkpoint: bad i64");
        ck.set_i64(name, v);
        break;
      }
      case FieldType::kF64: {
        double v = 0;
        if (!r.get_f64(v)) return error(ErrorCode::kInvalidArgument, "checkpoint: bad f64");
        ck.set_f64(name, v);
        break;
      }
      case FieldType::kString: {
        std::string v;
        if (!r.get_string(v)) return error(ErrorCode::kInvalidArgument, "checkpoint: bad string");
        ck.set_string(name, std::move(v));
        break;
      }
      case FieldType::kBlob: {
        std::vector<std::uint8_t> v;
        if (!r.get_blob(v)) return error(ErrorCode::kInvalidArgument, "checkpoint: bad blob");
        ck.set_blob(name, std::move(v));
        break;
      }
      default:
        return error(ErrorCode::kInvalidArgument, "checkpoint: unknown field type");
    }
  }
  if (r.remaining() != sizeof(std::uint64_t)) {  // only the checksum may remain
    return error(ErrorCode::kInvalidArgument, "checkpoint: trailing bytes");
  }
  return ck;
}

}  // namespace dosas
