// channel.hpp — bounded blocking MPMC channel.
//
// DEPRECATED for new intra-process queues: reach for Ring<T> (or
// SpscRing<T>) in common/ring.hpp first. Every hop through a Channel
// takes a mutex, which is exactly the self-inflicted contention the
// lock-free data plane removed from the dispatch and completer paths
// (tools/check_channel.sh lints src/ for new users). Channel remains the
// right tool only where its unbounded capacity or its mutex-serialized
// poll() tri-state is load-bearing — today that is nothing in src/; the
// remaining in-tree users are its own tests and the bench row that
// measures the mutex-vs-CAS delta.
//
// The paper's R <-> kernel communication is "shared memory ... widely used
// for inter-process communication within a given compute node" (§III-E).
// Our runtime is in-process, so the equivalent is a bounded queue with
// blocking send/receive and a close() for shutdown.
//
// Blocking and wake-ups route through the Clock seam (clock.hpp) so that
// idle workers parked in receive() count as quiescent under a
// VirtualClock, and a send that wakes one is accounted at the notify edge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/clock.hpp"
#include "common/queue_poll.hpp"

namespace dosas {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (the item is dropped).
  bool send(T item) {
    std::unique_lock lock(mu_);
    clock().wait(not_full_, lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    lock.unlock();
    clock().wake_one(not_empty_);
    return true;
  }

  /// Non-blocking send; returns false if full or closed.
  bool try_send(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || full_locked()) return false;
      queue_.push_back(std::move(item));
    }
    clock().wake_one(not_empty_);
    return true;
  }

  /// Blocks until an item is available or the channel is closed *and*
  /// drained; nullopt means closed-and-empty.
  std::optional<T> receive() {
    std::unique_lock lock(mu_);
    clock().wait(not_empty_, lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    clock().wake_one(not_full_);
    return item;
  }

  /// Non-blocking tri-state receive. On kItem `out` holds the item; on
  /// kEmpty the channel is open but momentarily empty; kClosed means closed
  /// *and* drained, so a polling loop can terminate.
  QueuePoll poll(std::optional<T>& out) {
    out.reset();
    std::unique_lock lock(mu_);
    if (queue_.empty()) return closed_ ? QueuePoll::kClosed : QueuePoll::kEmpty;
    out.emplace(std::move(queue_.front()));
    queue_.pop_front();
    lock.unlock();
    clock().wake_one(not_full_);
    return QueuePoll::kItem;
  }

  /// Non-blocking receive. nullopt conflates "empty" with "closed and
  /// drained" — pollers that need to terminate must use poll() instead.
  std::optional<T> try_receive() {
    std::optional<T> out;
    poll(out);
    return out;
  }

  /// After close(), sends fail and receivers drain remaining items then get
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    clock().wake_all(not_empty_);
    clock().wake_all(not_full_);
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  bool full_locked() const { return capacity_ != 0 && queue_.size() >= capacity_; }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dosas
