// arena.hpp — slab/arena extent-buffer allocator and ref-counted views.
//
// Before this existed, an extent payload was copied at every layer
// boundary: pfs/data_server copied the object bytes into a fresh vector,
// rpc::Envelope copied it into the reply, the server queue copied it
// again, and stream_extent handed kernels yet another copy. The arena
// inverts that: the PFS data server copies the bytes out of the object
// store ONCE into an arena slab (it must — the store's vectors can be
// resized by concurrent writes), and from there a BufferRef flows by
// reference through rpc → server → kernels → client with zero owning
// copies.
//
//   * BufferArena keeps per-size-class free lists of slabs (power-of-two
//     classes, 4 KiB minimum) so steady-state extent traffic recycles
//     buffers instead of hitting the allocator;
//   * BufferRef is a cheap ref-counted view (shared_ptr + offset/length);
//     slicing shares the slab. When the last ref drops, the slab returns
//     to its arena's free list — or is simply freed if the arena (and
//     the server that owned it) is already gone, so a BufferRef safely
//     outlives its server;
//   * every remaining owning copy on the data path is accounted into the
//     process-wide data-bytes-copied ledger (note_bytes_copied), which
//     backs the `data.bytes_copied` metric the benches assert trends to
//     ~0 on the hot path.
//
// The arena's free-list lock uses the Snippet-1 trylock probe (fast vs
// contended counts). Stats are schedule-dependent and therefore exposed
// only as snapshots — publication into the metrics registry is explicit
// (obs/contention.hpp) so DST fingerprints stay bit-identical.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dosas {

/// Where an owning copy happened, for the per-site breakdown of the
/// data-bytes-copied ledger. A site is a *class* of call site, not a code
/// location: the ledger's job is to say which mechanism still copies, so
/// a regression report reads "gather" or "fan-out", not a line number.
enum class CopySite : std::uint8_t {
  kToVector,     // BufferRef::to_vector() escape hatch
  kReadGather,   // multi-segment read reassembly (pfs client / ASC)
  kWaiterFanout, // coalesced active result fanned out to extra waiters
  kKernelStage,  // kernel staged a misaligned extent through scratch
  kOther,        // uncategorized (default for legacy call sites)
  kCount,
};

inline const char* copy_site_name(CopySite site) {
  switch (site) {
    case CopySite::kToVector: return "to_vector";
    case CopySite::kReadGather: return "read_gather";
    case CopySite::kWaiterFanout: return "waiter_fanout";
    case CopySite::kKernelStage: return "kernel_stage";
    case CopySite::kOther: return "other";
    case CopySite::kCount: break;
  }
  return "?";
}

/// Process-wide ledger of owning data copies on the extent path. Relaxed
/// monotone counters; benches and tests read deltas around a measured
/// phase. The total is published to the metrics registry as
/// `data.bytes_copied` (per-site as `data.bytes_copied.<site>`) only on
/// explicit request (obs/contention.hpp).
struct CopyLedger {
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> by_site[static_cast<std::size_t>(CopySite::kCount)]{};
};

inline CopyLedger& copy_ledger() {
  static CopyLedger ledger;
  return ledger;
}

inline void note_bytes_copied(std::size_t n, CopySite site = CopySite::kOther) {
  auto& ledger = copy_ledger();
  ledger.total.fetch_add(n, std::memory_order_relaxed);
  ledger.by_site[static_cast<std::size_t>(site)].fetch_add(
      n, std::memory_order_relaxed);
}

inline std::uint64_t data_bytes_copied() {
  return copy_ledger().total.load(std::memory_order_relaxed);
}

inline std::uint64_t data_bytes_copied(CopySite site) {
  return copy_ledger()
      .by_site[static_cast<std::size_t>(site)]
      .load(std::memory_order_relaxed);
}

/// Immutable, ref-counted view of extent bytes: a (pointer, size) pair
/// plus a type-erased keepalive that pins whatever owns the storage — an
/// arena slab, an adopted vector, or nothing at all for borrow()ed spans.
/// Copying/slicing a BufferRef shares the storage; only to_vector()
/// materializes an owning copy (and charges the bytes-copied ledger).
class BufferRef {
 public:
  BufferRef() = default;

  /// Wrap an already-owned vector without copying (one move). Used where
  /// bytes are produced locally (e.g. a client-side PFS read feeding a
  /// local kernel, a finalized kernel result) and only need to cross an
  /// rpc/cache boundary.
  static BufferRef adopt(std::vector<std::uint8_t> bytes) {
    auto owner =
        std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
    BufferRef ref;
    ref.data_ = owner->data();
    ref.size_ = owner->size();
    ref.keepalive_ = std::move(owner);
    return ref;
  }

  /// Wrap caller-owned bytes WITHOUT taking a reference. The caller
  /// guarantees the bytes outlive every copy of the returned ref — use
  /// only for synchronous call chains (e.g. handing a client's write
  /// payload down a blocking submit), never for anything queued.
  static BufferRef borrow(std::span<const std::uint8_t> bytes) {
    BufferRef ref;
    ref.data_ = bytes.data();
    ref.size_ = bytes.size();
    return ref;
  }

  std::span<const std::uint8_t> span() const {
    return std::span<const std::uint8_t>(data_, size_);
  }

  /// A BufferRef reads as a span anywhere one is expected (kernel
  /// consume/merge/decode, serializers), so result payloads can change
  /// type without touching every consumer.
  operator std::span<const std::uint8_t>() const { return span(); }

  const std::uint8_t* data() const { return data_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  auto begin() const { return span().begin(); }
  auto end() const { return span().end(); }

  /// Materialize an owning copy. This is the escape hatch for cold paths
  /// (tests, legacy callers) — it charges the data-bytes-copied ledger.
  std::vector<std::uint8_t> to_vector() const {
    note_bytes_copied(size_, CopySite::kToVector);
    const auto s = span();
    return std::vector<std::uint8_t>(s.begin(), s.end());
  }

  /// Content equality (no copy, no ledger charge).
  friend bool operator==(const BufferRef& a, const BufferRef& b) {
    const auto sa = a.span();
    const auto sb = b.span();
    return std::equal(sa.begin(), sa.end(), sb.begin(), sb.end());
  }
  friend bool operator==(const BufferRef& a,
                         const std::vector<std::uint8_t>& b) {
    const auto sa = a.span();
    return std::equal(sa.begin(), sa.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const BufferRef& b) {
    return b == a;
  }

  /// Shared sub-view [offset, offset+length) clamped to this ref's size.
  BufferRef slice(std::size_t offset, std::size_t length) const {
    BufferRef ref;
    if (offset >= size_) return ref;
    ref.data_ = data_ + offset;
    ref.size_ = std::min(length, size_ - offset);
    ref.keepalive_ = keepalive_;
    return ref;
  }

 private:
  friend class BufferArena;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

/// BufferArena construction options (namespace-scope so it is complete
/// where a constructor default argument uses it).
struct BufferArenaOptions {
  std::size_t min_slab_bytes = 4096;     // smallest size class
  std::size_t max_free_per_class = 32;   // recycle-list depth bound
};

/// Slab allocator with per-size-class recycling. Thread-safe. Releases
/// may arrive from any thread at any time — including after the arena
/// itself is destroyed (the slab deleter holds only a weak_ptr to the
/// arena state, so late releases degrade to a plain free).
class BufferArena {
 public:
  using Options = BufferArenaOptions;

  struct Stats {
    std::uint64_t slabs_created = 0;    // allocator hits
    std::uint64_t slabs_recycled = 0;   // fills served from the free list
    std::uint64_t slabs_returned = 0;   // releases that re-entered a list
    std::uint64_t slabs_in_use = 0;     // gauge: live BufferRef slabs
    std::uint64_t slabs_free = 0;       // gauge: pooled slabs
    std::uint64_t bytes_in_use = 0;     // gauge: payload bytes outstanding
    std::uint64_t lock_fast = 0;        // free-list trylock probe
    std::uint64_t lock_contended = 0;
  };

  explicit BufferArena(Options opts = {})
      : state_(std::make_shared<State>(opts)) {}

  /// THE one copy on the hot path: bytes enter a slab here and then flow
  /// by reference. (This fill is an allocation, not an accounted "extra"
  /// copy — note_bytes_copied tracks duplications after this point.)
  BufferRef fill(std::span<const std::uint8_t> bytes) {
    State& st = *state_;
    const std::size_t cls = size_class(st.opts.min_slab_bytes, bytes.size());
    std::unique_ptr<std::vector<std::uint8_t>> slab;
    {
      ProbedLock lock(st);
      auto& pool = st.free[cls];
      if (!pool.empty()) {
        slab = std::move(pool.back());
        pool.pop_back();
        st.slabs_free--;
        st.slabs_recycled++;
      } else {
        st.slabs_created++;
      }
      st.slabs_in_use++;
      st.bytes_in_use += bytes.size();
    }
    if (!slab) {
      slab = std::make_unique<std::vector<std::uint8_t>>();
      slab->reserve(cls);
    }
    slab->assign(bytes.begin(), bytes.end());

    const std::size_t n = bytes.size();
    std::weak_ptr<State> weak = state_;
    std::shared_ptr<std::vector<std::uint8_t>> owner(
        slab.release(), [weak, cls, n](std::vector<std::uint8_t>* v) {
          release_slab(weak, cls, n, v);
        });
    BufferRef ref;
    ref.data_ = owner->data();
    ref.size_ = n;
    ref.keepalive_ = std::move(owner);
    return ref;
  }

  Stats stats() const {
    State& st = *state_;
    std::lock_guard lock(st.mu);
    Stats s;
    s.slabs_created = st.slabs_created;
    s.slabs_recycled = st.slabs_recycled;
    s.slabs_returned = st.slabs_returned;
    s.slabs_in_use = st.slabs_in_use;
    s.slabs_free = st.slabs_free;
    s.bytes_in_use = st.bytes_in_use;
    s.lock_fast = st.lock_fast.load(std::memory_order_relaxed);
    s.lock_contended = st.lock_contended.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct State {
    explicit State(Options o) : opts(o) {}
    const Options opts;
    std::mutex mu;
    std::unordered_map<std::size_t,
                       std::vector<std::unique_ptr<std::vector<std::uint8_t>>>>
        free;
    std::uint64_t slabs_created = 0;
    std::uint64_t slabs_recycled = 0;
    std::uint64_t slabs_returned = 0;
    std::uint64_t slabs_in_use = 0;
    std::uint64_t slabs_free = 0;
    std::uint64_t bytes_in_use = 0;
    std::atomic<std::uint64_t> lock_fast{0};
    std::atomic<std::uint64_t> lock_contended{0};
  };

  /// Snippet-1 trylock probe: count uncontended vs contended acquires.
  struct ProbedLock {
    explicit ProbedLock(State& st) : mu(st.mu) {
      if (mu.try_lock()) {
        st.lock_fast.fetch_add(1, std::memory_order_relaxed);
      } else {
        st.lock_contended.fetch_add(1, std::memory_order_relaxed);
        mu.lock();
      }
    }
    ~ProbedLock() { mu.unlock(); }
    std::mutex& mu;
  };

  static std::size_t size_class(std::size_t min_slab, std::size_t n) {
    std::size_t cls = min_slab;
    while (cls < n) cls <<= 1;
    return cls;
  }

  static void release_slab(const std::weak_ptr<State>& weak, std::size_t cls,
                           std::size_t n, std::vector<std::uint8_t>* v) {
    std::unique_ptr<std::vector<std::uint8_t>> slab(v);
    auto st = weak.lock();
    if (!st) return;  // arena/server already gone: plain free
    ProbedLock lock(*st);
    st->slabs_in_use--;
    st->bytes_in_use -= n;
    auto& pool = st->free[cls];
    if (pool.size() < st->opts.max_free_per_class) {
      slab->clear();
      pool.push_back(std::move(slab));
      st->slabs_free++;
      st->slabs_returned++;
    }
  }

  std::shared_ptr<State> state_;
};

}  // namespace dosas
