// serialize.hpp — the checkpoint wire format used when the Active I/O
// Runtime interrupts a running kernel and ships its state to the client.
//
// Paper §III-E: "When a kernel receives a terminating signal from the R, it
// will write the shared memory with its status, including the values of all
// variables in the form <variable name, variable type, value>". We implement
// exactly that: a Checkpoint is an ordered set of typed named fields, with a
// compact little-endian binary encoding so its size can be charged to the
// network model.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dosas {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }

  // Non-owning views: callers encoding an envelope or checkpoint hand in
  // whatever they already hold (string literal, vector, BufferRef span)
  // without materializing an intermediate copy.
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  void put_blob(std::span<const std::uint8_t> b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    put_raw(b.data(), b.size());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over an encoded buffer. Holds a non-owning view;
/// the underlying bytes must outlive the reader (a vector converts
/// implicitly, so existing call sites are unchanged).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool get_u8(std::uint8_t& v) { return get_raw(&v, sizeof(v)); }
  bool get_u32(std::uint32_t& v) { return get_raw(&v, sizeof(v)); }
  bool get_u64(std::uint64_t& v) { return get_raw(&v, sizeof(v)); }
  bool get_i64(std::int64_t& v) { return get_raw(&v, sizeof(v)); }
  bool get_f64(double& v) { return get_raw(&v, sizeof(v)); }

  bool get_string(std::string& s) {
    std::uint32_t n = 0;
    if (!get_u32(n) || pos_ + n > buf_.size()) return false;
    s.assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  bool get_blob(std::vector<std::uint8_t>& b) {
    std::uint32_t n = 0;
    if (!get_u32(n) || pos_ + n > buf_.size()) return false;
    b.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool get_raw(void* p, std::size_t n) {
    if (pos_ + n > buf_.size()) return false;
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Field type tags in a checkpoint record.
enum class FieldType : std::uint8_t {
  kI64 = 1,
  kF64 = 2,
  kString = 3,
  kBlob = 4,
};

/// A kernel checkpoint: named, typed fields (paper's <name, type, value>
/// records). Kernels write their loop indices, partial aggregates, and any
/// carried buffers (e.g. the Gaussian filter's boundary rows) into one of
/// these; the client restores from it and resumes.
class Checkpoint {
 public:
  void set_i64(const std::string& name, std::int64_t v) { i64_[name] = v; }
  void set_f64(const std::string& name, double v) { f64_[name] = v; }
  void set_string(const std::string& name, std::string v) { str_[name] = std::move(v); }
  void set_blob(const std::string& name, std::vector<std::uint8_t> v) { blob_[name] = std::move(v); }

  bool has_i64(const std::string& name) const { return i64_.count(name) != 0; }
  bool has_f64(const std::string& name) const { return f64_.count(name) != 0; }
  bool has_string(const std::string& name) const { return str_.count(name) != 0; }
  bool has_blob(const std::string& name) const { return blob_.count(name) != 0; }

  std::int64_t get_i64(const std::string& name, std::int64_t fallback = 0) const {
    auto it = i64_.find(name);
    return it == i64_.end() ? fallback : it->second;
  }
  double get_f64(const std::string& name, double fallback = 0.0) const {
    auto it = f64_.find(name);
    return it == f64_.end() ? fallback : it->second;
  }
  std::string get_string(const std::string& name, std::string fallback = {}) const {
    auto it = str_.find(name);
    return it == str_.end() ? std::move(fallback) : it->second;
  }
  const std::vector<std::uint8_t>* get_blob(const std::string& name) const {
    auto it = blob_.find(name);
    return it == blob_.end() ? nullptr : &it->second;
  }

  std::size_t field_count() const {
    return i64_.size() + f64_.size() + str_.size() + blob_.size();
  }
  bool empty() const { return field_count() == 0; }

  /// Encoded size in bytes — charged to the network when a checkpoint is
  /// shipped from storage node to compute node.
  std::size_t encoded_size() const { return encode().size(); }

  std::vector<std::uint8_t> encode() const;
  static Result<Checkpoint> decode(std::span<const std::uint8_t> bytes);

  bool operator==(const Checkpoint& other) const {
    return i64_ == other.i64_ && f64_ == other.f64_ && str_ == other.str_ &&
           blob_ == other.blob_;
  }

 private:
  std::map<std::string, std::int64_t> i64_;
  std::map<std::string, double> f64_;
  std::map<std::string, std::string> str_;
  std::map<std::string, std::vector<std::uint8_t>> blob_;
};

}  // namespace dosas
