// retry.hpp — capped exponential backoff with jitter, for client-side
// recovery from transient storage-node faults.
//
// Active storage treats storage-node failure and slow-node stragglers as
// the common case (ASF, Zest-style resilient staging), so the clients need
// a uniform retry discipline: only errors that a later attempt can fix
// (see is_transient in status.hpp) are retried, delays grow exponentially
// up to a cap, and jitter decorrelates the retry storms of many concurrent
// clients. Delays are deterministic given the seed; by default they are
// *accounted* (like the virtual TokenBucket) rather than slept, so tests
// stay fast — set sleep_real to pace on the injected clock (real seconds
// under the wall clock, deterministic jumps under a VirtualClock).
#pragma once

#include <algorithm>
#include <cmath>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace dosas {

struct RetryPolicy {
  int max_attempts = 1;        ///< total tries; 1 = retry layer disabled
  Seconds base_delay = 0.002;  ///< backoff before the 2nd attempt
  Seconds max_delay = 0.250;   ///< cap on any single backoff
  double multiplier = 2.0;     ///< growth per attempt
  double jitter = 0.2;         ///< delay scaled by U[1-jitter, 1+jitter]
  bool sleep_real = false;     ///< false: account only; true: actually sleep

  bool enabled() const { return max_attempts > 1; }
};

/// One retry sequence: next_delay(k) is the backoff after failed attempt
/// k (1-based), i.e. min(base * multiplier^(k-1), cap) * jitter-factor.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  Seconds next_delay(int failed_attempt) {
    const double exp =
        policy_.base_delay *
        std::pow(policy_.multiplier, static_cast<double>(failed_attempt - 1));
    Seconds d = std::min(policy_.max_delay, exp);
    if (policy_.jitter > 0.0) {
      d *= rng_.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    }
    total_ += d;
    if (policy_.sleep_real && d > 0.0) clock().sleep(d);
    return d;
  }

  /// Accrued (virtual or slept) backoff across this sequence.
  Seconds total() const { return total_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  Seconds total_ = 0.0;
};

}  // namespace dosas
