// contention_estimator.hpp — the CE component of the Active Storage Server.
//
// Paper §III-D: the CE "monitors current system status, including I/O
// queue, memory usage and CPU usage, and generates the scheduling policy
// for all active I/O requests in current I/O queue by using the probed
// system information and the scheduling algorithm. It then sends its
// decision to R component for execution."
//
// Concretely: observe() ingests SystemStatus probes and smooths CPU
// pressure; model_for() produces the Eq. 1–7 CostModel for an operation
// with S_{C,op} derated by that pressure; schedule() runs the configured
// optimizer over a queue snapshot and returns the Policy the runtime
// enforces. Thread-safe (probes arrive from a timer, scheduling requests
// from server threads).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "common/stats.hpp"
#include "sched/cost_model.hpp"
#include "sched/optimizer.hpp"
#include "server/rate_table.hpp"
#include "server/system_status.hpp"

namespace dosas::server {

class ContentionEstimator {
 public:
  struct Config {
    BytesPerSec bandwidth = mb_per_sec(118.0);  ///< compute<->storage link
    double ewma_alpha = 0.4;      ///< smoothing for utilization probes
    std::string optimizer = "exhaustive";
    /// CPU pressure from sources *other than* the active kernels being
    /// scheduled derates S (the kernels themselves are what we schedule).
    bool derate_by_external_load = true;
  };

  ContentionEstimator(Config config, RateTable rates);

  /// Ingest one probe sample.
  void observe(const SystemStatus& status);

  /// Most recent smoothed status view.
  SystemStatus smoothed() const;

  /// Eq. 1–7 model for `op` under the current (smoothed) load.
  /// kNotFound if the rate table has no entry for `op`.
  Result<sched::CostModel> model_for(const std::string& op) const;

  /// Run the scheduling algorithm over a queue snapshot of requests that
  /// all carry operation `op` (the paper schedules one benchmark at a
  /// time; mixed queues are scheduled per-operation group by the caller).
  Result<sched::Policy> schedule(const std::string& op,
                                 std::span<const sched::ActiveRequest> requests) const;

  const Config& config() const { return config_; }
  const RateTable& rates() const { return rates_; }

  /// Number of schedule() invocations (for tests/metrics).
  std::uint64_t decisions() const;

 private:
  Config config_;
  RateTable rates_;
  std::unique_ptr<sched::Optimizer> optimizer_;

  mutable std::mutex mu_;
  SystemStatus last_{};
  Ewma cpu_ewma_;
  Ewma mem_ewma_;
  mutable std::uint64_t decisions_ = 0;
};

}  // namespace dosas::server
