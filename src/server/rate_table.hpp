// rate_table.hpp — per-operation processing capabilities.
//
// Paper Table II/III: S_{C,op} and C_{C,op} are per-operation constants
// (max values); the CE derates S by the observed environment. The table is
// populated either with the paper's measured rates or with this host's
// calibration results (kernels/calibrate.hpp).
#pragma once

#include <map>
#include <string>

#include "common/status.hpp"
#include "common/units.hpp"

namespace dosas::server {

struct OpRates {
  BytesPerSec storage_max = 0.0;  ///< S_{C,op} at zero load (effective kernel capacity)
  BytesPerSec compute = 0.0;      ///< C_{C,op} of one compute node
};

class RateTable {
 public:
  void set(const std::string& op, OpRates rates) { rates_[op] = rates; }

  Result<OpRates> get(const std::string& op) const {
    auto it = rates_.find(op);
    if (it == rates_.end()) {
      return error(ErrorCode::kNotFound, "no rates for operation: " + op);
    }
    return it->second;
  }

  bool contains(const std::string& op) const { return rates_.count(op) != 0; }

  /// The paper's Table III rates on the Discfarm testbed. Storage-side
  /// rates are ONE core's worth: the second core of the 2-core storage
  /// node is consumed by PFS/I-O service under load (this calibration is
  /// what reproduces the paper's crossover at ~4 concurrent Gaussian
  /// requests — see DESIGN.md §5).
  static RateTable paper_rates() {
    RateTable t;
    t.set("sum", {mb_per_sec(860.0), mb_per_sec(860.0)});
    t.set("gaussian2d", {mb_per_sec(80.0), mb_per_sec(80.0)});
    return t;
  }

 private:
  std::map<std::string, OpRates> rates_;
};

}  // namespace dosas::server
