// messages.hpp — the active-I/O request/response protocol between the
// Active Storage Client and the Active Storage Server.
//
// Mirrors the paper's Table I semantics: the response's `outcome` plays the
// role of the `completed` flag in `struct result`; an interrupted response
// carries the kernel checkpoint (the paper's variable dump) plus the object
// offset at which processing stopped (the paper's `long offset`), so the
// ASC can resume without re-reading what the server already processed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/trace.hpp"
#include "pfs/data_server.hpp"
#include "sched/request.hpp"

namespace dosas::server {

struct ActiveIoRequest {
  sched::RequestId id = 0;        ///< 0 = let the server assign one
  pfs::FileHandle handle = 0;
  Bytes object_offset = 0;        ///< start within this server's object
  Bytes length = 0;               ///< bytes of the object to process
  std::string operation;          ///< kernel operation string

  /// Cooperative resumption (extension): a checkpoint from a previously
  /// interrupted run of this extent. The server restores it and continues
  /// from `resume_from` instead of starting over — the reverse direction
  /// of the paper's storage->client migration.
  std::vector<std::uint8_t> resume_checkpoint;
  Bytes resume_from = 0;  ///< object offset to continue from (with checkpoint)

  /// Per-request deadline: 0 = wait forever; > 0 = the client abandons the
  /// request after this many (wall-clock) seconds, gets kTimedOut, and the
  /// server interrupts the kernel. Set via ActiveClient::Config.
  Seconds timeout = 0;

  /// Causal trace context carried over from the rpc envelope, so the
  /// server-side queue/kernel spans join the client's request tree.
  obs::TraceContext trace;
  /// Envelope submission time (clock().now() seconds, negative = unknown)
  /// — feeds the server's stage.transport_us histogram.
  Seconds submitted_at = -1;

  bool is_resumption() const { return !resume_checkpoint.empty(); }
};

enum class ActiveOutcome {
  kCompleted,    ///< kernel ran to completion; `result` holds the payload
  kRejected,     ///< demoted at arrival; client must do normal I/O + local kernel
  kInterrupted,  ///< kernel interrupted mid-run; `checkpoint` + `resume_offset` set
  kFailed,       ///< server-side error; see `status`
};

const char* outcome_name(ActiveOutcome o);

struct ActiveIoResponse {
  ActiveOutcome outcome = ActiveOutcome::kFailed;
  /// kCompleted: encoded kernel result, as a ref-counted view of the slab
  /// the server finalized into. Copying the response (coalesced-waiter
  /// fan-out, retry layers, the result cache) shares the slab; decode call
  /// sites consume it through BufferRef's span conversion.
  BufferRef result;
  std::vector<std::uint8_t> checkpoint;  ///< kInterrupted: encoded Checkpoint
  Bytes resume_offset = 0;               ///< kInterrupted: object offset to continue from
  Status status;                         ///< kFailed: the error
};

}  // namespace dosas::server
