#include "server/contention_estimator.hpp"

#include <cassert>

#include "obs/metrics.hpp"

namespace dosas::server {

ContentionEstimator::ContentionEstimator(Config config, RateTable rates)
    : config_(std::move(config)),
      rates_(std::move(rates)),
      optimizer_(sched::make_optimizer(config_.optimizer)),
      cpu_ewma_(config_.ewma_alpha),
      mem_ewma_(config_.ewma_alpha) {
  assert(optimizer_ != nullptr && "unknown optimizer name");
}

void ContentionEstimator::observe(const SystemStatus& status) {
  std::lock_guard lock(mu_);
  last_ = status;
  cpu_ewma_.add(status.cpu_utilization);
  mem_ewma_.add(status.memory_utilization);
  if (obs::metrics_enabled()) {
    // Raw probe vs the smoothed estimate the scheduler actually acts on —
    // the estimated-vs-observed gap the estimator ablation studies.
    obs::gauge_set("ce.cpu_observed", status.cpu_utilization);
    obs::gauge_set("ce.cpu_estimated", cpu_ewma_.value());
    obs::gauge_set("ce.queue_active",
                   static_cast<double>(status.queued_active + status.running_kernels));
    obs::observe("ce.queue_depth_samples",
                 static_cast<double>(status.queued_active + status.running_kernels));
  }
}

SystemStatus ContentionEstimator::smoothed() const {
  std::lock_guard lock(mu_);
  SystemStatus s = last_;
  if (cpu_ewma_.primed()) s.cpu_utilization = cpu_ewma_.value();
  if (mem_ewma_.primed()) s.memory_utilization = mem_ewma_.value();
  return s;
}

Result<sched::CostModel> ContentionEstimator::model_for(const std::string& op) const {
  auto rates = rates_.get(op);
  if (!rates.is_ok()) return rates.status();

  sched::CostModel m;
  m.bandwidth = config_.bandwidth;
  m.compute_rate = rates.value().compute;
  BytesPerSec s = rates.value().storage_max;
  if (config_.derate_by_external_load) {
    std::lock_guard lock(mu_);
    // Only *external* pressure derates S: the kernels this very scheduler
    // places are the thing being decided, so their load must not be
    // double-counted. The probe layer reports external pressure in
    // memory_utilization-adjacent fields; we use the smoothed CPU signal
    // net of our own running kernels where the probe provides it.
    const double external = cpu_ewma_.primed() ? cpu_ewma_.value() : 0.0;
    s = sched::derate_storage_rate(s, external);
  }
  m.storage_rate = s;
  return m;
}

Result<sched::Policy> ContentionEstimator::schedule(
    const std::string& op, std::span<const sched::ActiveRequest> requests) const {
  // Decision latency: model construction + solver, the full CE response
  // time the runtime blocks on per policy evaluation.
  const bool obs_on = obs::metrics_enabled();
  const double t0 = obs_on ? obs::now_us() : 0.0;
  auto finish = [&](Result<sched::Policy> policy) {
    if (obs_on) {
      obs::observe("ce.decision_us", obs::now_us() - t0);
      obs::count("ce.decisions");
      if (policy.is_ok()) {
        obs::count("ce.demotions_decided",
                   requests.size() - policy.value().active_count());
      }
    }
    return policy;
  };

  auto model = model_for(op);
  if (!model.is_ok()) {
    // Static policies (the TS/AS baselines) ignore the cost model entirely,
    // so missing rates must not block them.
    if (config_.optimizer == "all-active" || config_.optimizer == "all-normal") {
      sched::CostModel dummy;
      dummy.bandwidth = dummy.storage_rate = dummy.compute_rate = 1.0;
      {
        std::lock_guard lock(mu_);
        ++decisions_;
      }
      return finish(optimizer_->run(dummy, requests));
    }
    return model.status();
  }
  {
    std::lock_guard lock(mu_);
    ++decisions_;
  }
  return finish(optimizer_->run(model.value(), requests));
}

std::uint64_t ContentionEstimator::decisions() const {
  std::lock_guard lock(mu_);
  return decisions_;
}

}  // namespace dosas::server
