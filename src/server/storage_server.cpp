#include "server/storage_server.hpp"

#include <algorithm>
#include <cassert>
#include <exception>

#include "common/clock.hpp"
#include "common/logging.hpp"
#include "kernels/pipeline.hpp"
#include "kernels/stream.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dosas::server {

namespace {

/// Request class for the stage.* histograms: the kernel name, i.e. the
/// operation string up to its first parameter separator.
std::string stage_class(const std::string& operation) {
  return operation.substr(0, operation.find(':'));
}

}  // namespace

const char* outcome_name(ActiveOutcome o) {
  switch (o) {
    case ActiveOutcome::kCompleted: return "COMPLETED";
    case ActiveOutcome::kRejected: return "REJECTED";
    case ActiveOutcome::kInterrupted: return "INTERRUPTED";
    case ActiveOutcome::kFailed: return "FAILED";
  }
  return "?";
}

StorageServer::StorageServer(pfs::FileSystem& fs, pfs::ServerId server_id,
                             kernels::Registry registry, ContentionEstimator::Config ce_config,
                             RateTable rates, Config config)
    : fs_(fs),
      server_id_(server_id),
      registry_(std::move(registry)),
      ce_(std::move(ce_config), std::move(rates)),
      config_(config),
      obs_name_("server" + std::to_string(server_id)),
      pool_(config.cores, [this](std::exception_ptr) {
        // Backstop for exceptions escaping run_kernel itself (run_kernel
        // already converts kernel throws to kFailed responses): count and
        // keep the worker alive rather than letting the process die.
        {
          std::lock_guard lock(mu_);
          ++stats_.kernel_exceptions;
        }
        if (obs::metrics_enabled()) obs::count(obs_name_ + ".worker_exceptions");
      }) {
  if (config_.probe_interval > 0.0) {
    // Pre-register the prober's clock participation before spawning it so
    // a VirtualClock cannot advance (and skip the first tick's phase) in
    // the spawn window — see ClockParticipant.
    clock().add_participant();
    prober_ = std::thread([this] { probe_loop(); });
  }
}

void StorageServer::probe_loop() {
  // The probe timer is a DST participant: between ticks it sits in a
  // clock timed wait, so a VirtualClock jumps straight to the next tick.
  // The count was pre-registered by the constructor.
  ClockParticipant participant(ClockParticipant::kAdoptPreRegistered);
  std::unique_lock lock(probe_mu_);
  Seconds next = clock().now() + config_.probe_interval;
  while (true) {
    const bool stopped =
        clock().timed_wait(probe_cv_, lock, next, [&] { return probe_stop_; });
    if (stopped) return;
    next = clock().now() + config_.probe_interval;
    lock.unlock();
    probe();
    {
      std::lock_guard slock(mu_);
      ++stats_.probe_ticks;
    }
    lock.lock();
  }
}

void StorageServer::set_fault_injector(std::shared_ptr<fault::FaultInjector> fi) {
  std::lock_guard lock(mu_);
  faults_ = std::move(fi);
}

void StorageServer::obs_queue_depth_locked() const {
  if (!obs::metrics_enabled()) return;
  const auto depth = static_cast<double>(entries_.size());
  obs::gauge_set(obs_name_ + ".queue_depth", depth);
  obs::observe(obs_name_ + ".queue_depth_samples", depth);
}

StorageServer::~StorageServer() {
  if (prober_.joinable()) {
    {
      std::lock_guard lock(probe_mu_);
      probe_stop_ = true;
    }
    clock().wake_all(probe_cv_);
    prober_.join();
  }
  // Interrupt anything still running so pool shutdown doesn't wait on long
  // kernels; then join. Workers still deliver their (interrupted)
  // completions on the way out, so no waiter callback is dropped.
  {
    std::lock_guard lock(mu_);
    for (auto& [id, entry] : entries_) {
      entry->reject_before_start = true;
      if (entry->interrupt) entry->interrupt->store(true);
    }
  }
  pool_.shutdown();
}

Result<BufferRef> StorageServer::serve_normal(pfs::FileHandle handle,
                                              Bytes object_offset, Bytes length) {
  {
    std::lock_guard lock(mu_);
    ++normal_inflight_;
    ++stats_.normal_requests;
  }
  if (obs::metrics_enabled()) obs::count(obs_name_ + ".normal_requests");
  auto data = fs_.data_server(server_id_).read_object_ref(handle, object_offset, length);
  {
    std::lock_guard lock(mu_);
    --normal_inflight_;
    if (data.is_ok()) stats_.normal_bytes_served += data.value().size();
  }
  return data;
}

Status StorageServer::serve_write(pfs::FileHandle handle, Bytes object_offset,
                                  const BufferRef& data) {
  {
    std::lock_guard lock(mu_);
    ++normal_inflight_;
    ++stats_.normal_requests;
  }
  if (obs::metrics_enabled()) obs::count(obs_name_ + ".normal_requests");
  // The data server's store is the write path's single copy; `data` is a
  // view of the client's buffer all the way down to here.
  Status st = fs_.data_server(server_id_).write_object(handle, object_offset, data.span());
  {
    std::lock_guard lock(mu_);
    --normal_inflight_;
    if (st.is_ok()) stats_.normal_bytes_written += data.size();
  }
  return st;
}

std::shared_ptr<StorageServer::Entry> StorageServer::find_coalesce_locked(
    const ActiveIoRequest& request) {
  if (!config_.coalesce_identical) return nullptr;
  // Resumptions carry kernel state and must run verbatim; only fresh
  // full-extent scans are safely shareable.
  if (request.is_resumption()) return nullptr;
  for (auto& [id, entry] : entries_) {
    if (entry->state == EntryState::kDone) continue;
    if (entry->reject_before_start || entry->interrupt->load()) continue;
    const auto& r = entry->request;
    if (r.is_resumption()) continue;
    if (r.handle == request.handle && r.object_offset == request.object_offset &&
        r.length == request.length && r.operation == request.operation) {
      return entry;
    }
  }
  return nullptr;
}

std::pair<sched::RequestId, std::shared_ptr<StorageServer::Entry>> StorageServer::register_entry(
    ActiveIoRequest request, Waiter waiter) {
  auto entry = std::make_shared<Entry>();
  const Seconds now = clock().now();
  std::lock_guard lock(mu_);
  const sched::RequestId id = request.id != 0 ? request.id : next_id_++;
  request.id = id;
  entry->request = request;
  entry->interrupt = std::make_shared<std::atomic<bool>>(false);
  entry->progress = std::make_shared<std::atomic<Bytes>>(0);
  entry->waiters.push_back(std::move(waiter));
  entry->enqueued_at = now;
  entries_.emplace(id, entry);
  obs_queue_depth_locked();
  obs::flight_record(obs::FlightEventKind::kStateTransition, request.trace.trace_id,
                     server_id_, id, "active request queued");
  if (obs::metrics_enabled() && request.submitted_at >= 0) {
    // Transport stage: client-side hand-off to server-side admission.
    obs::observe("stage.transport_us." + stage_class(request.operation),
                 (now - request.submitted_at) * 1e6, request.trace.trace_id);
  }
  return {id, entry};
}

std::shared_ptr<fault::FaultInjector> StorageServer::faults() const {
  std::lock_guard lock(mu_);
  return faults_;
}

ActiveIoResponse StorageServer::crashed_response(pfs::ServerId server_id) {
  ActiveIoResponse resp;
  resp.outcome = ActiveOutcome::kFailed;
  resp.status = error(ErrorCode::kUnavailable,
                      "storage node " + std::to_string(server_id) +
                          ": active runtime down (injected crash)");
  return resp;
}

void StorageServer::count_outcome_locked(const ActiveIoResponse& response) {
  switch (response.outcome) {
    case ActiveOutcome::kCompleted: ++stats_.active_completed; break;
    case ActiveOutcome::kRejected: ++stats_.active_rejected; break;
    case ActiveOutcome::kInterrupted: ++stats_.active_interrupted; break;
    case ActiveOutcome::kFailed: ++stats_.active_failed; break;
  }
  if (obs::metrics_enabled()) {
    switch (response.outcome) {
      case ActiveOutcome::kCompleted: obs::count(obs_name_ + ".completed"); break;
      case ActiveOutcome::kRejected: obs::count(obs_name_ + ".demoted"); break;
      case ActiveOutcome::kInterrupted:
        obs::count(obs_name_ + ".interrupted");
        obs::count(obs_name_ + ".checkpoint_bytes", response.checkpoint.size());
        break;
      case ActiveOutcome::kFailed: obs::count(obs_name_ + ".failed"); break;
    }
  }
}

void StorageServer::complete_entry(sched::RequestId id, const std::shared_ptr<Entry>& entry,
                                   ActiveIoResponse response, Bytes processed) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second != entry) {
      // Abandoned: every waiter cancelled (or the request was superseded).
      // The late result is discarded; outcome stats were counted at cancel.
      return;
    }
    entry->state = EntryState::kDone;
    waiters.swap(entry->waiters);
    entries_.erase(it);
    stats_.active_bytes_processed += processed;
    for (std::size_t i = 0; i < waiters.size(); ++i) count_outcome_locked(response);
    obs_queue_depth_locked();
  }
  obs::flight_record(obs::FlightEventKind::kStateTransition, entry->request.trace.trace_id,
                     server_id_, id, outcome_name(response.outcome));
  // Deliver outside mu_: completions may submit follow-up work (the
  // client's cooperative resubmission path) or take unrelated locks. All
  // but the last waiter get a copy; the last takes the response by move.
  // Copying the response shares the result slab by reference — only the
  // checkpoint vector (interrupted runs) still duplicates per waiter.
  for (std::size_t i = 0; i + 1 < waiters.size(); ++i) {
    note_bytes_copied(response.checkpoint.size(), CopySite::kWaiterFanout);
    if (waiters[i].done) waiters[i].done(response);
  }
  if (!waiters.empty() && waiters.back().done) waiters.back().done(std::move(response));
}

bool StorageServer::launch_or_reject(sched::RequestId id, const std::shared_ptr<Entry>& entry) {
  {
    std::unique_lock lock(mu_);
    if (entry->reject_before_start) {
      lock.unlock();
      ActiveIoResponse resp;
      resp.outcome = ActiveOutcome::kRejected;
      resp.status = error(ErrorCode::kRejected, "demoted to normal I/O by scheduling policy");
      complete_entry(id, entry, std::move(resp), 0);
      return false;
    }
  }
  if (!pool_.submit([this, id] { run_kernel(id); })) {
    // Pool already shut down: without this the entry would sit in the
    // table forever and the waiters would never fire. Fail typed.
    {
      std::lock_guard lock(mu_);
      ++stats_.pool_rejections;
    }
    if (obs::metrics_enabled()) obs::count(obs_name_ + ".pool_rejections");
    ActiveIoResponse resp;
    resp.outcome = ActiveOutcome::kFailed;
    resp.status =
        error(ErrorCode::kUnavailable, "worker pool shut down; active request not scheduled");
    complete_entry(id, entry, std::move(resp), 0);
    return false;
  }
  return true;
}

std::optional<ActiveIoResponse> StorageServer::cache_lookup(const ActiveIoRequest& request) {
  if (config_.result_cache_entries == 0) return std::nullopt;
  const std::uint64_t version = fs_.data_server(server_id_).object_version(request.handle);
  std::lock_guard lock(mu_);
  auto it = result_cache_.find(
      CacheKey{request.handle, request.object_offset, request.length, request.operation});
  if (it == result_cache_.end()) {
    ++stats_.cache_misses;
    return std::nullopt;
  }
  if (it->second.version != version) {
    // The object mutated since the result was computed: the entry can
    // never hit again (versions are monotonic), so drop it now instead of
    // letting it squat in the LRU until eviction.
    result_cache_.erase(it);
    ++stats_.cache_invalidations;
    ++stats_.cache_misses;
    if (obs::metrics_enabled()) obs::count("arena.cache_invalidations");
    return std::nullopt;
  }
  it->second.last_use = ++cache_tick_;
  ++stats_.cache_hits;
  if (obs::metrics_enabled()) obs::count("arena.cache_hits");
  ActiveIoResponse resp;
  resp.outcome = ActiveOutcome::kCompleted;
  resp.result = it->second.result;  // another view of the cached slab: no copy
  return resp;
}

void StorageServer::cache_insert(const ActiveIoRequest& request, std::uint64_t version,
                                 const BufferRef& result) {
  if (config_.result_cache_entries == 0) return;
  // Skip if the object changed while the kernel ran (stale result).
  if (fs_.data_server(server_id_).object_version(request.handle) != version) return;
  std::lock_guard lock(mu_);
  if (result_cache_.size() >= config_.result_cache_entries) {
    auto victim = result_cache_.begin();
    for (auto it = result_cache_.begin(); it != result_cache_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    result_cache_.erase(victim);
    ++stats_.cache_evictions;
    if (obs::metrics_enabled()) obs::count("arena.cache_evictions");
  }
  // The entry shares the response's slab (ref-counted view): inserting is
  // free, and the slab lives as long as any hit still holds a view.
  result_cache_[CacheKey{request.handle, request.object_offset, request.length,
                         request.operation}] = CacheEntry{version, result, ++cache_tick_};
}

StorageServer::ActiveTicket StorageServer::submit_active(ActiveIoRequest request,
                                                         ActiveCompletion done) {
  if (auto fi = faults(); fi != nullptr && fi->node_crashed(server_id_, true)) {
    {
      std::lock_guard lock(mu_);
      ++stats_.active_failed;
      ++stats_.crash_rejections;
    }
    if (done) done(crashed_response(server_id_));
    return {};
  }
  if (auto cached = cache_lookup(request)) {
    {
      std::lock_guard lock(mu_);
      ++stats_.active_completed;
    }
    if (obs::metrics_enabled()) obs::count(obs_name_ + ".completed");
    if (done) done(std::move(*cached));
    return {};
  }

  // Coalesce onto an identical in-flight request when possible: one kernel
  // run, many waiters.
  {
    std::lock_guard lock(mu_);
    if (auto twin = find_coalesce_locked(request)) {
      ActiveTicket ticket;
      ticket.id = twin->request.id;
      ticket.waiter = next_waiter_++;
      ticket.coalesced = true;
      twin->waiters.push_back(Waiter{ticket.waiter, std::move(done)});
      ++stats_.active_coalesced;
      if (obs::metrics_enabled()) obs::count(obs_name_ + ".coalesced");
      obs::flight_record(obs::FlightEventKind::kCoalesce, request.trace.trace_id,
                         server_id_, twin->request.id, "coalesced onto in-flight twin");
      if (obs::tracing_enabled() && request.trace.valid()) {
        obs::Tracer::global().instant(obs_name_ + ".coalesce", "server",
                                      request.trace.child("coalesce"));
      }
      return ticket;
    }
  }

  ActiveTicket ticket;
  ticket.waiter = [&] {
    std::lock_guard lock(mu_);
    return next_waiter_++;
  }();
  auto [id, entry] = register_entry(std::move(request), Waiter{ticket.waiter, std::move(done)});
  ticket.id = id;
  if (config_.policy_on_arrival) evaluate_policy();
  if (!launch_or_reject(id, entry)) return {};  // completed synchronously
  return ticket;
}

std::vector<StorageServer::ActiveTicket> StorageServer::submit_active_batch(
    std::vector<ActiveIoRequest> requests, std::vector<ActiveCompletion> dones) {
  assert(requests.size() == dones.size());
  std::vector<ActiveTicket> tickets(requests.size());
  if (auto fi = faults(); fi != nullptr && fi->node_crashed(server_id_, true)) {
    {
      std::lock_guard lock(mu_);
      stats_.active_failed += requests.size();
      stats_.crash_rejections += requests.size();
    }
    for (auto& done : dones) {
      if (done) done(crashed_response(server_id_));
    }
    return tickets;
  }

  // Register everything first (serving cache hits and coalescing inline),
  // then evaluate the policy ONCE over the combined queue, then launch.
  // This is the collective-admission path: N requests landing together get
  // one scheduling decision instead of N admit-then-interrupt rounds.
  struct Registered {
    std::size_t index;
    sched::RequestId id;
    std::shared_ptr<Entry> entry;
  };
  std::vector<Registered> registered;
  registered.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (auto cached = cache_lookup(requests[i])) {
      {
        std::lock_guard lock(mu_);
        ++stats_.active_completed;
      }
      if (obs::metrics_enabled()) obs::count(obs_name_ + ".completed");
      if (dones[i]) dones[i](std::move(*cached));
      continue;
    }
    {
      std::lock_guard lock(mu_);
      if (auto twin = find_coalesce_locked(requests[i])) {
        tickets[i].id = twin->request.id;
        tickets[i].waiter = next_waiter_++;
        tickets[i].coalesced = true;
        twin->waiters.push_back(Waiter{tickets[i].waiter, std::move(dones[i])});
        ++stats_.active_coalesced;
        if (obs::metrics_enabled()) obs::count(obs_name_ + ".coalesced");
        obs::flight_record(obs::FlightEventKind::kCoalesce, requests[i].trace.trace_id,
                           server_id_, twin->request.id, "coalesced onto in-flight twin");
        if (obs::tracing_enabled() && requests[i].trace.valid()) {
          obs::Tracer::global().instant(obs_name_ + ".coalesce", "server",
                                        requests[i].trace.child("coalesce"));
        }
        continue;
      }
      tickets[i].waiter = next_waiter_++;
    }
    auto [id, entry] =
        register_entry(std::move(requests[i]), Waiter{tickets[i].waiter, std::move(dones[i])});
    tickets[i].id = id;
    registered.push_back({i, id, entry});
  }

  if (!registered.empty()) evaluate_policy();

  for (auto& reg : registered) {
    if (!launch_or_reject(reg.id, reg.entry)) tickets[reg.index] = {};
  }
  return tickets;
}

bool StorageServer::cancel_active(const ActiveTicket& ticket, const Status& reason) {
  if (ticket.id == 0) return false;  // completed synchronously at submit
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(ticket.id);
    if (it == entries_.end()) return false;  // already completed/abandoned
    entry = it->second;
    auto w = std::find_if(entry->waiters.begin(), entry->waiters.end(),
                          [&](const Waiter& x) { return x.id == ticket.waiter; });
    if (w == entry->waiters.end()) return false;  // this waiter already fired
    entry->waiters.erase(w);
    if (reason.code() == ErrorCode::kTimedOut) {
      // Preserve the historical accounting: a deadline expiry counts as
      // both a timeout and a failure for this waiter.
      ++stats_.active_timed_out;
      ++stats_.active_failed;
      if (obs::metrics_enabled()) obs::count(obs_name_ + ".timed_out");
    } else {
      ++stats_.active_cancelled;
      if (obs::metrics_enabled()) obs::count(obs_name_ + ".cancelled");
    }
    obs::flight_record(obs::FlightEventKind::kCancel, entry->request.trace.trace_id,
                       server_id_, ticket.id,
                       reason.code() == ErrorCode::kTimedOut ? "waiter timed out"
                                                             : "waiter cancelled");
    if (!entry->waiters.empty()) return true;  // twin waiters keep the run alive
    // Last waiter gone: abandon the request. A queued entry never starts; a
    // running kernel stops at its next chunk boundary and its late
    // completion finds no entry and is discarded.
    entry->reject_before_start = true;
    entry->interrupt->store(true);
    entries_.erase(it);
    obs_queue_depth_locked();
  }
  return true;
}

ActiveIoResponse StorageServer::serve_active(ActiveIoRequest request) {
  obs::ScopedTrace span(obs_name_ + ".serve_active", "server");
  const Seconds timeout = request.timeout;

  // One-shot completion slot shared with the worker. The mutex/cv pair is
  // heap-held so a timed-out waiter can return while a racing completion
  // still fires harmlessly into the (then unobserved) slot.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    ActiveIoResponse resp;
  };
  auto slot = std::make_shared<Slot>();
  auto ticket = submit_active(std::move(request), [slot](ActiveIoResponse r) {
    {
      std::lock_guard lock(slot->mu);
      slot->resp = std::move(r);
      slot->ready = true;
    }
    clock().wake_all(slot->cv);
  });

  std::unique_lock lock(slot->mu);
  if (timeout > 0.0) {
    const bool ready = clock().timed_wait(slot->cv, lock, clock().now() + timeout,
                                          [&] { return slot->ready; });
    if (!ready) {
      const Status expired =
          error(ErrorCode::kTimedOut, "active request " + std::to_string(ticket.id) +
                                          " exceeded its " + std::to_string(timeout) +
                                          "s deadline");
      lock.unlock();
      if (cancel_active(ticket, expired)) {
        ActiveIoResponse resp;
        resp.outcome = ActiveOutcome::kFailed;
        resp.status = expired;
        return resp;
      }
      // Lost the race: the completion fired (or is firing) — take it.
      lock.lock();
      clock().wait(slot->cv, lock, [&] { return slot->ready; });
    }
  } else {
    clock().wait(slot->cv, lock, [&] { return slot->ready; });
  }
  return std::move(slot->resp);
}

std::vector<ActiveIoResponse> StorageServer::serve_active_batch(
    std::vector<ActiveIoRequest> requests) {
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    ActiveIoResponse resp;
  };
  const std::size_t n = requests.size();
  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<ActiveCompletion> dones;
  slots.reserve(n);
  dones.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto slot = std::make_shared<Slot>();
    slots.push_back(slot);
    dones.push_back([slot](ActiveIoResponse r) {
      {
        std::lock_guard lock(slot->mu);
        slot->resp = std::move(r);
        slot->ready = true;
      }
      clock().wake_all(slot->cv);
    });
  }
  (void)submit_active_batch(std::move(requests), std::move(dones));
  std::vector<ActiveIoResponse> responses(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::unique_lock lock(slots[i]->mu);
    clock().wait(slots[i]->cv, lock, [&] { return slots[i]->ready; });
    responses[i] = std::move(slots[i]->resp);
  }
  return responses;
}

void StorageServer::probe() {
  SystemStatus status;
  {
    std::lock_guard lock(mu_);
    status = snapshot_status_locked();
  }
  if (obs::metrics_enabled()) obs::count(obs_name_ + ".probes");
  ce_.observe(status);
  evaluate_policy();
}

SystemStatus StorageServer::snapshot_status_locked() const {
  SystemStatus s;
  for (const auto& [id, entry] : entries_) {
    if (entry->state == EntryState::kQueued && !entry->reject_before_start) {
      ++s.queued_active;
      s.queued_bytes += entry->request.length;
    } else if (entry->state == EntryState::kRunning) {
      ++s.running_kernels;
      s.queued_bytes += entry->request.length;
    }
  }
  s.queued_normal = normal_inflight_;
  // CPU pressure reported to the CE is *external* to the kernels being
  // scheduled: normal-I/O service work (the PFS daemon's share of the
  // node). The kernels themselves are the variable under optimization.
  s.cpu_utilization =
      std::min(1.0, static_cast<double>(normal_inflight_) / static_cast<double>(config_.cores));
  s.memory_utilization = 0.0;  // in-memory store: not a constraint here
  return s;
}

std::string StorageServer::pipeline_rate_key(const kernels::OperationSpec& spec) const {
  const std::string ops = spec.get("ops", "");
  std::string bottleneck = "pipe";  // unknown unless every stage has rates
  BytesPerSec slowest = 0.0;
  std::size_t pos = 0;
  while (pos <= ops.size() && !ops.empty()) {
    auto bar = ops.find('|', pos);
    if (bar == std::string::npos) bar = ops.size();
    auto stage = kernels::PipelineKernel::parse_stage(ops.substr(pos, bar - pos));
    if (!stage.is_ok()) return "pipe";
    auto rates = ce_.rates().get(stage.value().kernel);
    if (!rates.is_ok()) return "pipe";
    if (slowest == 0.0 || rates.value().storage_max < slowest) {
      slowest = rates.value().storage_max;
      bottleneck = stage.value().kernel;
    }
    pos = bar + 1;
    if (bar == ops.size()) break;
  }
  return bottleneck;
}

Bytes StorageServer::result_size_for(const std::string& operation, Bytes input) {
  {
    std::lock_guard lock(mu_);
    auto it = hsize_cache_.find(operation);
    if (it != hsize_cache_.end() && it->second.first == input) return it->second.second;
  }
  auto kernel = registry_.create(operation);
  const Bytes h = kernel.is_ok() ? kernel.value()->result_size(input) : 0;
  {
    std::lock_guard lock(mu_);
    hsize_cache_[operation] = {input, h};
  }
  return h;
}

void StorageServer::evaluate_policy() {
  obs::ScopedTrace span(obs_name_ + ".evaluate_policy", "ce");
  // Snapshot the schedulable queue (queued + running, not yet demoted).
  struct Item {
    sched::RequestId id;
    std::string op;
    Bytes length;
  };
  std::vector<Item> items;
  {
    std::lock_guard lock(mu_);
    for (const auto& [id, entry] : entries_) {
      if (entry->state == EntryState::kDone || entry->reject_before_start) continue;
      if (entry->interrupt->load()) continue;  // already being interrupted
      items.push_back({id, entry->request.operation, entry->request.length});
    }
  }
  if (items.empty()) return;

  // Group by kernel name (the rate table is keyed by kernel, not by the
  // full parameterized operation string); the cost model is per-op
  // (paper §III-D). Pipelines are scheduled under their rate-table
  // bottleneck stage — the slowest stage dominates a streaming chain.
  std::map<std::string, std::vector<sched::ActiveRequest>> groups;
  for (const auto& item : items) {
    auto spec = kernels::OperationSpec::parse(item.op);
    std::string key = spec.is_ok() ? spec.value().kernel : item.op;
    if (spec.is_ok() && spec.value().kernel == "pipe") {
      key = pipeline_rate_key(spec.value());
    }
    groups[key].push_back(sched::ActiveRequest{
        item.id, item.length, result_size_for(item.op, item.length), item.op});
  }

  for (const auto& [op, requests] : groups) {
    auto policy = ce_.schedule(op, requests);
    if (!policy.is_ok()) {
      // No rates for this op: leave it active (never schedule blind
      // demotions) and note it once.
      DOSAS_LOG_DEBUG("no cost model for op '%s'; leaving %zu request(s) active", op.c_str(),
                      requests.size());
      continue;
    }
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (policy.value().active[i]) continue;
      auto it = entries_.find(requests[i].id);
      if (it == entries_.end()) continue;  // completed meanwhile
      auto& entry = *it->second;
      if (entry.state == EntryState::kQueued) {
        entry.reject_before_start = true;
        obs::flight_record(obs::FlightEventKind::kDemotion, entry.request.trace.trace_id,
                           server_id_, requests[i].id, "queued request demoted by policy");
        if (obs::tracing_enabled() && entry.request.trace.valid()) {
          obs::Tracer::global().instant(obs_name_ + ".demote", "ce",
                                        entry.request.trace.child("demote"));
        }
      } else if (entry.state == EntryState::kRunning) {
        // Hysteresis: nearly-finished kernels are cheaper to let complete
        // than to checkpoint, ship, and re-run remotely.
        const Bytes done = entry.progress->load(std::memory_order_relaxed);
        const Bytes total = entry.request.length;
        const Bytes remaining = total > done ? total - done : 0;
        if (static_cast<double>(remaining) >
            config_.interrupt_min_remaining * static_cast<double>(total)) {
          entry.interrupt->store(true);
          if (obs::metrics_enabled()) obs::count(obs_name_ + ".interrupts_signalled");
          obs::flight_record(obs::FlightEventKind::kInterrupt, entry.request.trace.trace_id,
                             server_id_, requests[i].id, "running kernel interrupt signalled");
          if (obs::tracing_enabled() && entry.request.trace.valid()) {
            obs::Tracer::global().instant(obs_name_ + ".interrupt", "ce",
                                          entry.request.trace.child("interrupt"));
          }
        }
      }
    }
  }
}

void StorageServer::run_kernel(sched::RequestId id) {
  std::shared_ptr<Entry> entry;
  ActiveIoRequest request;
  std::shared_ptr<std::atomic<bool>> interrupt;
  std::shared_ptr<std::atomic<Bytes>> progress;
  std::shared_ptr<fault::FaultInjector> fi;
  Seconds enqueued_at = 0;
  bool rejected = false;  // snapshot under mu_: cancel_active writes the flag
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;  // every waiter cancelled before start
    entry = it->second;
    rejected = entry->reject_before_start;
    if (rejected) {
      // Completed via complete_entry below, outside mu_.
    } else {
      entry->state = EntryState::kRunning;
    }
    request = entry->request;
    interrupt = entry->interrupt;
    progress = entry->progress;
    enqueued_at = entry->enqueued_at;
    fi = faults_;
  }
  if (rejected) {
    ActiveIoResponse resp;
    resp.outcome = ActiveOutcome::kRejected;
    resp.status = error(ErrorCode::kRejected, "demoted to normal I/O before start");
    complete_entry(id, entry, std::move(resp), 0);
    return;
  }
  if (fi != nullptr) fi->note_kernel_start(server_id_);

  // Queue-wait stage: registration -> this launch, emitted as a span that
  // joins the request's causal tree and closes the client's flow arrow on
  // this worker thread.
  {
    const bool tracing = obs::tracing_enabled();
    const bool metrics = obs::metrics_enabled();
    if (tracing || metrics) {
      const double wait_us = (clock().now() - enqueued_at) * 1e6;
      if (tracing && request.trace.valid()) {
        auto& tracer = obs::Tracer::global();
        const auto qctx = request.trace.child("queue");
        tracer.complete(obs_name_ + ".queue_wait", "server", tracer.now_us() - wait_us,
                        wait_us, qctx);
        tracer.flow_finish(obs_name_ + ".queue_wait", "flow", request.trace.span_id, qctx);
      }
      if (metrics) {
        obs::observe("stage.queue_wait_us." + stage_class(request.operation), wait_us,
                     request.trace.trace_id);
      }
    }
  }
  obs::flight_record(obs::FlightEventKind::kStateTransition, request.trace.trace_id,
                     server_id_, id, "kernel launched");

  // Completion delivery is the LAST thing this worker does for the
  // request: the waiter it unblocks may immediately finish the run and
  // snapshot the trace/metrics, so every observable side effect — the
  // kernel span above all — must land first.
  ActiveIoResponse resp;
  Bytes done_bytes = 0;
  {
    obs::ScopedTrace span(request.operation, "kernel", request.trace.child("kernel"));
    const bool obs_on = obs::metrics_enabled();
    const double t0 = obs_on ? obs::now_us() : 0.0;

    [&] {
      auto kernel_or = registry_.create(request.operation);
      if (!kernel_or.is_ok()) {
        resp.outcome = ActiveOutcome::kFailed;
        resp.status = kernel_or.status();
        return;
      }
      auto kernel = std::move(kernel_or).value();
      try {
        kernel->reset();

        Bytes from = request.object_offset;
        if (request.is_resumption()) {
          // Cooperative resumption: adopt the shipped state and continue. A
          // corrupted checkpoint fails the decode's checksum (kCorrupted) and
          // the request fails typed — never a silent restart from zero state.
          auto decoded = Checkpoint::decode(request.resume_checkpoint);
          Status restored =
              decoded.is_ok() ? kernel->restore(decoded.value()) : decoded.status();
          if (!restored.is_ok()) {
            resp.outcome = ActiveOutcome::kFailed;
            resp.status = restored;
            return;
          }
          from = request.resume_from;
        }

        const auto& ds = fs_.data_server(server_id_);
        // Version observed before the scan: the result is cacheable only if
        // the object is unchanged when the kernel finishes.
        const std::uint64_t version_at_start = ds.object_version(request.handle);
        const Bytes end = request.object_offset + request.length;

        // Why the kernel stopped, when it did: the stop check below folds the
        // scheduler's interrupt flag and the injected node crash into one
        // chunk-granular poll (paper §III-C's interruption-check interval).
        enum class StopCause { kNone, kInterrupt, kCrash };
        StopCause cause = StopCause::kNone;
        auto stop = [&]() -> bool {
          if (interrupt->load()) {
            cause = StopCause::kInterrupt;
            return true;
          }
          if (fi != nullptr && fi->node_crashed(server_id_)) {
            cause = StopCause::kCrash;
            return true;
          }
          if (fi != nullptr) {
            // Straggler injection: sleep in interruptible slices so a
            // timed-out (abandoned) request stops stalling the worker
            // promptly. Slices run on the injected clock — deterministic
            // jumps under DST.
            Seconds stall = fi->inject_stall(server_id_);
            while (stall > 0.0 && !interrupt->load()) {
              const Seconds slice = std::min(stall, 0.005);
              clock().sleep(slice);
              stall -= slice;
            }
            if (fi->inject_kernel_throw(server_id_)) {
              throw std::runtime_error("injected kernel fault");
            }
          }
          return false;
        };
        auto read = [&](Bytes pos, Bytes len) {
          return ds.read_object_ref(request.handle, pos, len);
        };
        // Calibrated pacing (config_.pace_kernel_rates): charge each chunk
        // its cost at the table's storage-side rate for this operation —
        // the same S_{C,op} the CE's cost model predicts with. On the
        // injected clock, so a VirtualClock turns the sleeps into
        // deterministic jumps.
        double pace_rate = 0.0;
        if (config_.pace_kernel_rates) {
          auto spec = kernels::OperationSpec::parse(request.operation);
          std::string rate_key = spec.is_ok() ? spec.value().kernel : request.operation;
          if (spec.is_ok() && spec.value().kernel == "pipe") {
            rate_key = pipeline_rate_key(spec.value());
          }
          if (auto rates = ce_.rates().get(rate_key); rates.is_ok()) {
            pace_rate = rates.value().storage_max;
            if (config_.capacity_factor > 0.0) pace_rate *= config_.capacity_factor;
          }
        }
        auto note_progress = [&](Bytes chunk, Bytes total) {
          progress->store(total, std::memory_order_relaxed);
          if (pace_rate > 0.0 && chunk > 0) {
            clock().sleep(static_cast<double>(chunk) / pace_rate);
          }
        };

        auto streamed = kernels::stream_extent(*kernel, from, end, config_.chunk_size, read,
                                               stop, note_progress);
        if (!streamed.is_ok()) {
          resp.outcome = ActiveOutcome::kFailed;
          resp.status = streamed.status();
          done_bytes = progress->load(std::memory_order_relaxed);
          return;
        }
        const Bytes processed = streamed.value().processed;

        if (streamed.value().stopped) {
          resp.outcome = ActiveOutcome::kInterrupted;
          resp.checkpoint = kernel->checkpoint().encode();
          if (fi != nullptr) fi->inject_checkpoint_corruption(resp.checkpoint);
          resp.resume_offset = streamed.value().position;
          resp.status =
              cause == StopCause::kCrash
                  ? error(ErrorCode::kUnavailable,
                          "storage node crashed mid-kernel; checkpoint flushed")
                  : error(ErrorCode::kInterrupted, "kernel interrupted by scheduling policy");
          done_bytes = processed;
          return;
        }

        resp.outcome = ActiveOutcome::kCompleted;
        resp.result = BufferRef::adopt(kernel->finalize());
        // Resumed results are not cacheable: part of the scan predates
        // version_at_start, so freshness cannot be vouched for.
        if (!request.is_resumption()) cache_insert(request, version_at_start, resp.result);
        if (obs_on && processed > 0) {
          const double secs = (obs::now_us() - t0) * 1e-6;
          if (secs > 0.0) {
            const std::string kernel_key =
                request.operation.substr(0, request.operation.find(':'));
            obs::observe(obs_name_ + ".kernel_mibps." + kernel_key,
                         static_cast<double>(processed) / (1024.0 * 1024.0) / secs);
          }
        }
        done_bytes = processed;
      } catch (const std::exception& e) {
        // A throwing kernel fails its own request, never the worker (and
        // never the process): surface a typed error and count it.
        {
          std::lock_guard lock(mu_);
          ++stats_.kernel_exceptions;
        }
        if (obs_on) obs::count(obs_name_ + ".kernel_exceptions");
        resp.outcome = ActiveOutcome::kFailed;
        resp.status = error(ErrorCode::kInternal, std::string("kernel threw: ") + e.what());
        done_bytes = 0;
      } catch (...) {
        {
          std::lock_guard lock(mu_);
          ++stats_.kernel_exceptions;
        }
        if (obs_on) obs::count(obs_name_ + ".kernel_exceptions");
        resp.outcome = ActiveOutcome::kFailed;
        resp.status = error(ErrorCode::kInternal, "kernel threw a non-std exception");
        done_bytes = 0;
      }
    }();
    if (obs_on) {
      obs::observe("stage.kernel_exec_us." + stage_class(request.operation),
                   obs::now_us() - t0, request.trace.trace_id);
    }
  }
  complete_entry(id, entry, std::move(resp), done_bytes);
}

StorageServer::Stats StorageServer::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t StorageServer::inflight() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry->state != EntryState::kDone) ++n;
  }
  return n;
}

}  // namespace dosas::server
