// system_status.hpp — the storage-node state the Contention Estimator probes.
//
// Paper §III-A: "A Contention Estimator (CE) periodically probes the system
// state, including CPU utilization, memory utilization and I/O queue."
// This struct is one probe sample; the CE smooths a stream of them.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace dosas::server {

struct SystemStatus {
  std::size_t queued_active = 0;    ///< active I/O requests waiting for a core
  std::size_t queued_normal = 0;    ///< normal I/O requests in the service queue
  std::size_t running_kernels = 0;  ///< kernels currently executing
  double cpu_utilization = 0.0;     ///< [0,1] share of node cores busy
  double memory_utilization = 0.0;  ///< [0,1] share of node memory committed
  Bytes queued_bytes = 0;           ///< total data requested by queued I/O (D)
};

}  // namespace dosas::server
