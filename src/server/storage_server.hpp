// storage_server.hpp — the Active Storage Server (ASS): one per storage
// node, wrapping that node's PFS data server.
//
// Composition per paper Fig. 3: the Active I/O Runtime (R) executes kernels
// against locally stored objects on a worker pool sized to the node's
// cores; the Contention Estimator (CE) turns probe data into scheduling
// policies; the ASS enforces them:
//
//   * an arriving active request the policy demotes is REJECTED (the
//     client serves it as normal I/O),
//   * a queued request the policy demotes is rejected before it starts,
//   * a RUNNING kernel the policy demotes is INTERRUPTED: it checkpoints
//     its variables and the response carries the checkpoint plus the
//     resume offset (paper §III-C's three cases).
//
// serve_active() is a synchronous RPC-style call, safe from many client
// threads concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/thread_pool.hpp"
#include "common/token_bucket.hpp"
#include "fault/fault.hpp"
#include "kernels/registry.hpp"
#include "pfs/file_system.hpp"
#include "server/contention_estimator.hpp"
#include "server/messages.hpp"

namespace dosas::server {

/// StorageServer construction options (namespace-scope so it is complete
/// where member declarations use it as a default argument).
struct StorageServerConfig {
  std::size_t cores = 2;        ///< worker pool size (paper: 2-core nodes)
  Bytes chunk_size = 4_MiB;     ///< kernel streaming granularity; also the
                                ///< interruption-check interval
  bool policy_on_arrival = true;  ///< run the CE policy on every arrival
  /// Interruption hysteresis: only interrupt a running kernel while more
  /// than this fraction of its input remains unprocessed (0 = the paper's
  /// unconditional behaviour; 1 = never interrupt). See the interruption
  /// ablation bench for why a nonzero value can pay off.
  double interrupt_min_remaining = 0.0;
  /// Active-result cache capacity in entries (0 disables). Completed
  /// (handle, extent, operation) results are cached and served instantly
  /// while the object version is unchanged — repeated analytics over cold
  /// data cost one kernel run. LRU eviction.
  std::size_t result_cache_entries = 0;
};

class StorageServer {
 public:
  using Config = StorageServerConfig;

  struct Stats {
    std::uint64_t active_completed = 0;
    std::uint64_t active_rejected = 0;
    std::uint64_t active_interrupted = 0;
    std::uint64_t active_failed = 0;
    Bytes active_bytes_processed = 0;  ///< bytes streamed through kernels here
    Bytes normal_bytes_served = 0;     ///< bytes served as normal I/O
    std::uint64_t normal_requests = 0;
    std::uint64_t cache_hits = 0;      ///< active requests served from the result cache
    std::uint64_t cache_misses = 0;    ///< cache-enabled requests that ran a kernel
    std::uint64_t active_timed_out = 0;   ///< requests abandoned at their deadline
    std::uint64_t kernel_exceptions = 0;  ///< kernels that threw (caught -> kFailed)
    std::uint64_t pool_rejections = 0;    ///< submits refused (pool shut down)
    std::uint64_t crash_rejections = 0;   ///< active requests refused: node "crashed"
  };

  StorageServer(pfs::FileSystem& fs, pfs::ServerId server_id, kernels::Registry registry,
                ContentionEstimator::Config ce_config, RateTable rates, Config config = {});
  ~StorageServer();

  StorageServer(const StorageServer&) = delete;
  StorageServer& operator=(const StorageServer&) = delete;

  /// Normal I/O: read a byte extent of this server's object for `handle`.
  Result<std::vector<std::uint8_t>> serve_normal(pfs::FileHandle handle, Bytes object_offset,
                                                 Bytes length);

  /// Active I/O: run the request's kernel over the object extent, subject
  /// to the CE policy. Blocks until completion, rejection, or interruption.
  ActiveIoResponse serve_active(ActiveIoRequest request);

  /// Batch (collective) active I/O: register every request, evaluate the
  /// scheduling policy ONCE over the combined queue, then execute. Avoids
  /// the admit-then-interrupt churn that per-arrival evaluation causes
  /// when many requests land together (see the interruption ablation).
  /// Responses are positionally aligned with `requests`.
  std::vector<ActiveIoResponse> serve_active_batch(std::vector<ActiveIoRequest> requests);

  /// Probe the node state into the CE and re-apply the scheduling policy
  /// to the current queue (the CE's periodic tick; tests call it directly).
  void probe();

  /// Attach a (usually cluster-shared) network rate model: every byte this
  /// server sends — normal I/O data, kernel results, checkpoints — is
  /// charged against it. Virtual mode accounts delay without sleeping;
  /// real mode actually paces the transfers. Pass nullptr to detach.
  void set_network(std::shared_ptr<TokenBucket> link) { network_ = std::move(link); }

  /// Attach a (usually cluster-shared) fault injector. While this node is
  /// marked crashed, serve_active fails with kUnavailable (the normal-I/O
  /// data path keeps serving, as in a PFS whose active runtime died);
  /// running kernels may be injected with throws, stalls, and checkpoint
  /// corruption per the injector's spec. Pass nullptr to detach.
  void set_fault_injector(std::shared_ptr<fault::FaultInjector> fi);

  pfs::ServerId server_id() const { return server_id_; }
  ContentionEstimator& estimator() { return ce_; }
  const kernels::Registry& registry() const { return registry_; }
  Stats stats() const;

  /// Current in-flight active request count (queued + running).
  std::size_t inflight() const;

 private:
  enum class EntryState { kQueued, kRunning, kDone };

  struct Entry {
    ActiveIoRequest request;
    EntryState state = EntryState::kQueued;
    bool reject_before_start = false;
    std::shared_ptr<std::atomic<bool>> interrupt;
    std::shared_ptr<std::atomic<Bytes>> progress;  ///< bytes processed so far
    ActiveIoResponse response;
    bool response_ready = false;
  };

  /// Build the CE queue snapshot, run the scheduler per operation group,
  /// and apply demotions (reject queued / interrupt running). Caller must
  /// NOT hold mu_.
  void evaluate_policy();

  /// Insert a request into the entry table (assigning an id if needed).
  std::pair<sched::RequestId, std::shared_ptr<Entry>> register_entry(ActiveIoRequest request);

  /// If the entry was demoted before starting, fill `rejected_response`
  /// and return false; otherwise submit its kernel to the pool.
  bool launch_or_reject(sched::RequestId id, const std::shared_ptr<Entry>& entry,
                        ActiveIoResponse& rejected_response);

  /// Block until the entry's response is ready; collect it and the stats.
  ActiveIoResponse await_entry(sched::RequestId id, const std::shared_ptr<Entry>& entry);

  /// Result-cache lookup; nullopt on miss/disabled/stale. Updates stats.
  std::optional<ActiveIoResponse> cache_lookup(const ActiveIoRequest& request);

  /// Insert a completed result if the object is still at `version`.
  void cache_insert(const ActiveIoRequest& request, std::uint64_t version,
                    const std::vector<std::uint8_t>& result);

  /// Worker-pool body for one request.
  void run_kernel(sched::RequestId id);

  /// h(d) for an operation, via a throwaway kernel instance (cached).
  Bytes result_size_for(const std::string& operation, Bytes input);

  /// Snapshot of the attached injector (nullable); takes mu_.
  std::shared_ptr<fault::FaultInjector> faults() const;

  /// Fail an un-launched request because this node is "crashed": a typed
  /// kFailed/kUnavailable response the client recovers from locally.
  static ActiveIoResponse crashed_response(pfs::ServerId server_id);

  /// Scheduling group for a "pipe" operation: the stage with the lowest
  /// storage rate (the chain's bottleneck), or "pipe" (no rates -> stays
  /// active under DOSAS) when any stage is unknown.
  std::string pipeline_rate_key(const kernels::OperationSpec& spec) const;

  SystemStatus snapshot_status_locked() const;

  /// Update the `server<id>.queue_depth` gauge/histogram; caller holds mu_.
  void obs_queue_depth_locked() const;

  pfs::FileSystem& fs_;
  const pfs::ServerId server_id_;
  kernels::Registry registry_;
  ContentionEstimator ce_;
  Config config_;
  const std::string obs_name_;  ///< metric prefix: "server<id>"

  mutable std::mutex mu_;
  std::condition_variable response_cv_;
  std::map<sched::RequestId, std::shared_ptr<Entry>> entries_;
  sched::RequestId next_id_ = 1;
  Stats stats_;
  std::shared_ptr<TokenBucket> network_;
  std::shared_ptr<fault::FaultInjector> faults_;
  std::size_t normal_inflight_ = 0;

  // Cache of h(d)-per-byte behaviour: operation -> (probe input, result).
  std::map<std::string, std::pair<Bytes, Bytes>> hsize_cache_;

  // Active-result cache (LRU by last_use tick).
  struct CacheKey {
    pfs::FileHandle handle;
    Bytes offset;
    Bytes length;
    std::string operation;
    auto operator<=>(const CacheKey&) const = default;
  };
  struct CacheEntry {
    std::uint64_t version = 0;
    std::vector<std::uint8_t> result;
    std::uint64_t last_use = 0;
  };
  std::map<CacheKey, CacheEntry> result_cache_;
  std::uint64_t cache_tick_ = 0;

  ThreadPool pool_;  // last member: destroyed (joined) first
};

}  // namespace dosas::server
