// storage_server.hpp — the Active Storage Server (ASS): one per storage
// node, wrapping that node's PFS data server.
//
// Composition per paper Fig. 3: the Active I/O Runtime (R) executes kernels
// against locally stored objects on a worker pool sized to the node's
// cores; the Contention Estimator (CE) turns probe data into scheduling
// policies; the ASS enforces them:
//
//   * an arriving active request the policy demotes is REJECTED (the
//     client serves it as normal I/O),
//   * a queued request the policy demotes is rejected before it starts,
//   * a RUNNING kernel the policy demotes is INTERRUPTED: it checkpoints
//     its variables and the response carries the checkpoint plus the
//     resume offset (paper §III-C's three cases).
//
// The dispatch surface is ASYNCHRONOUS — submit_active() registers the
// request and returns immediately; the completion callback fires exactly
// once from a worker (or the submitting thread, for synchronous outcomes
// such as rejection at arrival and cache hits). This is the
// Transport-facing interface the rpc layer drives; serve_active() remains
// as a thin blocking wrapper over it for direct callers.
//
// Identical in-flight requests — same (handle, extent, operation) — are
// COALESCED: the second submission attaches as an extra waiter on the
// first's entry and both receive the one kernel run's result. Repeated
// hot-object analytics from many clients cost one execution per wave.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "kernels/registry.hpp"
#include "pfs/file_system.hpp"
#include "server/contention_estimator.hpp"
#include "server/messages.hpp"

namespace dosas::server {

/// StorageServer construction options (namespace-scope so it is complete
/// where member declarations use it as a default argument).
struct StorageServerConfig {
  std::size_t cores = 2;        ///< worker pool size (paper: 2-core nodes)
  Bytes chunk_size = 4_MiB;     ///< kernel streaming granularity; also the
                                ///< interruption-check interval
  bool policy_on_arrival = true;  ///< run the CE policy on every arrival
  /// Interruption hysteresis: only interrupt a running kernel while more
  /// than this fraction of its input remains unprocessed (0 = the paper's
  /// unconditional behaviour; 1 = never interrupt). See the interruption
  /// ablation bench for why a nonzero value can pay off.
  double interrupt_min_remaining = 0.0;
  /// Active-result cache capacity in entries (0 disables). Completed
  /// (handle, extent, operation) results are cached and served instantly
  /// while the object version is unchanged — repeated analytics over cold
  /// data cost one kernel run. LRU eviction.
  std::size_t result_cache_entries = 0;
  /// Coalesce identical in-flight (handle, extent, operation) requests
  /// onto one kernel run. Off by default: coalescing changes what the
  /// scheduler sees (N twins become one queue entry), which contention
  /// experiments must not silently absorb. Opt in for serving workloads
  /// with hot-object fan-in.
  bool coalesce_identical = false;
  /// CE probe period in seconds (0 disables). When set, a timer thread
  /// calls probe() every interval on the injected clock — the paper's
  /// periodic Contention Estimator tick. Under a VirtualClock the ticks
  /// are deterministic jumps; tests may still call probe() directly.
  Seconds probe_interval = 0.0;
  /// Pace kernel execution at the rate table's S_{C,op} (the calibrated
  /// storage-side rate the CE schedules against): each streamed chunk
  /// sleeps chunk/S on the injected clock. Under a VirtualClock this makes
  /// the real runtime's kernel timing match the sim_model's assumptions —
  /// the scale harness's paper-rate cluster (see scale/harness.hpp).
  /// Operations without table rates run unpaced.
  bool pace_kernel_rates = false;
  /// Relative kernel-CPU capacity of this node, applied to the paced rate
  /// (effective rate = S_{C,op} × capacity_factor). 0.25 models a node
  /// whose kernel CPU runs at quarter speed — the real-runtime counterpart
  /// of the DES's MultiNodeConfig::node_capacity_factor straggler knob.
  /// Only meaningful with pace_kernel_rates; values <= 0 mean 1.0.
  double capacity_factor = 1.0;
};

class StorageServer {
 public:
  using Config = StorageServerConfig;

  /// Async completion hook: fires exactly once per accepted waiter, from a
  /// worker thread or the submitting thread. Must not block on this
  /// server's own completion paths.
  using ActiveCompletion = std::function<void(ActiveIoResponse)>;

  /// Handle for one async submission; pass to cancel_active(). id == 0
  /// means the request completed synchronously at submit (cache hit,
  /// crashed node, immediate rejection) and cannot be cancelled.
  struct ActiveTicket {
    sched::RequestId id = 0;
    std::uint64_t waiter = 0;
    bool coalesced = false;  ///< attached to an identical in-flight entry
  };

  struct Stats {
    std::uint64_t active_completed = 0;
    std::uint64_t active_rejected = 0;
    std::uint64_t active_interrupted = 0;
    std::uint64_t active_failed = 0;
    Bytes active_bytes_processed = 0;  ///< bytes streamed through kernels here
    Bytes normal_bytes_served = 0;     ///< bytes served as normal I/O reads
    Bytes normal_bytes_written = 0;    ///< bytes accepted as normal I/O writes
    std::uint64_t normal_requests = 0;
    std::uint64_t cache_hits = 0;      ///< active requests served from the result cache
    std::uint64_t cache_misses = 0;    ///< cache-enabled requests that ran a kernel
    std::uint64_t cache_evictions = 0;      ///< LRU victims displaced by inserts
    std::uint64_t cache_invalidations = 0;  ///< entries dropped: object version moved
    std::uint64_t active_timed_out = 0;   ///< requests abandoned at their deadline
    std::uint64_t active_cancelled = 0;   ///< waiters withdrawn before completion
    std::uint64_t active_coalesced = 0;   ///< submissions merged onto an in-flight twin
    std::uint64_t kernel_exceptions = 0;  ///< kernels that threw (caught -> kFailed)
    std::uint64_t pool_rejections = 0;    ///< submits refused (pool shut down)
    std::uint64_t crash_rejections = 0;   ///< active requests refused: node "crashed"
    std::uint64_t probe_ticks = 0;        ///< timer-driven CE probes fired
  };

  StorageServer(pfs::FileSystem& fs, pfs::ServerId server_id, kernels::Registry registry,
                ContentionEstimator::Config ce_config, RateTable rates, Config config = {});
  ~StorageServer();

  StorageServer(const StorageServer&) = delete;
  StorageServer& operator=(const StorageServer&) = delete;

  /// Normal I/O: read a byte extent of this server's object for `handle`.
  /// Returns a ref-counted view of the data server's arena slab — the
  /// bytes flow to the client without another owning copy. (Network byte
  /// charging is the transport's job — see rpc::NetChargeTransport — not
  /// this data path's.)
  Result<BufferRef> serve_normal(pfs::FileHandle handle, Bytes object_offset,
                                 Bytes length);

  /// Normal I/O: write a byte extent of this server's object for `handle`.
  /// `data` is a ref-counted view of the client's buffer; the data server's
  /// terminal store is the single copy on the write path.
  Status serve_write(pfs::FileHandle handle, Bytes object_offset, const BufferRef& data);

  /// Async active I/O: enqueue the request under the CE policy and return.
  /// `done` fires exactly once with the outcome (completion, rejection,
  /// interruption, or failure). Identical in-flight requests coalesce.
  ActiveTicket submit_active(ActiveIoRequest request, ActiveCompletion done);

  /// Async batch (collective) submission: every request is registered
  /// first, the scheduling policy is evaluated ONCE over the combined
  /// queue, then kernels launch. Avoids the admit-then-interrupt churn of
  /// per-arrival evaluation when many requests land together. `dones`
  /// aligns positionally with `requests`.
  std::vector<ActiveTicket> submit_active_batch(std::vector<ActiveIoRequest> requests,
                                                std::vector<ActiveCompletion> dones);

  /// Withdraw a waiter before its completion fires: a queued request whose
  /// waiters all cancel never starts; a running one is interrupted and its
  /// late result discarded. Returns false when the completion already
  /// fired (or is firing) — `done` ran or will run with the real outcome.
  /// After a true return, `done` will never be invoked. `reason` is
  /// counted as a timeout when its code is kTimedOut.
  bool cancel_active(const ActiveTicket& ticket, const Status& reason);

  /// Blocking active I/O — a thin wrapper over submit_active() that waits
  /// for the completion, honouring request.timeout (cancel + kTimedOut on
  /// expiry) exactly as the transport's deadline watchdog does for async
  /// callers.
  ActiveIoResponse serve_active(ActiveIoRequest request);

  /// Blocking batch wrapper over submit_active_batch(). Responses are
  /// positionally aligned with `requests`.
  std::vector<ActiveIoResponse> serve_active_batch(std::vector<ActiveIoRequest> requests);

  /// Probe the node state into the CE and re-apply the scheduling policy
  /// to the current queue (the CE's periodic tick; tests call it directly).
  void probe();

  /// Attach a (usually cluster-shared) fault injector. While this node is
  /// marked crashed, serve_active fails with kUnavailable (the normal-I/O
  /// data path keeps serving, as in a PFS whose active runtime died);
  /// running kernels may be injected with throws, stalls, and checkpoint
  /// corruption per the injector's spec. Pass nullptr to detach.
  void set_fault_injector(std::shared_ptr<fault::FaultInjector> fi);

  pfs::ServerId server_id() const { return server_id_; }
  ContentionEstimator& estimator() { return ce_; }
  const kernels::Registry& registry() const { return registry_; }
  Stats stats() const;

  /// Contention counters of the worker pool's lock-free dispatch ring
  /// (snapshot; benches aggregate these into cas_retries_per_req).
  RingStats dispatch_ring_stats() const { return pool_.ring_stats(); }

  /// Current in-flight active request count (queued + running entries).
  std::size_t inflight() const;

 private:
  enum class EntryState { kQueued, kRunning, kDone };

  struct Waiter {
    std::uint64_t id = 0;
    ActiveCompletion done;
  };

  struct Entry {
    ActiveIoRequest request;
    EntryState state = EntryState::kQueued;
    bool reject_before_start = false;
    std::shared_ptr<std::atomic<bool>> interrupt;
    std::shared_ptr<std::atomic<Bytes>> progress;  ///< bytes processed so far
    std::vector<Waiter> waiters;
    Seconds enqueued_at = 0;  ///< clock().now() at registration (queue-wait stage)
  };

  /// Build the CE queue snapshot, run the scheduler per operation group,
  /// and apply demotions (reject queued / interrupt running). Caller must
  /// NOT hold mu_.
  void evaluate_policy();

  /// Under mu_: find an in-flight entry this request can coalesce onto.
  std::shared_ptr<Entry> find_coalesce_locked(const ActiveIoRequest& request);

  /// Insert a request into the entry table (assigning an id if needed).
  std::pair<sched::RequestId, std::shared_ptr<Entry>> register_entry(ActiveIoRequest request,
                                                                     Waiter waiter);

  /// If the entry was demoted before starting, complete its waiters with a
  /// rejection and return false; otherwise submit its kernel to the pool.
  bool launch_or_reject(sched::RequestId id, const std::shared_ptr<Entry>& entry);

  /// Remove the entry, count per-waiter outcome stats, and fire the
  /// completion callbacks (outside mu_). No-op if the entry was abandoned.
  void complete_entry(sched::RequestId id, const std::shared_ptr<Entry>& entry,
                      ActiveIoResponse response, Bytes processed);

  /// Count one waiter's outcome into stats_/obs; caller holds mu_.
  void count_outcome_locked(const ActiveIoResponse& response);

  /// Result-cache lookup; nullopt on miss/disabled/stale. Updates stats.
  std::optional<ActiveIoResponse> cache_lookup(const ActiveIoRequest& request);

  /// Insert a completed result if the object is still at `version`. The
  /// cache shares `result`'s slab (ref-counted); no owning copy is cut.
  void cache_insert(const ActiveIoRequest& request, std::uint64_t version,
                    const BufferRef& result);

  /// Worker-pool body for one request.
  void run_kernel(sched::RequestId id);

  /// h(d) for an operation, via a throwaway kernel instance (cached).
  Bytes result_size_for(const std::string& operation, Bytes input);

  /// Snapshot of the attached injector (nullable); takes mu_.
  std::shared_ptr<fault::FaultInjector> faults() const;

  /// Fail an un-launched request because this node is "crashed": a typed
  /// kFailed/kUnavailable response the client recovers from locally.
  static ActiveIoResponse crashed_response(pfs::ServerId server_id);

  /// Scheduling group for a "pipe" operation: the stage with the lowest
  /// storage rate (the chain's bottleneck), or "pipe" (no rates -> stays
  /// active under DOSAS) when any stage is unknown.
  std::string pipeline_rate_key(const kernels::OperationSpec& spec) const;

  SystemStatus snapshot_status_locked() const;

  /// Update the `server<id>.queue_depth` gauge/histogram; caller holds mu_.
  void obs_queue_depth_locked() const;

  pfs::FileSystem& fs_;
  const pfs::ServerId server_id_;
  kernels::Registry registry_;
  ContentionEstimator ce_;
  Config config_;
  const std::string obs_name_;  ///< metric prefix: "server<id>"

  mutable std::mutex mu_;
  std::map<sched::RequestId, std::shared_ptr<Entry>> entries_;
  sched::RequestId next_id_ = 1;
  std::uint64_t next_waiter_ = 1;
  Stats stats_;
  std::shared_ptr<fault::FaultInjector> faults_;
  std::size_t normal_inflight_ = 0;

  // Cache of h(d)-per-byte behaviour: operation -> (probe input, result).
  std::map<std::string, std::pair<Bytes, Bytes>> hsize_cache_;

  // Active-result cache (LRU by last_use tick).
  struct CacheKey {
    pfs::FileHandle handle;
    Bytes offset;
    Bytes length;
    std::string operation;
    auto operator<=>(const CacheKey&) const = default;
  };
  /// Slab-backed cache entry: `result` is a ref-counted view of the arena
  /// slab the kernel finalized into. Hits hand out another view of the
  /// same slab — a cache hit never copies the payload. `version` pins the
  /// per-object mutation counter (data_server.hpp) the result was computed
  /// at; a lookup observing a newer version drops the entry.
  struct CacheEntry {
    std::uint64_t version = 0;
    BufferRef result;
    std::uint64_t last_use = 0;
  };
  std::map<CacheKey, CacheEntry> result_cache_;
  std::uint64_t cache_tick_ = 0;

  /// Periodic CE probe tick (config_.probe_interval > 0): body of the
  /// probe timer thread.
  void probe_loop();

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;

  ThreadPool pool_;     // workers joined by ~StorageServer via shutdown()
  std::thread prober_;  // stopped and joined first in ~StorageServer
};

}  // namespace dosas::server
