// sensor_outliers — stripe-parallel active analytics with mergeable kernels.
//
// A day of high-rate sensor readings (~12 MiB of doubles) is striped across
// a 4-node volume. Three active reads answer the operator's questions
// without moving the dataset:
//
//   * topk:      the 10 most extreme readings (candidate faults),
//   * histogram: the distribution of readings,
//   * reservoir: a 64-point uniform sample for a quick-look plot.
//
// All three kernels are stripe-mergeable, so the ASC fans each request out
// to every storage node, each node scans only its local stripes, and the
// client merges four partial results — the Piernas-style striped active
// storage the paper cites as the state of the art.
//
//   ./examples/sensor_outliers
#include <cmath>
#include <cstdio>

#include "core/cluster.hpp"
#include "kernels/histogram.hpp"
#include "kernels/reservoir.hpp"
#include "kernels/topk.hpp"

namespace {

/// Sensor model: a daily sine + noise, with rare large spikes.
double reading(std::size_t i) {
  const double t = static_cast<double>(i) / 86400.0;
  const double base = 20.0 + 5.0 * std::sin(t * 6.28318);
  const double noise = 0.5 * std::sin(static_cast<double>(i) * 12.9898);
  const bool spike = (i * 2654435761u) % 100000 < 3;
  return base + noise + (spike ? 35.0 + static_cast<double>(i % 7) : 0.0);
}

}  // namespace

int main() {
  using namespace dosas;

  core::ClusterConfig config;
  config.storage_nodes = 4;
  config.strip_size = 64_KiB;
  config.scheme = core::SchemeKind::kDosas;
  core::Cluster cluster(config);

  constexpr std::size_t kReadings = 1'500'000;  // ~11.4 MiB
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/sensors/day0", kReadings,
                                 [](std::size_t i) { return reading(i); });
  if (!meta.is_ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", meta.status().to_string().c_str());
    return 1;
  }
  std::printf("ingested %zu readings (%s) striped over %u storage nodes\n\n", kReadings,
              format_bytes(meta.value().size).c_str(), cluster.storage_node_count());

  // --- top 10 extreme readings -------------------------------------------
  auto top = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "topk:k=10");
  if (!top.is_ok()) {
    std::fprintf(stderr, "topk failed: %s\n", top.status().to_string().c_str());
    return 1;
  }
  auto topk = kernels::TopKResult::decode(top.value());
  std::printf("top-10 readings (fault candidates):\n  ");
  for (double v : topk.value().values) std::printf("%.2f ", v);
  std::printf("\n\n");

  // --- distribution -------------------------------------------------------
  auto hist_raw = cluster.asc().read_ex(meta.value(), 0, meta.value().size,
                                        "histogram:bins=12,lo=10,hi=70");
  if (!hist_raw.is_ok()) {
    std::fprintf(stderr, "histogram failed\n");
    return 1;
  }
  auto hist = kernels::HistogramResult::decode(hist_raw.value());
  std::printf("reading distribution [10, 70):\n");
  std::uint64_t max_count = 1;
  for (auto c : hist.value().counts) max_count = std::max(max_count, c);
  for (std::size_t b = 0; b < hist.value().counts.size(); ++b) {
    const double lo = 10.0 + 5.0 * static_cast<double>(b);
    const auto bar = static_cast<int>(40.0 * static_cast<double>(hist.value().counts[b]) /
                                      static_cast<double>(max_count));
    std::printf("  [%4.0f,%4.0f) %8llu |%.*s\n", lo, lo + 5.0,
                static_cast<unsigned long long>(hist.value().counts[b]), bar,
                "****************************************");
  }
  std::printf("\n");

  // --- quick-look sample ---------------------------------------------------
  auto sample_raw = cluster.asc().read_ex(meta.value(), 0, meta.value().size,
                                          "reservoir:n=64,seed=7");
  if (!sample_raw.is_ok()) {
    std::fprintf(stderr, "reservoir failed\n");
    return 1;
  }
  auto sample = kernels::ReservoirResult::decode(sample_raw.value());
  double mean = 0;
  for (double v : sample.value().sample) mean += v;
  mean /= static_cast<double>(sample.value().sample.size());
  std::printf("uniform sample: %zu points, mean %.2f (population streamed: %llu readings)\n",
              sample.value().sample.size(), mean,
              static_cast<unsigned long long>(sample.value().count));

  const auto cs = cluster.asc().stats();
  std::printf("\nstriped fan-outs: %llu   partials merged from storage nodes: %llu\n",
              static_cast<unsigned long long>(cs.striped_fanouts),
              static_cast<unsigned long long>(cs.completed_remote));
  std::printf("raw bytes over the network: %s (three full scans would be %s)\n",
              format_bytes(cs.raw_bytes_read).c_str(),
              format_bytes(3 * meta.value().size).c_str());
  return 0;
}
