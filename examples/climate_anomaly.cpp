// climate_anomaly — a GIS/climate-flavoured scenario (the paper's §I
// motivation: climate modeling output analysis).
//
// Twelve "months" of gridded temperature-anomaly data live in the parallel
// file system, one file per month. Twelve analysis ranks run concurrently;
// each asks the storage layer for two derived products over its month:
//
//   * a 2D-Gaussian-smoothed field digest (mean/min/max of the smoothed
//     anomaly — the expensive kernel the paper benchmarks), and
//   * the count of extreme cells above a threshold (a cheap selection).
//
// Under DOSAS, the cheap counts stay offloaded while the storage node
// demotes expensive Gaussian work once its queue saturates — watch the
// outcome counters at the end.
//
//   ./examples/climate_anomaly
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/threshold_count.hpp"

namespace {

constexpr std::size_t kWidth = 256;   // grid columns
constexpr std::size_t kRows = 512;    // grid rows (1 MiB per month)
constexpr double kExtreme = 2.5;      // anomaly threshold (in sigma)

/// Synthetic anomaly field: seasonal base + spatial waves + hot spots.
double anomaly(std::size_t month, std::size_t i) {
  const auto x = static_cast<double>(i % kWidth);
  const auto y = static_cast<double>(i / kWidth);
  const double seasonal = std::sin(static_cast<double>(month) / 12.0 * 6.28318) * 0.8;
  const double wave = std::sin(x / 17.0) * std::cos(y / 23.0);
  const double hotspot = ((i * 2654435761u) % 1000 == 0) ? 3.5 : 0.0;
  return seasonal + wave + hotspot;
}

}  // namespace

int main() {
  using namespace dosas;

  core::ClusterConfig config;
  config.storage_nodes = 2;  // months are placed round-robin on two nodes
  config.scheme = core::SchemeKind::kDosas;
  config.server_chunk_size = 64_KiB;
  core::Cluster cluster(config);

  // Ingest: one file per month, whole file on one data server (the paper's
  // placement: each request served by the node holding its data).
  for (std::size_t m = 0; m < 12; ++m) {
    pfs::StripingParams striping;
    striping.strip_size = cluster.fs().default_strip_size();
    striping.server_count = 1;
    striping.base_server = static_cast<pfs::ServerId>(m % 2);
    auto meta = cluster.pfs_client().create("/anomaly/month" + std::to_string(m), striping);
    if (!meta.is_ok()) {
      std::fprintf(stderr, "create failed: %s\n", meta.status().to_string().c_str());
      return 1;
    }
    std::vector<double> grid(kWidth * kRows);
    for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = anomaly(m, i);
    auto written = cluster.pfs_client().write(
        meta.value(), 0,
        std::span(reinterpret_cast<const std::uint8_t*>(grid.data()),
                  grid.size() * sizeof(double)));
    if (!written.is_ok()) {
      std::fprintf(stderr, "write failed: %s\n", written.status().to_string().c_str());
      return 1;
    }
  }
  std::printf("ingested 12 months of %zux%zu anomaly grids (%s each)\n\n", kWidth, kRows,
              format_bytes(kWidth * kRows * sizeof(double)).c_str());

  // Analysis: 12 concurrent ranks, two active reads each.
  struct MonthReport {
    bool ok = false;
    kernels::GaussianDigest smoothed;
    std::uint64_t extremes = 0;
  };
  std::vector<MonthReport> reports(12);
  std::vector<std::thread> ranks;
  for (std::size_t m = 0; m < 12; ++m) {
    ranks.emplace_back([&, m] {
      auto meta = cluster.pfs_client().open("/anomaly/month" + std::to_string(m));
      if (!meta.is_ok()) return;

      auto smoothed = cluster.asc().read_ex(meta.value(), 0, meta.value().size,
                                            "gaussian2d:width=256");
      auto extremes = cluster.asc().read_ex(meta.value(), 0, meta.value().size,
                                            "thresholdcount:t=2.5");
      if (!smoothed.is_ok() || !extremes.is_ok()) return;

      auto digest = kernels::GaussianDigest::decode(smoothed.value());
      auto count = kernels::ThresholdCountResult::decode(extremes.value());
      if (!digest.is_ok() || !count.is_ok()) return;
      reports[m].ok = true;
      reports[m].smoothed = digest.value();
      reports[m].extremes = count.value().matches;
    });
  }
  for (auto& t : ranks) t.join();

  std::printf("month  smoothed-mean  smoothed-max  cells > %.1f sigma\n", kExtreme);
  std::printf("-----------------------------------------------------\n");
  for (std::size_t m = 0; m < 12; ++m) {
    if (!reports[m].ok) {
      std::printf("%5zu  (failed)\n", m);
      continue;
    }
    const auto& d = reports[m].smoothed;
    std::printf("%5zu  %13.4f  %12.4f  %17llu\n", m,
                d.sum / static_cast<double>(d.count), d.max,
                static_cast<unsigned long long>(reports[m].extremes));
  }

  const auto cs = cluster.asc().stats();
  std::printf("\nscheduling outcomes: %llu served on storage nodes, %llu demoted, "
              "%llu resumed from checkpoints\n",
              static_cast<unsigned long long>(cs.completed_remote),
              static_cast<unsigned long long>(cs.demoted),
              static_cast<unsigned long long>(cs.resumed_local));
  std::printf("raw bytes over the network: %s of %s requested\n",
              format_bytes(cs.raw_bytes_read).c_str(),
              format_bytes(12ull * kWidth * kRows * sizeof(double) * 2).c_str());
  return 0;
}
