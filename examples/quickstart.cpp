// quickstart — the smallest end-to-end DOSAS program.
//
// Builds an in-process cluster (1 storage node, DOSAS scheduling), writes a
// data file into the parallel file system, and issues one *active* read
// through the enhanced MPI-IO-style API: the SUM kernel runs on the storage
// node and only a 16-byte result crosses the (virtual) network.
//
//   ./examples/quickstart
#include <cstdio>

#include "client/mpiio.hpp"
#include "core/cluster.hpp"
#include "kernels/sum.hpp"

int main() {
  using namespace dosas;

  // 1. Bring up a cluster: one 2-core storage node, DOSAS scheduling.
  core::ClusterConfig config;
  config.storage_nodes = 1;
  config.scheme = core::SchemeKind::kDosas;
  core::Cluster cluster(config);

  // 2. Write 1M doubles (8 MiB) into the PFS.
  constexpr std::size_t kCount = 1'000'000;
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/quickstart.dat", kCount,
                                 [](std::size_t i) { return static_cast<double>(i % 10); });
  if (!meta.is_ok()) {
    std::fprintf(stderr, "write failed: %s\n", meta.status().to_string().c_str());
    return 1;
  }
  std::printf("wrote /quickstart.dat: %s\n", format_bytes(meta.value().size).c_str());

  // 3. Active read: the enhanced MPI-IO call with operation "sum".
  mpiio::File fh;
  if (auto st = mpiio::file_open(cluster.asc(), "/quickstart.dat", fh); !st.is_ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.to_string().c_str());
    return 1;
  }
  mpiio::ResultBuf result;
  if (auto st = mpiio::file_read_ex(fh, &result, kCount, mpiio::kDouble, "sum");
      !st.is_ok()) {
    std::fprintf(stderr, "read_ex failed: %s\n", st.to_string().c_str());
    return 1;
  }

  // 4. Decode the kernel result.
  auto sum = kernels::SumResult::decode(result.buf);
  if (!sum.is_ok()) {
    std::fprintf(stderr, "bad result payload\n");
    return 1;
  }
  std::printf("SUM over %llu items = %.1f (completed=%d)\n",
              static_cast<unsigned long long>(sum.value().count), sum.value().sum,
              result.completed ? 1 : 0);

  // 5. Show where the work actually happened.
  const auto cs = cluster.asc().stats();
  const auto ss = cluster.storage_server(0).stats();
  std::printf("kernel ran on the storage node: %s\n",
              ss.active_completed == 1 ? "yes" : "no (client finished it)");
  std::printf("raw bytes over the network: %s (vs %s moved by a normal read)\n",
              format_bytes(cs.raw_bytes_read).c_str(), format_bytes(meta.value().size).c_str());
  return 0;
}
