// log_scan — unstructured-data active storage: scan server logs for error
// signatures without moving the logs.
//
// Eight synthetic service logs are placed one-per-storage-node (round
// robin) across a 4-node volume. Concurrent scanners count "ERROR" and
// "TIMEOUT" occurrences via the bytegrep kernel; the match counts (16 B)
// come back instead of the multi-megabyte logs. This is the Riedel-style
// search workload active disks were originally proposed for.
//
//   ./examples/log_scan
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "kernels/byte_grep.hpp"

namespace {

std::string synth_log(std::size_t service, std::size_t lines, dosas::Rng& rng) {
  static const char* kLevels[] = {"INFO", "INFO", "INFO", "WARN", "ERROR"};
  std::string log;
  log.reserve(lines * 48);
  for (std::size_t i = 0; i < lines; ++i) {
    const char* level = kLevels[rng.uniform_index(5)];
    log += "2012-09-2";
    log += static_cast<char>('0' + (i % 8));
    log += " svc";
    log += std::to_string(service);
    log += " [";
    log += level;
    log += "] request ";
    log += std::to_string(i);
    if (rng.chance(0.03)) log += " TIMEOUT after 30s";
    log += '\n';
  }
  return log;
}

}  // namespace

int main() {
  using namespace dosas;

  core::ClusterConfig config;
  config.storage_nodes = 4;
  config.scheme = core::SchemeKind::kDosas;
  core::Cluster cluster(config);

  Rng rng(90210);
  constexpr std::size_t kServices = 8;
  constexpr std::size_t kLines = 100'000;
  std::vector<Bytes> log_sizes(kServices);
  for (std::size_t s = 0; s < kServices; ++s) {
    pfs::StripingParams striping;
    striping.strip_size = cluster.fs().default_strip_size();
    striping.server_count = 1;  // whole log on one node
    striping.base_server = static_cast<pfs::ServerId>(s % 4);
    auto meta = cluster.pfs_client().create("/logs/svc" + std::to_string(s), striping);
    if (!meta.is_ok()) {
      std::fprintf(stderr, "create failed: %s\n", meta.status().to_string().c_str());
      return 1;
    }
    const std::string log = synth_log(s, kLines, rng);
    auto written = cluster.pfs_client().write(
        meta.value(), 0,
        std::span(reinterpret_cast<const std::uint8_t*>(log.data()), log.size()));
    if (!written.is_ok()) {
      std::fprintf(stderr, "write failed\n");
      return 1;
    }
    log_sizes[s] = written.value().size;
  }

  struct ScanResult {
    std::uint64_t errors = 0;
    std::uint64_t timeouts = 0;
    bool ok = false;
  };
  std::vector<ScanResult> results(kServices);
  std::vector<std::thread> scanners;
  for (std::size_t s = 0; s < kServices; ++s) {
    scanners.emplace_back([&, s] {
      auto meta = cluster.pfs_client().open("/logs/svc" + std::to_string(s));
      if (!meta.is_ok()) return;
      auto errors =
          cluster.asc().read_ex(meta.value(), 0, meta.value().size, "bytegrep:pat=ERROR");
      auto timeouts =
          cluster.asc().read_ex(meta.value(), 0, meta.value().size, "bytegrep:pat=TIMEOUT");
      if (!errors.is_ok() || !timeouts.is_ok()) return;
      auto e = kernels::ByteGrepResult::decode(errors.value());
      auto t = kernels::ByteGrepResult::decode(timeouts.value());
      if (!e.is_ok() || !t.is_ok()) return;
      results[s] = {e.value().matches, t.value().matches, true};
    });
  }
  for (auto& t : scanners) t.join();

  std::printf("service  log size    ERROR lines  TIMEOUTs\n");
  std::printf("-------------------------------------------\n");
  for (std::size_t s = 0; s < kServices; ++s) {
    std::printf("svc%zu     %-10s  %11llu  %8llu%s\n", s, format_bytes(log_sizes[s]).c_str(),
                static_cast<unsigned long long>(results[s].errors),
                static_cast<unsigned long long>(results[s].timeouts),
                results[s].ok ? "" : "  (scan failed)");
  }

  const auto cs = cluster.asc().stats();
  Bytes total_logs = 0;
  for (Bytes b : log_sizes) total_logs += b;
  std::printf("\nlogs scanned twice each (%s total); raw bytes moved: %s\n",
              format_bytes(2 * total_logs).c_str(), format_bytes(cs.raw_bytes_read).c_str());
  std::printf("note: bytegrep has no rate-table entry, so the CE leaves it active —\n"
              "the match counts travelled instead of the logs.\n");
  return 0;
}
