// contention_study — the paper's experiment, end to end, in one program.
//
// Part 1 drives the *real* in-process runtime: N concurrent Gaussian
// readers against one 2-core storage node under each scheme (TS / AS /
// DOSAS), reporting wall time and where the kernels ran. Part 2 runs the
// calibrated discrete-event model over the paper's full sweep, printing
// the Figure-7 series. Together they show the same story at two scales:
// AS collapses under concurrency, DOSAS tracks the winner.
//
//   ./examples/contention_study [readers]   (default 8)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/cluster.hpp"
#include "core/experiments.hpp"
#include "core/runner.hpp"

int main(int argc, char** argv) {
  using namespace dosas;
  using namespace dosas::core;

  const std::size_t readers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  // ---------------- Part 1: the real runtime ----------------
  std::printf("== Part 1: real runtime, %zu concurrent Gaussian readers ==\n\n", readers);
  constexpr std::size_t kWidth = 512;
  constexpr std::size_t kRows = 1024;  // 4 MiB per reader

  Table t({"scheme", "wall (s)", "net model (s)", "on storage", "demoted", "resumed",
           "raw bytes moved"});
  for (SchemeKind scheme :
       {SchemeKind::kTraditional, SchemeKind::kActive, SchemeKind::kDosas}) {
    ClusterConfig config;
    config.scheme = scheme;
    config.server_chunk_size = 64_KiB;
    // Account (don't enforce) the paper's 118 MB/s link for every byte the
    // storage node ships.
    config.network_rate = mb_per_sec(118.0);
    Cluster cluster(config);

    std::vector<WorkloadRequest> reqs;
    for (std::size_t r = 0; r < readers; ++r) {
      const std::string path = "/grid" + std::to_string(r);
      auto meta = pfs::write_doubles(cluster.pfs_client(), path, kWidth * kRows,
                                     [r](std::size_t i) {
                                       return static_cast<double>((i * (r + 3)) % 53);
                                     });
      if (!meta.is_ok()) {
        std::fprintf(stderr, "seed failed\n");
        return 1;
      }
      reqs.push_back({path, 0, 0, "gaussian2d:width=512"});
    }

    const auto report = run_workload(cluster, reqs);
    if (report.failures != 0) {
      std::fprintf(stderr, "%zu requests failed under %s\n", report.failures,
                   scheme_name(scheme));
      return 1;
    }
    const auto cs = cluster.asc().stats();
    t.add_row({scheme_name(scheme), fmt(report.wall_time, 3),
               fmt(cluster.network_delay(), 3), std::to_string(cs.completed_remote),
               std::to_string(cs.demoted), std::to_string(cs.resumed_local),
               format_bytes(cs.raw_bytes_read)});
  }
  t.print(std::cout);
  std::printf(
      "\n(Wall times here reflect this host's CPU, not the paper's cluster; the\n"
      "'net model' column charges every shipped byte against a virtual 118 MB/s\n"
      "link — the columns to watch are WHERE kernels ran and WHAT moved.)\n\n");

  // ---------------- Part 2: the calibrated model ----------------
  std::printf("== Part 2: calibrated model, the paper's Figure-7 sweep ==\n\n");
  const auto cfg = ModelConfig::gaussian();
  const auto points = scheme_sweep(cfg, paper_io_counts(), 128_MiB, /*with_dosas=*/true);
  sweep_table(points, true).print(std::cout);
  std::printf("\nDOSAS tracks AS below the ~4-request crossover and TS above it.\n");
  return 0;
}
