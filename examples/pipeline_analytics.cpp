// pipeline_analytics — streaming kernel composition at the storage node.
//
// Raw instrument output (counts) lives in the PFS. The analysis needs
// physical units and smoothing before any statistic is meaningful, so a
// naive client would read everything, convert, filter, then reduce. With
// kernel pipelines the whole chain executes where the data lives:
//
//   calibrate (scale)  ->  smooth (gaussian2d full)  ->  reduce (minmax /
//   thresholdcount)
//
// one `read_ex` per question, a few bytes per answer.
//
//   ./examples/pipeline_analytics
#include <cmath>
#include <cstdio>

#include "core/cluster.hpp"
#include "kernels/minmax.hpp"
#include "kernels/threshold_count.hpp"

int main() {
  using namespace dosas;

  core::ClusterConfig config;
  config.scheme = core::SchemeKind::kDosas;
  core::Cluster cluster(config);

  // Raw detector counts on a 256-wide grid; calibration is C = 0.05*x - 40.
  constexpr std::size_t kWidth = 256, kRows = 1024;
  auto meta = pfs::write_doubles(
      cluster.pfs_client(), "/detector/frame0", kWidth * kRows, [](std::size_t i) {
        const auto x = static_cast<double>(i % kWidth);
        const auto y = static_cast<double>(i / kWidth);
        return 1000.0 + 300.0 * std::sin(x / 20.0) * std::cos(y / 30.0) +
               ((i * 2654435761u) % 997 == 0 ? 1500.0 : 0.0);  // hot pixels
      });
  if (!meta.is_ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  std::printf("ingested raw frame: %zux%zu counts (%s)\n\n", kWidth, kRows,
              format_bytes(meta.value().size).c_str());

  // Question 1: calibrated + smoothed temperature range of the frame.
  const char* kRangeOp =
      "pipe:ops=scale;a=0.05;b=-40|gaussian2d;width=256;mode=full|minmax";
  auto range = cluster.asc().read_ex(meta.value(), 0, meta.value().size, kRangeOp);
  if (!range.is_ok()) {
    std::fprintf(stderr, "range query failed: %s\n", range.status().to_string().c_str());
    return 1;
  }
  auto mm = kernels::MinMaxResult::decode(range.value());
  std::printf("smoothed calibrated field: min %.2f, max %.2f over %llu cells\n",
              mm.value().min, mm.value().max,
              static_cast<unsigned long long>(mm.value().count));

  // Question 2: how many smoothed cells exceed the 30-degree alarm line?
  const char* kAlarmOp =
      "pipe:ops=scale;a=0.05;b=-40|gaussian2d;width=256;mode=full|thresholdcount;t=30";
  auto alarms = cluster.asc().read_ex(meta.value(), 0, meta.value().size, kAlarmOp);
  if (!alarms.is_ok()) {
    std::fprintf(stderr, "alarm query failed\n");
    return 1;
  }
  auto tc = kernels::ThresholdCountResult::decode(alarms.value());
  std::printf("cells above the 30-degree alarm line: %llu of %llu\n",
              static_cast<unsigned long long>(tc.value().matches),
              static_cast<unsigned long long>(tc.value().count));

  const auto cs = cluster.asc().stats();
  const auto ss = cluster.storage_server(0).stats();
  std::printf("\nboth 3-stage chains ran %s; bytes over the network: %s of %s scanned\n",
              ss.active_completed == 2 ? "on the storage node" : "partly on the client",
              format_bytes(cs.raw_bytes_read).c_str(),
              format_bytes(2 * meta.value().size).c_str());
  return 0;
}
