// Tests for the extension kernels: sobel2d, topk, reservoir — streaming
// correctness, checkpoint/restore, merging, and registry integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "kernels/registry.hpp"
#include "kernels/reservoir.hpp"
#include "kernels/sobel2d.hpp"
#include "kernels/topk.hpp"

namespace dosas::kernels {
namespace {

std::vector<std::uint8_t> doubles_to_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(-100.0, 100.0);
  return out;
}

void consume_ragged(Kernel& kernel, const std::vector<std::uint8_t>& bytes, Rng& rng) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_index(97), bytes.size() - pos);
    kernel.consume(std::span(bytes.data() + pos, n));
    pos += n;
  }
}

// ---------------------------------------------------------------- sobel2d

TEST(Sobel2d, ConstantFieldHasZeroGradient) {
  const std::size_t w = 16, rows = 8;
  Sobel2dKernel k(w, 0.5);
  k.consume(doubles_to_bytes(std::vector<double>(w * rows, 3.0)));
  auto d = SobelDigest::decode(k.finalize());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().rows, rows - 2);
  EXPECT_EQ(d.value().edges, 0u);
  EXPECT_NEAR(d.value().max_magnitude, 0.0, 1e-12);
}

TEST(Sobel2d, VerticalStepIsDetected) {
  // A sharp vertical edge: left half 0, right half 10.
  const std::size_t w = 16, rows = 8;
  std::vector<double> grid(w * rows, 0.0);
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = w / 2; x < w; ++x) grid[y * w + x] = 10.0;
  }
  Sobel2dKernel k(w, 5.0);
  k.consume(doubles_to_bytes(grid));
  auto d = SobelDigest::decode(k.finalize());
  ASSERT_TRUE(d.is_ok());
  // Two columns around the step exceed the threshold on every output row.
  EXPECT_EQ(d.value().edges, 2 * (rows - 2));
  EXPECT_NEAR(d.value().max_magnitude, 40.0, 1e-9);  // |Gx| = 4*10 at the step
}

TEST(Sobel2d, DigestMatchesReference) {
  const std::size_t w = 32, rows = 20;
  const auto grid = random_doubles(w * rows, 42);
  Sobel2dKernel k(w, 50.0);
  k.consume(doubles_to_bytes(grid));
  auto d = SobelDigest::decode(k.finalize());
  ASSERT_TRUE(d.is_ok());

  const auto mags = Sobel2dKernel::magnitude_reference(grid, w);
  ASSERT_EQ(mags.size(), (rows - 2) * w);
  std::uint64_t edges = 0;
  double max_mag = 0, sum = 0;
  for (double m : mags) {
    if (m > 50.0) ++edges;
    max_mag = std::max(max_mag, m);
    sum += m;
  }
  EXPECT_EQ(d.value().edges, edges);
  EXPECT_NEAR(d.value().max_magnitude, max_mag, 1e-9);
  EXPECT_NEAR(d.value().mean_magnitude, sum / static_cast<double>(mags.size()), 1e-9);
}

TEST(Sobel2d, RaggedChunksMatchWholeBuffer) {
  const std::size_t w = 24, rows = 30;
  const auto bytes = doubles_to_bytes(random_doubles(w * rows, 7));
  Sobel2dKernel whole(w, 10.0);
  whole.consume(bytes);
  Sobel2dKernel ragged(w, 10.0);
  Rng rng(3);
  consume_ragged(ragged, bytes, rng);
  EXPECT_EQ(whole.finalize(), ragged.finalize());
}

TEST(Sobel2d, CheckpointResumeMatches) {
  const std::size_t w = 16, rows = 24;
  const auto bytes = doubles_to_bytes(random_doubles(w * rows, 9));
  Sobel2dKernel ref(w, 20.0);
  ref.consume(bytes);

  const std::size_t cut = (w * 5) * sizeof(double) + 13;
  Sobel2dKernel first(w, 20.0);
  first.consume(std::span(bytes.data(), cut));
  auto decoded = Checkpoint::decode(first.checkpoint().encode());
  ASSERT_TRUE(decoded.is_ok());
  Sobel2dKernel second(w, 20.0);
  ASSERT_TRUE(second.restore(decoded.value()).is_ok());
  second.consume(std::span(bytes.data() + cut, bytes.size() - cut));
  EXPECT_EQ(second.finalize(), ref.finalize());
}

TEST(Sobel2d, RestoreRejectsWidthMismatch) {
  Sobel2dKernel a(16), b(32);
  EXPECT_FALSE(b.restore(a.checkpoint()).is_ok());
}

TEST(Sobel2d, FromSpecParsesArgs) {
  auto k = Sobel2dKernel::from_spec(OperationSpec::parse("sobel2d:width=64,t=3.5").value());
  ASSERT_TRUE(k.is_ok());
  auto* s = dynamic_cast<Sobel2dKernel*>(k.value().get());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->width(), 64u);
  EXPECT_DOUBLE_EQ(s->threshold(), 3.5);
  EXPECT_FALSE(
      Sobel2dKernel::from_spec(OperationSpec::parse("sobel2d:width=0").value()).is_ok());
}

TEST(Sobel2d, NotMergeable) {
  Sobel2dKernel k(8);
  EXPECT_FALSE(k.mergeable());
  EXPECT_FALSE(k.merge(std::vector<std::uint8_t>{}).is_ok());
}

// ---------------------------------------------------------------- topk

TEST(TopK, FindsLargestValues) {
  TopKKernel k(3);
  k.reset();
  k.consume(doubles_to_bytes({5, 1, 9, 3, 7, 2, 8}));
  auto r = TopKResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, 7u);
  EXPECT_EQ(r.value().values, (std::vector<double>{9, 8, 7}));
}

TEST(TopK, FewerItemsThanK) {
  TopKKernel k(10);
  k.reset();
  k.consume(doubles_to_bytes({2, 1}));
  auto r = TopKResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().values, (std::vector<double>{2, 1}));
}

TEST(TopK, MatchesSortReference) {
  auto values = random_doubles(5000, 13);
  TopKKernel k(25);
  k.reset();
  k.consume(doubles_to_bytes(values));
  auto r = TopKResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());

  std::sort(values.begin(), values.end(), std::greater<>{});
  values.resize(25);
  EXPECT_EQ(r.value().values, values);
}

TEST(TopK, RaggedChunksMatchWholeBuffer) {
  const auto bytes = doubles_to_bytes(random_doubles(3000, 17));
  TopKKernel whole(16), ragged(16);
  whole.reset();
  ragged.reset();
  whole.consume(bytes);
  Rng rng(23);
  consume_ragged(ragged, bytes, rng);
  EXPECT_EQ(whole.finalize(), ragged.finalize());
}

TEST(TopK, CheckpointResumeMatches) {
  const auto bytes = doubles_to_bytes(random_doubles(4000, 29));
  TopKKernel ref(20);
  ref.reset();
  ref.consume(bytes);

  TopKKernel first(20);
  first.reset();
  const std::size_t cut = 10'001;
  first.consume(std::span(bytes.data(), cut));
  TopKKernel second(20);
  ASSERT_TRUE(second.restore(first.checkpoint()).is_ok());
  second.consume(std::span(bytes.data() + cut, bytes.size() - cut));
  EXPECT_EQ(second.finalize(), ref.finalize());
}

TEST(TopK, RestoreRejectsKMismatch) {
  TopKKernel a(5), b(6);
  a.reset();
  EXPECT_FALSE(b.restore(a.checkpoint()).is_ok());
}

TEST(TopK, MergeMatchesSequential) {
  const auto values = random_doubles(2000, 31);
  const auto bytes = doubles_to_bytes(values);
  TopKKernel seq(12), left(12), right(12);
  seq.reset();
  left.reset();
  right.reset();
  seq.consume(bytes);
  left.consume(std::span(bytes.data(), 8 * 600));
  right.consume(std::span(bytes.data() + 8 * 600, bytes.size() - 8 * 600));
  ASSERT_TRUE(left.merge(right.finalize()).is_ok());
  EXPECT_EQ(left.finalize(), seq.finalize());
}

TEST(TopK, ResultSizeScalesWithK) {
  TopKKernel small(4), big(1000);
  EXPECT_LT(small.result_size(1_GiB), big.result_size(1_GiB));
  EXPECT_EQ(big.result_size(128_MiB), big.result_size(1_GiB));
}

TEST(TopK, FromSpecValidation) {
  EXPECT_TRUE(TopKKernel::from_spec(OperationSpec::parse("topk:k=100").value()).is_ok());
  EXPECT_FALSE(TopKKernel::from_spec(OperationSpec::parse("topk:k=0").value()).is_ok());
}

// ---------------------------------------------------------------- reservoir

TEST(Reservoir, FillPhaseKeepsEverything) {
  ReservoirKernel k(100, 7);
  k.reset();
  const auto values = random_doubles(50, 3);
  k.consume(doubles_to_bytes(values));
  auto r = ReservoirResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, 50u);
  EXPECT_EQ(r.value().sample, values);  // order-preserving during fill
}

TEST(Reservoir, SampleSizeCapped) {
  ReservoirKernel k(32, 7);
  k.reset();
  k.consume(doubles_to_bytes(random_doubles(10'000, 5)));
  auto r = ReservoirResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().sample.size(), 32u);
  EXPECT_EQ(r.value().count, 10'000u);
}

TEST(Reservoir, DeterministicForSeed) {
  const auto bytes = doubles_to_bytes(random_doubles(5000, 11));
  ReservoirKernel a(16, 99), b(16, 99), c(16, 100);
  a.reset();
  b.reset();
  c.reset();
  a.consume(bytes);
  b.consume(bytes);
  c.consume(bytes);
  EXPECT_EQ(a.finalize(), b.finalize());
  EXPECT_NE(a.finalize(), c.finalize());
}

TEST(Reservoir, SampleElementsComeFromStream) {
  std::vector<double> values(2000);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  ReservoirKernel k(64, 1);
  k.reset();
  k.consume(doubles_to_bytes(values));
  auto r = ReservoirResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  for (double v : r.value().sample) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 2000.0);
    EXPECT_EQ(v, std::floor(v));
  }
}

TEST(Reservoir, SamplingIsRoughlyUniform) {
  // Items 0..999; with n=200 and many seeds, the mean of sampled values
  // should approach the stream mean (499.5).
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  const auto bytes = doubles_to_bytes(values);
  double total = 0;
  std::size_t count = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ReservoirKernel k(200, seed);
    k.reset();
    k.consume(bytes);
    auto r = ReservoirResult::decode(k.finalize());
    ASSERT_TRUE(r.is_ok());
    for (double v : r.value().sample) {
      total += v;
      ++count;
    }
  }
  EXPECT_NEAR(total / static_cast<double>(count), 499.5, 25.0);
}

TEST(Reservoir, CheckpointResumeMatchesUninterrupted) {
  const auto bytes = doubles_to_bytes(random_doubles(4000, 41));
  ReservoirKernel ref(32, 5);
  ref.reset();
  ref.consume(bytes);

  ReservoirKernel first(32, 5);
  first.reset();
  const std::size_t cut = 9'999;
  first.consume(std::span(bytes.data(), cut));
  auto decoded = Checkpoint::decode(first.checkpoint().encode());
  ASSERT_TRUE(decoded.is_ok());
  ReservoirKernel second(32, 5);
  ASSERT_TRUE(second.restore(decoded.value()).is_ok());
  second.consume(std::span(bytes.data() + cut, bytes.size() - cut));
  EXPECT_EQ(second.finalize(), ref.finalize());
}

TEST(Reservoir, MergeCombinesCountsAndStaysInRange) {
  const auto a_vals = random_doubles(3000, 51);
  const auto b_vals = random_doubles(5000, 52);
  ReservoirKernel a(40, 1), b(40, 2);
  a.reset();
  b.reset();
  a.consume(doubles_to_bytes(a_vals));
  b.consume(doubles_to_bytes(b_vals));
  ASSERT_TRUE(a.merge(b.finalize()).is_ok());
  auto r = ReservoirResult::decode(a.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, 8000u);
  EXPECT_EQ(r.value().sample.size(), 40u);
}

TEST(Reservoir, FromSpecValidation) {
  EXPECT_TRUE(
      ReservoirKernel::from_spec(OperationSpec::parse("reservoir:n=10,seed=3").value()).is_ok());
  EXPECT_FALSE(
      ReservoirKernel::from_spec(OperationSpec::parse("reservoir:n=0").value()).is_ok());
}

// ---------------------------------------------------------------- through the cluster

TEST(ExtKernelsCluster, SobelDigestOffloadsAndMatchesReference) {
  core::ClusterConfig cfg;
  cfg.scheme = core::SchemeKind::kActive;
  core::Cluster cluster(cfg);
  constexpr std::size_t kWidth = 64, kRows = 128;
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/sobel", kWidth * kRows,
                                 [](std::size_t i) { return static_cast<double>(i % 23); });
  ASSERT_TRUE(meta.is_ok());

  auto out =
      cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sobel2d:width=64,t=5");
  ASSERT_TRUE(out.is_ok());

  auto raw = cluster.pfs_client().read_all(meta.value());
  ASSERT_TRUE(raw.is_ok());
  Sobel2dKernel ref(kWidth, 5.0);
  ref.consume(raw.value());
  EXPECT_EQ(out.value(), ref.finalize());
  EXPECT_EQ(cluster.storage_server(0).stats().active_completed, 1u);
}

TEST(ExtKernelsCluster, StripedTopKMatchesSort) {
  core::ClusterConfig cfg;
  cfg.scheme = core::SchemeKind::kActive;
  cfg.storage_nodes = 4;
  cfg.strip_size = 8_KiB;
  core::Cluster cluster(cfg);
  constexpr std::size_t kCount = 40'000;
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/tk", kCount, [](std::size_t i) {
    return static_cast<double>((i * 2654435761u) % 1000003);
  });
  ASSERT_TRUE(meta.is_ok());

  auto out = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "topk:k=15");
  ASSERT_TRUE(out.is_ok());
  auto got = TopKResult::decode(out.value());
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().count, kCount);

  std::vector<double> all(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    all[i] = static_cast<double>((i * 2654435761u) % 1000003);
  }
  std::sort(all.begin(), all.end(), std::greater<>{});
  all.resize(15);
  EXPECT_EQ(got.value().values, all);
  EXPECT_EQ(cluster.asc().stats().striped_fanouts, 1u);
}

TEST(ExtKernelsCluster, StripedReservoirSamplesWholeFile) {
  core::ClusterConfig cfg;
  cfg.scheme = core::SchemeKind::kDosas;
  cfg.storage_nodes = 3;
  cfg.strip_size = 16_KiB;
  core::Cluster cluster(cfg);
  constexpr std::size_t kCount = 30'000;
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/rs", kCount,
                                 [](std::size_t i) { return static_cast<double>(i); });
  ASSERT_TRUE(meta.is_ok());

  auto out =
      cluster.asc().read_ex(meta.value(), 0, meta.value().size, "reservoir:n=50,seed=4");
  ASSERT_TRUE(out.is_ok());
  auto got = ReservoirResult::decode(out.value());
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().count, kCount);
  EXPECT_EQ(got.value().sample.size(), 50u);
  for (double v : got.value().sample) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, static_cast<double>(kCount));
  }
}

// ---------------------------------------------------------------- registry

TEST(RegistryExt, NewKernelsCreatable) {
  const auto reg = Registry::with_builtins();
  for (const char* op : {"sobel2d:width=64", "topk:k=5", "reservoir:n=8"}) {
    auto k = reg.create(op);
    ASSERT_TRUE(k.is_ok()) << op;
  }
}

}  // namespace
}  // namespace dosas::kernels
