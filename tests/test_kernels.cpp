// Unit + property tests for dosas::kernels — the processing-kernel
// framework: streaming correctness under arbitrary chunking, checkpoint /
// restore (the paper's interruption protocol), merging, and the registry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "kernels/byte_grep.hpp"
#include "kernels/calibrate.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/histogram.hpp"
#include "kernels/mean_stddev.hpp"
#include "kernels/minmax.hpp"
#include "kernels/operation.hpp"
#include "kernels/registry.hpp"
#include "kernels/sum.hpp"
#include "kernels/threshold_count.hpp"

namespace dosas::kernels {
namespace {

std::vector<std::uint8_t> doubles_to_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(-100.0, 100.0);
  return out;
}

/// Feed `bytes` to `kernel` in chunks whose sizes are drawn from `rng`,
/// deliberately misaligned with the 8-byte item size.
void consume_ragged(Kernel& kernel, const std::vector<std::uint8_t>& bytes, Rng& rng) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_index(97), bytes.size() - pos);
    kernel.consume(std::span(bytes.data() + pos, n));
    pos += n;
  }
}

// ---------------------------------------------------------------- operation

TEST(OperationSpec, ParsesBareKernel) {
  auto spec = OperationSpec::parse("sum");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().kernel, "sum");
  EXPECT_TRUE(spec.value().args.empty());
}

TEST(OperationSpec, ParsesArguments) {
  auto spec = OperationSpec::parse("histogram:bins=32,lo=-1,hi=1");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().kernel, "histogram");
  EXPECT_EQ(spec.value().get_int("bins", 0), 32);
  EXPECT_DOUBLE_EQ(spec.value().get_double("lo", 0), -1.0);
  EXPECT_DOUBLE_EQ(spec.value().get_double("hi", 0), 1.0);
}

TEST(OperationSpec, RejectsEmptyKernel) {
  EXPECT_FALSE(OperationSpec::parse("").is_ok());
  EXPECT_FALSE(OperationSpec::parse(":a=b").is_ok());
}

TEST(OperationSpec, RejectsMalformedPair) {
  EXPECT_FALSE(OperationSpec::parse("sum:novalue").is_ok());
  EXPECT_FALSE(OperationSpec::parse("sum:=v").is_ok());
}

TEST(OperationSpec, ToStringRoundTrips) {
  auto spec = OperationSpec::parse("gaussian2d:mode=digest,width=512");
  ASSERT_TRUE(spec.is_ok());
  auto again = OperationSpec::parse(spec.value().to_string());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), spec.value());
}

TEST(OperationSpec, DefaultsWhenArgMissing) {
  auto spec = OperationSpec::parse("sum");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().get("x", "dflt"), "dflt");
  EXPECT_EQ(spec.value().get_int("x", 9), 9);
}

// ---------------------------------------------------------------- sum

TEST(SumKernel, SumsDoublesExactly) {
  SumKernel k;
  k.reset();
  const std::vector<double> values = {1.5, 2.5, -4.0, 10.0};
  k.consume(doubles_to_bytes(values));
  auto result = SumResult::decode(k.finalize());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().count, 4u);
  EXPECT_DOUBLE_EQ(result.value().sum, 10.0);
}

TEST(SumKernel, RaggedChunksMatchWholeBuffer) {
  const auto values = random_doubles(10'000, 3);
  const auto bytes = doubles_to_bytes(values);

  SumKernel whole;
  whole.reset();
  whole.consume(bytes);

  SumKernel ragged;
  ragged.reset();
  Rng rng(17);
  consume_ragged(ragged, bytes, rng);

  const auto a = SumResult::decode(whole.finalize());
  const auto b = SumResult::decode(ragged.finalize());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().count, b.value().count);
  EXPECT_DOUBLE_EQ(a.value().sum, b.value().sum);
  EXPECT_EQ(ragged.consumed(), bytes.size());
}

TEST(SumKernel, ResultSizeIsConstant) {
  SumKernel k;
  EXPECT_EQ(k.result_size(128_MiB), k.result_size(1_GiB));
  EXPECT_EQ(k.result_size(0), 16u);
}

TEST(SumKernel, MergeCombinesPartials) {
  const auto values = random_doubles(1000, 5);
  const auto bytes = doubles_to_bytes(values);

  SumKernel left, right;
  left.reset();
  right.reset();
  left.consume(std::span(bytes.data(), 400 * sizeof(double)));
  right.consume(std::span(bytes.data() + 400 * sizeof(double), 600 * sizeof(double)));
  ASSERT_TRUE(left.merge(right.finalize()).is_ok());

  auto merged = SumResult::decode(left.finalize());
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().count, 1000u);
  const double expect = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(merged.value().sum, expect, 1e-9);
}

TEST(SumKernel, MergeRejectsGarbage) {
  SumKernel k;
  k.reset();
  EXPECT_FALSE(k.merge(std::vector<std::uint8_t>{1, 2, 3}).is_ok());
}

// ---------------------------------------------------------------- checkpoint/restore (all itemwise)

template <typename K>
std::unique_ptr<Kernel> make_kernel();
template <>
std::unique_ptr<Kernel> make_kernel<SumKernel>() { return std::make_unique<SumKernel>(); }
template <>
std::unique_ptr<Kernel> make_kernel<MinMaxKernel>() { return std::make_unique<MinMaxKernel>(); }
template <>
std::unique_ptr<Kernel> make_kernel<MeanStddevKernel>() {
  return std::make_unique<MeanStddevKernel>();
}
template <>
std::unique_ptr<Kernel> make_kernel<HistogramKernel>() {
  return std::make_unique<HistogramKernel>(16, -100.0, 100.0);
}
template <>
std::unique_ptr<Kernel> make_kernel<ThresholdCountKernel>() {
  return std::make_unique<ThresholdCountKernel>(0.0);
}

template <typename K>
class ItemwiseCheckpointTest : public ::testing::Test {};

using ItemwiseKernels = ::testing::Types<SumKernel, MinMaxKernel, MeanStddevKernel,
                                         HistogramKernel, ThresholdCountKernel>;
TYPED_TEST_SUITE(ItemwiseCheckpointTest, ItemwiseKernels);

TYPED_TEST(ItemwiseCheckpointTest, InterruptRestoreMatchesUninterrupted) {
  const auto values = random_doubles(5000, 11);
  const auto bytes = doubles_to_bytes(values);

  // Uninterrupted reference.
  auto ref = make_kernel<TypeParam>();
  ref->reset();
  ref->consume(bytes);

  // Interrupted at an item-misaligned byte offset, checkpointed, restored
  // into a *fresh* instance (the client side), and resumed.
  const std::size_t cut = 12'345;  // not a multiple of 8
  auto first = make_kernel<TypeParam>();
  first->reset();
  first->consume(std::span(bytes.data(), cut));
  const Checkpoint ck = first->checkpoint();

  // Simulate the network hop: encode + decode.
  auto decoded = Checkpoint::decode(ck.encode());
  ASSERT_TRUE(decoded.is_ok());

  auto second = make_kernel<TypeParam>();
  ASSERT_TRUE(second->restore(decoded.value()).is_ok());
  EXPECT_EQ(second->consumed(), cut);
  second->consume(std::span(bytes.data() + cut, bytes.size() - cut));

  EXPECT_EQ(second->finalize(), ref->finalize());
  EXPECT_EQ(second->consumed(), bytes.size());
}

TYPED_TEST(ItemwiseCheckpointTest, RestoreRejectsWrongKernelCheckpoint) {
  ByteGrepKernel other("zzz");
  other.reset();
  auto k = make_kernel<TypeParam>();
  EXPECT_FALSE(k->restore(other.checkpoint()).is_ok());
}

TYPED_TEST(ItemwiseCheckpointTest, CloneIsFreshAndSameType) {
  auto k = make_kernel<TypeParam>();
  k->reset();
  k->consume(doubles_to_bytes(random_doubles(100)));
  auto fresh = k->clone();
  EXPECT_EQ(fresh->name(), k->name());
  EXPECT_EQ(fresh->consumed(), 0u);
}

// ---------------------------------------------------------------- minmax

TEST(MinMaxKernel, TracksExtremes) {
  MinMaxKernel k;
  k.reset();
  k.consume(doubles_to_bytes({3.0, -7.5, 12.25, 0.0}));
  auto r = MinMaxResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().min, -7.5);
  EXPECT_DOUBLE_EQ(r.value().max, 12.25);
  EXPECT_EQ(r.value().count, 4u);
}

TEST(MinMaxKernel, EmptyStreamFinalizes) {
  MinMaxKernel k;
  k.reset();
  auto r = MinMaxResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, 0u);
}

TEST(MinMaxKernel, MergeWithEmptySideIsIdentity) {
  MinMaxKernel a, b;
  a.reset();
  b.reset();
  a.consume(doubles_to_bytes({5.0, -1.0}));
  ASSERT_TRUE(a.merge(b.finalize()).is_ok());
  auto r = MinMaxResult::decode(a.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, 2u);
  EXPECT_DOUBLE_EQ(r.value().min, -1.0);
}

TEST(MinMaxKernel, MergeMatchesSequential) {
  const auto values = random_doubles(2000, 23);
  const auto bytes = doubles_to_bytes(values);
  MinMaxKernel seq, left, right;
  seq.reset();
  left.reset();
  right.reset();
  seq.consume(bytes);
  left.consume(std::span(bytes.data(), 8 * 700));
  right.consume(std::span(bytes.data() + 8 * 700, bytes.size() - 8 * 700));
  ASSERT_TRUE(left.merge(right.finalize()).is_ok());
  EXPECT_EQ(left.finalize(), seq.finalize());
}

// ---------------------------------------------------------------- meanstddev

TEST(MeanStddevKernel, MatchesClosedForm) {
  MeanStddevKernel k;
  k.reset();
  k.consume(doubles_to_bytes({2, 4, 4, 4, 5, 5, 7, 9}));
  auto r = MeanStddevResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().mean, 5.0);
  EXPECT_NEAR(std::sqrt(r.value().variance()), 2.138, 0.001);
}

TEST(MeanStddevKernel, MergeMatchesSequentialWithinTolerance) {
  const auto values = random_doubles(4000, 31);
  const auto bytes = doubles_to_bytes(values);
  MeanStddevKernel seq, left, right;
  seq.reset();
  left.reset();
  right.reset();
  seq.consume(bytes);
  const std::size_t cut_items = 1234;
  left.consume(std::span(bytes.data(), 8 * cut_items));
  right.consume(std::span(bytes.data() + 8 * cut_items, bytes.size() - 8 * cut_items));
  ASSERT_TRUE(left.merge(right.finalize()).is_ok());

  auto a = MeanStddevResult::decode(seq.finalize());
  auto b = MeanStddevResult::decode(left.finalize());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().count, b.value().count);
  EXPECT_NEAR(a.value().mean, b.value().mean, 1e-9);
  EXPECT_NEAR(a.value().m2, b.value().m2, 1e-5);
}

// ---------------------------------------------------------------- histogram

TEST(HistogramKernel, BinsValuesCorrectly) {
  HistogramKernel k(4, 0.0, 4.0);
  k.reset();
  k.consume(doubles_to_bytes({0.5, 1.5, 1.6, 2.5, 3.5, -1.0, 9.0}));
  auto r = HistogramResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().counts, (std::vector<std::uint64_t>{1, 2, 1, 1}));
  EXPECT_EQ(r.value().below, 1u);
  EXPECT_EQ(r.value().above, 1u);
  EXPECT_EQ(r.value().total(), 7u);
}

TEST(HistogramKernel, HiBoundaryGoesToOverflow) {
  HistogramKernel k(2, 0.0, 2.0);
  k.reset();
  k.consume(doubles_to_bytes({2.0}));
  auto r = HistogramResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().above, 1u);
}

TEST(HistogramKernel, FromSpecValidation) {
  EXPECT_TRUE(HistogramKernel::from_spec(OperationSpec::parse("histogram:bins=8").value()).is_ok());
  EXPECT_FALSE(
      HistogramKernel::from_spec(OperationSpec::parse("histogram:bins=0").value()).is_ok());
  EXPECT_FALSE(
      HistogramKernel::from_spec(OperationSpec::parse("histogram:lo=2,hi=1").value()).is_ok());
}

TEST(HistogramKernel, MergeRejectsMismatchedBinning) {
  HistogramKernel a(4, 0.0, 1.0), b(8, 0.0, 1.0);
  a.reset();
  b.reset();
  EXPECT_FALSE(a.merge(b.finalize()).is_ok());
}

TEST(HistogramKernel, MergeMatchesSequential) {
  const auto values = random_doubles(3000, 41);
  const auto bytes = doubles_to_bytes(values);
  HistogramKernel seq(32, -100, 100), left(32, -100, 100), right(32, -100, 100);
  seq.reset();
  left.reset();
  right.reset();
  seq.consume(bytes);
  left.consume(std::span(bytes.data(), 8 * 1000));
  right.consume(std::span(bytes.data() + 8 * 1000, bytes.size() - 8 * 1000));
  ASSERT_TRUE(left.merge(right.finalize()).is_ok());
  EXPECT_EQ(left.finalize(), seq.finalize());
}

// ---------------------------------------------------------------- thresholdcount

TEST(ThresholdCountKernel, CountsAboveThreshold) {
  ThresholdCountKernel k(1.0);
  k.reset();
  k.consume(doubles_to_bytes({0.5, 1.0, 1.5, 2.0, -3.0}));
  auto r = ThresholdCountResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, 5u);
  EXPECT_EQ(r.value().matches, 2u);  // strictly greater
  EXPECT_DOUBLE_EQ(r.value().threshold, 1.0);
}

TEST(ThresholdCountKernel, MergeRejectsDifferentThreshold) {
  ThresholdCountKernel a(1.0), b(2.0);
  a.reset();
  b.reset();
  EXPECT_FALSE(a.merge(b.finalize()).is_ok());
}

// ---------------------------------------------------------------- gaussian2d

TEST(Gaussian2d, ConstantFieldIsInvariant) {
  const std::size_t w = 16, rows = 10;
  std::vector<double> grid(w * rows, 7.5);
  Gaussian2dKernel k(w, Gaussian2dKernel::Mode::kDigest);
  k.consume(doubles_to_bytes(grid));
  auto d = GaussianDigest::decode(k.finalize());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().rows, rows - 2);
  EXPECT_EQ(d.value().count, (rows - 2) * w);
  EXPECT_NEAR(d.value().min, 7.5, 1e-12);
  EXPECT_NEAR(d.value().max, 7.5, 1e-12);
  EXPECT_NEAR(d.value().sum, 7.5 * static_cast<double>((rows - 2) * w), 1e-9);
}

TEST(Gaussian2d, FullModeMatchesReference) {
  const std::size_t w = 8, rows = 12;
  const auto grid = random_doubles(w * rows, 55);
  Gaussian2dKernel k(w, Gaussian2dKernel::Mode::kFull);
  k.consume(doubles_to_bytes(grid));

  const auto result = k.finalize();
  ByteReader r(result);
  std::uint64_t out_rows = 0, width = 0;
  ASSERT_TRUE(r.get_u64(out_rows));
  ASSERT_TRUE(r.get_u64(width));
  EXPECT_EQ(out_rows, rows - 2);
  EXPECT_EQ(width, w);

  const auto expect = Gaussian2dKernel::filter_reference(grid, w);
  ASSERT_EQ(expect.size(), out_rows * w);
  for (double e : expect) {
    double got;
    ASSERT_TRUE(r.get_f64(got));
    ASSERT_NEAR(got, e, 1e-12);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(Gaussian2d, RaggedChunksMatchWholeBuffer) {
  const std::size_t w = 32, rows = 40;
  const auto grid = random_doubles(w * rows, 77);
  const auto bytes = doubles_to_bytes(grid);

  Gaussian2dKernel whole(w);
  whole.consume(bytes);

  Gaussian2dKernel ragged(w);
  Rng rng(99);
  consume_ragged(ragged, bytes, rng);

  EXPECT_EQ(whole.finalize(), ragged.finalize());
}

TEST(Gaussian2d, FewerThanThreeRowsProducesNothing) {
  const std::size_t w = 8;
  Gaussian2dKernel k(w);
  k.consume(doubles_to_bytes(random_doubles(w * 2, 5)));
  auto d = GaussianDigest::decode(k.finalize());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().rows, 0u);
  EXPECT_EQ(d.value().count, 0u);
}

TEST(Gaussian2d, CheckpointRestoreMidRowMatches) {
  const std::size_t w = 16, rows = 30;
  const auto grid = random_doubles(w * rows, 88);
  const auto bytes = doubles_to_bytes(grid);

  Gaussian2dKernel ref(w);
  ref.consume(bytes);

  // Cut mid-row, mid-item.
  const std::size_t cut = (w * 7 + 3) * sizeof(double) + 5;
  Gaussian2dKernel first(w);
  first.consume(std::span(bytes.data(), cut));
  auto decoded = Checkpoint::decode(first.checkpoint().encode());
  ASSERT_TRUE(decoded.is_ok());

  Gaussian2dKernel second(w);
  ASSERT_TRUE(second.restore(decoded.value()).is_ok());
  EXPECT_EQ(second.consumed(), cut);
  second.consume(std::span(bytes.data() + cut, bytes.size() - cut));

  EXPECT_EQ(second.finalize(), ref.finalize());
}

TEST(Gaussian2d, FullModeCheckpointCarriesOutput) {
  const std::size_t w = 8, rows = 20;
  const auto grid = random_doubles(w * rows, 91);
  const auto bytes = doubles_to_bytes(grid);

  Gaussian2dKernel ref(w, Gaussian2dKernel::Mode::kFull);
  ref.consume(bytes);

  const std::size_t cut = bytes.size() / 2 + 3;
  Gaussian2dKernel first(w, Gaussian2dKernel::Mode::kFull);
  first.consume(std::span(bytes.data(), cut));
  Gaussian2dKernel second(w, Gaussian2dKernel::Mode::kFull);
  ASSERT_TRUE(second.restore(first.checkpoint()).is_ok());
  second.consume(std::span(bytes.data() + cut, bytes.size() - cut));

  EXPECT_EQ(second.finalize(), ref.finalize());
}

TEST(Gaussian2d, RestoreRejectsWidthMismatch) {
  Gaussian2dKernel a(16), b(32);
  EXPECT_FALSE(b.restore(a.checkpoint()).is_ok());
}

TEST(Gaussian2d, RestoreRejectsModeMismatch) {
  Gaussian2dKernel a(16, Gaussian2dKernel::Mode::kDigest);
  Gaussian2dKernel b(16, Gaussian2dKernel::Mode::kFull);
  EXPECT_FALSE(b.restore(a.checkpoint()).is_ok());
}

TEST(Gaussian2d, DigestResultSizeConstantFullProportional) {
  Gaussian2dKernel digest(1024, Gaussian2dKernel::Mode::kDigest);
  EXPECT_EQ(digest.result_size(128_MiB), digest.result_size(1_GiB));

  Gaussian2dKernel full(1024, Gaussian2dKernel::Mode::kFull);
  const Bytes in = 128_MiB;
  EXPECT_GT(full.result_size(in), in - 3 * 1024 * sizeof(double));
  EXPECT_LE(full.result_size(in), in);
}

TEST(Gaussian2d, FromSpecParsesWidthAndMode) {
  auto k = Gaussian2dKernel::from_spec(
      OperationSpec::parse("gaussian2d:width=256,mode=full").value());
  ASSERT_TRUE(k.is_ok());
  auto* g = dynamic_cast<Gaussian2dKernel*>(k.value().get());
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->width(), 256u);
  EXPECT_EQ(g->mode(), Gaussian2dKernel::Mode::kFull);
}

TEST(Gaussian2d, FromSpecRejectsBadArgs) {
  EXPECT_FALSE(
      Gaussian2dKernel::from_spec(OperationSpec::parse("gaussian2d:width=0").value()).is_ok());
  EXPECT_FALSE(
      Gaussian2dKernel::from_spec(OperationSpec::parse("gaussian2d:mode=weird").value()).is_ok());
}

// Property sweep: checkpoint/restore correctness across cut points.
class GaussianCutProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussianCutProperty, AnyCutPointResumesExactly) {
  const std::size_t w = 8, rows = 12;
  const auto grid = random_doubles(w * rows, 123);
  const auto bytes = doubles_to_bytes(grid);
  const std::size_t cut = std::min(GetParam(), bytes.size());

  Gaussian2dKernel ref(w);
  ref.consume(bytes);

  Gaussian2dKernel first(w);
  first.consume(std::span(bytes.data(), cut));
  Gaussian2dKernel second(w);
  ASSERT_TRUE(second.restore(first.checkpoint()).is_ok());
  second.consume(std::span(bytes.data() + cut, bytes.size() - cut));
  EXPECT_EQ(second.finalize(), ref.finalize());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, GaussianCutProperty,
                         ::testing::Values(0u, 1u, 7u, 8u, 63u, 64u, 65u, 100u, 512u, 511u,
                                           640u, 767u, 768u, 5000u));

// ---------------------------------------------------------------- bytegrep

TEST(ByteGrep, CountsOccurrences) {
  ByteGrepKernel k("ab");
  k.reset();
  const std::string text = "abxxabab";
  k.consume(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  auto r = ByteGrepResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().matches, 3u);
  EXPECT_EQ(r.value().scanned, text.size());
}

TEST(ByteGrep, CountsOverlappingMatches) {
  ByteGrepKernel k("aa");
  k.reset();
  const std::string text = "aaaa";
  k.consume(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  auto r = ByteGrepResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().matches, 3u);
}

TEST(ByteGrep, FindsMatchSpanningChunks) {
  ByteGrepKernel k("ERROR");
  k.reset();
  const std::string a = "xxxxER";
  const std::string b = "RORyyyy";
  k.consume(std::span(reinterpret_cast<const std::uint8_t*>(a.data()), a.size()));
  k.consume(std::span(reinterpret_cast<const std::uint8_t*>(b.data()), b.size()));
  auto r = ByteGrepResult::decode(k.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().matches, 1u);
}

TEST(ByteGrep, RaggedChunksMatchWholeBuffer) {
  Rng data_rng(7);
  std::vector<std::uint8_t> hay(50'000);
  for (auto& b : hay) b = static_cast<std::uint8_t>('a' + data_rng.uniform_index(3));

  ByteGrepKernel whole("abc");
  whole.reset();
  whole.consume(hay);

  ByteGrepKernel ragged("abc");
  ragged.reset();
  Rng rng(13);
  consume_ragged(ragged, hay, rng);

  EXPECT_EQ(whole.finalize(), ragged.finalize());
}

TEST(ByteGrep, CheckpointResumeFindsBoundaryMatch) {
  const std::string text = "....NEEDLE....";
  ByteGrepKernel first("NEEDLE");
  first.reset();
  first.consume(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), 7));  // "....NEE"

  ByteGrepKernel second("NEEDLE");
  ASSERT_TRUE(second.restore(first.checkpoint()).is_ok());
  second.consume(
      std::span(reinterpret_cast<const std::uint8_t*>(text.data()) + 7, text.size() - 7));
  auto r = ByteGrepResult::decode(second.finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().matches, 1u);
}

TEST(ByteGrep, RestoreRejectsPatternMismatch) {
  ByteGrepKernel a("AAA"), b("BBB");
  a.reset();
  EXPECT_FALSE(b.restore(a.checkpoint()).is_ok());
}

// ---------------------------------------------------------------- registry

TEST(Registry, BuiltinsArePresent) {
  const auto reg = Registry::with_builtins();
  for (const char* name : {"sum", "minmax", "meanstddev", "histogram", "thresholdcount",
                           "gaussian2d", "bytegrep", "sobel2d", "topk", "reservoir"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_EQ(reg.names().size(), 12u);
}

TEST(Registry, CreatesKernelFromOperationString) {
  const auto reg = Registry::with_builtins();
  auto k = reg.create("gaussian2d:width=64");
  ASSERT_TRUE(k.is_ok());
  EXPECT_EQ(k.value()->name(), "gaussian2d");
}

TEST(Registry, UnknownKernelFails) {
  const auto reg = Registry::with_builtins();
  auto k = reg.create("fft");
  ASSERT_FALSE(k.is_ok());
  EXPECT_EQ(k.status().code(), ErrorCode::kNotFound);
}

TEST(Registry, MalformedOperationFails) {
  const auto reg = Registry::with_builtins();
  EXPECT_FALSE(reg.create(":oops").is_ok());
}

TEST(Registry, CustomKernelRegisters) {
  Registry reg;
  reg.register_kernel("custom", [](const OperationSpec&) -> Result<std::unique_ptr<Kernel>> {
    return std::unique_ptr<Kernel>(std::make_unique<SumKernel>());
  });
  EXPECT_TRUE(reg.contains("custom"));
  EXPECT_TRUE(reg.create("custom").is_ok());
}

// ---------------------------------------------------------------- calibration

TEST(Calibrate, ProducesPositiveRate) {
  SumKernel k;
  CalibrationOptions opts;
  opts.total_bytes = 4_MiB;
  opts.chunk_size = 256_KiB;
  opts.warmup_chunks = 1;
  const auto r = calibrate(k, opts);
  EXPECT_GT(r.rate, 0.0);
  EXPECT_GE(r.bytes_processed, opts.total_bytes);
  EXPECT_GT(r.elapsed, 0.0);
}

TEST(Calibrate, SumIsFasterThanGaussian) {
  // The paper's Table III ordering (860 vs 80 MB/s) must hold on any host:
  // SUM does 1 add/item, the Gaussian does 19 FLOPs over 9 neighbours.
  SumKernel sum;
  Gaussian2dKernel gauss(1024);
  CalibrationOptions opts;
  opts.total_bytes = 8_MiB;
  opts.chunk_size = 512_KiB;
  opts.warmup_chunks = 1;
  const auto rs = calibrate(sum, opts);
  const auto rg = calibrate(gauss, opts);
  EXPECT_GT(rs.rate, rg.rate);
}

}  // namespace
}  // namespace dosas::kernels
