// test_ring.cpp — the lock-free MPMC ring (src/common/ring.hpp).
//
// The ring replaces the mutex Channel on the storage-server dispatch and
// scale-harness completer paths, so it must honor the exact contracts the
// runtime leans on: FIFO per producer, close-then-drain (a send() that
// returned true is ALWAYS drained), tri-state polling, and Clock-seam
// parking so a blocked worker counts as quiescent under a VirtualClock.
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/ring.hpp"

namespace dosas {
namespace {

TEST(Ring, SendReceiveOrder) {
  Ring<int> ring(8);
  ring.send(1);
  ring.send(2);
  ring.send(3);
  EXPECT_EQ(ring.receive().value(), 1);
  EXPECT_EQ(ring.receive().value(), 2);
  EXPECT_EQ(ring.receive().value(), 3);
}

TEST(Ring, CapacityRoundsUpToPowerOfTwo) {
  Ring<int> a(3);
  EXPECT_EQ(a.capacity(), 4u);
  Ring<int> b(8);
  EXPECT_EQ(b.capacity(), 8u);
  Ring<int> c(1);
  EXPECT_EQ(c.capacity(), 2u);
}

TEST(Ring, TrySendFailsWhenFull) {
  Ring<int> ring(2);
  EXPECT_TRUE(ring.try_send(1));
  EXPECT_TRUE(ring.try_send(2));
  EXPECT_FALSE(ring.try_send(3));
  EXPECT_EQ(ring.size(), 2u);
}

TEST(Ring, PollTriState) {
  Ring<int> ring(4);
  std::optional<int> out;
  EXPECT_EQ(ring.poll(out), QueuePoll::kEmpty);
  EXPECT_FALSE(out.has_value());

  ring.send(7);
  EXPECT_EQ(ring.poll(out), QueuePoll::kItem);
  EXPECT_EQ(out.value(), 7);

  ring.send(8);
  ring.close();
  EXPECT_EQ(ring.poll(out), QueuePoll::kItem);  // drain continues past close
  EXPECT_EQ(out.value(), 8);
  EXPECT_EQ(ring.poll(out), QueuePoll::kClosed);
  EXPECT_FALSE(out.has_value());
}

TEST(Ring, CloseDrainsThenSignals) {
  Ring<int> ring(4);
  ring.send(7);
  ring.close();
  EXPECT_FALSE(ring.send(8));
  EXPECT_FALSE(ring.try_send(9));
  EXPECT_EQ(ring.receive().value(), 7);
  EXPECT_FALSE(ring.receive().has_value());
}

TEST(Ring, CloseWakesBlockedReceiver) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  Ring<int> ring(4);
  std::thread t([&] {
    ClockParticipant participant;
    auto v = ring.receive();
    EXPECT_FALSE(v.has_value());
  });
  // Deterministic rendezvous: once the clock counts the receiver as
  // blocked it is parked inside receive() — no wall-clock sleep needed.
  while (vc.status().blocked < 1) std::this_thread::yield();
  ring.close();
  t.join();
}

TEST(Ring, CloseWhileFullUnblocksProducer) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  Ring<int> ring(2);
  ASSERT_TRUE(ring.try_send(1));
  ASSERT_TRUE(ring.try_send(2));
  std::atomic<int> send_result{-1};
  std::thread t([&] {
    ClockParticipant participant;
    send_result.store(ring.send(3) ? 1 : 0);
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  ring.close();
  t.join();
  // The blocked send observed the close and failed; the pre-close items
  // are still drainable.
  EXPECT_EQ(send_result.load(), 0);
  EXPECT_EQ(ring.receive().value(), 1);
  EXPECT_EQ(ring.receive().value(), 2);
  EXPECT_FALSE(ring.receive().has_value());
}

TEST(Ring, ParkedConsumerIsQuiescentUnderVirtualClock) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  Ring<int> ring(4);
  std::thread consumer([&] {
    ClockParticipant participant;
    auto v = ring.receive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  {
    // With the consumer parked in the ring (no deadline), a sleeping
    // participant is the only armed deadline — virtual time must jump
    // straight to it. This is the DST quiescence property the ring's
    // parking fallback exists to preserve.
    ClockParticipant me;
    const Seconds before = vc.now();
    clock().sleep(5.0);
    EXPECT_GE(vc.now(), before + 5.0);
  }
  ring.send(42);
  consumer.join();
}

TEST(Ring, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  Ring<int> ring(64);  // small: exercises the full/park paths
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = ring.receive()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ring.send(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  ring.close();
  for (auto& t : consumers) t.join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // each value delivered once

  const RingStats stats = ring.stats();
  EXPECT_GE(stats.push_attempts, static_cast<std::uint64_t>(n));
  EXPECT_GE(stats.pop_attempts, static_cast<std::uint64_t>(n));
}

TEST(Ring, EverySuccessfulSendIsDrainedAcrossConcurrentClose) {
  // The contract StorageServer::launch_or_reject depends on: if submit
  // (send) returned true, the task WILL be picked up. Close the ring
  // while producers are mid-stream and check accepted == received.
  constexpr int kProducers = 4;
  constexpr int kAttemptsPerProducer = 4000;
  Ring<int> ring(32);
  std::atomic<int> accepted{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (ring.receive()) received.fetch_add(1);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerProducer; ++i) {
        if (ring.send(i)) accepted.fetch_add(1);
      }
    });
  }
  clock().sleep(0.002);  // let the stream run, then yank the plug
  ring.close();
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(received.load(), accepted.load());
  EXPECT_LE(accepted.load(), kProducers * kAttemptsPerProducer);
}

// ------------------------------------------------------------ SPSC variant
//
// SpscRing shares the MPMC ring's storage, parking, and close-then-drain
// machinery; what changes is cursor claiming (plain release stores, no CAS
// loop). These tests pin the shared contracts on the specialized code path
// and the one new invariant: no CAS retries, ever.

TEST(SpscRing, OrderCloseDrainAndPollContractsHold) {
  SpscRing<int> ring(4);
  ring.send(1);
  ring.send(2);
  EXPECT_EQ(ring.receive().value(), 1);

  std::optional<int> out;
  EXPECT_EQ(ring.poll(out), QueuePoll::kItem);
  EXPECT_EQ(out.value(), 2);
  EXPECT_EQ(ring.poll(out), QueuePoll::kEmpty);

  ring.send(3);
  ring.close();
  EXPECT_FALSE(ring.send(4));
  EXPECT_EQ(ring.poll(out), QueuePoll::kItem);  // drain continues past close
  EXPECT_EQ(out.value(), 3);
  EXPECT_EQ(ring.poll(out), QueuePoll::kClosed);
}

TEST(SpscRing, StressDeliversEveryItemInOrderWithoutCasRetries) {
  constexpr int kItems = 200'000;
  SpscRing<int> ring(64);  // small: exercises the full/park paths
  std::atomic<long> sum{0};
  std::thread consumer([&] {
    int expected = 0;
    while (auto v = ring.receive()) {
      ASSERT_EQ(*v, expected);  // strict FIFO, nothing lost or reordered
      ++expected;
      sum.fetch_add(*v);
    }
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ring.send(i));
  ring.close();
  consumer.join();

  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems - 1) / 2);
  const RingStats stats = ring.stats();
  EXPECT_GE(stats.push_attempts, static_cast<std::uint64_t>(kItems));
  // The whole point of the specialization: single producer and single
  // consumer never contend on a cursor, so the CAS claim loop is gone.
  EXPECT_EQ(stats.push_cas_retries, 0u);
  EXPECT_EQ(stats.pop_cas_retries, 0u);
}

TEST(SpscRing, ParkedConsumerIsQuiescentUnderVirtualClock) {
  // The scale harness parks completer threads in SPSC receive() under a
  // VirtualClock; a parked consumer must count as quiescent or virtual
  // time stalls (the DST property test_scale leans on).
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  SpscRing<int> ring(4);
  std::thread consumer([&] {
    ClockParticipant participant;
    auto v = ring.receive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  {
    ClockParticipant me;
    const Seconds before = vc.now();
    clock().sleep(5.0);
    EXPECT_GE(vc.now(), before + 5.0);
  }
  ring.send(42);
  consumer.join();
}

TEST(SpscRing, CloseWakesBlockedConsumerAndFullProducer) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_send(1));
  ASSERT_TRUE(ring.try_send(2));
  std::atomic<int> send_result{-1};
  std::thread producer([&] {
    ClockParticipant participant;
    send_result.store(ring.send(3) ? 1 : 0);
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  ring.close();
  producer.join();
  EXPECT_EQ(send_result.load(), 0);
  EXPECT_EQ(ring.receive().value(), 1);
  EXPECT_EQ(ring.receive().value(), 2);
  EXPECT_FALSE(ring.receive().has_value());
}

TEST(SpscRing, MoveOnlyItemsFlowThrough) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ring.send(std::make_unique<int>(5));
  auto v = ring.receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(Ring, MoveOnlyItemsFlowThrough) {
  Ring<std::unique_ptr<int>> ring(4);
  ring.send(std::make_unique<int>(5));
  auto v = ring.receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(Ring, DestructorReleasesUndrainedItems) {
  // Leak check (ASan tier): items still in slots when the ring dies must
  // be destroyed.
  auto ring = std::make_unique<Ring<std::vector<int>>>(8);
  ring->send(std::vector<int>(1024, 7));
  ring->send(std::vector<int>(2048, 9));
  ring.reset();
}

}  // namespace
}  // namespace dosas
