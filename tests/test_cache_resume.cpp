// Tests for the two server-side extensions: the active-result cache
// (version-validated, LRU) and cooperative resumption (interrupted kernels
// resubmitted with their checkpoints).
#include <gtest/gtest.h>

#include <thread>

#include "core/cluster.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/sum.hpp"
#include "server/storage_server.hpp"

namespace dosas::core {
namespace {

// ---------------------------------------------------------------- result cache

struct CacheFixture {
  explicit CacheFixture(std::size_t cache_entries, std::size_t count = 20'000) {
    ClusterConfig cfg;
    cfg.scheme = SchemeKind::kActive;  // always offload: exercise the cache
    cfg.result_cache_entries = cache_entries;
    cluster = std::make_unique<Cluster>(cfg);
    auto m = pfs::write_doubles(cluster->pfs_client(), "/data", count,
                                [](std::size_t i) { return static_cast<double>(i % 11); });
    EXPECT_TRUE(m.is_ok());
    meta = m.value();
  }

  std::unique_ptr<Cluster> cluster;
  pfs::FileMeta meta;
};

TEST(ResultCache, RepeatedReadHitsCache) {
  CacheFixture fx(8);
  auto first = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  auto second = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());

  const auto ss = fx.cluster->storage_server(0).stats();
  EXPECT_EQ(ss.cache_hits, 1u);
  EXPECT_EQ(ss.cache_misses, 1u);
  // The kernel streamed the data exactly once.
  EXPECT_EQ(ss.active_bytes_processed, fx.meta.size);
}

TEST(ResultCache, DifferentExtentOrOperationMisses) {
  CacheFixture fx(8);
  (void)fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  (void)fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size / 2, "sum");   // other extent
  (void)fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "minmax");    // other op
  const auto ss = fx.cluster->storage_server(0).stats();
  EXPECT_EQ(ss.cache_hits, 0u);
  EXPECT_EQ(ss.cache_misses, 3u);
}

TEST(ResultCache, WriteInvalidates) {
  CacheFixture fx(8);
  auto first = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(first.is_ok());

  // Mutate one double in place: the version bumps, so the next read_ex
  // must recompute — and see the new value.
  const double newval = 1e6;
  auto updated = fx.cluster->pfs_client().write(
      fx.meta, 0, std::span(reinterpret_cast<const std::uint8_t*>(&newval), sizeof(newval)));
  ASSERT_TRUE(updated.is_ok());

  auto second = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(second.is_ok());
  EXPECT_NE(first.value(), second.value());

  auto s1 = kernels::SumResult::decode(first.value());
  auto s2 = kernels::SumResult::decode(second.value());
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_NEAR(s2.value().sum - s1.value().sum, 1e6 - 0.0, 1e-6);  // item 0 was 0.0
  EXPECT_EQ(fx.cluster->storage_server(0).stats().cache_hits, 0u);
}

TEST(ResultCache, LruEvictsOldest) {
  CacheFixture fx(2);  // tiny cache
  // Three distinct extents fill and overflow the 2-entry cache.
  (void)fx.cluster->asc().read_ex(fx.meta, 0, 8000, "sum");
  (void)fx.cluster->asc().read_ex(fx.meta, 8000, 8000, "sum");
  (void)fx.cluster->asc().read_ex(fx.meta, 16000, 8000, "sum");  // evicts extent 0
  (void)fx.cluster->asc().read_ex(fx.meta, 8000, 8000, "sum");   // hit
  (void)fx.cluster->asc().read_ex(fx.meta, 0, 8000, "sum");      // miss (evicted)
  const auto ss = fx.cluster->storage_server(0).stats();
  EXPECT_EQ(ss.cache_hits, 1u);
  EXPECT_EQ(ss.cache_misses, 4u);
}

TEST(ResultCache, DisabledByDefault) {
  CacheFixture fx(0);
  (void)fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  (void)fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  const auto ss = fx.cluster->storage_server(0).stats();
  EXPECT_EQ(ss.cache_hits, 0u);
  EXPECT_EQ(ss.cache_misses, 0u);
  EXPECT_EQ(ss.active_bytes_processed, 2 * fx.meta.size);
}

TEST(ResultCache, BatchPathUsesCacheToo) {
  CacheFixture fx(8);
  std::vector<client::ActiveClient::BatchItem> items;
  items.push_back({fx.meta, 0, fx.meta.size, "sum"});
  (void)fx.cluster->asc().read_ex_batch(items);
  (void)fx.cluster->asc().read_ex_batch(items);
  EXPECT_EQ(fx.cluster->storage_server(0).stats().cache_hits, 1u);
}

TEST(ResultCache, HitServesSharedViewNotAnExtentCopy) {
  CacheFixture fx(8);
  auto first = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(first.is_ok());

  const std::uint64_t before = data_bytes_copied();
  auto second = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(second.is_ok());
  const std::uint64_t delta = data_bytes_copied() - before;

  EXPECT_EQ(fx.cluster->storage_server(0).stats().cache_hits, 1u);
  // The hit shares the cached entry's slab with the response — the only
  // owning copy in the whole round trip is the client materializing the
  // h(d)-sized result vector, never anything extent-sized.
  EXPECT_LE(delta, first.value().size());
  EXPECT_LT(delta, fx.meta.size);
}

TEST(ResultCache, CountsEvictionsAndInvalidations) {
  CacheFixture fx(2);  // tiny cache over one object
  (void)fx.cluster->asc().read_ex(fx.meta, 0, 8000, "sum");
  (void)fx.cluster->asc().read_ex(fx.meta, 8000, 8000, "sum");
  (void)fx.cluster->asc().read_ex(fx.meta, 16000, 8000, "sum");  // displaces extent 0
  EXPECT_EQ(fx.cluster->storage_server(0).stats().cache_evictions, 1u);
  EXPECT_EQ(fx.cluster->storage_server(0).stats().cache_invalidations, 0u);

  // A write bumps the object version; the surviving entries are stale and
  // the next lookup drops one (counted) instead of serving it.
  const double v = 42.0;
  auto w = fx.cluster->pfs_client().write(
      fx.meta, 0, std::span(reinterpret_cast<const std::uint8_t*>(&v), sizeof(v)));
  ASSERT_TRUE(w.is_ok());
  (void)fx.cluster->asc().read_ex(fx.meta, 8000, 8000, "sum");
  EXPECT_EQ(fx.cluster->storage_server(0).stats().cache_invalidations, 1u);
}

TEST(ResultCache, WriteRaceNeverServesStaleResult) {
  // Interleave BufferRef writes (the zero-copy kWrite path) with repeat
  // reads of the same extent: every write must invalidate, and every read
  // must see the freshly written item.
  CacheFixture fx(8);
  auto prev = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(prev.is_ok());
  double prev_sum = kernels::SumResult::decode(prev.value()).value().sum;

  for (int k = 1; k <= 4; ++k) {
    const double v = static_cast<double>(k) * 1000.0;
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    auto w = fx.cluster->asc().write(fx.meta, 0,
                                     BufferRef::adopt(std::vector<std::uint8_t>(p, p + sizeof(v))));
    ASSERT_TRUE(w.is_ok());
    auto r = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
    ASSERT_TRUE(r.is_ok());
    const double sum = kernels::SumResult::decode(r.value()).value().sum;
    EXPECT_NEAR(sum - prev_sum, 1000.0, 1e-6);  // item 0 moved by exactly +1000
    prev_sum = sum;
  }
  const auto ss = fx.cluster->storage_server(0).stats();
  EXPECT_EQ(ss.cache_hits, 0u);
  EXPECT_EQ(ss.cache_invalidations, 4u);
}

TEST(ResultCache, ConcurrentWritesAndCachedReadsStayCoherent) {
  // Thread-safety smoke for the write path racing cache lookups: a writer
  // hammers item 0 while readers alternate between two extents. Nothing to
  // assert beyond success — tsan is the judge of the interleavings.
  CacheFixture fx(4, 4096);
  std::thread writer([&] {
    for (int k = 1; k <= 200; ++k) {
      const double v = static_cast<double>(k);
      const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
      auto w = fx.cluster->asc().write(
          fx.meta, 0, BufferRef::adopt(std::vector<std::uint8_t>(p, p + sizeof(v))));
      ASSERT_TRUE(w.is_ok());
    }
  });
  for (int i = 0; i < 50; ++i) {
    auto r = fx.cluster->asc().read_ex(fx.meta, (i % 2) * 8000, 8000, "sum");
    ASSERT_TRUE(r.is_ok());
  }
  writer.join();
}

// ---------------------------------------------------------------- object versions

TEST(ObjectVersion, BumpsOnWriteAndRemove) {
  pfs::DataServer ds(0);
  EXPECT_EQ(ds.object_version(1), 0u);
  ASSERT_TRUE(ds.write_object(1, 0, std::vector<std::uint8_t>(10, 1)).is_ok());
  EXPECT_EQ(ds.object_version(1), 1u);
  ASSERT_TRUE(ds.write_object(1, 5, std::vector<std::uint8_t>(3, 2)).is_ok());
  EXPECT_EQ(ds.object_version(1), 2u);
  ASSERT_TRUE(ds.remove_object(1).is_ok());
  EXPECT_EQ(ds.object_version(1), 3u);
  ASSERT_TRUE(ds.remove_object(1).is_ok());  // no object: no bump
  EXPECT_EQ(ds.object_version(1), 3u);
}

// ---------------------------------------------------------------- cooperative resumption

TEST(Resumption, ServerContinuesFromCheckpoint) {
  // Drive the server API directly: interrupt a kernel by hand, then
  // resubmit with the checkpoint and verify the result matches an
  // uninterrupted run.
  pfs::FileSystem fs(1, 64_KiB);
  pfs::Client client(fs);
  constexpr std::size_t kWidth = 128, kRows = 512;
  auto meta = pfs::write_doubles(client, "/g", kWidth * kRows,
                                 [](std::size_t i) { return static_cast<double>(i % 17); });
  ASSERT_TRUE(meta.is_ok());

  server::ContentionEstimator::Config ce;
  ce.optimizer = "all-active";
  server::StorageServer server(fs, 0, kernels::Registry::with_builtins(), ce,
                               server::RateTable::paper_rates());

  // Build the "interrupted" state with a local kernel over a prefix.
  const Bytes cut = meta.value().size / 3 + 5;
  auto prefix = fs.data_server(0).read_object(meta.value().handle, 0, cut);
  ASSERT_TRUE(prefix.is_ok());
  kernels::Gaussian2dKernel partial(kWidth);
  partial.consume(prefix.value());

  server::ActiveIoRequest resume;
  resume.handle = meta.value().handle;
  resume.object_offset = 0;
  resume.length = meta.value().size;
  resume.operation = "gaussian2d:width=128";
  resume.resume_checkpoint = partial.checkpoint().encode();
  resume.resume_from = cut;
  auto resp = server.serve_active(resume);
  ASSERT_EQ(resp.outcome, server::ActiveOutcome::kCompleted) << resp.status.to_string();

  // Reference: one uninterrupted pass.
  auto all = fs.data_server(0).read_object(meta.value().handle, 0, meta.value().size);
  ASSERT_TRUE(all.is_ok());
  kernels::Gaussian2dKernel ref(kWidth);
  ref.consume(all.value());
  EXPECT_EQ(resp.result, ref.finalize());
}

TEST(Resumption, BadCheckpointFailsCleanly) {
  pfs::FileSystem fs(1, 64_KiB);
  pfs::Client client(fs);
  auto meta = pfs::write_doubles(client, "/d", 1000,
                                 [](std::size_t i) { return static_cast<double>(i); });
  ASSERT_TRUE(meta.is_ok());
  server::ContentionEstimator::Config ce;
  ce.optimizer = "all-active";
  server::StorageServer server(fs, 0, kernels::Registry::with_builtins(), ce,
                               server::RateTable::paper_rates());

  server::ActiveIoRequest resume;
  resume.handle = meta.value().handle;
  resume.length = meta.value().size;
  resume.operation = "sum";
  resume.resume_checkpoint = {1, 2, 3, 4};  // garbage
  resume.resume_from = 0;
  auto resp = server.serve_active(resume);
  EXPECT_EQ(resp.outcome, server::ActiveOutcome::kFailed);
}

TEST(Resumption, ClientResubmitPathProducesExactResults) {
  // DOSAS cluster under contention with resubmission enabled: whatever mix
  // of first-try / resubmitted / locally-finished outcomes occurs, results
  // must equal the sequential reference.
  ClusterConfig cfg;
  cfg.scheme = SchemeKind::kDosas;
  cfg.server_chunk_size = 16_KiB;
  cfg.resubmit_interrupted = true;
  auto cluster = std::make_unique<Cluster>(cfg);

  constexpr std::size_t kFiles = 8, kWidth = 256, kRows = 1024;
  for (std::size_t f = 0; f < kFiles; ++f) {
    auto meta = pfs::write_doubles(
        cluster->pfs_client(), "/g" + std::to_string(f), kWidth * kRows,
        [f](std::size_t i) { return static_cast<double>((i * (f + 2)) % 19); });
    ASSERT_TRUE(meta.is_ok());
  }

  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint8_t>> results(kFiles);
  std::vector<Status> statuses(kFiles, Status::ok());
  for (std::size_t f = 0; f < kFiles; ++f) {
    threads.emplace_back([&, f] {
      auto meta = cluster->pfs_client().open("/g" + std::to_string(f));
      if (!meta.is_ok()) {
        statuses[f] = meta.status();
        return;
      }
      auto out =
          cluster->asc().read_ex(meta.value(), 0, meta.value().size, "gaussian2d:width=256");
      if (out.is_ok()) {
        results[f] = out.value();
      } else {
        statuses[f] = out.status();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(statuses[f].is_ok()) << f << ": " << statuses[f].to_string();
    auto meta = cluster->pfs_client().open("/g" + std::to_string(f));
    ASSERT_TRUE(meta.is_ok());
    auto raw = cluster->pfs_client().read_all(meta.value());
    ASSERT_TRUE(raw.is_ok());
    kernels::Gaussian2dKernel ref(kWidth);
    ref.consume(raw.value());
    EXPECT_EQ(results[f], ref.finalize()) << f;
  }
}

}  // namespace
}  // namespace dosas::core
