// Tests for the rpc transport layer: PendingReply semantics, cancellation
// of queued server work, deadline enforcement (queued and running),
// out-of-order completion under striped fan-out, and batch coalescing
// equivalence with the synchronous path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/active_client.hpp"
#include "kernels/sum.hpp"
#include "pfs/client.hpp"
#include "rpc/inprocess.hpp"
#include "rpc/interceptors.hpp"
#include "server/storage_server.hpp"

namespace dosas::rpc {
namespace {

server::ContentionEstimator::Config ce_config(const std::string& optimizer = "all-active") {
  server::ContentionEstimator::Config c;
  c.bandwidth = mb_per_sec(118.0);
  c.optimizer = optimizer;
  c.derate_by_external_load = false;
  return c;
}

/// One storage server over a 1-server volume with `count` doubles at
/// "/data", behind a bare InProcessTransport. The all-active policy keeps
/// the scheduler out of the way: outcomes here are driven by the transport.
struct Fixture {
  explicit Fixture(std::size_t count = 4096, server::StorageServer::Config sc = {})
      : fs(1, 64_KiB), client(fs) {
    auto m = pfs::write_doubles(client, "/data", count,
                                [](std::size_t i) { return static_cast<double>(i % 97); });
    EXPECT_TRUE(m.is_ok());
    meta = m.value();
    server = std::make_unique<server::StorageServer>(fs, 0, kernels::Registry::with_builtins(),
                                                     ce_config(), server::RateTable::paper_rates(),
                                                     sc);
    transport = std::make_unique<InProcessTransport>(
        std::vector<server::StorageServer*>{server.get()});
  }

  Envelope active_env(const std::string& operation, Seconds deadline = 0) const {
    Envelope env;
    env.target = 0;
    env.kind = OpKind::kActiveIo;
    env.active.handle = meta.handle;
    env.active.object_offset = 0;
    env.active.length = meta.size;
    env.active.operation = operation;
    env.deadline = deadline;
    return env;
  }

  pfs::FileSystem fs;
  pfs::Client client;
  pfs::FileMeta meta;
  std::unique_ptr<server::StorageServer> server;
  std::unique_ptr<InProcessTransport> transport;
};

// -------------------------------------------------------------- PendingReply

TEST(PendingReply, FirstCompletionWinsAndCallbacksFireInOrder) {
  auto reply = PendingReply::make(OpKind::kActiveIo);
  EXPECT_TRUE(reply.valid());
  EXPECT_FALSE(reply.ready());

  std::vector<int> order;
  reply.on_complete([&](Reply&) { order.push_back(1); });
  reply.on_complete([&](Reply&) { order.push_back(2); });

  Reply first;
  first.kind = OpKind::kActiveIo;
  first.active.outcome = server::ActiveOutcome::kCompleted;
  first.active.result = BufferRef::adopt({1, 2, 3});
  EXPECT_TRUE(reply.complete(std::move(first)));
  EXPECT_TRUE(reply.ready());

  Reply second;
  second.kind = OpKind::kActiveIo;
  second.active.outcome = server::ActiveOutcome::kFailed;
  EXPECT_FALSE(reply.complete(std::move(second)));  // first completion stands

  // A callback registered after completion fires immediately.
  reply.on_complete([&](Reply&) { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));

  auto r = reply.wait();
  EXPECT_EQ(r.active.outcome, server::ActiveOutcome::kCompleted);
  EXPECT_EQ(r.active.result, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(PendingReply, CancelInvokesCancellerAndCompletesWithReason) {
  auto reply = PendingReply::make(OpKind::kActiveIo);
  bool canceller_ran = false;
  reply.set_canceller([&](const Status&) {
    canceller_ran = true;
    return true;
  });

  EXPECT_TRUE(reply.cancel(error(ErrorCode::kCancelled, "withdrawn by test")));
  EXPECT_TRUE(canceller_ran);
  auto r = reply.wait();
  EXPECT_EQ(r.active.outcome, server::ActiveOutcome::kFailed);
  EXPECT_EQ(r.status().code(), ErrorCode::kCancelled);
}

TEST(PendingReply, CompletionReleasesCancellerCaptures) {
  // Interceptor cancellers close over session state (RetryTransport's
  // Session, the hedge twin) that itself holds the reply's State — if the
  // canceller outlived completion, the whole retry session would leak as a
  // shared_ptr cycle. Completion must drop it, and a canceller installed
  // after completion (it can never fire) must not be stored either.
  auto reply = PendingReply::make(OpKind::kActiveIo);
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  reply.set_canceller([sentinel](const Status&) { return false; });
  sentinel.reset();
  EXPECT_FALSE(watch.expired());  // held by the installed canceller

  Reply r;
  r.kind = OpKind::kActiveIo;
  r.active.outcome = server::ActiveOutcome::kCompleted;
  EXPECT_TRUE(reply.complete(std::move(r)));
  EXPECT_TRUE(watch.expired());  // completion released the closure

  auto late = std::make_shared<int>(8);
  std::weak_ptr<int> late_watch = late;
  reply.set_canceller([late](const Status&) { return false; });
  late.reset();
  EXPECT_TRUE(late_watch.expired());  // post-completion install is dropped
}

TEST(PendingReply, CancelAfterCompletionFailsAndKeepsReply) {
  auto reply = PendingReply::make(OpKind::kRead);
  Reply r;
  r.kind = OpKind::kRead;
  r.read.data = BufferRef::adopt({7});
  EXPECT_TRUE(reply.complete(std::move(r)));
  EXPECT_FALSE(reply.cancel(error(ErrorCode::kCancelled, "too late")));
  auto got = reply.wait();
  EXPECT_TRUE(got.read.status.is_ok());
  EXPECT_EQ(got.read.data, (std::vector<std::uint8_t>{7}));
}

// ------------------------------------------------------ cancellation (queued)

TEST(Rpc, CancelQueuedRequestNeverRunsIt) {
  // One worker core: the long gaussian occupies it, so the sum queues
  // behind it and can be withdrawn before it ever launches.
  server::StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 64_KiB;
  Fixture fx(1u << 21, sc);  // 16 MiB of doubles

  auto long_reply = fx.transport->submit(fx.active_env("gaussian2d:width=32"));
  auto queued_reply = fx.transport->submit(fx.active_env("sum"));

  EXPECT_TRUE(queued_reply.cancel(error(ErrorCode::kCancelled, "caller gave up")));
  auto cancelled = queued_reply.wait();
  EXPECT_EQ(cancelled.active.outcome, server::ActiveOutcome::kFailed);
  EXPECT_EQ(cancelled.status().code(), ErrorCode::kCancelled);

  auto done = long_reply.wait();
  EXPECT_EQ(done.active.outcome, server::ActiveOutcome::kCompleted);

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.active_cancelled, 1u);
  EXPECT_EQ(stats.active_completed, 1u);
  EXPECT_EQ(stats.active_timed_out, 0u);

  const auto t = stats_of(*fx.transport);
  EXPECT_EQ(t.submitted, 2u);
  EXPECT_EQ(t.completed, 2u);
  EXPECT_EQ(t.cancelled, 1u);
  EXPECT_EQ(t.inflight, 0u);
  EXPECT_EQ(t.inflight_hwm, 2u);
}

// --------------------------------------------------------------- deadlines

TEST(Rpc, DeadlineExpiresQueuedRequest) {
  server::StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 64_KiB;
  Fixture fx(1u << 21, sc);

  // The gaussian holds the single worker well past the sum's 0.1 ms
  // deadline; the watchdog must fail the queued sum with kTimedOut.
  auto long_reply = fx.transport->submit(fx.active_env("gaussian2d:width=32"));
  auto doomed = fx.transport->submit(fx.active_env("sum", /*deadline=*/1e-4));

  auto expired = doomed.wait();
  EXPECT_EQ(expired.active.outcome, server::ActiveOutcome::kFailed);
  EXPECT_EQ(expired.status().code(), ErrorCode::kTimedOut);

  auto done = long_reply.wait();
  EXPECT_EQ(done.active.outcome, server::ActiveOutcome::kCompleted);

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.active_timed_out, 1u);
  EXPECT_EQ(stats.active_completed, 1u);
  EXPECT_EQ(stats_of(*fx.transport).timed_out, 1u);
}

TEST(Rpc, DeadlineInterruptsRunningKernel) {
  server::StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 64_KiB;  // frequent interruption checks
  Fixture fx(1u << 21, sc);

  auto doomed = fx.transport->submit(fx.active_env("gaussian2d:width=32", /*deadline=*/1e-4));
  auto expired = doomed.wait();
  EXPECT_EQ(expired.active.outcome, server::ActiveOutcome::kFailed);
  EXPECT_EQ(expired.status().code(), ErrorCode::kTimedOut);

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.active_timed_out, 1u);
  EXPECT_EQ(stats.active_completed, 0u);
  // The abandoned kernel must actually stop: once the server drains, no
  // new completion may appear.
  while (fx.server->inflight() != 0) std::this_thread::yield();
  EXPECT_EQ(fx.server->stats().active_completed, 0u);
}

// ------------------------------------------- fan-out / interleaved completion

TEST(Rpc, InterleavedAsyncFanoutMatchesSequential) {
  // 4-node volume, striped file: read_ex_async pipelines one active RPC
  // per node; waiting the handles in reverse order must still produce
  // results bit-identical to the sequential blocking path.
  pfs::FileSystem fs(4, 64_KiB);
  pfs::Client pfs_client(fs);
  constexpr std::size_t kFiles = 8, kCount = 64 * 1024;  // 512 KiB each
  std::vector<pfs::FileMeta> metas;
  for (std::size_t f = 0; f < kFiles; ++f) {
    auto m = pfs::write_doubles(pfs_client, "/f" + std::to_string(f), kCount,
                                [f](std::size_t i) { return static_cast<double>((i + f) % 31); });
    ASSERT_TRUE(m.is_ok());
    metas.push_back(m.value());
  }

  std::vector<std::unique_ptr<server::StorageServer>> servers;
  std::vector<server::StorageServer*> raw;
  for (std::uint32_t i = 0; i < 4; ++i) {
    servers.push_back(std::make_unique<server::StorageServer>(
        fs, i, kernels::Registry::with_builtins(), ce_config(),
        server::RateTable::paper_rates()));
    raw.push_back(servers.back().get());
  }
  auto registry = kernels::Registry::with_builtins();
  client::ActiveClient asc(pfs_client, registry, raw);

  std::vector<std::vector<std::uint8_t>> reference(kFiles);
  for (std::size_t f = 0; f < kFiles; ++f) {
    auto r = asc.read_ex(metas[f], 0, metas[f].size, "sum");
    ASSERT_TRUE(r.is_ok());
    reference[f] = r.value();
  }

  std::vector<client::ActiveClient::PendingReadEx> pending;
  pending.reserve(kFiles);
  for (std::size_t f = 0; f < kFiles; ++f) {
    pending.push_back(asc.read_ex_async(metas[f], 0, metas[f].size, "sum"));
  }
  // Consume in reverse submission order: completions interleave freely.
  for (std::size_t f = kFiles; f-- > 0;) {
    auto r = pending[f].wait();
    ASSERT_TRUE(r.is_ok()) << f;
    EXPECT_EQ(r.value(), reference[f]) << f;
  }

  const auto s = asc.stats();
  EXPECT_EQ(s.reads_ex, 2 * kFiles);
  EXPECT_EQ(s.striped_fanouts, 2 * kFiles);  // every file spans all 4 nodes
  EXPECT_GE(asc.transport_stats().inflight_hwm, 4u);
}

// ------------------------------------------------------------- coalescing

TEST(Rpc, CoalescedBatchMatchesSync) {
  server::StorageServer::Config sc;
  sc.coalesce_identical = true;
  Fixture fx(32 * 1024, sc);

  // Synchronous reference result (its own entry; nothing in flight yet).
  auto reference = fx.server->serve_active([&] {
    server::ActiveIoRequest req;
    req.handle = fx.meta.handle;
    req.object_offset = 0;
    req.length = fx.meta.size;
    req.operation = "sum";
    return req;
  }());
  ASSERT_EQ(reference.outcome, server::ActiveOutcome::kCompleted);

  // Four identical envelopes in one batch: one kernel run, four replies.
  std::vector<Envelope> envs;
  for (int i = 0; i < 4; ++i) envs.push_back(fx.active_env("sum"));
  auto replies = fx.transport->submit_batch(std::move(envs));
  ASSERT_EQ(replies.size(), 4u);
  for (auto& reply : replies) {
    auto r = reply.wait();
    EXPECT_EQ(r.active.outcome, server::ActiveOutcome::kCompleted);
    EXPECT_EQ(r.active.result, reference.result);
  }

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.active_coalesced, 3u);  // 3 of 4 rode the first entry
  EXPECT_EQ(stats.active_completed, 5u);  // 1 sync + 4 batch waiters

  const auto t = stats_of(*fx.transport);
  EXPECT_EQ(t.batched, 4u);
  EXPECT_EQ(t.coalesced, 3u);
}

TEST(Rpc, CoalescingOffKeepsEntriesSeparate) {
  Fixture fx(8 * 1024);  // default config: coalescing disabled
  std::vector<Envelope> envs;
  for (int i = 0; i < 3; ++i) envs.push_back(fx.active_env("sum"));
  auto replies = fx.transport->submit_batch(std::move(envs));
  for (auto& reply : replies) {
    EXPECT_EQ(reply.wait().active.outcome, server::ActiveOutcome::kCompleted);
  }
  EXPECT_EQ(fx.server->stats().active_coalesced, 0u);
  EXPECT_EQ(stats_of(*fx.transport).coalesced, 0u);
}

// --------------------------------------------------------- interceptor chain

TEST(Rpc, RetryInterceptorRecoversInjectedLoss) {
  Fixture fx(8 * 1024);

  fault::FaultSpec spec;
  spec.seed = 7;
  spec.net_error = 0.5;  // attempts are lost often, but not always
  auto faults = std::make_shared<fault::FaultInjector>(spec);

  ChainOptions options;
  options.retry.max_attempts = 8;
  options.faults = faults;
  auto chain = make_chain({fx.server.get()}, options);

  // Ten requests: with p=0.5 per attempt and an 8-attempt budget, every
  // one must come back completed, and the deterministic draw sequence is
  // certain to both lose and recover at least one attempt.
  for (int i = 0; i < 10; ++i) {
    auto r = chain.head->submit(fx.active_env("sum")).wait();
    EXPECT_EQ(r.active.outcome, server::ActiveOutcome::kCompleted) << i;
  }

  const auto t = stats_of(*chain.head);
  EXPECT_GE(t.net_faults_injected, 1u);
  EXPECT_GE(t.retries, 1u);
  EXPECT_EQ(t.retries_exhausted, 0u);
}

TEST(Rpc, BreakerOpensAfterConsecutiveUnavailability) {
  Fixture fx(8 * 1024);

  fault::FaultSpec spec;
  spec.seed = 11;
  auto faults = std::make_shared<fault::FaultInjector>(spec);
  faults->crash_node(0);

  ChainOptions options;
  options.circuit_threshold = 3;
  auto chain = make_chain({fx.server.get()}, options);
  fx.server->set_fault_injector(faults);

  ASSERT_NE(chain.breaker, nullptr);
  EXPECT_FALSE(chain.breaker->is_open(0));
  for (int i = 0; i < 3; ++i) {
    auto r = chain.head->submit(fx.active_env("sum")).wait();
    EXPECT_EQ(r.active.outcome, server::ActiveOutcome::kFailed);
    EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  }
  EXPECT_TRUE(chain.breaker->is_open(0));
  EXPECT_TRUE(chain.breaker->should_short_circuit(0));

  // Recovery: a successful probe closes the circuit again.
  faults->restore_node(0);
  auto r = chain.head->submit(fx.active_env("sum")).wait();
  EXPECT_EQ(r.active.outcome, server::ActiveOutcome::kCompleted);
  EXPECT_FALSE(chain.breaker->is_open(0));
}

TEST(Rpc, TokenBucketChargesExtentBytesExactlyOnce) {
  Fixture fx(4096);  // 32 KiB object on the single data server

  ChainOptions options;
  // Virtual bucket with a deep burst: acquire() is pure accounting here.
  options.network = std::make_shared<TokenBucket>(mb_per_sec(100.0), 64_MiB);
  auto chain = make_chain({fx.server.get()}, options);

  Envelope env;
  env.target = 0;
  env.kind = OpKind::kRead;
  env.read.handle = fx.meta.handle;
  env.read.object_offset = 0;
  env.read.length = fx.meta.size;

  auto reply = chain.head->submit(env).wait();
  ASSERT_TRUE(reply.read.status.is_ok());
  const Bytes n = reply.read.data.size();
  EXPECT_EQ(n, fx.meta.size);
  EXPECT_EQ(stats_of(*chain.head).bytes_charged, n);

  // The payload is a ref-counted arena view: copying the reply or slicing
  // the extent shares the slab and must NOT hit the bucket again.
  Reply shared = reply;
  BufferRef view = shared.read.data.slice(0, 1_KiB);
  EXPECT_EQ(view.size(), 1_KiB);
  EXPECT_EQ(stats_of(*chain.head).bytes_charged, n);

  // Charging is exactly once per completed RPC, not per ref: a second
  // read doubles the total.
  auto reply2 = chain.head->submit(env).wait();
  ASSERT_TRUE(reply2.read.status.is_ok());
  EXPECT_EQ(stats_of(*chain.head).bytes_charged, 2 * n);
}

TEST(Rpc, WriteChargesExtentBytesExactlyOnceAndCopiesNothing) {
  Fixture fx(4096);  // 32 KiB object on the single data server

  ChainOptions options;
  options.network = std::make_shared<TokenBucket>(mb_per_sec(100.0), 64_MiB);
  // A retry layer in the chain: kWrite must pass through it exactly once
  // (retries act only on active I/O), so the charge below stays single.
  options.retry.max_attempts = 3;
  auto chain = make_chain({fx.server.get()}, options);

  std::vector<std::uint8_t> bytes(8_KiB);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::uint8_t>(i * 31);
  const BufferRef payload = BufferRef::adopt(std::move(bytes));

  const std::uint64_t copied_before = data_bytes_copied();

  Envelope env;
  env.target = 0;
  env.kind = OpKind::kWrite;
  env.write.handle = fx.meta.handle;
  env.write.object_offset = 0;
  env.write.data = payload.slice(0, payload.size());  // a view: shares, never copies

  auto reply = chain.head->submit(std::move(env)).wait();
  ASSERT_TRUE(reply.write.status.is_ok());
  EXPECT_EQ(reply.write.written, 8_KiB);

  // Request-direction bytes hit the link model exactly once, mirroring
  // the read path's single completion-time charge.
  EXPECT_EQ(stats_of(*chain.head).bytes_charged, 8_KiB);

  // Zero copies between submission and the store: the envelope carried a
  // view and serve_write handed its span straight to the data server (the
  // terminal store memcpy is the materialization, not a duplication).
  EXPECT_EQ(data_bytes_copied() - copied_before, 0u);

  // The bytes actually landed — read back through the zero-copy path.
  auto back = fx.client.read_ref(fx.meta, 0, 8_KiB);
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back.value().size(), 8_KiB);
  EXPECT_TRUE(std::memcmp(back.value().data(), payload.data(), 8_KiB) == 0);

  // Exactly once per completed RPC: a second write doubles the total.
  Envelope again;
  again.target = 0;
  again.kind = OpKind::kWrite;
  again.write.handle = fx.meta.handle;
  again.write.object_offset = 8_KiB;
  again.write.data = payload.slice(0, payload.size());
  auto reply2 = chain.head->submit(std::move(again)).wait();
  ASSERT_TRUE(reply2.write.status.is_ok());
  EXPECT_EQ(stats_of(*chain.head).bytes_charged, 2 * 8_KiB);
}

}  // namespace
}  // namespace dosas::rpc
