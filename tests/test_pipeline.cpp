// Tests for streaming kernel composition: the scale transformer, the
// gaussian2d full-mode stream, PipelineKernel semantics (pumping, stage
// validation, composed checkpoints), and pipelines through the cluster.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/minmax.hpp"
#include "kernels/pipeline.hpp"
#include "kernels/registry.hpp"
#include "kernels/scale.hpp"
#include "kernels/sum.hpp"
#include "kernels/threshold_count.hpp"

namespace dosas::kernels {
namespace {

std::vector<std::uint8_t> doubles_to_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

// ---------------------------------------------------------------- scale

TEST(ScaleKernel, TransformsValues) {
  ScaleKernel k(2.0, 1.0);
  k.reset();
  k.consume(doubles_to_bytes({1.0, 2.0, 3.0}));
  const auto out = k.drain_stream();
  ASSERT_EQ(out.size(), 3 * sizeof(double));
  std::vector<double> values(3);
  std::memcpy(values.data(), out.data(), out.size());
  EXPECT_EQ(values, (std::vector<double>{3.0, 5.0, 7.0}));
}

TEST(ScaleKernel, DrainEmptiesBuffer) {
  ScaleKernel k(1.0, 0.0);
  k.reset();
  k.consume(doubles_to_bytes({1.0}));
  EXPECT_FALSE(k.drain_stream().empty());
  EXPECT_TRUE(k.drain_stream().empty());
}

TEST(ScaleKernel, StreamsOutputFlag) {
  ScaleKernel k;
  EXPECT_TRUE(k.streams_output());
  SumKernel s;
  EXPECT_FALSE(s.streams_output());
  EXPECT_TRUE(s.drain_stream().empty());
}

TEST(ScaleKernel, CheckpointCarriesUndrainedOutput) {
  ScaleKernel a(3.0, -1.0);
  a.reset();
  a.consume(doubles_to_bytes({2.0, 4.0}));
  ScaleKernel b;
  ASSERT_TRUE(b.restore(a.checkpoint()).is_ok());
  EXPECT_EQ(b.drain_stream(), a.drain_stream());
  EXPECT_DOUBLE_EQ(b.a(), 3.0);
  EXPECT_DOUBLE_EQ(b.b(), -1.0);
}

// ---------------------------------------------------------------- gaussian stream

TEST(GaussianStream, FullModeDrainsFilteredValues) {
  const std::size_t w = 8, rows = 6;
  std::vector<double> grid(w * rows, 5.0);
  Gaussian2dKernel k(w, Gaussian2dKernel::Mode::kFull);
  k.consume(doubles_to_bytes(grid));
  EXPECT_TRUE(k.streams_output());
  const auto out = k.drain_stream();
  EXPECT_EQ(out.size(), (rows - 2) * w * sizeof(double));
  double first;
  std::memcpy(&first, out.data(), sizeof(double));
  EXPECT_NEAR(first, 5.0, 1e-12);
}

TEST(GaussianStream, DigestModeDoesNotStream) {
  Gaussian2dKernel k(8, Gaussian2dKernel::Mode::kDigest);
  EXPECT_FALSE(k.streams_output());
  k.consume(doubles_to_bytes(std::vector<double>(8 * 5, 1.0)));
  EXPECT_TRUE(k.drain_stream().empty());
}

// ---------------------------------------------------------------- stage parsing

TEST(PipelineStage, ParsesSemicolonSyntax) {
  auto spec = PipelineKernel::parse_stage("gaussian2d;width=64;mode=full");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().kernel, "gaussian2d");
  EXPECT_EQ(spec.value().get_int("width", 0), 64);
  EXPECT_EQ(spec.value().get("mode", ""), "full");
}

TEST(PipelineStage, BareNameParses) {
  auto spec = PipelineKernel::parse_stage("minmax");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().kernel, "minmax");
  EXPECT_TRUE(spec.value().args.empty());
}

// ---------------------------------------------------------------- pipeline semantics

TEST(Pipeline, ScaleThenSumMatchesManualComposition) {
  const auto reg = Registry::with_builtins();
  auto pipe = reg.create("pipe:ops=scale;a=2;b=1|sum");
  ASSERT_TRUE(pipe.is_ok()) << pipe.status().to_string();

  std::vector<double> values(1000);
  std::iota(values.begin(), values.end(), 0.0);
  pipe.value()->reset();
  pipe.value()->consume(doubles_to_bytes(values));

  auto sum = SumResult::decode(pipe.value()->finalize());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 1000u);
  double expect = 0;
  for (double v : values) expect += 2.0 * v + 1.0;
  EXPECT_NEAR(sum.value().sum, expect, 1e-6);
}

TEST(Pipeline, GaussianThenThresholdCountsFilteredField) {
  const auto reg = Registry::with_builtins();
  auto pipe = reg.create("pipe:ops=gaussian2d;width=16;mode=full|thresholdcount;t=7.0");
  ASSERT_TRUE(pipe.is_ok());

  // Constant-7.5 field: every filtered value is 7.5 > 7.0.
  const std::size_t w = 16, rows = 12;
  pipe.value()->reset();
  pipe.value()->consume(doubles_to_bytes(std::vector<double>(w * rows, 7.5)));
  auto r = ThresholdCountResult::decode(pipe.value()->finalize());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().count, (rows - 2) * w);
  EXPECT_EQ(r.value().matches, (rows - 2) * w);
}

TEST(Pipeline, ThreeStageChain) {
  const auto reg = Registry::with_builtins();
  // Filter, rescale the filtered field, then min/max of the result.
  auto pipe = reg.create("pipe:ops=gaussian2d;width=8;mode=full|scale;a=10|minmax");
  ASSERT_TRUE(pipe.is_ok());
  pipe.value()->reset();
  pipe.value()->consume(doubles_to_bytes(std::vector<double>(8 * 10, 2.0)));
  auto mm = MinMaxResult::decode(pipe.value()->finalize());
  ASSERT_TRUE(mm.is_ok());
  EXPECT_EQ(mm.value().count, 8u * 8u);
  EXPECT_NEAR(mm.value().min, 20.0, 1e-9);
  EXPECT_NEAR(mm.value().max, 20.0, 1e-9);
}

TEST(Pipeline, RaggedChunksMatchWholeBuffer) {
  const auto reg = Registry::with_builtins();
  Rng data_rng(3);
  std::vector<double> values(2000);
  for (auto& v : values) v = data_rng.uniform(-5, 5);
  const auto bytes = doubles_to_bytes(values);

  auto whole = reg.create("pipe:ops=scale;a=3|thresholdcount;t=0");
  auto ragged = reg.create("pipe:ops=scale;a=3|thresholdcount;t=0");
  ASSERT_TRUE(whole.is_ok());
  ASSERT_TRUE(ragged.is_ok());
  whole.value()->reset();
  whole.value()->consume(bytes);
  ragged.value()->reset();
  Rng rng(5);
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.uniform_index(97), bytes.size() - pos);
    ragged.value()->consume(std::span(bytes.data() + pos, n));
    pos += n;
  }
  EXPECT_EQ(whole.value()->finalize(), ragged.value()->finalize());
}

TEST(Pipeline, CheckpointResumeComposes) {
  const auto reg = Registry::with_builtins();
  const std::string op = "pipe:ops=gaussian2d;width=16;mode=full|meanstddev";
  Rng data_rng(9);
  std::vector<double> values(16 * 64);
  for (auto& v : values) v = data_rng.uniform(0, 1);
  const auto bytes = doubles_to_bytes(values);

  auto ref = reg.create(op);
  ASSERT_TRUE(ref.is_ok());
  ref.value()->reset();
  ref.value()->consume(bytes);

  auto first = reg.create(op);
  ASSERT_TRUE(first.is_ok());
  first.value()->reset();
  const std::size_t cut = bytes.size() / 3 + 7;
  first.value()->consume(std::span(bytes.data(), cut));
  auto decoded = Checkpoint::decode(first.value()->checkpoint().encode());
  ASSERT_TRUE(decoded.is_ok());

  auto second = reg.create(op);
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(second.value()->restore(decoded.value()).is_ok());
  EXPECT_EQ(second.value()->consumed(), cut);
  second.value()->consume(std::span(bytes.data() + cut, bytes.size() - cut));
  EXPECT_EQ(second.value()->finalize(), ref.value()->finalize());
}

TEST(Pipeline, ResultSizeComposes) {
  const auto reg = Registry::with_builtins();
  auto pipe = reg.create("pipe:ops=scale;a=2|sum");
  ASSERT_TRUE(pipe.is_ok());
  // scale: h(x) = x; sum: h(x) = 16.
  EXPECT_EQ(pipe.value()->result_size(1_GiB), 16u);
}

TEST(Pipeline, RejectsNonStreamingInnerStage) {
  const auto reg = Registry::with_builtins();
  auto pipe = reg.create("pipe:ops=sum|minmax");
  ASSERT_FALSE(pipe.is_ok());
  EXPECT_EQ(pipe.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Pipeline, RejectsUnknownStageAndEmptyList) {
  const auto reg = Registry::with_builtins();
  EXPECT_FALSE(reg.create("pipe:ops=fft|sum").is_ok());
  EXPECT_FALSE(reg.create("pipe").is_ok());
  EXPECT_FALSE(reg.create("pipe:ops=").is_ok());
}

TEST(Pipeline, CloneProducesFreshChain) {
  const auto reg = Registry::with_builtins();
  auto pipe = reg.create("pipe:ops=scale;a=2|sum");
  ASSERT_TRUE(pipe.is_ok());
  pipe.value()->reset();
  pipe.value()->consume(doubles_to_bytes({1, 2, 3}));
  auto fresh = pipe.value()->clone();
  EXPECT_EQ(fresh->consumed(), 0u);
  fresh->reset();
  fresh->consume(doubles_to_bytes({1.0}));
  auto sum = SumResult::decode(fresh->finalize());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 1u);
}

// ---------------------------------------------------------------- through the cluster

TEST(Pipeline, RunsActivelyOnStorageNode) {
  core::ClusterConfig cfg;
  cfg.scheme = core::SchemeKind::kActive;
  core::Cluster cluster(cfg);
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/p", 50'000,
                                 [](std::size_t i) { return static_cast<double>(i % 10); });
  ASSERT_TRUE(meta.is_ok());

  auto out = cluster.asc().read_ex(meta.value(), 0, meta.value().size,
                                   "pipe:ops=scale;a=2;b=3|sum");
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  auto sum = SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 50'000u);
  double expect = 0;
  for (std::size_t i = 0; i < 50'000; ++i) expect += 2.0 * static_cast<double>(i % 10) + 3.0;
  EXPECT_NEAR(sum.value().sum, expect, 1e-5);
  EXPECT_EQ(cluster.storage_server(0).stats().active_completed, 1u);
}

TEST(Pipeline, DemotedPipelineComputesLocally) {
  core::ClusterConfig cfg;
  cfg.scheme = core::SchemeKind::kTraditional;
  core::Cluster cluster(cfg);
  auto meta = pfs::write_doubles(cluster.pfs_client(), "/p", 10'000,
                                 [](std::size_t i) { return static_cast<double>(i % 4); });
  ASSERT_TRUE(meta.is_ok());
  auto out = cluster.asc().read_ex(meta.value(), 0, meta.value().size,
                                   "pipe:ops=scale;a=1;b=1|thresholdcount;t=2.5");
  ASSERT_TRUE(out.is_ok());
  auto r = ThresholdCountResult::decode(out.value());
  ASSERT_TRUE(r.is_ok());
  // items: (i%4)+1 in {1,2,3,4}; > 2.5 means 3 or 4: half of them.
  EXPECT_EQ(r.value().matches, 5'000u);
  EXPECT_EQ(cluster.asc().stats().demoted, 1u);
}

}  // namespace
}  // namespace dosas::kernels
