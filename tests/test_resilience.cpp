// Failure-injection tests: transient data-server faults during active I/O,
// client-side retry, persistent-fault propagation, and the real runtime's
// interruption-hysteresis knob.
#include <gtest/gtest.h>

#include <thread>

#include "core/cluster.hpp"
#include "kernels/sum.hpp"
#include "server/storage_server.hpp"

namespace dosas::core {
namespace {

std::unique_ptr<Cluster> cluster_with_data(SchemeKind scheme, std::size_t count,
                                           Bytes server_chunk = 64_KiB) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.server_chunk_size = server_chunk;
  cfg.client_chunk_size = 64_KiB;
  auto cluster = std::make_unique<Cluster>(cfg);
  auto meta = pfs::write_doubles(cluster->pfs_client(), "/data", count,
                                 [](std::size_t i) { return static_cast<double>(i % 7); });
  EXPECT_TRUE(meta.is_ok());
  return cluster;
}

double expected_sum(std::size_t count) {
  double s = 0;
  for (std::size_t i = 0; i < count; ++i) s += static_cast<double>(i % 7);
  return s;
}

// ---------------------------------------------------------------- fault injection

TEST(FaultInjection, DataServerFailsExactlyNReads) {
  pfs::DataServer ds(0);
  ASSERT_TRUE(ds.write_object(1, 0, std::vector<std::uint8_t>(100, 1)).is_ok());
  ds.fail_next_reads(2);
  EXPECT_EQ(ds.read_object(1, 0, 10).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ds.read_object(1, 0, 10).status().code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(ds.read_object(1, 0, 10).is_ok());
  EXPECT_EQ(ds.injected_failures(), 2u);
}

TEST(FaultInjection, ActiveRequestFailsMidKernelThenClientRetries) {
  // The server's kernel loop hits an injected brownout partway through;
  // the response is kFailed; the ASC retries the whole extent as normal
  // I/O + a local kernel and still returns the right answer.
  constexpr std::size_t kCount = 100'000;  // ~781 KiB, 13 server chunks
  auto cluster = cluster_with_data(SchemeKind::kActive, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  // Fail exactly one read: the server's 3rd chunk read. By the time the
  // client retries, service has recovered.
  cluster->fs().data_server(0).fail_next_reads(1);

  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, kCount);
  EXPECT_NEAR(sum.value().sum, expected_sum(kCount), 1e-6);

  const auto cs = cluster->asc().stats();
  EXPECT_EQ(cs.failed_remote_retries, 1u);
  EXPECT_EQ(cluster->storage_server(0).stats().active_failed, 1u);
  EXPECT_EQ(cluster->fs().data_server(0).injected_failures(), 1u);
}

TEST(FaultInjection, PersistentFaultPropagatesOriginalError) {
  constexpr std::size_t kCount = 50'000;
  auto cluster = cluster_with_data(SchemeKind::kActive, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  // Enough failures to kill the active attempt AND the local retry.
  cluster->fs().data_server(0).fail_next_reads(1000);

  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

TEST(FaultInjection, UnknownOperationIsNotRetried) {
  // Non-transient failures (bad kernel name) must not burn a local retry.
  auto cluster = cluster_with_data(SchemeKind::kActive, 1000);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "fft");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(cluster->asc().stats().failed_remote_retries, 0u);
}

TEST(FaultInjection, DemotedPathFaultPropagates) {
  // TS scheme: the request demotes, and the *client's* normal-I/O loop
  // hits the fault. No silent wrong answers.
  auto cluster = cluster_with_data(SchemeKind::kTraditional, 50'000);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  cluster->fs().data_server(0).fail_next_reads(1000);
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

TEST(FaultInjection, TransientFaultOnNormalReadSurfacesToCaller) {
  // Plain reads have no kernel to re-run; the error reaches the caller
  // directly (retry policy belongs to the application there).
  auto cluster = cluster_with_data(SchemeKind::kDosas, 10'000);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  cluster->fs().data_server(0).fail_next_reads(1);
  auto out = cluster->asc().read(meta.value(), 0, 4096);
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

// ---------------------------------------------------------------- hysteresis

TEST(Hysteresis, NeverInterruptKeepsKernelsRunning) {
  // interrupt_min_remaining = 1.0: running kernels are never interrupted,
  // only queued requests get demoted — so no response can be kInterrupted.
  pfs::FileSystem fs(1, 64_KiB);
  pfs::Client client(fs);
  auto meta = pfs::write_doubles(client, "/data", 2 * 1024 * 1024,  // 16 MiB
                                 [](std::size_t i) { return static_cast<double>(i % 5); });
  ASSERT_TRUE(meta.is_ok());

  server::ContentionEstimator::Config ce;
  ce.optimizer = "exhaustive";
  ce.derate_by_external_load = false;
  server::StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 8_KiB;
  sc.interrupt_min_remaining = 1.0;
  server::StorageServer server(fs, 0, kernels::Registry::with_builtins(), ce,
                               server::RateTable::paper_rates(), sc);

  constexpr int kClients = 6;
  std::vector<server::ActiveIoResponse> resp(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      server::ActiveIoRequest req;
      req.handle = meta.value().handle;
      req.length = meta.value().size;
      req.operation = "gaussian2d:width=2048";
      resp[static_cast<std::size_t>(i)] = server.serve_active(req);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : threads) t.join();

  for (const auto& r : resp) {
    EXPECT_NE(r.outcome, server::ActiveOutcome::kInterrupted);
    EXPECT_NE(r.outcome, server::ActiveOutcome::kFailed);
  }
  EXPECT_EQ(server.stats().active_interrupted, 0u);
  // Demotions still happen — only the interruption channel is closed.
  EXPECT_GT(server.stats().active_rejected, 0u);
}

}  // namespace
}  // namespace dosas::core
