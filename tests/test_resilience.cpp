// Failure-injection tests: transient data-server faults during active I/O,
// client-side retry, persistent-fault propagation, the real runtime's
// interruption-hysteresis knob, and the seed-driven fault-injection /
// recovery machinery (throwing kernels, node crashes, net errors, stalls,
// corrupted checkpoints — every request completes or fails typed).
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "common/clock.hpp"
#include "common/serialize.hpp"
#include "core/cluster.hpp"
#include "fault/fault.hpp"
#include "kernels/sum.hpp"
#include "obs/flight_recorder.hpp"
#include "server/storage_server.hpp"

namespace dosas::core {
namespace {

std::unique_ptr<Cluster> cluster_with_data(SchemeKind scheme, std::size_t count,
                                           Bytes server_chunk = 64_KiB) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.server_chunk_size = server_chunk;
  cfg.client_chunk_size = 64_KiB;
  auto cluster = std::make_unique<Cluster>(cfg);
  auto meta = pfs::write_doubles(cluster->pfs_client(), "/data", count,
                                 [](std::size_t i) { return static_cast<double>(i % 7); });
  EXPECT_TRUE(meta.is_ok());
  return cluster;
}

double expected_sum(std::size_t count) {
  double s = 0;
  for (std::size_t i = 0; i < count; ++i) s += static_cast<double>(i % 7);
  return s;
}

// ---------------------------------------------------------------- fault injection

TEST(FaultInjection, DataServerFailsExactlyNReads) {
  pfs::DataServer ds(0);
  ASSERT_TRUE(ds.write_object(1, 0, std::vector<std::uint8_t>(100, 1)).is_ok());
  ds.fail_next_reads(2);
  EXPECT_EQ(ds.read_object(1, 0, 10).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ds.read_object(1, 0, 10).status().code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(ds.read_object(1, 0, 10).is_ok());
  EXPECT_EQ(ds.injected_failures(), 2u);
}

TEST(FaultInjection, ActiveRequestFailsMidKernelThenClientRetries) {
  // The server's kernel loop hits an injected brownout partway through;
  // the response is kFailed; the ASC retries the whole extent as normal
  // I/O + a local kernel and still returns the right answer.
  constexpr std::size_t kCount = 100'000;  // ~781 KiB, 13 server chunks
  auto cluster = cluster_with_data(SchemeKind::kActive, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  // Fail exactly one read: the server's 3rd chunk read. By the time the
  // client retries, service has recovered.
  cluster->fs().data_server(0).fail_next_reads(1);

  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, kCount);
  EXPECT_NEAR(sum.value().sum, expected_sum(kCount), 1e-6);

  const auto cs = cluster->asc().stats();
  EXPECT_EQ(cs.failed_remote_retries, 1u);
  EXPECT_EQ(cluster->storage_server(0).stats().active_failed, 1u);
  EXPECT_EQ(cluster->fs().data_server(0).injected_failures(), 1u);
}

TEST(FaultInjection, PersistentFaultPropagatesOriginalError) {
  constexpr std::size_t kCount = 50'000;
  auto cluster = cluster_with_data(SchemeKind::kActive, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  // Enough failures to kill the active attempt AND the local retry.
  cluster->fs().data_server(0).fail_next_reads(1000);

  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

TEST(FaultInjection, UnknownOperationIsNotRetried) {
  // Non-transient failures (bad kernel name) must not burn a local retry.
  auto cluster = cluster_with_data(SchemeKind::kActive, 1000);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "fft");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(cluster->asc().stats().failed_remote_retries, 0u);
}

TEST(FaultInjection, DemotedPathFaultPropagates) {
  // TS scheme: the request demotes, and the *client's* normal-I/O loop
  // hits the fault. No silent wrong answers.
  auto cluster = cluster_with_data(SchemeKind::kTraditional, 50'000);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  cluster->fs().data_server(0).fail_next_reads(1000);
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

TEST(FaultInjection, TransientFaultOnNormalReadSurfacesToCaller) {
  // Plain reads have no kernel to re-run; the error reaches the caller
  // directly (retry policy belongs to the application there).
  auto cluster = cluster_with_data(SchemeKind::kDosas, 10'000);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  cluster->fs().data_server(0).fail_next_reads(1);
  auto out = cluster->asc().read(meta.value(), 0, 4096);
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

// ---------------------------------------------------------------- hysteresis

TEST(Hysteresis, NeverInterruptKeepsKernelsRunning) {
  // interrupt_min_remaining = 1.0: running kernels are never interrupted,
  // only queued requests get demoted — so no response can be kInterrupted.
  pfs::FileSystem fs(1, 64_KiB);
  pfs::Client client(fs);
  auto meta = pfs::write_doubles(client, "/data", 2 * 1024 * 1024,  // 16 MiB
                                 [](std::size_t i) { return static_cast<double>(i % 5); });
  ASSERT_TRUE(meta.is_ok());

  server::ContentionEstimator::Config ce;
  ce.optimizer = "exhaustive";
  ce.derate_by_external_load = false;
  server::StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 8_KiB;
  sc.interrupt_min_remaining = 1.0;
  server::StorageServer server(fs, 0, kernels::Registry::with_builtins(), ce,
                               server::RateTable::paper_rates(), sc);

  // Async submissions from one thread: the first request is admitted and
  // starts on the single core before later arrivals deepen the queue — no
  // wall-clock stagger needed.
  constexpr int kClients = 6;
  std::vector<server::ActiveIoResponse> resp(kClients);
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  for (int i = 0; i < kClients; ++i) {
    server::ActiveIoRequest req;
    req.handle = meta.value().handle;
    req.length = meta.value().size;
    req.operation = "gaussian2d:width=2048";
    server.submit_active(std::move(req), [&, i](server::ActiveIoResponse r) {
      std::lock_guard lock(done_mu);
      resp[static_cast<std::size_t>(i)] = std::move(r);
      ++done;
      clock().wake_all(done_cv);
    });
  }
  {
    std::unique_lock lock(done_mu);
    clock().wait(done_cv, lock, [&] { return done == kClients; });
  }

  for (const auto& r : resp) {
    EXPECT_NE(r.outcome, server::ActiveOutcome::kInterrupted);
    EXPECT_NE(r.outcome, server::ActiveOutcome::kFailed);
  }
  EXPECT_EQ(server.stats().active_interrupted, 0u);
  // Demotions still happen — only the interruption channel is closed.
  EXPECT_GT(server.stats().active_rejected, 0u);
}

// ------------------------------------------------- e2e fault injection

struct FaultyOpts {
  std::string spec;            ///< --fault-spec string; empty = no injector
  int retries = 0;             ///< extra remote attempts beyond the first
  Seconds timeout = 0;         ///< per-request deadline (0 = wait forever)
  int circuit_threshold = 0;   ///< demote-to-local breaker (0 = off)
};

std::unique_ptr<Cluster> cluster_with_faults(const FaultyOpts& opts, std::size_t count) {
  ClusterConfig cfg;
  cfg.scheme = SchemeKind::kActive;
  cfg.server_chunk_size = 64_KiB;
  cfg.client_chunk_size = 64_KiB;
  if (!opts.spec.empty()) {
    auto spec = fault::FaultSpec::parse(opts.spec);
    EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
    cfg.faults = std::make_shared<fault::FaultInjector>(spec.value());
  }
  cfg.client_retry.max_attempts = 1 + opts.retries;
  cfg.request_timeout = opts.timeout;
  cfg.circuit_threshold = opts.circuit_threshold;
  auto cluster = std::make_unique<Cluster>(cfg);
  auto meta = pfs::write_doubles(cluster->pfs_client(), "/data", count,
                                 [](std::size_t i) { return static_cast<double>(i % 7); });
  EXPECT_TRUE(meta.is_ok());
  return cluster;
}

void expect_sum_ok(Result<std::vector<std::uint8_t>> out, std::size_t count) {
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, count);
  EXPECT_NEAR(sum.value().sum, expected_sum(count), 1e-6);
}

TEST(FaultE2E, ThrowingKernelFailsTypedAndClientRecoversLocally) {
  // Every remote kernel launch throws. The worker survives (satellite a),
  // the server answers kFailed/kInternal instead of std::terminate-ing,
  // and the client finishes the request locally.
  constexpr std::size_t kCount = 50'000;
  auto cluster = cluster_with_faults({.spec = "seed=1,kernel_throw=1"}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);

  EXPECT_EQ(cluster->storage_server(0).stats().kernel_exceptions, 1u);
  EXPECT_EQ(cluster->asc().stats().failed_remote_retries, 1u);
  EXPECT_EQ(cluster->fault_injector()->stats().kernel_throws, 1u);

  // The worker pool is still alive: a clean follow-up request would also
  // throw (P=1), so just confirm the server keeps answering at all.
  auto again = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  expect_sum_ok(std::move(again), kCount);
  EXPECT_EQ(cluster->storage_server(0).stats().kernel_exceptions, 2u);
}

TEST(FaultE2E, CrashedNodeOpensCircuitAndClientDemotesToLocalCompute) {
  // Node 0's active runtime is down from the start; its PFS daemon keeps
  // serving. After one kUnavailable the breaker opens and later requests
  // go straight to normal I/O + local kernel — all answers stay correct.
  constexpr std::size_t kCount = 30'000;
  auto cluster = cluster_with_faults(
      {.spec = "seed=2,crash=0", .circuit_threshold = 1}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  for (int i = 0; i < 4; ++i) {
    expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);
  }

  const auto cs = cluster->asc().stats();
  EXPECT_GE(cs.node_down_demotes, 2u);         // circuit-open short-circuits
  EXPECT_GE(cluster->fault_injector()->stats().crash_rejections, 1u);
  EXPECT_EQ(cs.completed_remote, 0u);

  // Restore the node; re-probes close the circuit and offload resumes.
  cluster->fault_injector()->restore_node(0);
  for (int i = 0; i < 8; ++i) {
    expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);
  }
  EXPECT_GT(cluster->asc().stats().completed_remote, 0u);
}

TEST(FaultE2E, NodeDiesMidKernelAndClientResumesFromCheckpoint) {
  // crash=0@2: the node goes down as it starts its 2nd kernel. That kernel
  // drains gracefully (kInterrupted + checkpoint); the client restores the
  // checkpoint and finishes the extent locally. A 3rd request is refused
  // at arrival and the client retries locally.
  constexpr std::size_t kCount = 50'000;
  auto cluster = cluster_with_faults({.spec = "seed=3,crash=0@2"}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  for (int i = 0; i < 3; ++i) {
    expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);
  }

  const auto cs = cluster->asc().stats();
  EXPECT_EQ(cs.completed_remote, 1u);      // request #1
  EXPECT_EQ(cs.resumed_local, 1u);         // request #2, checkpoint resume
  EXPECT_EQ(cs.failed_remote_retries, 1u); // request #3, refused at arrival
  EXPECT_GE(cluster->storage_server(0).stats().crash_rejections, 1u);
}

TEST(FaultE2E, TransientNetErrorsRecoverViaRetryWithBackoff) {
  // 40% of active RPCs are lost in the network; with a retry budget the
  // client re-sends with capped exponential backoff and every request
  // still completes with the right answer.
  constexpr std::size_t kCount = 20'000;
  auto cluster = cluster_with_faults(
      {.spec = "seed=4,net_error=0.4", .retries = 5}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  for (int i = 0; i < 6; ++i) {
    expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);
  }

  const auto cs = cluster->asc().stats();
  EXPECT_GT(cs.remote_retries, 0u);
  EXPECT_GT(cs.backoff_total, 0.0);  // accounted, not slept (virtual mode)
  EXPECT_GT(cluster->fault_injector()->stats().net_errors, 0u);
}

TEST(FaultE2E, ExhaustedRetriesFallBackLocallyThenFailTyped) {
  // Every RPC is lost (net_error=1). The retry budget burns down, the
  // exhaustion is counted, and the client still recovers via local
  // compute. Once the data path faults too, the caller gets a *typed*
  // kUnavailable — never a hang, never a silent wrong answer.
  constexpr std::size_t kCount = 20'000;
  auto cluster = cluster_with_faults(
      {.spec = "seed=5,net_error=1", .retries = 2}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);
  auto cs = cluster->asc().stats();
  EXPECT_EQ(cs.remote_retries, 2u);       // attempts 2 and 3
  EXPECT_EQ(cs.exhausted_retries, 1u);
  EXPECT_EQ(cs.failed_remote_retries, 1u);

  cluster->fs().data_server(0).fail_next_reads(1000);
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

TEST(FaultE2E, StallingNodeHitsDeadlineAndClientRecovers) {
  // The node stalls 40 ms at every kernel chunk; the request deadline is
  // 10 ms. The client gets kTimedOut, the server interrupts the abandoned
  // kernel, and the answer is computed locally.
  constexpr std::size_t kCount = 50'000;
  auto cluster = cluster_with_faults(
      {.spec = "seed=6,stall=1,stall_ms=40", .timeout = 0.010}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);

  EXPECT_GE(cluster->asc().stats().timed_out, 1u);
  EXPECT_GE(cluster->storage_server(0).stats().active_timed_out, 1u);
  EXPECT_GE(cluster->fault_injector()->stats().stalls, 1u);
}

TEST(FaultE2E, DeadlineMissDumpsTheFlightRecorder) {
  // The deadline watchdog is a crash-dump site: when it cancels a request
  // past its deadline it must trigger a flight-recorder dump that carries
  // the request's recent history (it was queued, its kernel launched, a
  // stall was injected) so the miss is debuggable post-hoc.
  auto& fr = obs::FlightRecorder::global();
  fr.clear();
  std::mutex cap_mu;
  std::string captured;
  fr.set_sink([&](const std::string& text) {
    std::lock_guard lock(cap_mu);
    captured += text;
  });

  constexpr std::size_t kCount = 50'000;
  auto cluster = cluster_with_faults(
      {.spec = "seed=6,stall=1,stall_ms=40", .timeout = 0.010}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);
  EXPECT_GE(cluster->asc().stats().timed_out, 1u);

  // The watchdog dumps after it unblocks the client; give it a beat.
  for (int i = 0; i < 2000; ++i) {
    {
      std::lock_guard lock(cap_mu);
      if (captured.find("deadline-miss") != std::string::npos) break;
    }
    clock().sleep(0.001);
  }
  fr.set_sink(nullptr);
  std::lock_guard lock(cap_mu);
  EXPECT_GE(fr.dumps_triggered(), 1u);
  EXPECT_NE(captured.find("exceeded its deadline"), std::string::npos);
  // The dump carries the doomed request's last recorded events.
  EXPECT_NE(captured.find("active request queued"), std::string::npos);
  EXPECT_NE(captured.find("kernel launched"), std::string::npos);
  EXPECT_NE(captured.find("stall"), std::string::npos);
  EXPECT_NE(captured.find("deadline-miss"), std::string::npos);
  fr.clear();
}

TEST(FaultE2E, CorruptedCheckpointIsDetectedAndRestartedCleanly) {
  // The node dies as it starts kernel #1 and the checkpoint it ships is
  // garbled in flight. The Checkpoint checksum catches it (kCorrupted),
  // the client restarts the kernel locally from the extent start — the
  // corruption is *counted*, never silently restored as zeros.
  constexpr std::size_t kCount = 50'000;
  auto cluster =
      cluster_with_faults({.spec = "seed=7,corrupt_ckpt=1,crash=0@1"}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  expect_sum_ok(cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum"), kCount);

  EXPECT_EQ(cluster->asc().stats().checkpoint_corrupt_restarts, 1u);
  EXPECT_EQ(cluster->fault_injector()->stats().checkpoints_corrupted, 1u);
}

TEST(FaultE2E, ServerRejectsCorruptResumeCheckpointWithTypedError) {
  // Cooperative resumption with a bit-flipped checkpoint: the server must
  // answer kFailed/kCorrupted, not restore default field values and
  // silently recompute from zero.
  constexpr std::size_t kCount = 10'000;
  auto cluster = cluster_with_faults({}, kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  Checkpoint cp;
  cp.set_f64("sum", 123.0);
  cp.set_i64("count", 45);
  auto bytes = cp.encode();
  bytes.back() ^= 0xFF;  // flip one checksum byte

  server::ActiveIoRequest req;
  req.handle = meta.value().handle;
  req.length = meta.value().size;
  req.operation = "sum";
  req.resume_checkpoint = bytes;
  req.resume_from = 4096;
  auto resp = cluster->storage_server(0).serve_active(req);
  EXPECT_EQ(resp.outcome, server::ActiveOutcome::kFailed);
  EXPECT_EQ(resp.status.code(), ErrorCode::kCorrupted);
}

TEST(FaultE2E, FaultStormEveryRequestCompletesOrFailsTyped) {
  // The acceptance scenario: kernel throws, lost RPCs, stragglers and
  // checkpoint corruption all at once. Every request must complete with
  // the right answer or fail with a typed error — zero lost, zero hung
  // (the test finishing at all proves no hangs).
  constexpr std::size_t kCount = 30'000;
  auto cluster = cluster_with_faults(
      {.spec = "seed=8,kernel_throw=0.3,net_error=0.3,stall=0.2,stall_ms=5,corrupt_ckpt=1",
       .retries = 3,
       .timeout = 0.050},
      kCount);
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());

  constexpr int kRequests = 20;
  int ok = 0, typed_failures = 0;
  for (int i = 0; i < kRequests; ++i) {
    auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
    if (out.is_ok()) {
      auto sum = kernels::SumResult::decode(out.value());
      ASSERT_TRUE(sum.is_ok());
      EXPECT_NEAR(sum.value().sum, expected_sum(kCount), 1e-6);
      ++ok;
    } else {
      EXPECT_NE(out.status().code(), ErrorCode::kOk);
      ++typed_failures;
    }
  }
  EXPECT_EQ(ok + typed_failures, kRequests);
  // With the data path healthy, every injected fault is recoverable.
  EXPECT_EQ(ok, kRequests);
  EXPECT_GT(cluster->fault_injector()->stats().total(), 0u);
}

}  // namespace
}  // namespace dosas::core
