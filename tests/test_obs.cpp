// Tests for the observability subsystem: metrics registry thread safety,
// histogram bucket semantics, the disabled-path no-op guarantee, and the
// Chrome trace JSON export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dosas::obs {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, LeBucketBoundaries) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow

  h.observe(0.5);  // <= 1   -> bucket 0
  h.observe(1.0);  // <= 1   -> bucket 0 ("le" semantics: boundary inclusive)
  h.observe(1.5);  // <= 2   -> bucket 1
  h.observe(2.0);  // <= 2   -> bucket 1
  h.observe(3.0);  // <= 4   -> bucket 2
  h.observe(9.0);  // > 4    -> overflow

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);

  const auto s = h.summary();
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.mean, (0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 9.0) / 6.0, 1e-12);
}

TEST(Histogram, ConcurrentObservesKeepTotalCount) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>((t * kPerThread + i) % 100));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) total += h.bucket(b);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.summary().count, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(P2Quantile, TracksMedianOfShuffledStream) {
  std::vector<double> values(2001);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  std::mt19937 rng(2012);
  std::shuffle(values.begin(), values.end(), rng);

  P2Quantile p50(0.5);
  for (double v : values) p50.add(v);
  EXPECT_EQ(p50.count(), values.size());
  // P² is approximate; the true median is 1000.
  EXPECT_NEAR(p50.value(), 1000.0, 50.0);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  q.add(10.0);
  q.add(30.0);
  q.add(20.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);
}

TEST(Registry, FindOrCreateAndSnapshots) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.depth").set(7.0);
  reg.histogram("a.lat").observe(0.5);
  EXPECT_EQ(&reg.counter("a.count"), &reg.counter("a.count"));
  EXPECT_TRUE(reg.contains("a.depth"));
  EXPECT_FALSE(reg.contains("missing"));
  EXPECT_EQ(reg.size(), 3u);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("a.depth"), std::string::npos);
  EXPECT_NE(text.find("a.lat"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);  // overflow bucket

  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, DisabledHelpersAreNoOps) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(false);
  count("test_obs.disabled_counter");
  gauge_set("test_obs.disabled_gauge", 1.0);
  observe("test_obs.disabled_hist", 1.0);
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(reg.contains("test_obs.disabled_counter"));
  EXPECT_FALSE(reg.contains("test_obs.disabled_gauge"));
  EXPECT_FALSE(reg.contains("test_obs.disabled_hist"));
}

TEST(Registry, EnabledHelpersRecord) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  count("test_obs.enabled_counter", 2);
  gauge_set("test_obs.enabled_gauge", 4.0);
  observe("test_obs.enabled_hist", 8.0);
  EXPECT_EQ(reg.counter("test_obs.enabled_counter").value(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("test_obs.enabled_gauge").value(), 4.0);
  EXPECT_EQ(reg.histogram("test_obs.enabled_hist").summary().count, 1u);
  reg.set_enabled(false);
}

TEST(Registry, TextOutputIsDeterministicallySorted) {
  // DST fingerprints embed the full metrics text, so the rendering must be
  // one global lexicographic order over all kinds — not creation order, not
  // per-kind sections whose interleave could drift.
  MetricsRegistry reg;
  reg.counter("z.count").inc();
  reg.gauge("m.depth").set(1.0);
  reg.histogram("a.lat").observe(1.0);
  reg.counter("b.count").inc();

  const std::string text = reg.to_text();
  const auto pa = text.find("a.lat");
  const auto pb = text.find("b.count");
  const auto pm = text.find("m.depth");
  const auto pz = text.find("z.count");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  ASSERT_NE(pm, std::string::npos);
  ASSERT_NE(pz, std::string::npos);
  EXPECT_LT(pa, pb);
  EXPECT_LT(pb, pm);
  EXPECT_LT(pm, pz);
  EXPECT_EQ(text, reg.to_text());  // stable across renders
}

TEST(Histogram, ExemplarTracksTheMaxSample) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("stage.e2e_us.sum");
  h.observe(5.0, 42);
  h.observe(9.0, 77);
  h.observe(7.0, 99);
  EXPECT_EQ(h.summary().exemplar_trace_id, 77u);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("exemplar=trace:77"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"exemplar_trace_id\":77"), std::string::npos);
}

TEST(FlightRecorder, RecordSnapshotAndTraceFilteredDump) {
  FlightRecorder fr;
  fr.record(FlightEventKind::kStateTransition, 7, 0, 1, "queued");
  fr.record(FlightEventKind::kRetry, 9, 1, 2, "attempt 2");
  fr.record(FlightEventKind::kDemotion, 7, 0, 1, "knee exceeded");
  EXPECT_EQ(fr.events_recorded(), 3u);

  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kRetry);
  EXPECT_STREQ(events[2].note, "knee exceeded");

  // Trace filter keeps only trace 7's history; the retry drops out.
  const std::string filtered = fr.dump_text(/*only_trace_id=*/7);
  EXPECT_NE(filtered.find("queued"), std::string::npos);
  EXPECT_NE(filtered.find("knee exceeded"), std::string::npos);
  EXPECT_EQ(filtered.find("attempt 2"), std::string::npos);

  // Tail keeps the newest line only.
  const std::string tail = fr.dump_text(0, /*tail=*/1);
  EXPECT_EQ(tail.find("queued"), std::string::npos);
  EXPECT_NE(tail.find("knee exceeded"), std::string::npos);
}

TEST(FlightRecorder, RingWrapKeepsTheNewestEvents) {
  FlightRecorder fr;
  const std::size_t total = FlightRecorder::kSlots + 10;
  for (std::size_t i = 0; i < total; ++i) {
    fr.record(FlightEventKind::kStateTransition, 0, 0, i, "e");
  }
  EXPECT_EQ(fr.events_recorded(), total);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kSlots);
  EXPECT_EQ(events.front().detail, 10u);  // the 10 oldest were overwritten
  EXPECT_EQ(events.back().detail, total - 1);
}

TEST(FlightRecorder, DumpsAreCappedAndGoToTheSink) {
  FlightRecorder fr;
  fr.record(FlightEventKind::kDeadlineMiss, 3, 0, 0, "watchdog fired");
  int dumps = 0;
  std::string last;
  fr.set_sink([&](const std::string& text) {
    ++dumps;
    last = text;
  });
  for (int i = 0; i < 20; ++i) fr.trigger_dump("test reason", 3);
  fr.set_sink(nullptr);
  EXPECT_EQ(dumps, 8) << "dump cascade must be capped";
  EXPECT_EQ(fr.dumps_triggered(), 20u);
  EXPECT_NE(last.find("test reason"), std::string::npos);
  EXPECT_NE(last.find("(trace 3)"), std::string::npos);
  EXPECT_NE(last.find("watchdog fired"), std::string::npos);
}

TEST(Trace, ChildContextDerivationIsDeterministicAndCollisionResistant) {
  Tracer tracer;
  const TraceContext root = tracer.new_root();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span_id, 0u);

  const TraceContext a = root.child("queue");
  const TraceContext b = root.child("kernel");
  EXPECT_EQ(a.trace_id, root.trace_id);
  EXPECT_EQ(a.parent_span_id, root.span_id);
  EXPECT_NE(a.span_id, b.span_id) << "different salts must derive different spans";
  EXPECT_EQ(a.span_id, root.child("queue").span_id) << "derivation must be pure";
}

TEST(Trace, ChromeJsonRoundTrip) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("kernel:gaussian2d", "kernel", 10.0, 25.0);
  tracer.instant("demote", "ce");
  tracer.counter("queue_depth", 3.0);
  tracer.counter_at("link.util", 0.75, 1.5e6, Tracer::kSimPid);
  EXPECT_EQ(tracer.event_count(), 4u);

  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);  // pid metadata
  EXPECT_NE(json.find("kernel:gaussian2d"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // Structurally balanced (no trailing-comma truncation).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.back(), '}');

  const std::string path = ::testing::TempDir() + "test_obs_trace.json";
  ASSERT_TRUE(tracer.write(path).is_ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string back(json.size() + 1, '\0');
  back.resize(std::fread(back.data(), 1, back.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(back, json);
}

TEST(Trace, JsonStringsAreEscaped) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("quote\"back\\slash", "cat\n");
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("cat\\n"), std::string::npos);
}

TEST(Trace, DisabledEmissionsAndScopesAreDropped) {
  Tracer tracer;
  tracer.complete("x", "y", 0.0, 1.0);
  tracer.instant("x", "y");
  tracer.counter("x", 1.0);
  EXPECT_EQ(tracer.event_count(), 0u);

  auto& global = Tracer::global();
  global.set_enabled(false);
  const std::size_t before = global.event_count();
  { ScopedTrace scope("test_obs.scope", "test"); }
  EXPECT_EQ(global.event_count(), before);
}

TEST(Trace, ScopedTraceRecordsWhenEnabled) {
  auto& global = Tracer::global();
  global.set_enabled(true);
  const std::size_t before = global.event_count();
  { ScopedTrace scope("test_obs.scope", "test"); }
  EXPECT_EQ(global.event_count(), before + 1);
  const std::string json = global.to_chrome_json();
  EXPECT_NE(json.find("test_obs.scope"), std::string::npos);
  global.set_enabled(false);
  global.clear();
}

}  // namespace
}  // namespace dosas::obs
