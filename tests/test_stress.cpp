// Stress & boundary suites:
//   * every registered kernel fed one byte at a time (and with empty
//     chunks interleaved) must match its whole-buffer result exactly;
//   * a mixed-operation thread storm against one DOSAS cluster must return
//     reference-exact results for every request;
//   * repeated interrupt/restore cycles (checkpoint ping-pong) preserve
//     kernel state across arbitrarily many migrations.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "kernels/registry.hpp"

namespace dosas {
namespace {

std::vector<std::uint8_t> test_payload(std::size_t doubles, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(doubles);
  for (auto& v : values) v = rng.uniform(0.0, 1.0);
  std::vector<std::uint8_t> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

/// Operations with small enough state to ping-pong quickly; one per
/// registered kernel family.
const char* kOps[] = {
    "sum",
    "minmax",
    "meanstddev",
    "histogram:bins=8,lo=0,hi=1",
    "thresholdcount:t=0.5",
    "gaussian2d:width=32",
    "gaussian2d:width=32,mode=full",
    "bytegrep:pat=xyz",
    "sobel2d:width=32,t=1",
    "topk:k=7",
    "reservoir:n=9,seed=3",
    "scale:a=2,b=0.5",
    "pipe:ops=scale;a=2|sum",
};

class EveryKernel : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryKernel, SingleByteFeedingMatchesWholeBuffer) {
  const auto reg = kernels::Registry::with_builtins();
  const auto bytes = test_payload(32 * 40, 11);  // 40 rows of width 32

  auto whole = reg.create(GetParam());
  auto drip = reg.create(GetParam());
  ASSERT_TRUE(whole.is_ok());
  ASSERT_TRUE(drip.is_ok());
  whole.value()->reset();
  whole.value()->consume(bytes);

  drip.value()->reset();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    drip.value()->consume(std::span(bytes.data() + i, 1));
  }
  EXPECT_EQ(drip.value()->finalize(), whole.value()->finalize());
  EXPECT_EQ(drip.value()->consumed(), bytes.size());
}

TEST_P(EveryKernel, EmptyChunksAreNoops) {
  const auto reg = kernels::Registry::with_builtins();
  const auto bytes = test_payload(32 * 10, 13);

  auto a = reg.create(GetParam());
  auto b = reg.create(GetParam());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  a.value()->reset();
  a.value()->consume(bytes);

  b.value()->reset();
  b.value()->consume({});
  b.value()->consume(std::span(bytes.data(), 100));
  b.value()->consume({});
  b.value()->consume(std::span(bytes.data() + 100, bytes.size() - 100));
  b.value()->consume({});
  EXPECT_EQ(a.value()->finalize(), b.value()->finalize());
}

TEST_P(EveryKernel, CheckpointPingPongPreservesState) {
  // Migrate the kernel between "nodes" after every 97-byte slice: each hop
  // encodes + decodes the checkpoint into a brand-new instance.
  const auto reg = kernels::Registry::with_builtins();
  const auto bytes = test_payload(32 * 20, 17);

  auto ref = reg.create(GetParam());
  ASSERT_TRUE(ref.is_ok());
  ref.value()->reset();
  ref.value()->consume(bytes);

  auto current = reg.create(GetParam());
  ASSERT_TRUE(current.is_ok());
  current.value()->reset();
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n = std::min<std::size_t>(97, bytes.size() - pos);
    current.value()->consume(std::span(bytes.data() + pos, n));
    pos += n;

    auto decoded = Checkpoint::decode(current.value()->checkpoint().encode());
    ASSERT_TRUE(decoded.is_ok()) << "at " << pos;
    auto next = reg.create(GetParam());
    ASSERT_TRUE(next.is_ok());
    ASSERT_TRUE(next.value()->restore(decoded.value()).is_ok()) << "at " << pos;
    current = std::move(next);
  }
  EXPECT_EQ(current.value()->finalize(), ref.value()->finalize());
  EXPECT_EQ(current.value()->consumed(), bytes.size());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EveryKernel, ::testing::ValuesIn(kOps),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------- cluster storm

TEST(Stress, MixedOperationThreadStormIsReferenceExact) {
  core::ClusterConfig cfg;
  cfg.scheme = core::SchemeKind::kDosas;
  cfg.storage_nodes = 2;
  cfg.strip_size = 16_KiB;
  cfg.server_chunk_size = 32_KiB;
  cfg.result_cache_entries = 4;  // exercise the cache concurrently too
  core::Cluster cluster(cfg);

  constexpr std::size_t kFiles = 4;
  constexpr std::size_t kDoubles = 64 * 256;  // 128 KiB each
  for (std::size_t f = 0; f < kFiles; ++f) {
    // One node per file: striped-sum merging would change the float
    // summation order and break the byte-exact comparison below.
    pfs::StripingParams striping;
    striping.strip_size = cfg.strip_size;
    striping.server_count = 1;
    striping.base_server = static_cast<pfs::ServerId>(f % 2);
    auto meta = cluster.pfs_client().create("/s" + std::to_string(f), striping);
    ASSERT_TRUE(meta.is_ok());
    std::vector<double> values(kDoubles);
    for (std::size_t i = 0; i < kDoubles; ++i) {
      values[i] = static_cast<double>((i * (f + 1)) % 100) / 100.0;
    }
    auto written = cluster.pfs_client().write(
        meta.value(), 0,
        std::span(reinterpret_cast<const std::uint8_t*>(values.data()), kDoubles * 8));
    ASSERT_TRUE(written.is_ok());
  }

  const char* storm_ops[] = {"sum", "minmax", "histogram:bins=8,lo=0,hi=1",
                             "thresholdcount:t=0.5", "pipe:ops=scale;a=2|sum"};
  constexpr int kThreads = 10;
  constexpr int kRequestsPerThread = 8;

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      const auto reg = kernels::Registry::with_builtins();
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const std::size_t f = rng.uniform_index(kFiles);
        const char* op = storm_ops[rng.uniform_index(std::size(storm_ops))];
        auto meta = cluster.pfs_client().open("/s" + std::to_string(f));
        if (!meta.is_ok()) {
          failures[t] = meta.status().to_string();
          return;
        }
        auto out = cluster.asc().read_ex(meta.value(), 0, meta.value().size, op);
        if (!out.is_ok()) {
          failures[t] = out.status().to_string();
          return;
        }
        // Reference: sequential local pass over the same bytes.
        auto raw = cluster.pfs_client().read_all(meta.value());
        auto ref = reg.create(op);
        if (!raw.is_ok() || !ref.is_ok()) {
          failures[t] = "reference setup failed";
          return;
        }
        ref.value()->reset();
        ref.value()->consume(raw.value());
        if (out.value() != ref.value()->finalize()) {
          failures[t] = std::string("mismatch for ") + op;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }
}

}  // namespace
}  // namespace dosas
