// Tests for dosas::client — the ASC's read_ex resolution paths (remote
// completion, demotion fallback, checkpoint resume, striped fan-out) and
// the MPI-IO facade.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "client/active_client.hpp"
#include "client/mpiio.hpp"
#include "core/cluster.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/mean_stddev.hpp"
#include "kernels/minmax.hpp"
#include "kernels/sum.hpp"

namespace dosas::client {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SchemeKind;

/// A cluster with `nodes` storage nodes and "/data" holding `count`
/// doubles valued i % 101.
struct Fixture {
  explicit Fixture(SchemeKind scheme, std::uint32_t nodes = 1, std::size_t count = 20'000,
                   Bytes strip = 64_KiB) {
    ClusterConfig cfg;
    cfg.scheme = scheme;
    cfg.storage_nodes = nodes;
    cfg.strip_size = strip;
    cluster = std::make_unique<Cluster>(cfg);
    auto m = pfs::write_doubles(cluster->pfs_client(), "/data", count,
                                [](std::size_t i) { return static_cast<double>(i % 101); });
    EXPECT_TRUE(m.is_ok());
    meta = m.value();
    expected_sum = 0;
    for (std::size_t i = 0; i < count; ++i) expected_sum += static_cast<double>(i % 101);
    this->count = count;
  }

  std::unique_ptr<Cluster> cluster;
  pfs::FileMeta meta;
  double expected_sum = 0;
  std::size_t count = 0;
};

// ---------------------------------------------------------------- read_ex paths

TEST(ActiveClient, RemoteCompletionPath) {
  Fixture fx(SchemeKind::kActive);  // all-active: storage node runs the kernel
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, fx.count);
  EXPECT_NEAR(sum.value().sum, fx.expected_sum, 1e-6);

  const auto stats = fx.cluster->asc().stats();
  EXPECT_EQ(stats.completed_remote, 1u);
  EXPECT_EQ(stats.demoted, 0u);
  EXPECT_EQ(stats.local_kernel_runs, 0u);
  // Only the 16-byte result crossed the "network".
  EXPECT_EQ(stats.raw_bytes_read, 0u);
  EXPECT_EQ(stats.result_bytes_received, 16u);
}

TEST(ActiveClient, DemotionFallbackPath) {
  Fixture fx(SchemeKind::kTraditional);  // all-normal: every request demoted
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, fx.count);
  EXPECT_NEAR(sum.value().sum, fx.expected_sum, 1e-6);

  const auto stats = fx.cluster->asc().stats();
  EXPECT_EQ(stats.completed_remote, 0u);
  EXPECT_EQ(stats.demoted, 1u);
  EXPECT_EQ(stats.local_kernel_runs, 1u);
  // The raw data crossed the network instead.
  EXPECT_EQ(stats.raw_bytes_read, fx.meta.size);
}

TEST(ActiveClient, ResultsIdenticalAcrossSchemes) {
  // The core guarantee: WHERE the kernel runs never changes WHAT it
  // computes.
  std::vector<std::vector<std::uint8_t>> results;
  for (SchemeKind scheme :
       {SchemeKind::kTraditional, SchemeKind::kActive, SchemeKind::kDosas}) {
    Fixture fx(scheme);
    auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "meanstddev");
    ASSERT_TRUE(out.is_ok()) << core::scheme_name(scheme);
    results.push_back(out.value());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ActiveClient, SubExtentReadEx) {
  Fixture fx(SchemeKind::kActive);
  // Sum of items [100, 300).
  auto out = fx.cluster->asc().read_ex(fx.meta, 100 * sizeof(double), 200 * sizeof(double),
                                       "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 200u);
  double expect = 0;
  for (std::size_t i = 100; i < 300; ++i) expect += static_cast<double>(i % 101);
  EXPECT_NEAR(sum.value().sum, expect, 1e-9);
}

TEST(ActiveClient, ReadExClampsAtEof) {
  Fixture fx(SchemeKind::kActive, 1, 1000);
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size * 10, "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 1000u);
}

TEST(ActiveClient, ReadExPastEofIsEmptyKernelResult) {
  Fixture fx(SchemeKind::kActive, 1, 1000);
  auto out = fx.cluster->asc().read_ex(fx.meta, fx.meta.size + 100, 4096, "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 0u);
}

TEST(ActiveClient, UnknownOperationFails) {
  Fixture fx(SchemeKind::kActive);
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "fft");
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kNotFound);
}

TEST(ActiveClient, NormalReadPath) {
  Fixture fx(SchemeKind::kDosas);
  auto data = fx.cluster->asc().read(fx.meta, 0, 800);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 800u);
  EXPECT_EQ(fx.cluster->asc().stats().raw_bytes_read, 800u);
}

// ---------------------------------------------------------------- striping

TEST(ActiveClient, StripedFanoutMergesSum) {
  Fixture fx(SchemeKind::kActive, 4, 100'000, 4_KiB);
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, fx.count);
  EXPECT_NEAR(sum.value().sum, fx.expected_sum, 1e-5);

  const auto stats = fx.cluster->asc().stats();
  EXPECT_EQ(stats.striped_fanouts, 1u);
  EXPECT_EQ(stats.completed_remote, 4u);  // one partial per storage node
}

TEST(ActiveClient, StripedFanoutMinMaxMatchesDirect) {
  Fixture fx(SchemeKind::kActive, 3, 50'000, 8_KiB);
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "minmax");
  ASSERT_TRUE(out.is_ok());
  auto mm = kernels::MinMaxResult::decode(out.value());
  ASSERT_TRUE(mm.is_ok());
  EXPECT_EQ(mm.value().count, fx.count);
  EXPECT_DOUBLE_EQ(mm.value().min, 0.0);
  EXPECT_DOUBLE_EQ(mm.value().max, 100.0);
}

TEST(ActiveClient, StripedMeanStddevMatchesWholeFileWithinTolerance) {
  Fixture fx(SchemeKind::kActive, 4, 80'000, 4_KiB);
  auto striped = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "meanstddev");
  ASSERT_TRUE(striped.is_ok());
  auto striped_r = kernels::MeanStddevResult::decode(striped.value());
  ASSERT_TRUE(striped_r.is_ok());

  // Reference: sequential local pass.
  auto raw = fx.cluster->pfs_client().read_all(fx.meta);
  ASSERT_TRUE(raw.is_ok());
  kernels::MeanStddevKernel ref;
  ref.reset();
  ref.consume(raw.value());
  auto ref_r = kernels::MeanStddevResult::decode(ref.finalize());
  ASSERT_TRUE(ref_r.is_ok());

  EXPECT_EQ(striped_r.value().count, ref_r.value().count);
  EXPECT_NEAR(striped_r.value().mean, ref_r.value().mean, 1e-9);
  EXPECT_NEAR(striped_r.value().m2, ref_r.value().m2, 1e-4);
}

TEST(ActiveClient, NonMergeableStripedKernelFallsBackLocally) {
  // Gaussian over a striped file needs logical byte order: the ASC must
  // use the local (TS) path — and still produce exactly the right answer.
  Fixture fx(SchemeKind::kActive, 4, 64 * 64, 2_KiB);  // 64x64 grid
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "gaussian2d:width=64");
  ASSERT_TRUE(out.is_ok());
  auto digest = kernels::GaussianDigest::decode(out.value());
  ASSERT_TRUE(digest.is_ok());
  EXPECT_EQ(digest.value().rows, 62u);

  const auto stats = fx.cluster->asc().stats();
  EXPECT_EQ(stats.striped_fanouts, 0u);
  EXPECT_EQ(stats.local_kernel_runs, 1u);

  // Cross-check against the reference filter.
  auto raw = fx.cluster->pfs_client().read_all(fx.meta);
  ASSERT_TRUE(raw.is_ok());
  std::vector<double> grid(64 * 64);
  std::memcpy(grid.data(), raw.value().data(), raw.value().size());
  const auto expect = kernels::Gaussian2dKernel::filter_reference(grid, 64);
  double esum = std::accumulate(expect.begin(), expect.end(), 0.0);
  EXPECT_NEAR(digest.value().sum, esum, 1e-6);
}

TEST(ActiveClient, StripedDemotionStillMerges) {
  // TS scheme + striped file: every per-server partial is rejected and
  // computed locally from that server's bytes, then merged.
  Fixture fx(SchemeKind::kTraditional, 4, 100'000, 4_KiB);
  auto out = fx.cluster->asc().read_ex(fx.meta, 0, fx.meta.size, "sum");
  ASSERT_TRUE(out.is_ok());
  auto sum = kernels::SumResult::decode(out.value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, fx.count);
  EXPECT_NEAR(sum.value().sum, fx.expected_sum, 1e-5);
  EXPECT_EQ(fx.cluster->asc().stats().demoted, 4u);
}

// ---------------------------------------------------------------- mpiio facade

TEST(MpiIo, OpenReadSeek) {
  Fixture fx(SchemeKind::kDosas, 1, 1000);
  mpiio::File fh;
  ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/data", fh).is_ok());
  EXPECT_TRUE(fh.valid());

  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(mpiio::file_read(fh, buf, 10, mpiio::kDouble).is_ok());
  EXPECT_EQ(buf.size(), 80u);
  double v0;
  std::memcpy(&v0, buf.data(), sizeof(double));
  EXPECT_DOUBLE_EQ(v0, 0.0);
  EXPECT_EQ(fh.position, 80u);

  ASSERT_TRUE(mpiio::file_seek(fh, 0).is_ok());
  EXPECT_EQ(fh.position, 0u);

  auto size = mpiio::file_size(fh);
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size.value(), 8000u);
}

TEST(MpiIo, OpenMissingFileFails) {
  Fixture fx(SchemeKind::kDosas, 1, 10);
  mpiio::File fh;
  EXPECT_FALSE(mpiio::file_open(fx.cluster->asc(), "/ghost", fh).is_ok());
  EXPECT_FALSE(fh.valid());
}

TEST(MpiIo, ReadExReturnsCompletedResult) {
  Fixture fx(SchemeKind::kDosas, 1, 5000);
  mpiio::File fh;
  ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/data", fh).is_ok());

  mpiio::ResultBuf result;
  ASSERT_TRUE(mpiio::file_read_ex(fh, &result, 5000, mpiio::kDouble, "sum").is_ok());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.offset, fh.position);
  auto sum = kernels::SumResult::decode(result.buf);
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 5000u);
}

TEST(MpiIo, ReadExAdvancesPointerSequentially) {
  Fixture fx(SchemeKind::kDosas, 1, 1000);
  mpiio::File fh;
  ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/data", fh).is_ok());

  mpiio::ResultBuf r1, r2;
  ASSERT_TRUE(mpiio::file_read_ex(fh, &r1, 400, mpiio::kDouble, "sum").is_ok());
  ASSERT_TRUE(mpiio::file_read_ex(fh, &r2, 600, mpiio::kDouble, "sum").is_ok());
  EXPECT_EQ(fh.position, 8000u);

  auto s1 = kernels::SumResult::decode(r1.buf);
  auto s2 = kernels::SumResult::decode(r2.buf);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s1.value().count + s2.value().count, 1000u);
  EXPECT_NEAR(s1.value().sum + s2.value().sum, fx.expected_sum, 1e-8);
}

TEST(MpiIo, ReadExNullArgumentsRejected) {
  Fixture fx(SchemeKind::kDosas, 1, 10);
  mpiio::File fh;
  ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/data", fh).is_ok());
  EXPECT_FALSE(mpiio::file_read_ex(fh, nullptr, 1, 8, "sum").is_ok());
  mpiio::ResultBuf r;
  EXPECT_FALSE(mpiio::file_read_ex(fh, &r, 1, 8, nullptr).is_ok());
}

TEST(MpiIo, OperationsOnClosedFileRejected) {
  mpiio::File fh;
  std::vector<std::uint8_t> buf;
  EXPECT_FALSE(mpiio::file_read(fh, buf, 1, 8).is_ok());
  mpiio::ResultBuf r;
  EXPECT_FALSE(mpiio::file_read_ex(fh, &r, 1, 8, "sum").is_ok());
  EXPECT_FALSE(mpiio::file_seek(fh, 0).is_ok());
  EXPECT_FALSE(mpiio::file_size(fh).is_ok());
}

TEST(MpiIo, ShortReadAtEof) {
  Fixture fx(SchemeKind::kDosas, 1, 100);
  mpiio::File fh;
  ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/data", fh).is_ok());
  ASSERT_TRUE(mpiio::file_seek(fh, 90 * sizeof(double)).is_ok());
  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(mpiio::file_read(fh, buf, 50, mpiio::kDouble).is_ok());
  EXPECT_EQ(buf.size(), 10u * sizeof(double));
}

}  // namespace
}  // namespace dosas::client
