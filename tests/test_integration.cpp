// End-to-end integration tests: concurrent application threads driving the
// full real runtime (ASC -> ASS -> PFS -> kernels) under all three schemes,
// exercising demotion, interruption/resume, striping, and mixed workloads.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "core/cluster.hpp"
#include "core/runner.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/histogram.hpp"
#include "kernels/sum.hpp"

namespace dosas::core {
namespace {

std::unique_ptr<Cluster> make_cluster(SchemeKind scheme, std::uint32_t nodes = 1,
                                      Bytes strip = 64_KiB) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.storage_nodes = nodes;
  cfg.strip_size = strip;
  cfg.server_chunk_size = 64_KiB;  // frequent interruption checks
  return std::make_unique<Cluster>(cfg);
}

/// Write `files` data files of `count` doubles each; returns expected sums.
std::vector<double> seed_files(Cluster& cluster, std::size_t files, std::size_t count) {
  std::vector<double> sums(files, 0.0);
  for (std::size_t f = 0; f < files; ++f) {
    auto meta = pfs::write_doubles(cluster.pfs_client(), "/data" + std::to_string(f), count,
                                   [f](std::size_t i) {
                                     return static_cast<double>((i * (f + 1)) % 211);
                                   });
    EXPECT_TRUE(meta.is_ok());
    for (std::size_t i = 0; i < count; ++i) {
      sums[f] += static_cast<double>((i * (f + 1)) % 211);
    }
  }
  return sums;
}

class SchemeIntegration : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(SchemeIntegration, ConcurrentSumsAreCorrectUnderEveryScheme) {
  auto cluster = make_cluster(GetParam());
  constexpr std::size_t kFiles = 8;
  constexpr std::size_t kCount = 40'000;  // ~312 KiB per file
  const auto sums = seed_files(*cluster, kFiles, kCount);

  std::vector<WorkloadRequest> reqs;
  for (std::size_t f = 0; f < kFiles; ++f) {
    reqs.push_back({"/data" + std::to_string(f), 0, 0, "sum"});
  }
  const auto report = run_workload(*cluster, reqs);
  ASSERT_EQ(report.failures, 0u);
  for (std::size_t f = 0; f < kFiles; ++f) {
    auto sum = kernels::SumResult::decode(report.outcomes[f].result);
    ASSERT_TRUE(sum.is_ok()) << "file " << f;
    EXPECT_EQ(sum.value().count, kCount);
    EXPECT_NEAR(sum.value().sum, sums[f], 1e-5) << "file " << f;
  }
}

TEST_P(SchemeIntegration, ConcurrentGaussiansAreCorrectUnderEveryScheme) {
  auto cluster = make_cluster(GetParam());
  constexpr std::size_t kFiles = 6;
  constexpr std::size_t kWidth = 128;
  constexpr std::size_t kRows = 256;
  seed_files(*cluster, kFiles, kWidth * kRows);

  std::vector<WorkloadRequest> reqs;
  for (std::size_t f = 0; f < kFiles; ++f) {
    reqs.push_back({"/data" + std::to_string(f), 0, 0, "gaussian2d:width=128"});
  }
  const auto report = run_workload(*cluster, reqs);
  ASSERT_EQ(report.failures, 0u);

  // Every digest must match the sequential reference for its file.
  for (std::size_t f = 0; f < kFiles; ++f) {
    auto meta = cluster->pfs_client().open("/data" + std::to_string(f));
    ASSERT_TRUE(meta.is_ok());
    auto raw = cluster->pfs_client().read_all(meta.value());
    ASSERT_TRUE(raw.is_ok());
    kernels::Gaussian2dKernel ref(kWidth);
    ref.consume(raw.value());

    auto got = kernels::GaussianDigest::decode(report.outcomes[f].result);
    auto expect = kernels::GaussianDigest::decode(ref.finalize());
    ASSERT_TRUE(got.is_ok());
    ASSERT_TRUE(expect.is_ok());
    EXPECT_EQ(got.value().rows, expect.value().rows) << "file " << f;
    EXPECT_EQ(got.value().count, expect.value().count) << "file " << f;
    EXPECT_NEAR(got.value().sum, expect.value().sum, 1e-6) << "file " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeIntegration,
                         ::testing::Values(SchemeKind::kTraditional, SchemeKind::kActive,
                                           SchemeKind::kDosas),
                         [](const ::testing::TestParamInfo<SchemeKind>& info) {
                           return scheme_name(info.param);
                         });

TEST(Integration, DosasDemotesUnderContention) {
  // 10 concurrent Gaussian requests against one 2-core storage node: the
  // DOSAS policy must hand some kernels back to the clients, and the
  // results must still all be right.
  auto cluster = make_cluster(SchemeKind::kDosas);
  constexpr std::size_t kFiles = 10;
  constexpr std::size_t kWidth = 512;
  constexpr std::size_t kRows = 512;  // 2 MiB per file
  seed_files(*cluster, kFiles, kWidth * kRows);

  std::vector<WorkloadRequest> reqs;
  for (std::size_t f = 0; f < kFiles; ++f) {
    reqs.push_back({"/data" + std::to_string(f), 0, 0, "gaussian2d:width=512"});
  }
  const auto report = run_workload(*cluster, reqs);
  ASSERT_EQ(report.failures, 0u);

  const auto client_stats = cluster->asc().stats();
  const auto server_stats = cluster->storage_server(0).stats();
  EXPECT_GT(client_stats.demoted + client_stats.resumed_local, 0u)
      << "a 10-deep Gaussian queue must trigger demotions";
  EXPECT_EQ(client_stats.reads_ex, kFiles);
  EXPECT_EQ(server_stats.active_completed + server_stats.active_rejected +
                server_stats.active_interrupted,
            kFiles);
}

TEST(Integration, DosasInterruptResumeProducesExactResult) {
  // The real interrupted-resume path end to end: DOSAS scheme, staggered
  // arrivals so early Gaussian kernels get admitted and then interrupted
  // as the queue deepens. Whatever mix of outcomes occurs, every result
  // must equal the sequential reference.
  ClusterConfig cfg;
  cfg.scheme = SchemeKind::kDosas;
  cfg.server_chunk_size = 16_KiB;
  auto cluster = std::make_unique<Cluster>(cfg);
  constexpr std::size_t kFiles = 8;
  constexpr std::size_t kWidth = 256;
  constexpr std::size_t kRows = 1024;  // 2 MiB each
  seed_files(*cluster, kFiles, kWidth * kRows);

  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint8_t>> results(kFiles);
  std::vector<Status> statuses(kFiles, Status::ok());
  for (std::size_t f = 0; f < kFiles; ++f) {
    threads.emplace_back([&, f] {
      auto meta = cluster->pfs_client().open("/data" + std::to_string(f));
      if (!meta.is_ok()) {
        statuses[f] = meta.status();
        return;
      }
      auto out =
          cluster->asc().read_ex(meta.value(), 0, meta.value().size, "gaussian2d:width=256");
      if (out.is_ok()) {
        results[f] = out.value();
      } else {
        statuses[f] = out.status();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(statuses[f].is_ok()) << "file " << f << ": " << statuses[f].to_string();
    auto meta = cluster->pfs_client().open("/data" + std::to_string(f));
    ASSERT_TRUE(meta.is_ok());
    auto raw = cluster->pfs_client().read_all(meta.value());
    ASSERT_TRUE(raw.is_ok());
    kernels::Gaussian2dKernel ref(kWidth);
    ref.consume(raw.value());
    EXPECT_EQ(results[f], ref.finalize()) << "file " << f;
  }
}

TEST(Integration, MixedOperationsScheduleIndependently) {
  // SUM and Gaussian requests interleaved: the CE schedules each kernel
  // group with its own rates; everything completes correctly.
  auto cluster = make_cluster(SchemeKind::kDosas);
  constexpr std::size_t kCount = 65'536;  // 512 KiB
  const auto sums = seed_files(*cluster, 8, kCount);

  std::vector<WorkloadRequest> reqs;
  for (std::size_t f = 0; f < 8; ++f) {
    reqs.push_back({"/data" + std::to_string(f), 0, 0,
                    f % 2 == 0 ? std::string("sum") : std::string("gaussian2d:width=256")});
  }
  const auto report = run_workload(*cluster, reqs);
  ASSERT_EQ(report.failures, 0u);
  for (std::size_t f = 0; f < 8; f += 2) {
    auto sum = kernels::SumResult::decode(report.outcomes[f].result);
    ASSERT_TRUE(sum.is_ok());
    EXPECT_NEAR(sum.value().sum, sums[f], 1e-6);
  }
}

TEST(Integration, StripedVolumeAllSchemes) {
  for (SchemeKind scheme :
       {SchemeKind::kTraditional, SchemeKind::kActive, SchemeKind::kDosas}) {
    auto cluster = make_cluster(scheme, 4, 8_KiB);
    constexpr std::size_t kCount = 50'000;
    const auto sums = seed_files(*cluster, 3, kCount);

    std::vector<WorkloadRequest> reqs;
    for (std::size_t f = 0; f < 3; ++f) {
      reqs.push_back({"/data" + std::to_string(f), 0, 0, "sum"});
    }
    const auto report = run_workload(*cluster, reqs);
    ASSERT_EQ(report.failures, 0u) << scheme_name(scheme);
    for (std::size_t f = 0; f < 3; ++f) {
      auto sum = kernels::SumResult::decode(report.outcomes[f].result);
      ASSERT_TRUE(sum.is_ok());
      EXPECT_NEAR(sum.value().sum, sums[f], 1e-5) << scheme_name(scheme);
    }
  }
}

TEST(Integration, HistogramOverClusterMatchesLocal) {
  auto cluster = make_cluster(SchemeKind::kDosas, 2, 16_KiB);
  constexpr std::size_t kCount = 30'000;
  seed_files(*cluster, 1, kCount);

  auto meta = cluster->pfs_client().open("/data0");
  ASSERT_TRUE(meta.is_ok());
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size,
                                    "histogram:bins=32,lo=0,hi=211");
  ASSERT_TRUE(out.is_ok());
  auto hist = kernels::HistogramResult::decode(out.value());
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ(hist.value().total(), kCount);

  // Reference.
  auto raw = cluster->pfs_client().read_all(meta.value());
  ASSERT_TRUE(raw.is_ok());
  kernels::HistogramKernel ref(32, 0, 211);
  ref.reset();
  ref.consume(raw.value());
  EXPECT_EQ(out.value(), ref.finalize());
}

TEST(Integration, WorkloadReportTracksLatencies) {
  auto cluster = make_cluster(SchemeKind::kDosas);
  seed_files(*cluster, 2, 10'000);
  const auto report = run_workload(
      *cluster, {{"/data0", 0, 0, "sum"}, {"/data1", 0, 0, "sum"}, {"/ghost", 0, 0, "sum"}});
  EXPECT_EQ(report.failures, 1u);
  EXPECT_FALSE(report.outcomes[2].ok);
  EXPECT_GT(report.wall_time, 0.0);
  EXPECT_GT(report.outcomes[0].latency, 0.0);
  EXPECT_TRUE(report.outcomes[0].ok);
}

}  // namespace
}  // namespace dosas::core
