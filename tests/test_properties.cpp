// Cross-module property suites:
//   * PFS fuzz: random create/write/read/truncate/unlink interleavings
//     checked against an in-memory reference model;
//   * fluid-resource conservation: served work == submitted work under
//     random arrival/cancel churn, rates never exceed capacity;
//   * scheduler optimality: no random assignment ever beats the exact
//     optimizers' objective;
//   * end-to-end determinism of the experiment models.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/sim_model.hpp"
#include "pfs/client.hpp"
#include "pfs/file_system.hpp"
#include "sched/optimizer.hpp"
#include "sim/fluid_resource.hpp"

namespace dosas {
namespace {

// ---------------------------------------------------------------- PFS fuzz

struct FuzzCase {
  std::uint64_t seed;
  std::uint32_t servers;
  Bytes strip;
};

class PfsFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PfsFuzz, MatchesReferenceModelUnderRandomOps) {
  const auto p = GetParam();
  pfs::FileSystem fs(p.servers, p.strip);
  pfs::Client client(fs);
  Rng rng(p.seed);

  // Reference: plain byte vectors per path.
  std::map<std::string, std::vector<std::uint8_t>> model;

  auto random_path = [&] { return "/f" + std::to_string(rng.uniform_index(6)); };
  auto random_bytes = [&](std::size_t n) {
    std::vector<std::uint8_t> b(n);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng());
    return b;
  };

  for (int op = 0; op < 400; ++op) {
    const std::string path = random_path();
    const bool exists = model.count(path) != 0;
    switch (rng.uniform_index(5)) {
      case 0: {  // create
        auto meta = client.create(path);
        ASSERT_EQ(meta.is_ok(), !exists) << "create " << path;
        if (!exists) model[path] = {};
        break;
      }
      case 1: {  // write at random offset
        if (!exists) break;
        auto meta = client.open(path);
        ASSERT_TRUE(meta.is_ok());
        const Bytes max_off = model[path].size() + 2 * p.strip;
        const Bytes off = rng.uniform_index(max_off + 1);
        const auto data = random_bytes(1 + rng.uniform_index(3 * p.strip));
        ASSERT_TRUE(client.write(meta.value(), off, data).is_ok());
        auto& ref = model[path];
        if (ref.size() < off + data.size()) ref.resize(off + data.size(), 0);
        std::copy(data.begin(), data.end(), ref.begin() + static_cast<std::ptrdiff_t>(off));
        break;
      }
      case 2: {  // read a random extent and compare
        if (!exists) {
          ASSERT_FALSE(client.open(path).is_ok());
          break;
        }
        auto meta = client.open(path);
        ASSERT_TRUE(meta.is_ok());
        const auto& ref = model[path];
        ASSERT_EQ(meta.value().size, ref.size());
        const Bytes off = rng.uniform_index(ref.size() + p.strip + 1);
        const Bytes len = 1 + rng.uniform_index(2 * p.strip);
        auto got = client.read(meta.value(), off, len);
        ASSERT_TRUE(got.is_ok());
        const Bytes expect_len =
            off >= ref.size() ? 0 : std::min<Bytes>(len, ref.size() - off);
        ASSERT_EQ(got.value().size(), expect_len);
        for (Bytes i = 0; i < expect_len; ++i) {
          ASSERT_EQ(got.value()[i], ref[off + i]) << path << " @" << off + i;
        }
        break;
      }
      case 3: {  // whole-file read
        if (!exists) break;
        auto meta = client.open(path);
        ASSERT_TRUE(meta.is_ok());
        auto got = client.read_all(meta.value());
        ASSERT_TRUE(got.is_ok());
        ASSERT_EQ(got.value(), model[path]);
        break;
      }
      case 4: {  // unlink
        const Status st = client.unlink(path);
        ASSERT_EQ(st.is_ok(), exists) << "unlink " << path;
        model.erase(path);
        break;
      }
    }
  }

  // Final audit: every surviving file matches, byte for byte.
  for (const auto& [path, ref] : model) {
    auto meta = client.open(path);
    ASSERT_TRUE(meta.is_ok());
    auto got = client.read_all(meta.value());
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value(), ref) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Volumes, PfsFuzz,
                         ::testing::Values(FuzzCase{1, 1, 128}, FuzzCase{2, 2, 128},
                                           FuzzCase{3, 4, 64}, FuzzCase{4, 3, 1000},
                                           FuzzCase{5, 8, 256}, FuzzCase{6, 2, 1}));

// ---------------------------------------------------------------- fluid conservation

struct ChurnCase {
  std::uint64_t seed;
  double capacity;
  double per_job_cap;
};

class FluidChurn : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(FluidChurn, WorkIsConservedUnderRandomArrivalsAndCancels) {
  const auto p = GetParam();
  sim::Simulator s;
  sim::FluidResource res(s, {.capacity = p.capacity, .per_job_cap = p.per_job_cap});
  Rng rng(p.seed);

  double submitted = 0.0;
  double completed_work = 0.0;
  double cancelled_remaining = 0.0;
  std::vector<sim::FluidResource::JobId> live;

  // 200 random arrivals over [0, 20); each completion records its work;
  // random cancels reclaim the remainder (cancel of an already-completed
  // id is a 0-work no-op by contract).
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 20.0);
    const double work = rng.uniform(0.1, 30.0);
    s.schedule_at(t, [&, work] {
      submitted += work;
      const auto id = res.submit(work, [&, work](sim::Time) { completed_work += work; });
      live.push_back(id);
    });
  }
  for (int i = 0; i < 60; ++i) {
    const double t = rng.uniform(0.0, 25.0);
    s.schedule_at(t, [&] {
      if (live.empty()) return;
      const auto idx = rng.uniform_index(live.size());
      const auto id = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      cancelled_remaining += res.cancel(id);
    });
  }
  s.run();

  EXPECT_EQ(res.active_jobs(), 0u);
  EXPECT_GT(completed_work, 0.0);
  // Conservation: every submitted unit was either served or handed back.
  const double served = res.work_done();
  EXPECT_NEAR(served + cancelled_remaining, submitted, 1e-5);
  // Throughput bound: served work cannot exceed capacity x elapsed time.
  EXPECT_LE(served, p.capacity * s.now() * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Shapes, FluidChurn,
                         ::testing::Values(ChurnCase{1, 10.0, 0.0}, ChurnCase{2, 10.0, 1.0},
                                           ChurnCase{3, 100.0, 7.0}, ChurnCase{4, 1.0, 0.5},
                                           ChurnCase{5, 50.0, 50.0}));

// ---------------------------------------------------------------- scheduler optimality

TEST(SchedulerProperty, NoSampledAssignmentBeatsExactOptimum) {
  sched::CostModel m;
  m.bandwidth = mb_per_sec(118.0);
  m.storage_rate = mb_per_sec(80.0);
  m.compute_rate = mb_per_sec(80.0);

  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 1 + rng.uniform_index(30);
    std::vector<sched::ActiveRequest> reqs(k);
    for (std::size_t i = 0; i < k; ++i) {
      reqs[i].id = i + 1;
      reqs[i].size = megabytes(static_cast<double>(1 + rng.uniform_index(2048)));
      reqs[i].result_size = rng.chance(0.3) ? reqs[i].size / 100 : 40;
    }
    const auto exact = sched::SortMinOptimizer{}.optimize(m, reqs);
    for (int sample = 0; sample < 200; ++sample) {
      std::vector<bool> a(k);
      for (std::size_t i = 0; i < k; ++i) a[i] = rng.chance(0.5);
      ASSERT_GE(m.objective(reqs, a), exact.predicted_time - 1e-9)
          << "trial " << trial << " sample " << sample;
    }
  }
}

// ---------------------------------------------------------------- model determinism

TEST(ModelProperty, SimulationsAreBitwiseRepeatable) {
  const auto cfg = core::ModelConfig::gaussian();
  for (auto scheme : {core::SchemeKind::kTraditional, core::SchemeKind::kActive,
                      core::SchemeKind::kDosas}) {
    const auto a = core::simulate_scheme(scheme, cfg, core::uniform_workload(16, 256_MiB));
    const auto b = core::simulate_scheme(scheme, cfg, core::uniform_workload(16, 256_MiB));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.demoted, b.demoted);
    EXPECT_EQ(a.interrupted, b.interrupted);
    EXPECT_EQ(a.bytes_over_link, b.bytes_over_link);
  }
}

TEST(ModelProperty, MakespanMonotonicInLoad) {
  const auto cfg = core::ModelConfig::gaussian();
  for (auto scheme : {core::SchemeKind::kTraditional, core::SchemeKind::kActive,
                      core::SchemeKind::kDosas}) {
    double prev = 0.0;
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const auto r = core::simulate_scheme(scheme, cfg, core::uniform_workload(n, 128_MiB));
      EXPECT_GE(r.makespan, prev - 1e-9) << core::scheme_name(scheme) << " n=" << n;
      prev = r.makespan;
    }
  }
}

TEST(ModelProperty, DosasNeverMovesMoreBytesThanTs) {
  const auto cfg = core::ModelConfig::gaussian();
  for (std::size_t n : {1u, 4u, 16u, 64u}) {
    const auto ts =
        core::simulate_scheme(core::SchemeKind::kTraditional, cfg, core::uniform_workload(n, 128_MiB));
    const auto dosas =
        core::simulate_scheme(core::SchemeKind::kDosas, cfg, core::uniform_workload(n, 128_MiB));
    EXPECT_LE(dosas.bytes_over_link, ts.bytes_over_link + n * cfg.checkpoint_size);
  }
}

}  // namespace
}  // namespace dosas
