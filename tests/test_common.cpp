// Unit tests for dosas::common — units, status, RNG, stats, serialization,
// channels, thread pool, token bucket.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/channel.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/token_bucket.hpp"
#include "common/units.hpp"

namespace dosas {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, LiteralsProduceExpectedByteCounts) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(128_MiB, megabytes(128));
}

TEST(Units, MbPerSecMatchesMegabytes) {
  EXPECT_DOUBLE_EQ(mb_per_sec(118.0), 118.0 * 1024 * 1024);
}

TEST(Units, ToMibRoundTrips) {
  EXPECT_DOUBLE_EQ(to_mib(512_MiB), 512.0);
  EXPECT_DOUBLE_EQ(to_mib_per_sec(mb_per_sec(860)), 860.0);
}

TEST(Units, FormatBytesPicksUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2_KiB), "2.0 KiB");
  EXPECT_EQ(format_bytes(128_MiB), "128.0 MiB");
  EXPECT_EQ(format_bytes(3_GiB), "3.0 GiB");
}

TEST(Units, FormatSecondsPicksUnit) {
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0025), "2.50 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
}

// ---------------------------------------------------------------- status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = error(ErrorCode::kNotFound, "no such file");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such file");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = error(ErrorCode::kRejected, "demoted");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kRejected);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(111.0, 120.0);
    EXPECT_GE(u, 111.0);
    EXPECT_LT(u, 120.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child should not replay the parent's sequence.
  Rng parent2(42);
  (void)parent2();  // parent consumed one draw for the fork
  EXPECT_NE(child(), parent());
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e(0.5);
  for (int i = 0; i < 20; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, FirstSamplePrimes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.primed());
  e.add(4.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 4.0);
}

TEST(Ewma, WeightsRecentSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

// ---------------------------------------------------------------- serialize

TEST(ByteIo, RoundTripPrimitives) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_string("dosas");
  const auto buf = w.take();

  ByteReader r(buf);
  std::uint8_t u8;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  double f64;
  std::string s;
  ASSERT_TRUE(r.get_u8(u8));
  ASSERT_TRUE(r.get_u32(u32));
  ASSERT_TRUE(r.get_u64(u64));
  ASSERT_TRUE(r.get_i64(i64));
  ASSERT_TRUE(r.get_f64(f64));
  ASSERT_TRUE(r.get_string(s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(s, "dosas");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteIo, TruncatedReadFails) {
  ByteWriter w;
  w.put_u32(7);
  const auto buf = w.take();
  ByteReader r(buf);
  std::uint64_t v;
  EXPECT_FALSE(r.get_u64(v));
}

TEST(ByteIo, StringWithEmbeddedNul) {
  ByteWriter w;
  std::string s("a\0b", 3);
  w.put_string(s);
  const auto buf = w.take();
  ByteReader r(buf);
  std::string out;
  ASSERT_TRUE(r.get_string(out));
  EXPECT_EQ(out, s);
}

TEST(Checkpoint, RoundTripAllFieldTypes) {
  Checkpoint ck;
  ck.set_i64("pos", 123456789);
  ck.set_i64("row", -3);
  ck.set_f64("partial_sum", 2.718);
  ck.set_string("kernel", "gaussian2d");
  ck.set_blob("carry_rows", {1, 2, 3, 4, 255});

  const auto bytes = ck.encode();
  auto decoded = Checkpoint::decode(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), ck);
  EXPECT_EQ(decoded.value().get_i64("pos"), 123456789);
  EXPECT_EQ(decoded.value().get_string("kernel"), "gaussian2d");
  ASSERT_NE(decoded.value().get_blob("carry_rows"), nullptr);
  EXPECT_EQ(decoded.value().get_blob("carry_rows")->size(), 5u);
}

TEST(Checkpoint, EmptyRoundTrips) {
  Checkpoint ck;
  auto decoded = Checkpoint::decode(ck.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(Checkpoint, BadMagicRejected) {
  std::vector<std::uint8_t> junk = {0, 1, 2, 3, 4, 5, 6, 7};
  auto decoded = Checkpoint::decode(junk);
  EXPECT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Checkpoint, TruncatedPayloadRejected) {
  Checkpoint ck;
  ck.set_string("k", "value");
  auto bytes = ck.encode();
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(Checkpoint::decode(bytes).is_ok());
}

TEST(Checkpoint, TrailingBytesRejected) {
  Checkpoint ck;
  ck.set_i64("x", 1);
  auto bytes = ck.encode();
  bytes.push_back(0);
  EXPECT_FALSE(Checkpoint::decode(bytes).is_ok());
}

TEST(Checkpoint, MissingFieldsFallBack) {
  Checkpoint ck;
  EXPECT_EQ(ck.get_i64("nope", -1), -1);
  EXPECT_DOUBLE_EQ(ck.get_f64("nope", 9.5), 9.5);
  EXPECT_EQ(ck.get_string("nope", "dflt"), "dflt");
  EXPECT_EQ(ck.get_blob("nope"), nullptr);
}

TEST(Checkpoint, EncodedSizeGrowsWithPayload) {
  Checkpoint small;
  small.set_i64("i", 1);
  Checkpoint big = small;
  big.set_blob("buf", std::vector<std::uint8_t>(4096, 0x5A));
  EXPECT_GT(big.encoded_size(), small.encoded_size() + 4000);
}

// ---------------------------------------------------------------- channel

TEST(Channel, SendReceiveOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.receive().value(), 1);
  EXPECT_EQ(ch.receive().value(), 2);
  EXPECT_EQ(ch.receive().value(), 3);
}

TEST(Channel, TryReceiveEmptyIsNullopt) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, BoundedTrySendFailsWhenFull) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, CloseDrainsThenSignals) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive().value(), 7);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, CloseWakesBlockedReceiver) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  Channel<int> ch;
  std::thread t([&] {
    ClockParticipant participant;
    auto v = ch.receive();
    EXPECT_FALSE(v.has_value());
  });
  // Deterministic rendezvous: once the clock counts the receiver as
  // blocked it is parked inside receive() — no wall-clock sleep needed.
  while (vc.status().blocked < 1) std::this_thread::yield();
  ch.close();
  t.join();
}

TEST(Channel, MultiProducerMultiConsumerDeliversAll) {
  Channel<int> ch(16);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::atomic<int> received{0};
  std::atomic<long> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.send(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.receive()) {
        sum += *v;
        ++received;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  ch.close();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<std::size_t>(kProducers + c)].join();

  const int total = kPerProducer * kProducers;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

TEST(Channel, PollDistinguishesEmptyFromClosed) {
  // try_receive() conflates "momentarily empty" with "closed and drained";
  // poll() is the tri-state form drain loops must use to tell them apart.
  Channel<int> ch;
  std::optional<int> out;
  EXPECT_EQ(ch.poll(out), QueuePoll::kEmpty);
  EXPECT_FALSE(out.has_value());

  ch.send(5);
  EXPECT_EQ(ch.poll(out), QueuePoll::kItem);
  EXPECT_EQ(out.value(), 5);

  ch.send(6);
  ch.close();
  EXPECT_EQ(ch.poll(out), QueuePoll::kItem);  // drain continues past close
  EXPECT_EQ(out.value(), 6);
  EXPECT_EQ(ch.poll(out), QueuePoll::kClosed);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(ch.poll(out), QueuePoll::kClosed);  // stable once signalled
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, ExecutesAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

// ---------------------------------------------------------------- token bucket

TEST(TokenBucket, BurstPassesWithoutDelay) {
  TokenBucket tb(mb_per_sec(100), 1_MiB, TokenBucket::Mode::kVirtual);
  EXPECT_DOUBLE_EQ(tb.acquire(512_KiB), 0.0);
}

TEST(TokenBucket, OverBurstAccruesDelay) {
  TokenBucket tb(mb_per_sec(100), 1_MiB, TokenBucket::Mode::kVirtual);
  tb.acquire(1_MiB);  // drain the bucket
  const Seconds wait = tb.acquire(100_MiB);
  EXPECT_NEAR(wait, 1.0, 0.05);  // 100 MiB at 100 MiB/s
  EXPECT_GE(tb.accrued_delay(), wait);
}

TEST(TokenBucket, DisabledWhenRateNonPositive) {
  TokenBucket tb(0.0, 0, TokenBucket::Mode::kVirtual);
  EXPECT_DOUBLE_EQ(tb.acquire(1_GiB), 0.0);
  EXPECT_DOUBLE_EQ(tb.accrued_delay(), 0.0);
}

TEST(TokenBucket, SequentialAcquiresAccumulate) {
  TokenBucket tb(mb_per_sec(10), 0, TokenBucket::Mode::kVirtual);
  Seconds total = 0;
  for (int i = 0; i < 5; ++i) total += tb.acquire(10_MiB);
  EXPECT_NEAR(total, 5.0, 0.1);
}

// ---------------------------------------------------------------- clock

TEST(Clock, WallClockNowIsMonotonic) {
  Clock& wc = wall_clock();
  const Seconds a = wc.now();
  const Seconds b = wc.now();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Clock, GlobalDefaultsToWallClock) {
  EXPECT_EQ(&clock(), &wall_clock());
}

TEST(Clock, ScopedOverrideInstallsAndRestores) {
  VirtualClock vc;
  {
    ScopedClockOverride override_clock(vc);
    EXPECT_EQ(&clock(), static_cast<Clock*>(&vc));
  }
  EXPECT_EQ(&clock(), &wall_clock());
}

TEST(VirtualClock, AdvanceByMovesNow) {
  VirtualClock vc;
  EXPECT_DOUBLE_EQ(vc.now(), 0.0);
  vc.advance_by(1.5);
  EXPECT_DOUBLE_EQ(vc.now(), 1.5);
  vc.advance_to(1.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(vc.now(), 1.5);
  vc.advance_to(3.0);
  EXPECT_DOUBLE_EQ(vc.now(), 3.0);
}

TEST(VirtualClock, SleepAutoAdvancesWithNoParticipants) {
  // With zero registered participants there is nobody to wait for: a timed
  // wait (or sleep) jumps virtual time straight to its deadline.
  VirtualClock vc;
  vc.sleep(2.0);
  EXPECT_DOUBLE_EQ(vc.now(), 2.0);
  vc.sleep(0.5);
  EXPECT_DOUBLE_EQ(vc.now(), 2.5);
}

TEST(VirtualClock, TimedWaitExpiresAtVirtualDeadline) {
  VirtualClock vc;
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock lock(mu);
  const bool pred = vc.timed_wait(cv, lock, 4.0, [] { return false; });
  EXPECT_FALSE(pred);  // expired, predicate still false
  EXPECT_DOUBLE_EQ(vc.now(), 4.0);
}

TEST(VirtualClock, ParticipantQuiescenceJumpsToEarliestDeadline) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> order{0};
  int first = 0;
  int second = 0;

  std::thread a;
  std::thread b;
  {
    // The main thread registers as a runnable participant so virtual time
    // holds still until BOTH waiters are armed, regardless of scheduling.
    ClockParticipant gate;
    a = std::thread([&] {
      ClockParticipant participant;
      std::unique_lock lock(mu);
      vc.timed_wait(cv, lock, 1.0, [] { return false; });
      first = ++order;
    });
    b = std::thread([&] {
      ClockParticipant participant;
      std::unique_lock lock(mu);
      vc.timed_wait(cv, lock, 5.0, [] { return false; });
      second = ++order;
    });
    while (vc.status().blocked < 2) std::this_thread::yield();
  }  // gate released: quiescent -> jump to 1.0 (wakes a), later to 5.0
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(vc.now(), 5.0);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
  EXPECT_GE(vc.status().advances, 2u);
}

TEST(VirtualClock, WakeAllDeliversPredicateWithoutTimePassing) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  bool pred_result = false;

  // Stay registered as a runnable participant: otherwise the lone blocked
  // waiter makes the clock quiescent and it jumps straight to 100.0.
  ClockParticipant gate;
  std::thread waiter([&] {
    ClockParticipant participant;
    std::unique_lock lock(mu);
    pred_result = vc.timed_wait(cv, lock, 100.0, [&] { return ready; });
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  {
    std::lock_guard lock(mu);
    ready = true;
  }
  vc.wake_all(cv);
  waiter.join();
  EXPECT_TRUE(pred_result);      // woke via the poke, not the deadline
  EXPECT_DOUBLE_EQ(vc.now(), 0.0);  // no virtual time passed
}

TEST(VirtualClock, UntimedWaitWakesOnPoke) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  std::thread waiter([&] {
    ClockParticipant participant;
    std::unique_lock lock(mu);
    vc.wait(cv, lock, [&] { return ready; });
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  {
    std::lock_guard lock(mu);
    ready = true;
  }
  vc.wake_one(cv);
  waiter.join();
  EXPECT_DOUBLE_EQ(vc.now(), 0.0);
}

TEST(VirtualClock, StatusReportsWaiters) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  std::thread waiter([&] {
    ClockParticipant participant;
    std::unique_lock lock(mu);
    vc.wait(cv, lock, [&] { return done; });
  });
  while (vc.status().blocked < 1) std::this_thread::yield();
  const Clock::Status st = vc.status();
  EXPECT_EQ(st.participants, 1u);
  EXPECT_EQ(st.blocked, 1u);
  {
    std::lock_guard lock(mu);
    done = true;
  }
  vc.wake_all(cv);
  waiter.join();
}

}  // namespace
}  // namespace dosas
