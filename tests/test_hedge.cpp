// Unit tests for the hedged-read machinery and the fan-out cancellation
// fixes:
//
//   * a hedge loser is cancelled, never merged, and never double-charged
//     (the link model charges exactly one leg's bytes),
//   * a failed fan-out leg cancels its still-outstanding siblings instead
//     of abandoning them on the storage nodes,
//   * a PendingReadEx dropped without wait() withdraws its legs and closes
//     the request's root span,
//   * the transport tracks per-target-node latency quantiles, excluding
//     cancelled completions (time-to-cancel must not make a straggler look
//     fast).
//
// The DST scenario in tests/dst/test_straggler.cpp proves the end-to-end
// latency/byte/determinism contract; these tests pin the mechanisms.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/active_client.hpp"
#include "common/clock.hpp"
#include "core/cluster.hpp"
#include "fault/fault.hpp"
#include "kernels/registry.hpp"
#include "kernels/sum.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/client.hpp"
#include "server/storage_server.hpp"

namespace dosas::client {
namespace {

double value_at(std::size_t i) { return static_cast<double>(i % 23); }

double expected_sum(std::size_t count) {
  double expect = 0.0;
  for (std::size_t i = 0; i < count; ++i) expect += value_at(i);
  return expect;
}

std::shared_ptr<fault::FaultInjector> stall_injector(const std::string& spec_text) {
  auto spec = fault::FaultSpec::parse(spec_text);
  EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
  return std::make_shared<fault::FaultInjector>(spec.value());
}

// ------------------------------------------------------------------ hedging

// The core hedge contract on a single stalled node: the local twin wins,
// the remote leg is cancelled (withdrawn server-side, excluded from the
// per-node quantiles), and the link model charges exactly the bytes of the
// winning path — a double charge or a double merge would break the
// equation / the arithmetic below.
TEST(Hedge, LoserIsCancelledAndNeverDoubleCharged) {
  constexpr std::size_t kCount = 8192;  // 64 KiB: one strip, one leg
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  {
    ClockParticipant me;

    core::ClusterConfig cfg;
    cfg.storage_nodes = 1;
    cfg.strip_size = 64_KiB;
    cfg.cores_per_node = 1;
    cfg.server_chunk_size = 16_KiB;
    cfg.client_chunk_size = 64_KiB;
    cfg.scheme = core::SchemeKind::kActive;
    cfg.optimizer_override = "all-active";
    cfg.network_rate = mb_per_sec(118.0);
    cfg.network_per_node = true;
    cfg.hedge_reads = true;
    cfg.hedge_min_samples = 1000;  // quantiles never warm: stay on the cold path
    cfg.hedge_cold_delay = 0.01;   // hedge a cold leg after 10ms
    core::Cluster cluster(cfg);

    auto meta = pfs::write_doubles(cluster.pfs_client(), "/hedge", kCount, value_at);
    ASSERT_TRUE(meta.is_ok());

    // Every kernel chunk stalls 200ms (virtual); the data path is NOT
    // faulted, so the hedge's local twin reads at full speed while the
    // remote kernel crawls.
    cluster.storage_server(0).set_fault_injector(
        stall_injector("seed=1,stall=1.0,stall_ms=200"));

    auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    auto sum = kernels::SumResult::decode(res.value());
    ASSERT_TRUE(sum.is_ok());
    EXPECT_DOUBLE_EQ(sum.value().sum, expected_sum(kCount));
    EXPECT_EQ(sum.value().count, kCount);

    // Drain: the cancelled kernel notices its interrupt at the next stall
    // slice; sleep past it so the counters below are quiescent.
    clock().sleep(2.0);

    const auto cs = cluster.asc().stats();
    const auto ts = cluster.asc().transport_stats();
    const auto ss = cluster.storage_server(0).stats();

    EXPECT_EQ(cs.hedges_fired, 1u);
    EXPECT_EQ(cs.hedges_won, 1u);
    EXPECT_EQ(cs.hedges_wasted, 0u);
    EXPECT_EQ(cs.completed_remote, 0u);

    // The loser was withdrawn, not abandoned: the cancel completes the
    // reply (submitted == completed, nothing in flight) and the server
    // counts the withdrawn waiter; its kernel never completes.
    EXPECT_EQ(ts.cancelled, 1u);
    EXPECT_EQ(ts.submitted, ts.completed);
    EXPECT_EQ(ts.inflight, 0u);
    EXPECT_EQ(ss.active_cancelled, 1u);
    EXPECT_EQ(ss.active_completed, 0u);

    // No double charge: a cancelled reply carries no payload, so the link
    // model charged exactly the twin's raw reads (and the zero result
    // bytes of a read with no remote completion).
    EXPECT_GT(cs.raw_bytes_read, 0u);
    EXPECT_EQ(ts.bytes_charged, cs.raw_bytes_read + cs.result_bytes_received);

    // The cancelled completion is excluded from the per-node quantiles:
    // its time-to-cancel would understate the straggler's true latency.
    EXPECT_EQ(cluster.asc().transport().node_latency(0).samples, 0u);
  }
}

// ------------------------------------------------------- fan-out bugfixes

// A failed leg must withdraw its siblings before propagating: server 0 has
// an EMPTY kernel registry (its leg fails kNotFound, a non-transient
// error), server 1 stalls mid-kernel — without the fix its leg would burn
// kernel time on a request nobody will merge.
TEST(Hedge, FailedLegCancelsSiblings) {
  server::ContentionEstimator::Config ce;
  ce.bandwidth = mb_per_sec(118.0);
  ce.optimizer = "all-active";
  server::StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 16_KiB;

  constexpr std::size_t kCount = 16384;  // 128 KiB across two 64 KiB strips
  pfs::FileSystem fs(2, 64_KiB);
  pfs::Client pfs_client(fs);
  auto meta = pfs::write_doubles(pfs_client, "/striped", kCount, value_at);
  ASSERT_TRUE(meta.is_ok());

  server::StorageServer broken(fs, 0, kernels::Registry{}, ce,
                               server::RateTable::paper_rates(), sc);
  server::StorageServer stalled(fs, 1, kernels::Registry::with_builtins(), ce,
                                server::RateTable::paper_rates(), sc);
  stalled.set_fault_injector(stall_injector("seed=1,stall=1.0,stall_ms=100"));

  kernels::Registry registry = kernels::Registry::with_builtins();
  ActiveClient asc(pfs_client, registry, {&broken, &stalled});

  auto res = asc.read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kNotFound);

  // The sibling on the stalled node was withdrawn the moment leg 0's
  // failure propagated: cancelled at the transport, counted by the server,
  // nothing left in flight.
  const auto ts = asc.transport_stats();
  EXPECT_EQ(ts.cancelled, 1u);
  EXPECT_EQ(ts.submitted, ts.completed);
  EXPECT_EQ(ts.inflight, 0u);
  EXPECT_EQ(stalled.stats().active_cancelled, 1u);
  EXPECT_EQ(stalled.stats().active_completed, 0u);
}

// Dropping an unawaited PendingReadEx must not leak: both legs are
// cancelled (queued server work never starts, running work is interrupted)
// and the request's root span is closed as if the read had completed.
TEST(Hedge, AbandonedPendingReadCancelsLegsAndClosesRootSpan) {
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(true);

  constexpr std::size_t kCount = 16384;
  core::ClusterConfig cfg;
  cfg.storage_nodes = 2;
  cfg.strip_size = 64_KiB;
  cfg.cores_per_node = 1;
  cfg.server_chunk_size = 16_KiB;
  cfg.scheme = core::SchemeKind::kActive;
  cfg.optimizer_override = "all-active";
  cfg.faults = stall_injector("seed=1,stall=1.0,stall_ms=100");
  core::Cluster cluster(cfg);

  auto meta = pfs::write_doubles(cluster.pfs_client(), "/dropped", kCount, value_at);
  ASSERT_TRUE(meta.is_ok());

  {
    auto pending = cluster.asc().read_ex_async(meta.value(), 0, meta.value().size, "sum");
    // Dropped without wait().
  }

  const auto ts = cluster.asc().transport_stats();
  EXPECT_EQ(ts.cancelled, 2u);
  EXPECT_EQ(ts.submitted, ts.completed);
  EXPECT_EQ(ts.inflight, 0u);
  std::uint64_t withdrawn = 0;
  for (std::uint32_t i = 0; i < 2; ++i) {
    withdrawn += cluster.storage_server(i).stats().active_cancelled;
  }
  EXPECT_EQ(withdrawn, 2u);

  // The causal tree has a root: the "client.read_ex" complete span was
  // emitted by the destructor, exactly as wait() would have.
  bool root_closed = false;
  for (const auto& e : obs::Tracer::global().snapshot()) {
    if (e.name == "client.read_ex") root_closed = true;
  }
  EXPECT_TRUE(root_closed);

  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
}

// ------------------------------------------------------ per-node latency

TEST(Hedge, NodeLatencyIsTrackedPerTarget) {
  obs::MetricsRegistry::global().clear();
  obs::MetricsRegistry::global().set_enabled(true);

  constexpr std::size_t kCount = 16384;
  core::ClusterConfig cfg;
  cfg.storage_nodes = 2;
  cfg.strip_size = 64_KiB;
  cfg.cores_per_node = 1;
  cfg.scheme = core::SchemeKind::kActive;
  cfg.optimizer_override = "all-active";
  core::Cluster cluster(cfg);

  auto meta = pfs::write_doubles(cluster.pfs_client(), "/latency", kCount, value_at);
  ASSERT_TRUE(meta.is_ok());

  constexpr std::size_t kReads = 10;
  for (std::size_t r = 0; r < kReads; ++r) {
    auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  }

  // Every striped read put one genuine active completion on each node.
  for (std::uint32_t node = 0; node < 2; ++node) {
    const auto nl = cluster.asc().transport().node_latency(node);
    EXPECT_EQ(nl.samples, kReads) << "node " << node;
    EXPECT_GE(nl.p99_us, nl.p50_us) << "node " << node;
  }
  // Unknown targets read as empty, not as an error.
  const auto none = cluster.asc().transport().node_latency(99);
  EXPECT_EQ(none.samples, 0u);
  EXPECT_EQ(none.p50_us, 0.0);

  // The same signal is exported as per-node metrics series.
  const std::string text = obs::MetricsRegistry::global().to_text();
  EXPECT_NE(text.find("rpc.node_latency_us.0"), std::string::npos);
  EXPECT_NE(text.find("rpc.node_latency_us.1"), std::string::npos);

  obs::MetricsRegistry::global().set_enabled(false);
  obs::MetricsRegistry::global().clear();
}

}  // namespace
}  // namespace dosas::client
