// Tests for the real runtime's network accounting (shared TokenBucket):
// bytes are charged where they cross the link, and the accrued virtual
// delay reflects the scheme's data movement.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "kernels/sum.hpp"

namespace dosas::core {
namespace {

std::unique_ptr<Cluster> make(SchemeKind scheme, BytesPerSec rate) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.network_rate = rate;
  auto cluster = std::make_unique<Cluster>(cfg);
  auto meta = pfs::write_doubles(cluster->pfs_client(), "/data", 2'000'000,  // ~15 MiB
                                 [](std::size_t i) { return static_cast<double>(i % 3); });
  EXPECT_TRUE(meta.is_ok());
  return cluster;
}

TEST(NetworkAccounting, DisabledByDefault) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EXPECT_DOUBLE_EQ(cluster.network_delay(), 0.0);
}

TEST(NetworkAccounting, ActiveMovesAlmostNothing) {
  auto cluster = make(SchemeKind::kActive, mb_per_sec(118.0));
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_TRUE(out.is_ok());
  // Only the 16-byte result was charged: under the 1 MiB burst, zero delay.
  EXPECT_DOUBLE_EQ(cluster->network_delay(), 0.0);
}

TEST(NetworkAccounting, DemotionChargesTheRawData) {
  auto cluster = make(SchemeKind::kTraditional, mb_per_sec(118.0));
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  auto out = cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
  ASSERT_TRUE(out.is_ok());
  // ~15.3 MiB at 118 MiB/s minus the 1 MiB burst: ~0.12 s of modeled delay.
  const double expect = (to_mib(meta.value().size) - 1.0) / 118.0;
  EXPECT_NEAR(cluster->network_delay(), expect, 0.02);
}

TEST(NetworkAccounting, SchemesOrderByBytesMoved) {
  Seconds ts_delay = 0, as_delay = 0;
  {
    auto cluster = make(SchemeKind::kTraditional, mb_per_sec(118.0));
    auto meta = cluster->pfs_client().open("/data");
    ASSERT_TRUE(meta.is_ok());
    (void)cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
    ts_delay = cluster->network_delay();
  }
  {
    auto cluster = make(SchemeKind::kActive, mb_per_sec(118.0));
    auto meta = cluster->pfs_client().open("/data");
    ASSERT_TRUE(meta.is_ok());
    (void)cluster->asc().read_ex(meta.value(), 0, meta.value().size, "sum");
    as_delay = cluster->network_delay();
  }
  EXPECT_GT(ts_delay, as_delay);
}

TEST(NetworkAccounting, NormalReadsAreCharged) {
  auto cluster = make(SchemeKind::kDosas, mb_per_sec(10.0));  // slow link
  auto meta = cluster->pfs_client().open("/data");
  ASSERT_TRUE(meta.is_ok());
  (void)cluster->asc().read(meta.value(), 0, meta.value().size);
  EXPECT_GT(cluster->network_delay(), 1.0);  // ~15 MiB at 10 MiB/s
}

}  // namespace
}  // namespace dosas::core
