// Tests for dosas::server — contention estimator behaviour and the
// storage server's active-I/O runtime (completion, rejection at arrival,
// interruption of running kernels, normal I/O service).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "kernels/sum.hpp"
#include "pfs/client.hpp"
#include "server/storage_server.hpp"

namespace dosas::server {
namespace {

kernels::Registry builtins() { return kernels::Registry::with_builtins(); }

ContentionEstimator::Config ce_config(const std::string& optimizer = "exhaustive") {
  ContentionEstimator::Config c;
  c.bandwidth = mb_per_sec(118.0);
  c.optimizer = optimizer;
  c.derate_by_external_load = false;  // deterministic unless a test opts in
  return c;
}

/// A cluster-less single server over a 1-server volume with `count`
/// doubles written to "/data".
struct Fixture {
  explicit Fixture(std::size_t count = 4096, const std::string& optimizer = "exhaustive",
                   StorageServer::Config sc = {})
      : fs(1, 64_KiB), client(fs) {
    auto m = pfs::write_doubles(client, "/data", count,
                                [](std::size_t i) { return static_cast<double>(i % 97); });
    EXPECT_TRUE(m.is_ok());
    meta = m.value();
    server = std::make_unique<StorageServer>(fs, 0, builtins(), ce_config(optimizer),
                                             RateTable::paper_rates(), sc);
  }

  pfs::FileSystem fs;
  pfs::Client client;
  pfs::FileMeta meta;
  std::unique_ptr<StorageServer> server;
};

// ---------------------------------------------------------------- rate table

TEST(RateTable, PaperRatesPresent) {
  const auto t = RateTable::paper_rates();
  ASSERT_TRUE(t.contains("sum"));
  ASSERT_TRUE(t.contains("gaussian2d"));
  EXPECT_DOUBLE_EQ(t.get("sum").value().storage_max, mb_per_sec(860.0));
  EXPECT_DOUBLE_EQ(t.get("gaussian2d").value().compute, mb_per_sec(80.0));
}

TEST(RateTable, UnknownOpIsNotFound) {
  const auto t = RateTable::paper_rates();
  EXPECT_EQ(t.get("fft").status().code(), ErrorCode::kNotFound);
}

// ---------------------------------------------------------------- estimator

TEST(ContentionEstimator, ModelUsesTableRates) {
  ContentionEstimator ce(ce_config(), RateTable::paper_rates());
  auto m = ce.model_for("gaussian2d");
  ASSERT_TRUE(m.is_ok());
  EXPECT_DOUBLE_EQ(m.value().storage_rate, mb_per_sec(80.0));
  EXPECT_DOUBLE_EQ(m.value().compute_rate, mb_per_sec(80.0));
  EXPECT_DOUBLE_EQ(m.value().bandwidth, mb_per_sec(118.0));
}

TEST(ContentionEstimator, UnknownOpModelFails) {
  ContentionEstimator ce(ce_config(), RateTable::paper_rates());
  EXPECT_FALSE(ce.model_for("fft").is_ok());
}

TEST(ContentionEstimator, ExternalLoadDeratesStorageRate) {
  auto cfg = ce_config();
  cfg.derate_by_external_load = true;
  cfg.ewma_alpha = 1.0;  // no smoothing: take the probe at face value
  ContentionEstimator ce(cfg, RateTable::paper_rates());

  SystemStatus busy;
  busy.cpu_utilization = 0.5;
  ce.observe(busy);
  auto m = ce.model_for("gaussian2d");
  ASSERT_TRUE(m.is_ok());
  EXPECT_DOUBLE_EQ(m.value().storage_rate, mb_per_sec(40.0));
}

TEST(ContentionEstimator, SmoothingBlendsProbes) {
  auto cfg = ce_config();
  cfg.ewma_alpha = 0.5;
  ContentionEstimator ce(cfg, RateTable::paper_rates());
  SystemStatus s;
  s.cpu_utilization = 0.0;
  ce.observe(s);
  s.cpu_utilization = 1.0;
  ce.observe(s);
  EXPECT_DOUBLE_EQ(ce.smoothed().cpu_utilization, 0.5);
}

TEST(ContentionEstimator, ScheduleSmallQueueStaysActive) {
  ContentionEstimator ce(ce_config(), RateTable::paper_rates());
  std::vector<sched::ActiveRequest> reqs = {{1, 128_MiB, 40, "gaussian2d"}};
  auto p = ce.schedule("gaussian2d", reqs);
  ASSERT_TRUE(p.is_ok());
  EXPECT_TRUE(p.value().active[0]);
  EXPECT_EQ(ce.decisions(), 1u);
}

TEST(ContentionEstimator, ScheduleLargeQueueDemotesMost) {
  ContentionEstimator ce(ce_config(), RateTable::paper_rates());
  std::vector<sched::ActiveRequest> reqs(32, {0, 128_MiB, 40, "gaussian2d"});
  for (std::size_t i = 0; i < reqs.size(); ++i) reqs[i].id = i + 1;
  auto p = ce.schedule("gaussian2d", reqs);
  ASSERT_TRUE(p.is_ok());
  EXPECT_LT(p.value().active_count(), 8u);
}

TEST(ContentionEstimator, SumQueueAlwaysActive) {
  ContentionEstimator ce(ce_config(), RateTable::paper_rates());
  std::vector<sched::ActiveRequest> reqs(64, {0, 128_MiB, 16, "sum"});
  for (std::size_t i = 0; i < reqs.size(); ++i) reqs[i].id = i + 1;
  auto p = ce.schedule("sum", reqs);
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().active_count(), 64u);
}

// ---------------------------------------------------------------- storage server

TEST(StorageServer, ActiveSumCompletesWithCorrectResult) {
  Fixture fx(10'000);
  ActiveIoRequest req;
  req.handle = fx.meta.handle;
  req.object_offset = 0;
  req.length = fx.meta.size;
  req.operation = "sum";
  auto resp = fx.server->serve_active(req);
  ASSERT_EQ(resp.outcome, ActiveOutcome::kCompleted) << resp.status.to_string();

  auto sum = kernels::SumResult::decode(resp.result);
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 10'000u);
  double expect = 0;
  for (std::size_t i = 0; i < 10'000; ++i) expect += static_cast<double>(i % 97);
  EXPECT_NEAR(sum.value().sum, expect, 1e-6);
  EXPECT_EQ(fx.server->stats().active_completed, 1u);
}

TEST(StorageServer, SubRangeActiveRequest) {
  Fixture fx(1'000);
  ActiveIoRequest req;
  req.handle = fx.meta.handle;
  req.object_offset = 100 * sizeof(double);
  req.length = 50 * sizeof(double);
  req.operation = "sum";
  auto resp = fx.server->serve_active(req);
  ASSERT_EQ(resp.outcome, ActiveOutcome::kCompleted);
  auto sum = kernels::SumResult::decode(resp.result);
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 50u);
}

TEST(StorageServer, UnknownKernelFails) {
  Fixture fx(100);
  ActiveIoRequest req;
  req.handle = fx.meta.handle;
  req.length = fx.meta.size;
  req.operation = "fft";
  auto resp = fx.server->serve_active(req);
  EXPECT_EQ(resp.outcome, ActiveOutcome::kFailed);
  EXPECT_EQ(resp.status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(fx.server->stats().active_failed, 1u);
}

TEST(StorageServer, UnknownHandleFails) {
  Fixture fx(100);
  ActiveIoRequest req;
  req.handle = 999;
  req.length = 800;
  req.operation = "sum";
  auto resp = fx.server->serve_active(req);
  EXPECT_EQ(resp.outcome, ActiveOutcome::kFailed);
}

TEST(StorageServer, AllNormalPolicyRejectsEverything) {
  Fixture fx(1'000, "all-normal");
  ActiveIoRequest req;
  req.handle = fx.meta.handle;
  req.length = fx.meta.size;
  req.operation = "sum";
  auto resp = fx.server->serve_active(req);
  EXPECT_EQ(resp.outcome, ActiveOutcome::kRejected);
  EXPECT_EQ(resp.status.code(), ErrorCode::kRejected);
  EXPECT_EQ(fx.server->stats().active_rejected, 1u);
}

TEST(StorageServer, AllActivePolicyNeverRejects) {
  Fixture fx(1'000, "all-active");
  for (int i = 0; i < 4; ++i) {
    ActiveIoRequest req;
    req.handle = fx.meta.handle;
    req.length = fx.meta.size;
    req.operation = "gaussian2d:width=16";
    auto resp = fx.server->serve_active(req);
    EXPECT_EQ(resp.outcome, ActiveOutcome::kCompleted);
  }
  EXPECT_EQ(fx.server->stats().active_completed, 4u);
}

TEST(StorageServer, ServeNormalReadsObjectBytes) {
  Fixture fx(1'000);
  auto data = fx.server->serve_normal(fx.meta.handle, 0, 80);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 80u);
  double first;
  std::memcpy(&first, data.value().data(), sizeof(double));
  EXPECT_DOUBLE_EQ(first, 0.0);
  EXPECT_EQ(fx.server->stats().normal_bytes_served, 80u);
  EXPECT_EQ(fx.server->stats().normal_requests, 1u);
}

TEST(StorageServer, GaussianQueueGetsDemotedUnderLoad) {
  // 8 concurrent Gaussian requests on one node: the DOSAS policy must
  // reject most of them (the paper's demotion behaviour), yet every call
  // returns a usable outcome.
  StorageServer::Config sc;
  sc.cores = 2;
  sc.chunk_size = 16_KiB;  // frequent interrupt checks
  // 8 MiB of doubles: kernels run for milliseconds, so the queue really
  // builds up while later clients arrive (the decision itself only depends
  // on the configured rates, not on this host's speed).
  Fixture fx(512 * 2048, "exhaustive", sc);

  constexpr int kClients = 8;
  std::vector<ActiveIoResponse> resp(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ActiveIoRequest req;
      req.handle = fx.meta.handle;
      req.length = fx.meta.size;
      req.operation = "gaussian2d:width=2048";
      resp[static_cast<std::size_t>(i)] = fx.server->serve_active(req);
    });
  }
  for (auto& t : threads) t.join();

  int completed = 0, rejected = 0, interrupted = 0;
  for (const auto& r : resp) {
    switch (r.outcome) {
      case ActiveOutcome::kCompleted: ++completed; break;
      case ActiveOutcome::kRejected: ++rejected; break;
      case ActiveOutcome::kInterrupted: ++interrupted; break;
      case ActiveOutcome::kFailed: FAIL() << r.status.to_string();
    }
  }
  EXPECT_EQ(completed + rejected + interrupted, kClients);
  EXPECT_GT(rejected + interrupted, 0) << "policy should demote under an 8-deep queue";
  EXPECT_EQ(fx.server->inflight(), 0u);
}

TEST(StorageServer, InterruptedResponseCarriesUsableCheckpoint) {
  // Force interruption deterministically: start one long sum with the
  // all-active policy (so it is admitted), then flip to rejection via a
  // probe after manually demoting: we emulate the CE flip by issuing a
  // second request under an exhaustive policy... Instead, drive the
  // interrupt path directly through a tiny pool and a policy that demotes
  // when the queue deepens.
  StorageServer::Config sc;
  sc.cores = 1;
  sc.chunk_size = 8_KiB;
  // 16 MiB of doubles: each kernel runs for tens of milliseconds so the
  // queue reliably deepens past the demotion threshold while later
  // requests arrive.
  Fixture fx(2 * 1024 * 1024, "exhaustive", sc);

  // First request occupies the single core; more arrivals make the
  // optimizer demote (gaussian is expensive), interrupting the runner.
  // Async submissions from one thread replace the old wall-clock stagger:
  // each per-arrival policy evaluation sees the queue one deeper.
  std::vector<ActiveIoResponse> resp(6);
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    ActiveIoRequest req;
    req.handle = fx.meta.handle;
    req.length = fx.meta.size;
    req.operation = "gaussian2d:width=256";
    fx.server->submit_active(std::move(req), [&, i](ActiveIoResponse r) {
      std::lock_guard lock(done_mu);
      resp[static_cast<std::size_t>(i)] = std::move(r);
      ++done;
      clock().wake_all(done_cv);
    });
  }
  {
    std::unique_lock lock(done_mu);
    clock().wait(done_cv, lock, [&] { return done == 6; });
  }

  bool saw_interrupt_or_reject = false;
  for (const auto& r : resp) {
    if (r.outcome == ActiveOutcome::kInterrupted) {
      saw_interrupt_or_reject = true;
      // The checkpoint must decode and identify the kernel.
      auto ck = Checkpoint::decode(r.checkpoint);
      ASSERT_TRUE(ck.is_ok());
      EXPECT_EQ(ck.value().get_string("kernel"), "gaussian2d");
      EXPECT_LE(r.resume_offset, fx.meta.size);
    }
    if (r.outcome == ActiveOutcome::kRejected) saw_interrupt_or_reject = true;
  }
  EXPECT_TRUE(saw_interrupt_or_reject);
}

TEST(StorageServer, ProbeFeedsEstimator) {
  Fixture fx(100);
  fx.server->probe();
  // No crash, and the CE has observed at least one (idle) sample.
  EXPECT_DOUBLE_EQ(fx.server->estimator().smoothed().cpu_utilization, 0.0);
}

TEST(StorageServer, StatsCountBytesProcessed) {
  Fixture fx(10'000, "all-active");
  ActiveIoRequest req;
  req.handle = fx.meta.handle;
  req.length = fx.meta.size;
  req.operation = "sum";
  (void)fx.server->serve_active(req);
  EXPECT_EQ(fx.server->stats().active_bytes_processed, fx.meta.size);
}

TEST(StorageServer, ShortObjectEndsCleanly) {
  // Request length exceeding the object: the kernel consumes what exists.
  Fixture fx(100, "all-active");
  ActiveIoRequest req;
  req.handle = fx.meta.handle;
  req.length = fx.meta.size + 4096;
  req.operation = "sum";
  auto resp = fx.server->serve_active(req);
  ASSERT_EQ(resp.outcome, ActiveOutcome::kCompleted);
  auto sum = kernels::SumResult::decode(resp.result);
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 100u);
}

TEST(StorageServer, ConcurrentSumsAllComplete) {
  Fixture fx(50'000, "all-active");
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      ActiveIoRequest req;
      req.handle = fx.meta.handle;
      req.length = fx.meta.size;
      req.operation = "sum";
      auto resp = fx.server->serve_active(req);
      if (resp.outcome == ActiveOutcome::kCompleted) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

}  // namespace
}  // namespace dosas::server
