// Tests for the batch/collective active-read path: one CE decision per
// node per batch, positional result alignment, mixed outcomes, and the
// churn comparison against sequential arrivals.
#include <gtest/gtest.h>

#include <cstring>

#include "client/mpiio.hpp"
#include "core/cluster.hpp"
#include "kernels/gaussian2d.hpp"
#include "kernels/sum.hpp"

namespace dosas::client {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SchemeKind;

struct Fixture {
  explicit Fixture(SchemeKind scheme, std::size_t files, std::size_t count,
                   std::uint32_t nodes = 1) {
    ClusterConfig cfg;
    cfg.scheme = scheme;
    cfg.storage_nodes = nodes;
    cfg.server_chunk_size = 64_KiB;
    cluster = std::make_unique<Cluster>(cfg);
    for (std::size_t f = 0; f < files; ++f) {
      auto meta =
          pfs::write_doubles(cluster->pfs_client(), "/b" + std::to_string(f), count,
                             [f](std::size_t i) { return static_cast<double>((i + f) % 13); });
      EXPECT_TRUE(meta.is_ok());
      metas.push_back(meta.value());
    }
  }

  double expected_sum(std::size_t f, std::size_t count) const {
    double s = 0;
    for (std::size_t i = 0; i < count; ++i) s += static_cast<double>((i + f) % 13);
    return s;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<pfs::FileMeta> metas;
};

TEST(BatchReadEx, AllSumsCorrectAndAligned) {
  constexpr std::size_t kFiles = 6, kCount = 20'000;
  Fixture fx(SchemeKind::kDosas, kFiles, kCount);

  std::vector<ActiveClient::BatchItem> items;
  for (std::size_t f = 0; f < kFiles; ++f) {
    items.push_back({fx.metas[f], 0, fx.metas[f].size, "sum"});
  }
  auto results = fx.cluster->asc().read_ex_batch(items);
  ASSERT_EQ(results.size(), kFiles);
  for (std::size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(results[f].is_ok()) << f;
    auto sum = kernels::SumResult::decode(results[f].value());
    ASSERT_TRUE(sum.is_ok());
    EXPECT_EQ(sum.value().count, kCount);
    EXPECT_NEAR(sum.value().sum, fx.expected_sum(f, kCount), 1e-6) << f;
  }
}

TEST(BatchReadEx, SingleCeDecisionPerNode) {
  // 6 requests in a batch against one node: the CE must decide exactly
  // once (versus 6 times for sequential arrivals).
  constexpr std::size_t kFiles = 6;
  Fixture fx(SchemeKind::kDosas, kFiles, 10'000);
  const auto before = fx.cluster->storage_server(0).estimator().decisions();

  std::vector<ActiveClient::BatchItem> items;
  for (std::size_t f = 0; f < kFiles; ++f) {
    items.push_back({fx.metas[f], 0, fx.metas[f].size, "sum"});
  }
  (void)fx.cluster->asc().read_ex_batch(items);
  EXPECT_EQ(fx.cluster->storage_server(0).estimator().decisions(), before + 1);
}

TEST(BatchReadEx, GaussianBatchDemotesWithoutChurn) {
  // 8 expensive Gaussians in one batch: the single decision demotes most
  // of them at arrival — NO kernel should be admitted and then
  // interrupted (that is the churn the batch API exists to avoid).
  constexpr std::size_t kFiles = 8;
  constexpr std::size_t kCount = 64 * 2048;  // 1 MiB each
  Fixture fx(SchemeKind::kDosas, kFiles, kCount);

  std::vector<ActiveClient::BatchItem> items;
  for (std::size_t f = 0; f < kFiles; ++f) {
    items.push_back({fx.metas[f], 0, fx.metas[f].size, "gaussian2d:width=64"});
  }
  auto results = fx.cluster->asc().read_ex_batch(items);
  for (std::size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(results[f].is_ok()) << f;
  }
  const auto ss = fx.cluster->storage_server(0).stats();
  EXPECT_EQ(ss.active_interrupted, 0u) << "batch admission must not churn";
  EXPECT_GT(ss.active_rejected, 0u) << "an 8-deep Gaussian batch must demote";

  // Results still match the sequential reference.
  for (std::size_t f = 0; f < kFiles; ++f) {
    auto raw = fx.cluster->pfs_client().read_all(fx.metas[f]);
    ASSERT_TRUE(raw.is_ok());
    kernels::Gaussian2dKernel ref(64);
    ref.consume(raw.value());
    EXPECT_EQ(results[f].value(), ref.finalize()) << f;
  }
}

TEST(BatchReadEx, MixedValidAndInvalidItems) {
  Fixture fx(SchemeKind::kDosas, 2, 5'000);
  std::vector<ActiveClient::BatchItem> items;
  items.push_back({fx.metas[0], 0, fx.metas[0].size, "sum"});
  items.push_back({fx.metas[1], 0, fx.metas[1].size, "fft"});  // unknown kernel
  auto results = fx.cluster->asc().read_ex_batch(items);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].is_ok());
  ASSERT_FALSE(results[1].is_ok());
  EXPECT_EQ(results[1].status().code(), ErrorCode::kNotFound);
}

TEST(BatchReadEx, EmptyExtentYieldsEmptyKernelResult) {
  Fixture fx(SchemeKind::kDosas, 1, 1'000);
  std::vector<ActiveClient::BatchItem> items;
  items.push_back({fx.metas[0], fx.metas[0].size + 10, 100, "sum"});  // past EOF
  auto results = fx.cluster->asc().read_ex_batch(items);
  ASSERT_TRUE(results[0].is_ok());
  auto sum = kernels::SumResult::decode(results[0].value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 0u);
}

TEST(BatchReadEx, StripedItemsFallBackToIndividualPath) {
  Fixture fx(SchemeKind::kActive, 1, 50'000, /*nodes=*/4);
  std::vector<ActiveClient::BatchItem> items;
  items.push_back({fx.metas[0], 0, fx.metas[0].size, "sum"});
  auto results = fx.cluster->asc().read_ex_batch(items);
  ASSERT_TRUE(results[0].is_ok());
  auto sum = kernels::SumResult::decode(results[0].value());
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().count, 50'000u);
  EXPECT_EQ(fx.cluster->asc().stats().striped_fanouts, 1u);
}

TEST(BatchReadEx, BatchAcrossMultipleNodesGroupsPerNode) {
  // Files pinned to two different nodes: one batch submission per node.
  ClusterConfig cfg;
  cfg.scheme = SchemeKind::kDosas;
  cfg.storage_nodes = 2;
  Cluster cluster(cfg);
  std::vector<pfs::FileMeta> metas;
  for (std::uint32_t n = 0; n < 2; ++n) {
    pfs::StripingParams striping;
    striping.strip_size = 64_KiB;
    striping.server_count = 1;
    striping.base_server = n;
    auto meta = cluster.pfs_client().create("/n" + std::to_string(n), striping);
    ASSERT_TRUE(meta.is_ok());
    std::vector<double> vals(5000, 2.0);
    auto written = cluster.pfs_client().write(
        meta.value(), 0,
        std::span(reinterpret_cast<const std::uint8_t*>(vals.data()), vals.size() * 8));
    ASSERT_TRUE(written.is_ok());
    metas.push_back(written.value());
  }

  std::vector<ActiveClient::BatchItem> items;
  items.push_back({metas[0], 0, metas[0].size, "sum"});
  items.push_back({metas[1], 0, metas[1].size, "sum"});
  auto results = cluster.asc().read_ex_batch(items);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].is_ok());
    auto sum = kernels::SumResult::decode(results[static_cast<std::size_t>(i)].value());
    ASSERT_TRUE(sum.is_ok());
    EXPECT_DOUBLE_EQ(sum.value().sum, 10'000.0);
  }
  EXPECT_EQ(cluster.storage_server(0).estimator().decisions(), 1u);
  EXPECT_EQ(cluster.storage_server(1).estimator().decisions(), 1u);
}

// ---------------------------------------------------------------- mpiio collective

TEST(MpiIoCollective, ReadExAllAdvancesEveryPointer) {
  constexpr std::size_t kFiles = 4, kCount = 8'000;
  Fixture fx(SchemeKind::kDosas, kFiles, kCount);

  std::vector<mpiio::File> fhs(kFiles);
  std::vector<mpiio::File*> ptrs;
  for (std::size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/b" + std::to_string(f), fhs[f]).is_ok());
    ptrs.push_back(&fhs[f]);
  }
  std::vector<mpiio::ResultBuf> results;
  ASSERT_TRUE(mpiio::file_read_ex_all(ptrs, results,
                                      std::vector<std::size_t>(kFiles, kCount), mpiio::kDouble,
                                      "sum")
                  .is_ok());
  ASSERT_EQ(results.size(), kFiles);
  for (std::size_t f = 0; f < kFiles; ++f) {
    EXPECT_TRUE(results[f].completed);
    EXPECT_EQ(fhs[f].position, kCount * sizeof(double));
    auto sum = kernels::SumResult::decode(results[f].buf);
    ASSERT_TRUE(sum.is_ok());
    EXPECT_NEAR(sum.value().sum, fx.expected_sum(f, kCount), 1e-6);
  }
}

TEST(MpiIoCollective, RejectsMismatchedSizes) {
  Fixture fx(SchemeKind::kDosas, 1, 100);
  mpiio::File fh;
  ASSERT_TRUE(mpiio::file_open(fx.cluster->asc(), "/b0", fh).is_ok());
  std::vector<mpiio::ResultBuf> results;
  EXPECT_FALSE(mpiio::file_read_ex_all({&fh}, results, {1, 2}, 8, "sum").is_ok());
}

TEST(MpiIoCollective, RejectsClosedFile) {
  Fixture fx(SchemeKind::kDosas, 1, 100);
  mpiio::File closed;
  std::vector<mpiio::ResultBuf> results;
  EXPECT_FALSE(mpiio::file_read_ex_all({&closed}, results, {1}, 8, "sum").is_ok());
}

TEST(MpiIoCollective, EmptyBatchIsOk) {
  std::vector<mpiio::ResultBuf> results;
  EXPECT_TRUE(mpiio::file_read_ex_all({}, results, {}, 8, "sum").is_ok());
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace dosas::client
