// Deterministic simulation tests (DST): the full real runtime — ASC,
// transport chain, storage servers, worker pools, probe timers, deadline
// watchdog, fault injection, retries — executed under a VirtualClock with a
// seeded fault spec, twice, asserting bit-identical outcomes.
//
// Two scenario shapes:
//
//   * serialized — one storage node, one core, one application thread
//     issuing requests sequentially. Everything that can race is
//     serialized by the virtual clock's quiescence rule, so the ENTIRE
//     observable state is compared: kernel results, every counter, the
//     full metrics text snapshot, the canonical trace projection, the
//     final virtual time and advance count.
//
//   * striped — four storage nodes, striped files, pipelined async reads
//     (read_ex_async) fanned out from one application thread, with
//     injected kernel throws, stragglers, and network loss recovered by
//     the retry interceptor. Real threads compute concurrently, so
//     order-sensitive aggregates (P2 quantiles, trace buffer order, tids)
//     are excluded; results, counter totals, the sorted trace projection,
//     and the virtual timeline are still bit-identical.
//
// A third test asserts the economic point of virtual time: a scenario
// whose injected delays span seconds of virtual time completes an order
// of magnitude faster in physical time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/cluster.hpp"
#include "core/runner.hpp"
#include "fault/fault.hpp"
#include "kernels/sum.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/client.hpp"

namespace dosas::core {
namespace {

// Sorted canonical projection of the trace buffer: every field except tid
// (assigned per-thread in registration order, which legitimately races)
// and buffer position (emission order races at completion edges).
// Timestamps and durations are VIRTUAL time, so they are part of the
// determinism contract — and so are the causal ids: root trace ids are
// allocated in the single app thread's issue order and every child span id
// is derived by hashing, so the full id triple must reproduce bit-exactly.
std::string canonical_trace() {
  std::vector<std::string> lines;
  for (const auto& e : obs::Tracer::global().snapshot()) {
    std::ostringstream os;
    os << e.name << '|' << e.cat << '|' << e.ph << '|' << e.pid << '|' << std::fixed
       << std::setprecision(3) << e.ts_us << '|' << e.dur_us << '|' << e.value << '|'
       << e.trace_id << '|' << e.span_id << '|' << e.parent_span_id;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const auto& l : lines) os << l << '\n';
  return os.str();
}

void append_common_counters(std::ostringstream& fp, Cluster& cluster, const VirtualClock& vc) {
  const auto cs = cluster.asc().stats();
  fp << "client reads_ex=" << cs.reads_ex << " completed_remote=" << cs.completed_remote
     << " demoted=" << cs.demoted << " resumed_local=" << cs.resumed_local
     << " local_kernel_runs=" << cs.local_kernel_runs << " striped_fanouts=" << cs.striped_fanouts
     << " failed_remote_retries=" << cs.failed_remote_retries
     << " remote_retries=" << cs.remote_retries << " exhausted=" << cs.exhausted_retries
     << " timed_out=" << cs.timed_out << " raw_bytes=" << cs.raw_bytes_read
     << " result_bytes=" << cs.result_bytes_received << '\n';
  for (std::uint32_t i = 0; i < cluster.storage_node_count(); ++i) {
    const auto ss = cluster.storage_server(i).stats();
    fp << "server" << i << " completed=" << ss.active_completed
       << " rejected=" << ss.active_rejected << " interrupted=" << ss.active_interrupted
       << " failed=" << ss.active_failed << " bytes=" << ss.active_bytes_processed
       << " kernel_exceptions=" << ss.kernel_exceptions << " probe_ticks=" << ss.probe_ticks
       << '\n';
  }
  if (cluster.fault_injector() != nullptr) {
    const auto fs = cluster.fault_injector()->stats();
    fp << "faults read=" << fs.read_faults << " throws=" << fs.kernel_throws
       << " ckpt=" << fs.checkpoints_corrupted << " net=" << fs.net_errors
       << " stalls=" << fs.stalls << " crash_rej=" << fs.crash_rejections << '\n';
  }
  const auto ts = cluster.asc().transport_stats();
  fp << "transport submitted=" << ts.submitted << " completed=" << ts.completed
     << " cancelled=" << ts.cancelled << " timed_out=" << ts.timed_out
     << " retries=" << ts.retries << " retries_exhausted=" << ts.retries_exhausted
     << " net_faults=" << ts.net_faults_injected << '\n';
  const auto st = vc.status();
  fp << "clock now=" << std::fixed << std::setprecision(9) << st.now
     << " advances=" << st.advances << '\n';
}

struct ScenarioOutput {
  std::vector<std::vector<std::uint8_t>> results;
  std::string fingerprint;  ///< everything compared across runs
  Seconds virtual_end = 0.0;
  Seconds wall_elapsed = 0.0;  ///< physical seconds (wall_clock())
};

// ------------------------------------------------------------- serialized

ScenarioOutput run_serialized(std::uint64_t seed, Seconds stall_ms = 40.0) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  obs::MetricsRegistry::global().clear();
  obs::Tracer::global().clear();
  obs::MetricsRegistry::global().set_enabled(true);
  obs::Tracer::global().set_enabled(true);

  ScenarioOutput out;
  const Seconds wall_start = wall_clock().now();
  {
    ClockParticipant me;  // the application thread counts toward quiescence

    ClusterConfig cfg;
    cfg.storage_nodes = 1;
    cfg.cores_per_node = 1;
    cfg.server_chunk_size = 8_KiB;
    cfg.client_chunk_size = 64_KiB;
    cfg.scheme = SchemeKind::kActive;
    cfg.optimizer_override = "all-active";  // admission independent of timing
    cfg.probe_interval = 0.05;              // periodic CE tick, virtual jumps
    std::ostringstream spec_text;
    spec_text << "seed=" << seed << ",kernel_throw=0.15,stall=0.25,stall_ms=" << stall_ms;
    auto spec = fault::FaultSpec::parse(spec_text.str());
    EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
    cfg.faults = std::make_shared<fault::FaultInjector>(spec.value());
    cfg.client_retry.max_attempts = 6;
    cfg.client_retry.base_delay = 0.02;
    cfg.client_retry.sleep_real = true;  // backoff advances virtual time
    cfg.request_timeout = 30.0;          // armed on every envelope, never fires
    Cluster cluster(cfg);

    auto meta = pfs::write_doubles(cluster.pfs_client(), "/dst", 32'768,
                                   [](std::size_t i) { return static_cast<double>(i % 11); });
    EXPECT_TRUE(meta.is_ok());

    for (int r = 0; r < 12; ++r) {
      auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
      EXPECT_TRUE(res.is_ok()) << "request " << r << ": " << res.status().to_string();
      out.results.push_back(res.is_ok() ? res.value() : std::vector<std::uint8_t>{});
    }

    std::ostringstream fp;
    append_common_counters(fp, cluster, vc);
    fp << "--- metrics ---\n" << obs::MetricsRegistry::global().to_text();
    fp << "--- trace ---\n" << canonical_trace();
    out.fingerprint = fp.str();
    out.virtual_end = vc.now();
  }
  out.wall_elapsed = wall_clock().now() - wall_start;
  obs::MetricsRegistry::global().set_enabled(false);
  obs::Tracer::global().set_enabled(false);
  obs::MetricsRegistry::global().clear();
  obs::Tracer::global().clear();
  return out;
}

// --------------------------------------------------------------- striped

ScenarioOutput run_striped(std::uint64_t seed) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  obs::MetricsRegistry::global().clear();
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(true);  // metrics stay off: P2 order races

  ScenarioOutput out;
  const Seconds wall_start = wall_clock().now();
  {
    ClockParticipant me;

    ClusterConfig cfg;
    cfg.storage_nodes = 4;
    cfg.strip_size = 64_KiB;
    cfg.cores_per_node = 1;  // serializes each node's kernel (and RNG) order
    cfg.server_chunk_size = 16_KiB;
    cfg.client_chunk_size = 64_KiB;
    cfg.scheme = SchemeKind::kActive;
    cfg.optimizer_override = "all-active";
    cfg.probe_interval = 0.05;
    std::ostringstream spec_text;
    spec_text << "seed=" << seed << ",kernel_throw=0.08,stall=0.10,stall_ms=30,net_error=0.04";
    auto spec = fault::FaultSpec::parse(spec_text.str());
    EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
    cfg.faults = std::make_shared<fault::FaultInjector>(spec.value());
    cfg.client_retry.max_attempts = 6;
    cfg.client_retry.base_delay = 0.005;
    Cluster cluster(cfg);

    constexpr std::size_t kFiles = 6;
    constexpr std::size_t kCount = 262'144;  // 2 MiB striped over all 4 nodes
    std::vector<pfs::FileMeta> metas;
    for (std::size_t f = 0; f < kFiles; ++f) {
      auto meta = pfs::write_doubles(
          cluster.pfs_client(), "/dst" + std::to_string(f), kCount,
          [f](std::size_t i) { return static_cast<double>((i * (f + 3)) % 13); });
      EXPECT_TRUE(meta.is_ok());
      metas.push_back(meta.value());
    }

    // Pipelined striped fan-out: all legs of all files are in flight
    // before the first wait — per-node arrival order is the (single)
    // submitting thread's order, so each node's RNG draws line up.
    std::vector<client::ActiveClient::PendingReadEx> pending;
    pending.reserve(kFiles);
    for (std::size_t f = 0; f < kFiles; ++f) {
      pending.push_back(cluster.asc().read_ex_async(metas[f], 0, metas[f].size, "sum"));
    }
    for (std::size_t f = 0; f < kFiles; ++f) {
      auto res = pending[f].wait();
      EXPECT_TRUE(res.is_ok()) << "file " << f << ": " << res.status().to_string();
      out.results.push_back(res.is_ok() ? res.value() : std::vector<std::uint8_t>{});
    }

    // Sanity: the sums are the arithmetic truth, not just run-consistent.
    for (std::size_t f = 0; f < kFiles; ++f) {
      auto sum = kernels::SumResult::decode(out.results[f]);
      EXPECT_TRUE(sum.is_ok());
      if (!sum.is_ok()) continue;
      double expect = 0.0;
      for (std::size_t i = 0; i < kCount; ++i) {
        expect += static_cast<double>((i * (f + 3)) % 13);
      }
      EXPECT_DOUBLE_EQ(sum.value().sum, expect) << "file " << f;
      EXPECT_EQ(sum.value().count, kCount) << "file " << f;
    }

    std::ostringstream fp;
    append_common_counters(fp, cluster, vc);
    fp << "--- trace ---\n" << canonical_trace();
    out.fingerprint = fp.str();
    out.virtual_end = vc.now();
  }
  out.wall_elapsed = wall_clock().now() - wall_start;
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  return out;
}

// ---------------------------------------------------------------- causal

struct CausalOutput {
  std::vector<obs::TraceEvent> events;
  std::uint64_t coalesced = 0;
  std::uint64_t demoted = 0;
  std::uint64_t retries = 0;
};

// One storage node under the contention-aware DOSAS admission path, with a
// guaranteed-stall fault so every kernel is still in flight while the single
// app thread finishes submitting: the duplicate pair coalesces
// deterministically, the burst overflows the CE's knee into demote-to-local,
// and seeded network errors force transport retries. Every recovery path a
// request can take must still hang off its client-side root span.
CausalOutput run_causal(std::uint64_t seed) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  obs::MetricsRegistry::global().clear();
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(true);

  CausalOutput out;
  {
    ClockParticipant me;

    ClusterConfig cfg;
    cfg.storage_nodes = 1;
    cfg.cores_per_node = 1;
    cfg.server_chunk_size = 64_KiB;
    cfg.client_chunk_size = 256_KiB;
    cfg.scheme = SchemeKind::kDosas;  // real admission: the burst demotes
    cfg.coalesce_identical = true;
    std::ostringstream spec_text;
    spec_text << "seed=" << seed << ",net_error=0.10,stall=1.0,stall_ms=20";
    auto spec = fault::FaultSpec::parse(spec_text.str());
    EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
    cfg.faults = std::make_shared<fault::FaultInjector>(spec.value());
    cfg.client_retry.max_attempts = 6;
    cfg.client_retry.base_delay = 0.005;
    Cluster cluster(cfg);

    constexpr std::size_t kCount = 1'048'576;  // 8 MiB per file, single extent
    std::vector<pfs::FileMeta> metas;
    for (std::size_t f = 0; f < 10; ++f) {
      auto meta = pfs::write_doubles(
          cluster.pfs_client(), "/causal" + std::to_string(f), kCount,
          [f](std::size_t i) { return static_cast<double>((i + f) % 7); });
      EXPECT_TRUE(meta.is_ok());
      metas.push_back(meta.value());
    }

    // The duplicate pair first (identical file/range/op -> the second
    // coalesces onto the first's in-flight entry), then the distinct burst
    // that pushes the queue past the admission knee.
    std::vector<client::ActiveClient::PendingReadEx> pending;
    pending.push_back(cluster.asc().read_ex_async(metas[0], 0, metas[0].size, "sum"));
    pending.push_back(cluster.asc().read_ex_async(metas[0], 0, metas[0].size, "sum"));
    for (std::size_t f = 1; f < 10; ++f) {
      pending.push_back(cluster.asc().read_ex_async(metas[f], 0, metas[f].size, "gaussian2d"));
    }
    for (std::size_t i = 0; i < pending.size(); ++i) {
      auto res = pending[i].wait();
      EXPECT_TRUE(res.is_ok()) << "request " << i << ": " << res.status().to_string();
    }

    out.events = obs::Tracer::global().snapshot();
    out.coalesced = cluster.storage_server(0).stats().active_coalesced;
    out.demoted = cluster.asc().stats().demoted;
    out.retries = cluster.asc().transport_stats().retries;
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  return out;
}

// ----------------------------------------------------------------- tests

TEST(Dst, SerializedScenarioIsBitIdenticalAcrossRuns) {
  const auto a = run_serialized(2012);
  const auto b = run_serialized(2012);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "request " << i;
  }
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_DOUBLE_EQ(a.virtual_end, b.virtual_end);
  EXPECT_GT(a.virtual_end, 0.0) << "scenario should consume virtual time";
}

TEST(Dst, SerializedScenariosDivergeAcrossSeeds) {
  // The flip side of determinism: a different seed gives a different
  // fault history (otherwise the fingerprint comparison proves nothing).
  const auto a = run_serialized(2012);
  const auto b = run_serialized(7777);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Dst, StripedAsyncScenarioIsBitIdenticalAcrossRuns) {
  const auto a = run_striped(424242);
  const auto b = run_striped(424242);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "file " << i;
  }
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_DOUBLE_EQ(a.virtual_end, b.virtual_end);
}

TEST(Dst, EveryServerSpanHangsOffAClientRoot) {
  const auto out = run_causal(31337);

  // The scenario must actually exercise the recovery paths it claims to:
  // a coalesced duplicate, contention demotions, and transport retries.
  EXPECT_GE(out.coalesced, 1u) << "duplicate request did not coalesce";
  EXPECT_GE(out.demoted, 1u) << "burst did not overflow the admission knee";
  EXPECT_GE(out.retries, 1u) << "seeded net faults produced no retries";

  // Group the causal events (those carrying a trace id) per request.
  std::map<std::uint64_t, std::vector<const obs::TraceEvent*>> traces;
  for (const auto& e : out.events) {
    if (e.trace_id != 0) traces[e.trace_id].push_back(&e);
  }
  ASSERT_EQ(traces.size(), 11u) << "one trace per issued request";

  std::size_t multi_thread_trees = 0;
  for (const auto& [trace_id, events] : traces) {
    // Exactly one root span id, and the root must be client-side: the
    // request was born on the application thread, so whatever the server
    // did to it (queue, coalesce, demote, retry) must trace back there.
    std::set<std::uint64_t> root_spans;
    std::set<std::uint64_t> span_ids;
    std::set<std::uint32_t> tids;
    std::set<std::string> cats;
    for (const auto* e : events) {
      span_ids.insert(e->span_id);
      tids.insert(e->tid);
      cats.insert(e->cat);
      if (e->parent_span_id == 0) {
        root_spans.insert(e->span_id);
        EXPECT_EQ(e->cat, "client")
            << "trace " << trace_id << ": root span '" << e->name << "' is not client-side";
      }
    }
    EXPECT_EQ(root_spans.size(), 1u) << "trace " << trace_id << " must have exactly one root";

    // Connectivity: every non-root event's parent span was itself emitted
    // in the same trace, so the spans form one connected causal tree.
    for (const auto* e : events) {
      if (e->parent_span_id == 0) continue;
      EXPECT_TRUE(span_ids.count(e->parent_span_id))
          << "trace " << trace_id << ": span '" << e->name << "' (" << e->cat
          << ") is orphaned from its parent";
    }

    // Server-side work must always be claimed by a client-rooted trace.
    const bool server_side = cats.count("server") || cats.count("kernel") || cats.count("ce");
    if (server_side) {
      EXPECT_EQ(root_spans.size(), 1u);
    }
    if (tids.size() >= 2 && cats.count("client") && cats.count("rpc") && server_side) {
      ++multi_thread_trees;
    }
  }
  // At least one request's tree spans the app thread and a worker thread
  // end to end (client issue -> rpc -> server queue/kernel).
  EXPECT_GE(multi_thread_trees, 1u);
}

TEST(Dst, VirtualTimeBeatsWallClockTenfold) {
  // The scenario's injected stragglers and backoffs span seconds of
  // virtual time; under the VirtualClock they are O(1) jumps, so the
  // physical runtime must be at least 10x shorter than the virtual span.
  const auto a = run_serialized(2012, /*stall_ms=*/80.0);
  EXPECT_GT(a.virtual_end, 1.0) << "expected seconds of injected virtual delay";
  EXPECT_GE(a.virtual_end, 10.0 * a.wall_elapsed)
      << "virtual span " << a.virtual_end << "s took " << a.wall_elapsed << "s of wall time";
}

}  // namespace
}  // namespace dosas::core
