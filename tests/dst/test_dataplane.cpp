// test_dataplane.cpp — DST fingerprints for the lock-free data plane.
//
// The ring and the buffer arena replaced the mutex Channel and the
// per-layer copy chain on the hot path. Their internal CAS/lock counters
// are schedule-dependent and deliberately excluded from fingerprints; what
// MUST reproduce bit-identically under a VirtualClock is the observable
// data plane: delivery order and virtual timing through a ring pipeline,
// the arena's serialized slab accounting, and the data-bytes-copied
// ledger's delta for a fixed workload (a copy that appears or disappears
// between runs is a real nondeterminism bug, not noise).
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/clock.hpp"
#include "common/ring.hpp"
#include "core/cluster.hpp"
#include "core/runner.hpp"
#include "pfs/client.hpp"
#include "pfs/data_server.hpp"

namespace dosas {
namespace {

// ------------------------------------------------------------------ ring

// One producer paces items through a small ring on the virtual clock; the
// consumer logs (value, virtual receive time). With both sides quiescent
// between items, the interleaving is fully determined by the clock, so
// the whole log — values, times, final virtual time, advance count — is
// part of the contract.
std::string run_ring_pipeline() {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::ostringstream fp;
  {
    ClockParticipant me;
    Ring<int> ring(4);

    clock().add_participant();  // consumer adopts the pre-registration below
    std::thread consumer([&] {
      ClockParticipant participant(ClockParticipant::kAdoptPreRegistered);
      while (auto v = ring.receive()) {
        fp << *v << '@' << std::fixed << std::setprecision(6) << clock().now()
           << '\n';
      }
    });

    for (int i = 0; i < 16; ++i) {
      clock().sleep(0.010);  // virtual pacing: jumps, no wall time
      EXPECT_TRUE(ring.send(i * i));
    }
    clock().sleep(0.050);  // let the consumer drain and park
    ring.close();
    consumer.join();

    const auto st = vc.status();
    fp << "clock now=" << std::fixed << std::setprecision(9) << st.now
       << " advances=" << st.advances << '\n';
  }
  return fp.str();
}

TEST(DataPlaneDst, RingPipelineFingerprintIsDeterministic) {
  const std::string a = run_ring_pipeline();
  const std::string b = run_ring_pipeline();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- arena

// Serialized arena traffic: one thread, a fixed fill/slice/release
// pattern against a data server's read path. Slab accounting and the
// copy ledger must reproduce exactly.
std::string run_arena_scenario() {
  std::ostringstream fp;
  pfs::DataServer server(0);
  std::vector<std::uint8_t> payload(6000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  EXPECT_TRUE(server.write_object(1, 0, payload).is_ok());

  const std::uint64_t ledger_before = data_bytes_copied();
  std::vector<BufferRef> held;
  for (int round = 0; round < 8; ++round) {
    auto ref = server.read_object_ref(1, 0, payload.size());
    EXPECT_TRUE(ref.is_ok());
    // Hold every other ref; slice the rest (shared, no copy) and let the
    // parent drop so its slab recycles.
    if (round % 2 == 0) {
      held.push_back(std::move(ref).value());
    } else {
      BufferRef view = ref.value().slice(100, 256);
      fp << "view[0]=" << static_cast<int>(view.span()[0]) << '\n';
    }
  }
  // One deliberate owning copy: exactly payload.size() ledger bytes.
  const auto copy = held.front().to_vector();
  EXPECT_EQ(copy.size(), payload.size());

  const auto st = server.arena_stats();
  fp << "created=" << st.slabs_created << " recycled=" << st.slabs_recycled
     << " returned=" << st.slabs_returned << " in_use=" << st.slabs_in_use
     << " free=" << st.slabs_free << " bytes_in_use=" << st.bytes_in_use
     << '\n';
  fp << "ledger_delta=" << (data_bytes_copied() - ledger_before) << '\n';
  return fp.str();
}

TEST(DataPlaneDst, ArenaAccountingFingerprintIsDeterministic) {
  const std::string a = run_arena_scenario();
  const std::string b = run_arena_scenario();
  EXPECT_EQ(a, b);
  // The only owning copy in the scenario is the explicit to_vector().
  EXPECT_NE(a.find("ledger_delta=6000"), std::string::npos) << a;
}

// ------------------------------------------------------------ end-to-end

// A serialized active read through the full cluster stack. The ledger
// delta for a fixed workload is part of the DST contract: extent bytes
// flow by reference pfs → rpc → server → kernels, so the only owning
// copies left are the ones deliberately recorded (and they must be the
// SAME bytes every run).
std::string run_cluster_ledger(std::uint64_t seed) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::ostringstream fp;
  {
    ClockParticipant me;
    core::ClusterConfig cfg;
    cfg.storage_nodes = 1;
    cfg.cores_per_node = 1;
    cfg.server_chunk_size = 8_KiB;
    cfg.client_chunk_size = 64_KiB;
    cfg.scheme = core::SchemeKind::kActive;
    cfg.optimizer_override = "all-active";
    core::Cluster cluster(cfg);

    auto meta = pfs::write_doubles(
        cluster.pfs_client(), "/dataplane", 16'384,
        [seed](std::size_t i) { return static_cast<double>((i + seed) % 7); });
    EXPECT_TRUE(meta.is_ok());

    const std::uint64_t ledger_before = data_bytes_copied();
    for (int r = 0; r < 4; ++r) {
      auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
      EXPECT_TRUE(res.is_ok()) << res.status().to_string();
      fp << "result_bytes=" << (res.is_ok() ? res.value().size() : 0) << '\n';
    }
    fp << "ledger_delta=" << (data_bytes_copied() - ledger_before) << '\n';
    fp << "clock now=" << std::fixed << std::setprecision(9) << vc.now() << '\n';
  }
  return fp.str();
}

TEST(DataPlaneDst, ClusterCopyLedgerIsDeterministic) {
  const std::string a = run_cluster_ledger(3);
  const std::string b = run_cluster_ledger(3);
  EXPECT_EQ(a, b);
}

// A mixed read/write workload over the full stack with the result cache
// on: BufferRef writes race cached reads of the same object, so the
// fingerprint covers kWrite dispatch, version invalidation, cache
// hits/misses, and the per-site ledger attribution — all of which must
// reproduce bit-identically for a fixed seed.
std::string run_mixed_ledger(std::uint64_t seed) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  std::ostringstream fp;
  {
    ClockParticipant me;
    core::ClusterConfig cfg;
    cfg.storage_nodes = 1;
    cfg.cores_per_node = 1;
    cfg.server_chunk_size = 8_KiB;
    cfg.client_chunk_size = 64_KiB;
    cfg.scheme = core::SchemeKind::kActive;
    cfg.optimizer_override = "all-active";
    cfg.result_cache_entries = 4;
    core::Cluster cluster(cfg);

    auto meta = pfs::write_doubles(
        cluster.pfs_client(), "/mixed", 8'192,
        [seed](std::size_t i) { return static_cast<double>((i + seed) % 5); });
    EXPECT_TRUE(meta.is_ok());

    const std::uint64_t before_total = data_bytes_copied();
    std::uint64_t before_site[static_cast<std::size_t>(CopySite::kCount)];
    for (std::size_t s = 0; s < static_cast<std::size_t>(CopySite::kCount); ++s) {
      before_site[s] = data_bytes_copied(static_cast<CopySite>(s));
    }

    for (int r = 0; r < 6; ++r) {
      if (r % 2 == 1) {
        // Odd rounds overwrite item r through the zero-copy write path,
        // invalidating the cached result from the previous read.
        const double v = static_cast<double>(seed + r) * 3.25;
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        auto w = cluster.asc().write(
            meta.value(), static_cast<Bytes>(r) * sizeof(double),
            BufferRef::adopt(std::vector<std::uint8_t>(p, p + sizeof(v))));
        EXPECT_TRUE(w.is_ok()) << w.status().to_string();
        fp << "write@" << r << '\n';
      }
      auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
      EXPECT_TRUE(res.is_ok()) << res.status().to_string();
      fp << "result_bytes=" << (res.is_ok() ? res.value().size() : 0) << '\n';
    }

    const auto ss = cluster.storage_server(0).stats();
    fp << "cache hits=" << ss.cache_hits << " misses=" << ss.cache_misses
       << " invalidations=" << ss.cache_invalidations
       << " written=" << ss.normal_bytes_written << '\n';
    fp << "ledger_delta=" << (data_bytes_copied() - before_total) << '\n';
    for (std::size_t s = 0; s < static_cast<std::size_t>(CopySite::kCount); ++s) {
      const auto site = static_cast<CopySite>(s);
      fp << "  " << copy_site_name(site) << '='
         << (data_bytes_copied(site) - before_site[s]) << '\n';
    }
    fp << "clock now=" << std::fixed << std::setprecision(9) << vc.now() << '\n';
  }
  return fp.str();
}

TEST(DataPlaneDst, MixedReadWriteFingerprintIsDeterministic) {
  const std::string a = run_mixed_ledger(11);
  const std::string b = run_mixed_ledger(11);
  EXPECT_EQ(a, b);
  // Writes must never be copied en route: the write path contributes no
  // ledger bytes (the sites that do appear are the client's h(d)-sized
  // result materializations).
  EXPECT_NE(a.find("waiter_fanout=0"), std::string::npos) << a;
  EXPECT_NE(a.find("read_gather=0"), std::string::npos) << a;
}

}  // namespace
}  // namespace dosas
