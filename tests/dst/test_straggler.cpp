// DST straggler scenario: hedged striped reads under the VirtualClock.
//
// Four storage nodes on the TokenBucket per-node link model, kernel pacing
// at paper rates, with node 3 built chronically slower
// (node_capacity_factor, the real-runtime twin of the DES straggler knob)
// and then — after a warm-up that fills the transport's per-node latency
// quantiles — hit with a guaranteed per-chunk stall fault, so every
// measured striped read has one leg stuck on a straggler.
//
// The baseline run (hedging off) waits each straggler leg out to its
// request deadline before recovering locally; the hedged run races a local
// twin after a p99-derived delay and cancels the losing RPC. The scenario
// asserts the tentpole's whole contract at once:
//
//   * p99 read_ex latency improves >= 2x (it improves ~100x here),
//   * at < 10% extra bytes on the link model (both runs raw-read the
//     straggler's extent exactly once per request),
//   * the hedge loser is provably cancelled: transport submitted ==
//     completed, inflight == 0, cancelled == hedges won, and the straggler
//     node counts the withdrawn work — no orphaned server work,
//   * same-seed runs are bit-identical (results, counters, virtual
//     timeline, canonical trace projection).
#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/cluster.hpp"
#include "fault/fault.hpp"
#include "kernels/sum.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/client.hpp"

namespace dosas::core {
namespace {

constexpr std::uint32_t kStraggler = 3;
constexpr std::size_t kWarmupReads = 12;
constexpr std::size_t kMeasuredReads = 12;
constexpr std::size_t kCount = 32'768;  // 256 KiB: one 64 KiB strip per node

// Sorted canonical projection of the trace buffer (same contract as
// tests/dst/test_dst.cpp): everything except tid and buffer order.
std::string canonical_trace() {
  std::vector<std::string> lines;
  for (const auto& e : obs::Tracer::global().snapshot()) {
    std::ostringstream os;
    os << e.name << '|' << e.cat << '|' << e.ph << '|' << e.pid << '|' << std::fixed
       << std::setprecision(3) << e.ts_us << '|' << e.dur_us << '|' << e.value << '|'
       << e.trace_id << '|' << e.span_id << '|' << e.parent_span_id;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const auto& l : lines) os << l << '\n';
  return os.str();
}

struct StragglerOutput {
  std::vector<std::vector<std::uint8_t>> results;  ///< measured-phase results
  std::vector<Seconds> latencies;                  ///< per measured read_ex
  std::string fingerprint;
  Seconds virtual_end = 0.0;
  Bytes bytes_charged = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_wasted = 0;
  std::uint64_t transport_cancelled = 0;
  std::uint64_t transport_timed_out = 0;
  std::uint64_t transport_submitted = 0;
  std::uint64_t transport_completed = 0;
  std::size_t transport_inflight = 0;
  std::uint64_t straggler_withdrawn = 0;  ///< node 3 cancelled + timed out
  rpc::NodeLatency warm_node0;            ///< per-node quantiles after warm-up
  rpc::NodeLatency warm_straggler;
};

Seconds percentile(std::vector<Seconds> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

StragglerOutput run_straggler(std::uint64_t seed, bool hedge) {
  VirtualClock vc;
  ScopedClockOverride override_clock(vc);
  obs::MetricsRegistry::global().clear();
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(true);  // metrics stay off: P2 order races

  StragglerOutput out;
  {
    ClockParticipant me;

    ClusterConfig cfg;
    cfg.storage_nodes = 4;
    cfg.strip_size = 64_KiB;
    cfg.cores_per_node = 1;  // serializes each node's kernel order
    cfg.server_chunk_size = 16_KiB;
    cfg.client_chunk_size = 64_KiB;
    cfg.scheme = SchemeKind::kActive;
    cfg.optimizer_override = "all-active";  // admission independent of timing
    cfg.pace_kernel_rates = true;           // legs take calibrated virtual time
    cfg.node_capacity_factor = {1.0, 1.0, 1.0, 0.5};  // node 3: half-speed CPU
    cfg.network_rate = mb_per_sec(118.0);   // the TokenBucket link model,
    cfg.network_per_node = true;            // one bucket per node uplink
    cfg.request_timeout = 0.5;              // the baseline's only straggler escape
    cfg.hedge_reads = hedge;
    Cluster cluster(cfg);

    auto meta = pfs::write_doubles(cluster.pfs_client(), "/straggler", kCount,
                                   [](std::size_t i) { return static_cast<double>(i % 17); });
    EXPECT_TRUE(meta.is_ok());

    // Warm-up: no faults yet. Fills every node's latency quantiles (the
    // hedge delay and the slowest-node-last wait order feed on them) with
    // the chronic capacity skew already visible on node 3.
    for (std::size_t r = 0; r < kWarmupReads; ++r) {
      auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
      EXPECT_TRUE(res.is_ok()) << "warm-up " << r << ": " << res.status().to_string();
    }
    out.warm_node0 = cluster.asc().transport().node_latency(0);
    out.warm_straggler = cluster.asc().transport().node_latency(kStraggler);

    // The straggler onset: a guaranteed per-chunk stall, wired into node 3
    // ONLY. Every measured read now has one leg stuck far past the other
    // three.
    std::ostringstream spec_text;
    spec_text << "seed=" << seed << ",stall=1.0,stall_ms=150";
    auto spec = fault::FaultSpec::parse(spec_text.str());
    EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
    cluster.storage_server(kStraggler)
        .set_fault_injector(std::make_shared<fault::FaultInjector>(spec.value()));

    for (std::size_t r = 0; r < kMeasuredReads; ++r) {
      const Seconds t0 = clock().now();
      auto res = cluster.asc().read_ex(meta.value(), 0, meta.value().size, "sum");
      out.latencies.push_back(clock().now() - t0);
      EXPECT_TRUE(res.is_ok()) << "measured " << r << ": " << res.status().to_string();
      out.results.push_back(res.is_ok() ? res.value() : std::vector<std::uint8_t>{});
    }

    // Drain: cancelled kernels notice their interrupt at the next stall
    // slice; sleep past that so the final counters (and the virtual
    // timeline) are quiescent, not racing the zombies.
    clock().sleep(2.0);

    const auto cs = cluster.asc().stats();
    const auto ts = cluster.asc().transport_stats();
    const auto ss = cluster.storage_server(kStraggler).stats();
    out.hedges_fired = cs.hedges_fired;
    out.hedges_won = cs.hedges_won;
    out.hedges_wasted = cs.hedges_wasted;
    out.transport_cancelled = ts.cancelled;
    out.transport_timed_out = ts.timed_out;
    out.transport_submitted = ts.submitted;
    out.transport_completed = ts.completed;
    out.transport_inflight = ts.inflight;
    out.bytes_charged = ts.bytes_charged;
    out.straggler_withdrawn = ss.active_cancelled + ss.active_timed_out;

    std::ostringstream fp;
    fp << "client reads_ex=" << cs.reads_ex << " completed_remote=" << cs.completed_remote
       << " demoted=" << cs.demoted << " local_kernel_runs=" << cs.local_kernel_runs
       << " striped_fanouts=" << cs.striped_fanouts
       << " failed_remote_retries=" << cs.failed_remote_retries
       << " timed_out=" << cs.timed_out << " hedges_fired=" << cs.hedges_fired
       << " hedges_won=" << cs.hedges_won << " hedges_wasted=" << cs.hedges_wasted
       << " raw_bytes=" << cs.raw_bytes_read << " result_bytes=" << cs.result_bytes_received
       << '\n';
    for (std::uint32_t i = 0; i < cluster.storage_node_count(); ++i) {
      const auto s = cluster.storage_server(i).stats();
      fp << "server" << i << " completed=" << s.active_completed
         << " interrupted=" << s.active_interrupted << " failed=" << s.active_failed
         << " cancelled=" << s.active_cancelled << " timed_out=" << s.active_timed_out
         << " bytes=" << s.active_bytes_processed << '\n';
    }
    fp << "transport submitted=" << ts.submitted << " completed=" << ts.completed
       << " cancelled=" << ts.cancelled << " timed_out=" << ts.timed_out
       << " bytes_charged=" << ts.bytes_charged << '\n';
    fp << "latencies";
    for (const Seconds l : out.latencies) {
      fp << ' ' << std::fixed << std::setprecision(9) << l;
    }
    fp << '\n';
    const auto st = vc.status();
    fp << "clock now=" << std::fixed << std::setprecision(9) << st.now
       << " advances=" << st.advances << '\n';
    fp << "--- trace ---\n" << canonical_trace();
    out.fingerprint = fp.str();
    out.virtual_end = vc.now();
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  return out;
}

double expected_sum() {
  double expect = 0.0;
  for (std::size_t i = 0; i < kCount; ++i) expect += static_cast<double>(i % 17);
  return expect;
}

// ----------------------------------------------------------------- tests

TEST(DstStraggler, HedgingCutsTailLatencyCheaply) {
  const auto baseline = run_straggler(2024, /*hedge=*/false);
  const auto hedged = run_straggler(2024, /*hedge=*/true);

  // Both runs return the arithmetic truth, bit-identically to each other:
  // hedging must never change WHAT is computed, only where.
  ASSERT_EQ(baseline.results.size(), hedged.results.size());
  for (std::size_t i = 0; i < baseline.results.size(); ++i) {
    EXPECT_EQ(baseline.results[i], hedged.results[i]) << "read " << i;
    auto sum = kernels::SumResult::decode(hedged.results[i]);
    ASSERT_TRUE(sum.is_ok());
    EXPECT_DOUBLE_EQ(sum.value().sum, expected_sum());
    EXPECT_EQ(sum.value().count, kCount);
  }

  // The acceptance ratio: >= 2x p99 improvement. The hedge fires after the
  // ~2ms p99-derived delay instead of the 500ms request deadline, so the
  // actual margin is orders of magnitude.
  const Seconds p99_base = percentile(baseline.latencies, 0.99);
  const Seconds p99_hedge = percentile(hedged.latencies, 0.99);
  EXPECT_GT(p99_hedge, 0.0);
  EXPECT_GE(p99_base, 2.0 * p99_hedge)
      << "baseline p99 " << p99_base << "s vs hedged " << p99_hedge << "s";

  // ...at < 10% extra bytes on the link model: both runs pull the
  // straggler's strip over the wire exactly once per measured read (the
  // baseline via its deadline fallback, the hedge via its local twin), so
  // the hedged run's charged bytes stay within noise of the baseline's.
  EXPECT_GT(baseline.bytes_charged, 0u);
  EXPECT_LE(static_cast<double>(hedged.bytes_charged),
            1.10 * static_cast<double>(baseline.bytes_charged))
      << "hedged " << hedged.bytes_charged << "B vs baseline " << baseline.bytes_charged << "B";

  // Every measured read hedged exactly once, the local twin always beat the
  // stalled leg, and every loser was cancelled: one result, one charge.
  EXPECT_EQ(hedged.hedges_fired, kMeasuredReads);
  EXPECT_EQ(hedged.hedges_won, kMeasuredReads);
  EXPECT_EQ(hedged.hedges_wasted, 0u);
  EXPECT_EQ(hedged.transport_cancelled, hedged.hedges_won);
  EXPECT_EQ(hedged.transport_timed_out, 0u) << "hedges must beat the watchdog";

  // No orphaned server work: every submission completed (the cancelled
  // legs complete kCancelled), nothing left in flight, and the straggler
  // node itself accounts for the withdrawn requests.
  EXPECT_EQ(hedged.transport_submitted, hedged.transport_completed);
  EXPECT_EQ(hedged.transport_inflight, 0u);
  EXPECT_GE(hedged.straggler_withdrawn, hedged.hedges_won);

  // The baseline recovers too — but only at the deadline, via the watchdog.
  EXPECT_EQ(baseline.hedges_fired, 0u);
  EXPECT_EQ(baseline.transport_timed_out, kMeasuredReads);
}

TEST(DstStraggler, WarmupQuantilesSeeTheChronicSkew) {
  // The per-node latency tracking (rpc::NodeLatency) is the hedge's whole
  // sensory system: after warm-up each node has a full sample set and the
  // half-capacity straggler's quantiles sit visibly above a healthy node's.
  const auto out = run_straggler(7, /*hedge=*/true);
  EXPECT_GE(out.warm_node0.samples, kWarmupReads);
  EXPECT_GE(out.warm_straggler.samples, kWarmupReads);
  EXPECT_GT(out.warm_straggler.p50_us, out.warm_node0.p50_us);
  EXPECT_GT(out.warm_straggler.p99_us, 0.0);
}

TEST(DstStraggler, HedgedScenarioIsBitIdenticalAcrossRuns) {
  const auto a = run_straggler(2024, /*hedge=*/true);
  const auto b = run_straggler(2024, /*hedge=*/true);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "read " << i;
  }
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_DOUBLE_EQ(a.virtual_end, b.virtual_end);
  EXPECT_GT(a.virtual_end, 0.0);
}

}  // namespace
}  // namespace dosas::core
